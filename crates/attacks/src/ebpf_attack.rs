//! Injected-gadget PoC (Table 4.1 rows 3–4): a *verifier-approved*
//! extension program is an active transient execution attack.
//!
//! The attacker loads an eBPF-style program through the kernel's
//! verifier. The program is architecturally memory-safe — every access is
//! bounds-checked or mask-bounded — so the verifier accepts it. But the
//! bounds check is an ordinary branch: the attacker mistrains it with
//! in-bounds `ioctl`s, evicts the memory-resident bound, and then calls
//! `ioctl` with an index that reaches the *victim's* kernel data. The
//! transient out-of-bounds load leaks one secret **bit per invocation**
//! into one of two map cache lines (in-map, mask-bounded transmit — the
//! realistic eBPF constraint that the program cannot touch arbitrary
//! memory even transiently through its own data path).
//!
//! In the taxonomy this is an **active** attack with an attacker-supplied
//! gadget: exactly the class §4.2 says cannot be pre-audited away.
//! Perspective needs no knowledge of the injected code — the transient
//! access to foreign data violates the attacker's DSV.

use crate::lab::{AttackLab, Scheme};
use persp_kernel::callgraph::KernelConfig;
use persp_kernel::ebpf::EBPF_MAP_REG;
use persp_kernel::syscalls::Sysno;
use persp_uarch::isa::{AluOp, Assembler, Cond, Inst, Width, INST_BYTES, REG_ARG0, REG_SYSNO};
use perspective::taxonomy::AttackOutcome;

/// Offset within the map where the loader-visible bound lives.
const BOUND_SLOT: i64 = 0;
/// The in-bounds limit the program enforces (architecturally).
const BOUND: u64 = 64;

/// Report of an injected-gadget attack.
#[derive(Debug)]
pub struct EbpfAttackReport {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Outcome.
    pub outcome: AttackOutcome,
    /// Bits recovered (`None` = no signal for that bit).
    pub bits: [Option<u8>; 8],
}

/// The two transmit lines. The *informative* "1" line sits below the "0"
/// line because the L1 next-line prefetcher runs upward: a "0" transmit
/// at `map+192` prefetches past the map, while a "1" transmit at
/// `map+128` prefetches `map+192` — so `map+128` is hot *iff* the bit is
/// 1 (a realistic prefetcher-aware channel layout).
pub const LINE_BIT1: u64 = 128;
/// The "0" transmit line.
pub const LINE_BIT0: u64 = 192;

/// Train→evict→shot rounds per bit before giving up on the channel.
const MAX_SHOTS: u64 = 6;

/// The malicious-but-verified program leaking bit `bit` of `map[r10]`
/// into one of two map cache lines.
fn leak_program(bit: u32) -> Vec<Inst> {
    let b = |dst, base, offset| Inst::Load {
        dst,
        base,
        offset,
        width: Width::B,
    };
    let prog = vec![
        // r19 = *map[0]  (the memory-resident bound — evictable).
        Inst::Load {
            dst: 19,
            base: EBPF_MAP_REG,
            offset: BOUND_SLOT,
            width: Width::Q,
        },
        // if (idx >= bound) goto ret;
        Inst::Branch {
            cond: Cond::Geu,
            a: 10,
            b: 19,
            target: 10 * INST_BYTES,
        },
        // ACCESS: r21 = map[idx]  (transiently out of bounds).
        Inst::Alu {
            op: AluOp::Add,
            dst: 20,
            a: EBPF_MAP_REG,
            b: 10,
        },
        b(21, 20, 0),
        // TRANSMIT: touch map+128 (bit=1) or map+192 (bit=0).
        Inst::AluImm {
            op: AluOp::Shr,
            dst: 22,
            a: 21,
            imm: u64::from(bit),
        },
        Inst::AluImm {
            op: AluOp::And,
            dst: 22,
            a: 22,
            imm: 1,
        },
        Inst::AluImm {
            op: AluOp::Xor,
            dst: 22,
            a: 22,
            imm: 1,
        }, // invert
        Inst::AluImm {
            op: AluOp::Shl,
            dst: 22,
            a: 22,
            imm: 6,
        }, // * 64
        Inst::Alu {
            op: AluOp::Add,
            dst: 23,
            a: EBPF_MAP_REG,
            b: 22,
        },
        b(24, 23, LINE_BIT1 as i64),
        Inst::Ret,
    ];
    debug_assert!(
        persp_kernel::ebpf::verify(&prog).is_ok(),
        "the program must verify"
    );
    prog
}

fn ioctl_program(base: u64, idx: u64, rounds: usize) -> Vec<(u64, Inst)> {
    let mut asm = Assembler::new(base);
    for _ in 0..rounds {
        asm.movi(REG_ARG0, idx);
        asm.movi(REG_SYSNO, Sysno::Ioctl as u16 as u64);
        asm.push(Inst::Syscall);
    }
    asm.push(Inst::Halt);
    asm.finish()
}

/// Run the injected-gadget attack: recover all eight bits of the victim's
/// secret byte, one transient invocation each.
pub fn run_ebpf_attack(scheme: Scheme, kcfg: KernelConfig, secret: u8) -> EbpfAttackReport {
    let mut lab = AttackLab::new(scheme, kcfg, &[Sysno::Getpid]);
    lab.plant_victim_secret(secret);
    let secret_va = lab.victim_secret_va();

    let text = lab.user_text(lab.attacker);
    let mut bits: [Option<u8>; 8] = [None; 8];

    for (bit, out) in bits.iter_mut().enumerate() {
        // Load this bit's program through the verifier.
        let loaded = {
            let mut kernel = lab.kernel.borrow_mut();
            kernel
                .load_ebpf(&leak_program(bit as u32), 1, &mut lab.core.machine)
                .expect("the gadget is architecturally safe and must verify")
        };
        lab.core
            .machine
            .mem
            .write_u64(loaded.map_va + BOUND_SLOT as u64, BOUND);
        let oob_idx = secret_va.wrapping_sub(loaded.map_va);

        // Real PoCs fire the train→evict→shot loop repeatedly: any one
        // shot can lose the race when a history-tagged entry of the
        // shared direction predictor happens to resolve the bounds check
        // early. Predictor state and history keep evolving between
        // rounds, so the channel converges within a few shots.
        for attempt in 0..MAX_SHOTS {
            // Mistrain the program's own bounds check with in-bounds
            // calls (fresh code addresses each round).
            let round = bit as u64 * MAX_SHOTS + attempt;
            let train_base = text + round * 0x10_000;
            lab.core.machine.load_text(ioctl_program(train_base, 7, 6));
            lab.run_as(lab.attacker, train_base, 4_000_000)
                .expect("training");

            // Evict the memory-resident bound (cache contention) and the
            // two transmit lines; the victim's secret is hot (in use).
            lab.core.mem.flush(loaded.map_va + BOUND_SLOT as u64);
            lab.core.mem.flush(loaded.map_va + LINE_BIT1);
            lab.core.mem.flush(loaded.map_va + LINE_BIT0);
            lab.core.mem.read(secret_va);

            // One transient shot.
            let attack_base = train_base + 0x8000;
            lab.core
                .machine
                .load_text(ioctl_program(attack_base, oob_idx, 1));
            lab.run_as(lab.attacker, attack_base, 4_000_000)
                .expect("attack");

            // Prime+probe: the "1" line is authoritative (a "1" transmit
            // prefetches the "0" line, never the other way around).
            let one_hot = lab.core.mem.probe_any(loaded.map_va + LINE_BIT1);
            let zero_hot = lab.core.mem.probe_any(loaded.map_va + LINE_BIT0);
            *out = match (one_hot, zero_hot) {
                (true, _) => Some(1),
                (false, true) => Some(0),
                (false, false) => None,
            };
            if out.is_some() {
                break;
            }
        }
    }

    let recovered: Option<u8> = bits
        .iter()
        .enumerate()
        .try_fold(0u8, |acc, (i, b)| b.map(|v| acc | (v << i)));
    let outcome = match recovered {
        Some(v) if v == secret => AttackOutcome::Leaked {
            recovered: v,
            expected: secret,
        },
        Some(v) => AttackOutcome::Leaked {
            recovered: v,
            expected: secret,
        },
        None if bits.iter().all(Option::is_none) => AttackOutcome::Blocked,
        None => AttackOutcome::Inconclusive,
    };
    EbpfAttackReport {
        scheme,
        outcome,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::ebpf::EBPF_MAP_BYTES;

    fn kcfg() -> KernelConfig {
        KernelConfig::test_small()
    }

    #[test]
    fn leak_programs_pass_the_verifier() {
        for bit in 0..8 {
            persp_kernel::ebpf::verify(&leak_program(bit)).expect("verifies");
        }
    }

    #[test]
    fn injected_gadget_leaks_byte_on_unsafe_hardware() {
        for secret in [0x5Au8, 0xC3] {
            let r = run_ebpf_attack(Scheme::Unsafe, kcfg(), secret);
            assert_eq!(
                r.outcome,
                AttackOutcome::Leaked {
                    recovered: secret,
                    expected: secret
                },
                "bits: {:?}",
                r.bits
            );
        }
    }

    #[test]
    fn perspective_dsv_blocks_the_injected_gadget() {
        // No audit, no ISV knowledge of the injected code: the transient
        // access to foreign data violates the attacker's DSV.
        let r = run_ebpf_attack(Scheme::Perspective, kcfg(), 0x5A);
        assert!(
            !matches!(r.outcome, AttackOutcome::Leaked { recovered, expected } if recovered == expected),
            "must not leak: {:?}",
            r.bits
        );
    }

    #[test]
    fn fence_blocks_the_injected_gadget() {
        let r = run_ebpf_attack(Scheme::Fence, kcfg(), 0x5A);
        assert!(!matches!(
            r.outcome,
            AttackOutcome::Leaked { recovered, expected } if recovered == expected
        ));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents channel layout
    fn transmit_lines_fit_in_the_map() {
        assert!(LINE_BIT0 + 64 <= EBPF_MAP_BYTES, "the \"0\" line is in-map");
        assert!(LINE_BIT1 + 64 <= EBPF_MAP_BYTES, "the \"1\" line is in-map");
        for bit in 0..8 {
            // Every program's static transmit target set stays inside the
            // map (checked dynamically since layouts may be retuned).
            let prog = leak_program(bit);
            assert!(prog.len() <= persp_kernel::ebpf::EBPF_MAX_INSTS + 1);
        }
    }
}
