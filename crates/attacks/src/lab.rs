//! The attack laboratory: a machine with a generated kernel, a victim and
//! an attacker process, and a defense scheme under test.
//!
//! Every PoC in this crate runs against the same lab so that the only
//! difference between "leaks" and "blocked" is the speculation policy —
//! exactly how the paper's security evaluation is framed (Chapter 8).

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::{Kernel, SharedKernel};
use persp_kernel::layout;
use persp_kernel::syscalls::Sysno;
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::{Core, RunSummary, SimError};
use persp_uarch::policy::SpecPolicy;
use persp_uarch::Asid;
use perspective::framework::Perspective;
use perspective::isv::{Isv, IsvKind};

pub use perspective::scheme::Scheme;

/// The assembled lab.
pub struct AttackLab {
    /// The simulated core (machine, caches, predictors, policy).
    pub core: Core,
    /// The kernel, shared with the core's hook handler.
    pub kernel: SharedKernel,
    /// The Perspective framework handle (present for Perspective schemes).
    pub perspective: Option<Perspective>,
    /// The attacker's context.
    pub attacker: Asid,
    /// The victim's context.
    pub victim: Asid,
    /// The scheme under test.
    pub scheme: Scheme,
}

impl AttackLab {
    /// Build a lab: generated kernel, attacker (cgroup 1) and victim
    /// (cgroup 2) processes, and the scheme's policy. For Perspective
    /// schemes the *victim* gets an ISV for `victim_syscalls` of the
    /// matching flavor; the attacker installs none (an attacker will not
    /// restrict itself — DSVs must stop it regardless).
    pub fn new(scheme: Scheme, kcfg: KernelConfig, victim_syscalls: &[Sysno]) -> Self {
        Self::with_core_config(scheme, kcfg, victim_syscalls, CoreConfig::paper_default())
    }

    /// Like [`AttackLab::new`] with an explicit core configuration (the
    /// Retbleed PoC lengthens `ret_resolve_latency`, modelling the
    /// attacker evicting the victim's stack lines).
    pub fn with_core_config(
        scheme: Scheme,
        kcfg: KernelConfig,
        victim_syscalls: &[Sysno],
        core_cfg: CoreConfig,
    ) -> Self {
        Self::with_full_config(
            scheme,
            kcfg,
            victim_syscalls,
            core_cfg,
            perspective::policy::PerspectiveConfig::default(),
        )
    }

    /// Full control: core configuration plus the Perspective enforcement
    /// ablation (used to demonstrate that DSV-only and ISV-only each
    /// leave one attack class open — the taxonomy's core claim, §5.1).
    pub fn with_full_config(
        scheme: Scheme,
        kcfg: KernelConfig,
        victim_syscalls: &[Sysno],
        core_cfg: CoreConfig,
        pcfg: perspective::policy::PerspectiveConfig,
    ) -> Self {
        Self::build(scheme, kcfg, victim_syscalls, core_cfg, pcfg, false)
    }

    /// Like [`AttackLab::with_full_config`], but always wires a
    /// Perspective framework's allocation sink into the kernel — even
    /// for baseline schemes whose policies ignore it. The SNI checker's
    /// ground-truth oracle needs ownership metadata to exist regardless
    /// of whether the scheme enforces it, so `perspective` is always
    /// `Some` on the returned lab.
    pub fn instrumented(
        scheme: Scheme,
        kcfg: KernelConfig,
        victim_syscalls: &[Sysno],
        core_cfg: CoreConfig,
        pcfg: perspective::policy::PerspectiveConfig,
    ) -> Self {
        Self::build(scheme, kcfg, victim_syscalls, core_cfg, pcfg, true)
    }

    fn build(
        scheme: Scheme,
        kcfg: KernelConfig,
        victim_syscalls: &[Sysno],
        core_cfg: CoreConfig,
        pcfg: perspective::policy::PerspectiveConfig,
        instrument: bool,
    ) -> Self {
        let perspective = (scheme.is_perspective() || instrument).then(Perspective::new);
        let kernel = match &perspective {
            Some(p) => Kernel::build(kcfg, p.sink()),
            None => Kernel::build_unprotected(kcfg),
        };
        let shared = SharedKernel::new(kernel);
        let mut machine = Machine::new();
        shared.borrow().install(&mut machine);
        let attacker_pid = shared.borrow_mut().create_process(1, &mut machine);
        let victim_pid = shared.borrow_mut().create_process(2, &mut machine);
        let attacker = attacker_pid as Asid;
        let victim = victim_pid as Asid;

        if let (Some(p), true) = (&perspective, scheme.is_perspective()) {
            let kernel_ref = shared.borrow();
            let graph = &kernel_ref.graph;
            let isv = match scheme {
                Scheme::PerspectiveStatic => Isv::static_for(graph, victim_syscalls),
                Scheme::Perspective => Isv::from_func_set(
                    graph,
                    graph.live_reachable(victim_syscalls),
                    IsvKind::Dynamic,
                ),
                Scheme::PerspectivePlusPlus => {
                    let dynamic = Isv::from_func_set(
                        graph,
                        graph.live_reachable(victim_syscalls),
                        IsvKind::Dynamic,
                    );
                    let flagged: Vec<_> = graph
                        .gadgets
                        .iter()
                        .map(|(f, _)| *f)
                        .filter(|f| dynamic.contains_func(*f))
                        .collect();
                    dynamic.hardened_with_audit(graph, flagged)
                }
                _ => unreachable!("is_perspective() gated"),
            };
            p.install_isv(victim, isv);
        }

        let policy: Box<dyn SpecPolicy> = match &perspective {
            Some(p) if scheme.is_perspective() => Box::new(p.policy(pcfg)),
            _ => scheme.build_policy(None),
        };

        let core = Core::new(
            core_cfg,
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            policy,
            Box::new(shared.clone()),
        );

        AttackLab {
            core,
            kernel: shared,
            perspective,
            attacker,
            victim,
            scheme,
        }
    }

    /// Run a user program as `asid` (context-switches `CURRENT_TASK`).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_as(&mut self, asid: Asid, entry: u64, budget: u64) -> Result<RunSummary, SimError> {
        self.kernel
            .borrow()
            .set_current(asid, &mut self.core.machine);
        self.core.run(entry, budget)
    }

    /// Direct-map address of the victim's kernel-side secret object.
    pub fn victim_secret_va(&self) -> u64 {
        self.kernel
            .borrow()
            .secret_va(self.victim)
            .expect("victim exists")
    }

    /// Plant a secret byte in the victim's kernel object.
    pub fn plant_victim_secret(&mut self, value: u8) {
        let va = self.victim_secret_va();
        self.core.machine.mem.write_u8(va, value);
    }

    /// User text base of a context's process.
    pub fn user_text(&self, asid: Asid) -> u64 {
        layout::user_text_base(self.kernel.borrow().process(asid).expect("exists").pid)
    }

    /// User data base of a context's process.
    pub fn user_data(&self, asid: Asid) -> u64 {
        layout::user_data_base(self.kernel.borrow().process(asid).expect("exists").pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_for_every_scheme() {
        for &scheme in &[
            Scheme::Unsafe,
            Scheme::Fence,
            Scheme::Dom,
            Scheme::Stt,
            Scheme::Spot,
        ] {
            let lab = AttackLab::new(scheme, KernelConfig::test_small(), &[Sysno::Getpid]);
            assert_eq!(lab.scheme, scheme);
            assert!(lab.perspective.is_none());
            assert_ne!(lab.attacker, lab.victim);
        }
        for &scheme in &[
            Scheme::PerspectiveStatic,
            Scheme::Perspective,
            Scheme::PerspectivePlusPlus,
        ] {
            let lab = AttackLab::new(scheme, KernelConfig::test_small(), &[Sysno::Getpid]);
            assert!(lab.perspective.is_some());
            let p = lab.perspective.as_ref().unwrap();
            p.with_isv(lab.victim, |isv| {
                assert!(isv.is_some(), "victim has a view")
            });
            p.with_isv(lab.attacker, |isv| {
                assert!(isv.is_none(), "attacker installs none")
            });
        }
    }

    #[test]
    fn secret_plumbing_round_trips() {
        let mut lab = AttackLab::new(Scheme::Unsafe, KernelConfig::test_small(), &[Sysno::Getpid]);
        lab.plant_victim_secret(0xAB);
        assert_eq!(lab.core.machine.mem.read_u8(lab.victim_secret_va()), 0xAB);
    }

    #[test]
    fn perspective_plus_plus_view_excludes_gadget_hosts() {
        let lab = AttackLab::new(
            Scheme::PerspectivePlusPlus,
            KernelConfig::test_small(),
            Sysno::ALL,
        );
        let kernel = lab.kernel.borrow();
        let p = lab.perspective.as_ref().unwrap();
        p.with_isv(lab.victim, |isv| {
            let isv = isv.unwrap();
            for (host, _) in &kernel.graph.gadgets {
                assert!(!isv.contains_func(*host), "gadget host must be excluded");
            }
        });
    }
}
