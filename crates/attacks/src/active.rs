//! Active transient execution attack PoC (Figure 4.1): Spectre v1 from
//! the attacker's *own* kernel thread.
//!
//! The attacker process:
//!
//! 1. **mistrains** a bounds-check branch in a kernel gadget by repeatedly
//!    invoking the syscall with in-bounds arguments;
//! 2. **flushes** its flush+reload probe array (its own user buffer, whose
//!    address it passes as a syscall argument — the classic
//!    `array2 = user pointer` pattern);
//! 3. invokes the syscall with an **out-of-bounds index** computed so that
//!    `array_base + idx` lands on the *victim's* secret in the direct map;
//! 4. **reloads** the probe array with `rdtsc` timing to recover the byte.
//!
//! Everything except two eviction steps runs as µISA code through the
//! pipeline. The harness flushes the gadget's bound chain and the secret
//! line between training and attack — modelling the cache-contention
//! eviction a co-located attacker performs (it cannot `clflush` kernel
//! lines, but it can always evict them).

use crate::lab::{AttackLab, Scheme};
use persp_kernel::callgraph::{GadgetKind, GadgetSite, KernelConfig};
use persp_kernel::syscalls::Sysno;
use persp_uarch::isa::{AluOp, Assembler, Cond, Inst, REG_ARG0, REG_ARG1, REG_SYSNO};
use perspective::policy::PerspectiveConfig;
use perspective::taxonomy::AttackOutcome;

/// Reload-timing threshold separating cached from uncached lines
/// (L1/L2 hits measure ≲ 15 cycles, DRAM ≳ 110).
const HIT_THRESHOLD: u64 = 60;
/// Probe lines (one per possible byte value).
const PROBE_LINES: u64 = 256;
/// Probe stride defeating adjacent-line effects.
const PROBE_STRIDE: u64 = 4096;

/// A selected attack target: a syscall whose *executed* path contains a
/// cache-transmitting gadget.
#[derive(Debug, Clone, Copy)]
pub struct ActiveTarget {
    /// The syscall to invoke.
    pub syscall: Sysno,
    /// The gadget reached by that syscall.
    pub site: GadgetSite,
}

/// Find a syscall whose live path contains a Cache gadget.
pub fn find_active_target(lab: &AttackLab) -> Option<ActiveTarget> {
    let kernel = lab.kernel.borrow();
    let graph = &kernel.graph;
    let mut best: Option<(usize, ActiveTarget)> = None;
    for &sys in Sysno::ALL {
        // Target gadgets on unconditionally-executed paths: the attacker
        // wants a gadget its own syscall reliably reaches. (Gadgets behind
        // rare gates are also exploitable by aligning the sequence
        // counter with retries; the PoC keeps to the simple case.)
        let live = graph.live_always_reachable(&[sys]);
        let cache_gadgets: Vec<GadgetSite> = graph
            .gadgets_within(&live)
            .into_iter()
            .filter(|(_, s)| s.kind == GadgetKind::Cache)
            .map(|(_, s)| s)
            .collect();
        if let Some(&site) = cache_gadgets.first() {
            let target = ActiveTarget { syscall: sys, site };
            match &best {
                Some((n, _)) if *n <= cache_gadgets.len() => {}
                _ => best = Some((cache_gadgets.len(), target)),
            }
        }
    }
    best.map(|(_, t)| t)
}

/// Report of one active-attack run.
#[derive(Debug)]
pub struct ActiveAttackReport {
    /// Scheme the attack ran against.
    pub scheme: Scheme,
    /// Per-phase outcome.
    pub outcome: AttackOutcome,
    /// Probe lines the attacker measured as hot.
    pub hot_lines: Vec<u8>,
    /// The gadget used.
    pub target: ActiveTarget,
}

/// Build the training program: `rounds` in-bounds syscalls.
fn training_program(
    base: u64,
    target: &ActiveTarget,
    probe_base: u64,
    rounds: usize,
) -> Vec<(u64, Inst)> {
    let mut asm = Assembler::new(base);
    for _ in 0..rounds {
        asm.movi(REG_ARG0, 7); // comfortably within the gadget's bound (64)
        asm.movi(REG_ARG1, probe_base);
        asm.movi(REG_SYSNO, target.syscall as u16 as u64);
        asm.push(Inst::Syscall);
    }
    asm.push(Inst::Halt);
    asm.finish()
}

/// Build the attack + reload program.
///
/// Registers: r2 probe base, r3 loop index, r30 result bitmap base.
fn attack_program(
    base: u64,
    target: &ActiveTarget,
    probe_base: u64,
    result_base: u64,
    oob_index: u64,
) -> Vec<(u64, Inst)> {
    let mut asm = Assembler::new(base);
    // Flush the probe array.
    asm.movi(2, probe_base);
    for i in 0..PROBE_LINES {
        asm.push(Inst::CacheFlush {
            base: 2,
            offset: (i * PROBE_STRIDE) as i64,
        });
    }
    // The malicious syscall.
    asm.movi(REG_ARG0, oob_index);
    asm.movi(REG_ARG1, probe_base);
    asm.movi(REG_SYSNO, target.syscall as u16 as u64);
    asm.push(Inst::Syscall);
    // Reload with timing; mark hot lines in the result bitmap.
    asm.movi(3, 0); // i
    asm.movi(30, result_base);
    asm.movi(18, HIT_THRESHOLD);
    asm.movi(19, 1);
    asm.movi(22, PROBE_LINES);
    let loop_top = asm.here();
    asm.push(Inst::RdTsc { dst: 4 });
    asm.alui(AluOp::Shl, 5, 3, 12);
    asm.alu(AluOp::Add, 6, 2, 5);
    asm.load_b(7, 6, 0);
    asm.push(Inst::RdTsc { dst: 8 });
    asm.alu(AluOp::Sub, 9, 8, 4);
    let skip = asm.new_label();
    asm.branch(Cond::Geu, 9, 18, skip);
    asm.alu(AluOp::Add, 21, 30, 3);
    asm.push(Inst::Store {
        src: 19,
        base: 21,
        offset: 0,
        width: persp_uarch::isa::Width::B,
    });
    asm.bind(skip);
    asm.alui(AluOp::Add, 3, 3, 1);
    asm.branch_to(Cond::Ltu, 3, 22, loop_top);
    asm.push(Inst::Halt);
    asm.finish()
}

/// Run the full active Spectre v1 attack against `scheme`.
///
/// Plants `secret` in the victim, executes training, eviction, the
/// out-of-bounds syscall, and the reload measurement, and returns what the
/// attacker recovered.
pub fn run_active_attack(scheme: Scheme, kcfg: KernelConfig, secret: u8) -> ActiveAttackReport {
    run_active_attack_with_config(scheme, kcfg, secret, PerspectiveConfig::default())
}

/// [`run_active_attack`] under an explicit enforcement ablation: with
/// `enforce_dsv` off, Perspective degenerates to ISV-only and the active
/// attack leaks again — the taxonomy's claim that instruction views
/// cannot stop data-access primitives (§5.1).
pub fn run_active_attack_with_config(
    scheme: Scheme,
    kcfg: KernelConfig,
    secret: u8,
    pcfg: PerspectiveConfig,
) -> ActiveAttackReport {
    run_active_attack_core(
        scheme,
        kcfg,
        secret,
        pcfg,
        persp_uarch::config::CoreConfig::paper_default(),
    )
}

/// [`run_active_attack_with_config`] with an explicit core
/// configuration — the Spectre v1 cell of the fast-vs-slow differential
/// harness, which runs the identical attack with the idle fast-forward
/// on and off and asserts the verdicts match.
pub fn run_active_attack_core(
    scheme: Scheme,
    kcfg: KernelConfig,
    secret: u8,
    pcfg: PerspectiveConfig,
    core_cfg: persp_uarch::config::CoreConfig,
) -> ActiveAttackReport {
    let mut lab = AttackLab::with_full_config(scheme, kcfg, &[Sysno::Getpid], core_cfg, pcfg);
    execute_attack(&mut lab, secret).expect("attack harness runs")
}

/// An active-attack run with the SNI checker attached.
#[derive(Debug)]
pub struct SniAttackReport {
    /// The attack's own outcome (what the attacker recovered).
    pub attack: ActiveAttackReport,
    /// The checker's counters over the whole run.
    pub sni: persp_uarch::SniCounters,
}

/// Run the active attack on an *instrumented* lab with the SNI
/// checker's leakage monitor attached: allocation metadata is recorded
/// even for baseline schemes, so the ground-truth oracle (judging with
/// `oracle_cfg`, normally full enforcement) can taint the victim's
/// secret and count transmits. Under UNSAFE the gadget's dependent
/// probe access is a tainted transmit — the baseline *provably* leaks
/// at the microarchitectural level, not just via the recovered byte;
/// under full Perspective every counter must be zero.
///
/// # Errors
///
/// Returns a description instead of panicking if the simulation errors
/// mid-phase (graceful degradation).
pub fn run_active_attack_sni(
    scheme: Scheme,
    kcfg: KernelConfig,
    secret: u8,
    pcfg: PerspectiveConfig,
    oracle_cfg: PerspectiveConfig,
    shadow_budget: u64,
) -> Result<SniAttackReport, String> {
    let mut lab = AttackLab::instrumented(
        scheme,
        kcfg,
        &[Sysno::Getpid],
        persp_uarch::config::CoreConfig::paper_default(),
        pcfg,
    );
    let oracle = lab
        .perspective
        .as_ref()
        .expect("instrumented lab")
        .sni_oracle(oracle_cfg);
    lab.core
        .attach_sni(persp_uarch::SniChecker::new(oracle, shadow_budget));
    let attack = execute_attack(&mut lab, secret)?;
    Ok(SniAttackReport {
        attack,
        sni: lab.core.stats().sni,
    })
}

/// Execute the train → evict → attack → reload phases against a built
/// lab; shared by the plain and SNI-instrumented entry points.
fn execute_attack(lab: &mut AttackLab, secret: u8) -> Result<ActiveAttackReport, String> {
    let scheme = lab.scheme;
    let target = find_active_target(lab).ok_or("generated kernel has no reachable cache gadget")?;

    lab.plant_victim_secret(secret);
    let secret_va = lab.victim_secret_va();
    let oob_index = secret_va.wrapping_sub(target.site.array_base_va);

    let text_base = lab.user_text(lab.attacker);
    let data_base = lab.user_data(lab.attacker);
    let probe_base = data_base + 0x10_0000;
    let result_base = data_base + 0x40_0000;

    // Phase 1: mistrain the gadget's bounds check (committed, in-bounds).
    let train = training_program(text_base, &target, probe_base, 8);
    lab.core.machine.load_text(train);
    lab.run_as(lab.attacker, text_base, 3_000_000)
        .map_err(|e| format!("training under {scheme} failed: {e}"))?;

    // Phase 2 (harness): evict the bound chain and the secret line —
    // models the attacker's cache-contention eviction of kernel lines.
    lab.core.mem.flush(target.site.bound_ptr_va);
    lab.core.mem.flush(target.site.bound_val_va);
    lab.core.mem.flush(secret_va);

    // Phase 3+4: out-of-bounds syscall and timed reload, fully in µISA.
    let attack_base = text_base + 0x8000;
    let attack = attack_program(attack_base, &target, probe_base, result_base, oob_index);
    lab.core.machine.load_text(attack);
    lab.run_as(lab.attacker, attack_base, 3_000_000)
        .map_err(|e| format!("attack phase under {scheme} failed: {e}"))?;

    // Read the attacker's result bitmap.
    let mut hot_lines = Vec::new();
    for i in 0..PROBE_LINES {
        if lab.core.machine.mem.read_u8(result_base + i) != 0 {
            hot_lines.push(i as u8);
        }
    }

    let outcome = if hot_lines.contains(&secret) {
        AttackOutcome::Leaked {
            recovered: secret,
            expected: secret,
        }
    } else if hot_lines.is_empty() {
        AttackOutcome::Blocked
    } else {
        AttackOutcome::Inconclusive
    };
    Ok(ActiveAttackReport {
        scheme,
        outcome,
        hot_lines,
        target,
    })
}

/// Differential verdict: run the attack twice with different secrets; it
/// "works" only if each run recovers its own secret (noise lines are
/// identical across runs and cancel out).
pub fn active_attack_succeeds(scheme: Scheme, kcfg: KernelConfig) -> bool {
    let r1 = run_active_attack(scheme, kcfg, 0x2A);
    let r2 = run_active_attack(scheme, kcfg, 0x91);
    r1.hot_lines.contains(&0x2A) && r2.hot_lines.contains(&0x91)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_selection_finds_a_cache_gadget() {
        let lab = AttackLab::new(Scheme::Unsafe, KernelConfig::test_small(), &[Sysno::Getpid]);
        let t = find_active_target(&lab).expect("target exists");
        assert_eq!(t.site.kind, GadgetKind::Cache);
        assert_ne!(t.site.seq_va, 0);
    }

    #[test]
    fn active_attack_leaks_on_unsafe_hardware() {
        assert!(
            active_attack_succeeds(Scheme::Unsafe, KernelConfig::test_small()),
            "the unprotected baseline must leak"
        );
    }

    #[test]
    fn perspective_dsv_blocks_the_active_attack() {
        let r = run_active_attack(Scheme::Perspective, KernelConfig::test_small(), 0x2A);
        assert!(
            !r.hot_lines.contains(&0x2A),
            "DSV must block the foreign access: {:?}",
            r.hot_lines
        );
        assert!(!active_attack_succeeds(
            Scheme::Perspective,
            KernelConfig::test_small()
        ));
    }

    #[test]
    fn fence_blocks_the_active_attack() {
        assert!(!active_attack_succeeds(
            Scheme::Fence,
            KernelConfig::test_small()
        ));
    }

    #[test]
    fn stt_blocks_the_transmission() {
        assert!(!active_attack_succeeds(
            Scheme::Stt,
            KernelConfig::test_small()
        ));
    }

    #[test]
    fn dom_blocks_the_cold_secret_access() {
        assert!(!active_attack_succeeds(
            Scheme::Dom,
            KernelConfig::test_small()
        ));
    }

    #[test]
    fn sni_monitor_proves_the_unsafe_leak() {
        let r = run_active_attack_sni(
            Scheme::Unsafe,
            KernelConfig::test_small(),
            0x2A,
            PerspectiveConfig::default(),
            PerspectiveConfig::default(),
            500_000,
        )
        .expect("instrumented attack runs");
        assert!(
            r.sni.secret_spec_loads > 0,
            "the gadget's out-of-DSV load must be tainted: {:?}",
            r.sni
        );
        assert!(
            r.sni.tainted_transmits > 0,
            "the dependent probe access must count as a transmit: {:?}",
            r.sni
        );
    }

    #[test]
    fn sni_monitor_is_silent_under_full_perspective() {
        let r = run_active_attack_sni(
            Scheme::Perspective,
            KernelConfig::test_small(),
            0x2A,
            PerspectiveConfig::default(),
            PerspectiveConfig::default(),
            500_000,
        )
        .expect("instrumented attack runs");
        assert_eq!(
            r.sni.violations(),
            0,
            "full enforcement must be non-interferent: {:?}",
            r.sni
        );
        assert_eq!(r.sni.shadow_mismatches, 0);
        assert!(
            !r.attack.hot_lines.contains(&0x2A),
            "and the byte stays secret"
        );
    }

    #[test]
    fn spot_mitigations_do_not_stop_spectre_v1() {
        // KPTI + Retpoline are spot mitigations for Meltdown/v2 only —
        // the v1 gadget still leaks (the paper's motivation for
        // principled defenses).
        assert!(active_attack_succeeds(
            Scheme::Spot,
            KernelConfig::test_small()
        ));
    }
}
