//! Attack proof-of-concepts for the Perspective reproduction.
//!
//! Implements the paper's security evaluation (Chapter 8): *active*
//! transient execution attacks (the attacker's own kernel thread leaking
//! foreign data — [`active`]) and *passive* attacks (the victim's kernel
//! thread hijacked into a leak gadget — [`passive`]), run against every
//! evaluated defense scheme on the simulated core via the shared
//! [`lab::AttackLab`] harness.
//!
//! The attacks exercise the real microarchitectural mechanisms end to
//! end: branch mistraining through the shared TAGE/BTB/RSB state,
//! transient wrong-path loads that fill the caches before squash, and a
//! flush+reload receiver timed with in-µISA `rdtsc` loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod bhi;
pub mod ebpf_attack;
pub mod lab;
pub mod passive;

pub use active::{
    active_attack_succeeds, run_active_attack, run_active_attack_core, ActiveAttackReport,
};
pub use bhi::{bhi_succeeds, plain_v2_fails_under_ibrs, run_bhi, run_bhi_core, BhiReport};
pub use ebpf_attack::{run_ebpf_attack, EbpfAttackReport};
pub use lab::{AttackLab, Scheme};
pub use passive::{
    passive_attack_succeeds, run_btb_hijack, run_btb_hijack_core, run_retbleed, run_retbleed_core,
    PassiveAttackReport,
};
