//! Passive transient execution attack PoCs (Figure 4.2): the attacker
//! hijacks the *victim's* speculative control flow into a gadget that
//! leaks the victim's own data.
//!
//! Two hijack primitives are modelled end-to-end on the shared predictor
//! state:
//!
//! * **Spectre v2 / BHI** ([`run_btb_hijack`]): the attacker installs a
//!   BTB entry aliasing the kernel's dispatch `CallInd`; the victim's next
//!   syscall speculatively dispatches into the leak gadget.
//! * **Spectre RSB / Retbleed** ([`run_retbleed`]): the victim's `stat`
//!   path is a call chain deeper than the 16-entry RSB; its outer returns
//!   underflow and fall back to the BTB, where the attacker planted the
//!   gadget address.
//!
//! The leak gadget (`SecretLeak` in the generated kernel) dereferences
//! `CURRENT_TASK → secret` — the access does **not** violate data
//! ownership (it is the victim's own data), which is precisely why DSVs
//! cannot stop passive attacks and ISVs are needed (§5.1).
//!
//! Harness-level steps and what they model: BTB installation stands for
//! the attacker's aliased-jump training run (the aliasing itself is
//! demonstrated by the predictor model's unit tests); the syscall-table
//! line flush models eviction contention that widens the dispatch window;
//! warming the victim's secret chain models the victim actively using its
//! secret. The covert-channel receiver checks residency of the kernel
//! probe region, modelling a prime+probe measurement.

use crate::lab::{AttackLab, Scheme};
use persp_kernel::body::DISPATCH_CALL_VA;
use persp_kernel::callgraph::KernelConfig;
use persp_kernel::layout::SYSCALL_TABLE;
use persp_kernel::syscalls::Sysno;
use persp_uarch::config::CoreConfig;
use persp_uarch::isa::{Assembler, Inst, INST_BYTES, REG_SYSNO};
use perspective::policy::PerspectiveConfig;
use perspective::taxonomy::{AttackOutcome, Variant};

const PROBE_STRIDE: u64 = 4096;

/// Report of one passive-attack run.
#[derive(Debug)]
pub struct PassiveAttackReport {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Which hijack variant was used.
    pub variant: Variant,
    /// Outcome.
    pub outcome: AttackOutcome,
    /// Kernel probe lines found resident after the victim ran.
    pub hot_lines: Vec<u8>,
}

fn victim_warmup_program(base: u64, sys: Sysno, rounds: usize) -> Vec<(u64, Inst)> {
    let mut asm = Assembler::new(base);
    for _ in 0..rounds {
        asm.movi(REG_SYSNO, sys as u16 as u64);
        asm.push(Inst::Syscall);
    }
    asm.push(Inst::Halt);
    asm.finish()
}

fn scan_kprobe(lab: &AttackLab, kprobe_base: u64) -> Vec<u8> {
    (0..256u64)
        .filter(|&i| lab.core.mem.probe_any(kprobe_base + i * PROBE_STRIDE))
        .map(|i| i as u8)
        .collect()
}

fn flush_kprobe(lab: &mut AttackLab, kprobe_base: u64) {
    for i in 0..256u64 {
        lab.core.mem.flush(kprobe_base + i * PROBE_STRIDE);
    }
}

/// Warm the victim's secret-dereference chain, modelling a victim that is
/// actively using its secret (e.g. a key in a crypto loop).
fn warm_secret_chain(lab: &mut AttackLab) {
    let kernel = lab.kernel.borrow();
    let task_va = kernel.process(lab.victim).expect("victim").task_struct_va;
    let secret_va = kernel.secret_va(lab.victim).expect("victim");
    drop(kernel);
    lab.core.mem.read(persp_kernel::layout::CURRENT_TASK_PTR);
    lab.core.mem.read(task_va);
    lab.core.mem.read(secret_va);
}

fn classify(hot: Vec<u8>, secret: u8, scheme: Scheme, variant: Variant) -> PassiveAttackReport {
    let outcome = if hot.contains(&secret) {
        AttackOutcome::Leaked {
            recovered: secret,
            expected: secret,
        }
    } else if hot.is_empty() {
        AttackOutcome::Blocked
    } else {
        AttackOutcome::Inconclusive
    };
    PassiveAttackReport {
        scheme,
        variant,
        outcome,
        hot_lines: hot,
    }
}

/// Spectre v2-style hijack of the syscall dispatch `CallInd`.
pub fn run_btb_hijack(scheme: Scheme, kcfg: KernelConfig, secret: u8) -> PassiveAttackReport {
    run_btb_hijack_with_config(scheme, kcfg, secret, PerspectiveConfig::default())
}

/// [`run_btb_hijack`] under an explicit enforcement ablation: with
/// `enforce_isv` off, Perspective degenerates to DSV-only and the hijack
/// leaks again — data views cannot stop control-flow primitives whose
/// gadget only touches in-view data (§5.1).
pub fn run_btb_hijack_with_config(
    scheme: Scheme,
    kcfg: KernelConfig,
    secret: u8,
    pcfg: PerspectiveConfig,
) -> PassiveAttackReport {
    run_btb_hijack_core(scheme, kcfg, secret, pcfg, CoreConfig::paper_default())
}

/// [`run_btb_hijack_with_config`] with an explicit core configuration
/// (the Spectre v2 cell of the fast-vs-slow differential harness).
pub fn run_btb_hijack_core(
    scheme: Scheme,
    kcfg: KernelConfig,
    secret: u8,
    pcfg: PerspectiveConfig,
    core_cfg: CoreConfig,
) -> PassiveAttackReport {
    let victim_syscalls = [Sysno::Getpid, Sysno::Read];
    let mut lab = AttackLab::with_full_config(scheme, kcfg, &victim_syscalls, core_cfg, pcfg);
    let (leak_func, kprobe_base) = lab
        .kernel
        .borrow()
        .graph
        .passive_target
        .expect("kernel has a passive target");
    let gadget_va = lab.kernel.borrow().graph.func(leak_func).entry_va;

    lab.plant_victim_secret(secret);

    // The victim does normal work first (warms its task metadata, fills
    // the predictors with benign history).
    let vbase = lab.user_text(lab.victim);
    lab.core
        .machine
        .load_text(victim_warmup_program(vbase, Sysno::Getpid, 4));
    lab.run_as(lab.victim, vbase, 3_000_000)
        .expect("victim warmup");

    // ATTACK, repeated over several rounds as in real PoCs: the first
    // shots fetch the gadget's instruction lines into the caches (the
    // wrong-path fetch itself warms them); later shots complete the leak
    // within the dispatch-resolution window.
    flush_kprobe(&mut lab, kprobe_base);
    let vbase2 = vbase + 0x4000;
    lab.core
        .machine
        .load_text(victim_warmup_program(vbase2, Sysno::Getpid, 1));
    for _round in 0..4 {
        // Poison the BTB entry aliasing the dispatch indirect call
        // (stands for the attacker's aliased-jump training run; BTB
        // aliasing is exercised directly in the predictor tests). The
        // victim's own committed dispatches re-train the entry, so the
        // attacker re-poisons before every shot.
        // The Legacy BTB ignores history and privilege — the attacker's
        // user-mode jump at the aliasing address lands in the same slot
        // the kernel dispatch reads. (The Ibrs mode blocks exactly this;
        // see the BHI PoC for the bypass.)
        let alias_pc = lab.core.pred.btb.aliasing_pc(DISPATCH_CALL_VA);
        let hist = lab.core.pred.hist;
        lab.core.pred.btb.install(alias_pc, hist, gadget_va, false);
        assert_eq!(
            lab.core.pred.btb.predict(DISPATCH_CALL_VA, hist, true),
            Some(gadget_va),
            "partial-tag aliasing must reach the victim's branch"
        );

        // Evict the dispatch-table line so target resolution is slow
        // (wide transient window); keep the secret chain warm.
        lab.core
            .mem
            .flush(SYSCALL_TABLE + (Sysno::Getpid as u16 as u64) * 8);
        warm_secret_chain(&mut lab);

        // The victim performs one ordinary syscall.
        lab.run_as(lab.victim, vbase2, 3_000_000)
            .expect("victim syscall");
    }

    classify(
        scan_kprobe(&lab, kprobe_base),
        secret,
        scheme,
        Variant::SpectreV2,
    )
}

/// Retbleed-style hijack: deep `stat` call chain underflows the RSB; the
/// underflowed return falls back to a poisoned BTB entry.
pub fn run_retbleed(scheme: Scheme, kcfg: KernelConfig, secret: u8) -> PassiveAttackReport {
    run_retbleed_core(scheme, kcfg, secret, CoreConfig::paper_default())
}

/// [`run_retbleed`] over an explicit base core configuration (the
/// Retbleed cell of the fast-vs-slow differential harness); the
/// attack's own `ret_resolve_latency` amplification is layered on top
/// of `base`.
pub fn run_retbleed_core(
    scheme: Scheme,
    kcfg: KernelConfig,
    secret: u8,
    base: CoreConfig,
) -> PassiveAttackReport {
    let victim_syscalls = [Sysno::Stat];
    // ret_resolve_latency models the attacker evicting the victim's stack
    // lines so return-address resolution is slow (standard Retbleed
    // amplification).
    let core_cfg = CoreConfig {
        ret_resolve_latency: 30,
        ..base
    };
    let mut lab = AttackLab::with_core_config(scheme, kcfg, &victim_syscalls, core_cfg);
    let (leak_func, kprobe_base) = lab
        .kernel
        .borrow()
        .graph
        .passive_target
        .expect("kernel has a passive target");
    let gadget_va = lab.kernel.borrow().graph.func(leak_func).entry_va;

    lab.plant_victim_secret(secret);

    // Victim runs stat once to warm the chain.
    let vbase = lab.user_text(lab.victim);
    lab.core
        .machine
        .load_text(victim_warmup_program(vbase, Sysno::Stat, 1));
    lab.run_as(lab.victim, vbase, 6_000_000)
        .expect("victim warmup");

    // Poison the BTB for the *returns* of the outer chain functions —
    // the ones whose RSB entries were lost to the deep chain.
    {
        let kernel = lab.kernel.borrow();
        let graph = &kernel.graph;
        let entry = graph.entries[&Sysno::Stat];
        let mut chain = Vec::new();
        let mut cur = entry;
        loop {
            // The chain edge is the direct call whose callee is in the
            // stat pool (bodies also contain utility calls).
            let next = graph.funcs[cur.0 as usize]
                .body
                .iter()
                .find_map(|op| match op {
                    persp_kernel::callgraph::BodyOp::CallDirect(c)
                        if matches!(
                            graph.func(*c).kind,
                            persp_kernel::callgraph::FuncKind::SyscallImpl(Sysno::Stat)
                        ) =>
                    {
                        Some(*c)
                    }
                    _ => None,
                });
            match next {
                Some(c) => {
                    chain.push(c);
                    cur = c;
                }
                None => break,
            }
        }
        drop(kernel);
        let kernel = lab.kernel.borrow();
        let graph = &kernel.graph;
        for &f in chain.iter().take(6) {
            let kf = graph.func(f);
            let ret_pc = kf.entry_va + u64::from(kf.len_insts - 1) * INST_BYTES;
            drop_installed(&mut lab.core.pred.btb, ret_pc, gadget_va);
        }
    }

    flush_kprobe(&mut lab, kprobe_base);
    warm_secret_chain(&mut lab);

    // Victim's stat call: the outer returns underflow the RSB and fetch
    // from the poisoned BTB.
    let vbase2 = vbase + 0x4000;
    lab.core
        .machine
        .load_text(victim_warmup_program(vbase2, Sysno::Stat, 1));
    lab.run_as(lab.victim, vbase2, 6_000_000)
        .expect("victim stat");

    classify(
        scan_kprobe(&lab, kprobe_base),
        secret,
        scheme,
        Variant::Retbleed,
    )
}

fn drop_installed(btb: &mut persp_uarch::predictor::Btb, ret_pc: u64, gadget: u64) {
    let alias = btb.aliasing_pc(ret_pc);
    btb.install(alias, 0, gadget, false);
}

/// Differential verdict for a passive attack runner.
pub fn passive_attack_succeeds(
    runner: fn(Scheme, KernelConfig, u8) -> PassiveAttackReport,
    scheme: Scheme,
    kcfg: KernelConfig,
) -> bool {
    let r1 = runner(scheme, kcfg, 0x3C);
    let r2 = runner(scheme, kcfg, 0xA7);
    r1.hot_lines.contains(&0x3C) && r2.hot_lines.contains(&0xA7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_hijack_leaks_on_unsafe_hardware() {
        assert!(
            passive_attack_succeeds(run_btb_hijack, Scheme::Unsafe, KernelConfig::test_small()),
            "dispatch hijack must leak on the unprotected baseline"
        );
    }

    #[test]
    fn perspective_isv_blocks_the_btb_hijack() {
        let r = run_btb_hijack(Scheme::Perspective, KernelConfig::test_small(), 0x3C);
        assert!(
            !r.hot_lines.contains(&0x3C),
            "the leak gadget is outside the victim's ISV: {:?}",
            r.hot_lines
        );
    }

    #[test]
    fn static_isv_also_blocks_the_btb_hijack() {
        let r = run_btb_hijack(Scheme::PerspectiveStatic, KernelConfig::test_small(), 0x3C);
        assert!(!r.hot_lines.contains(&0x3C));
    }

    #[test]
    fn retbleed_leaks_on_unsafe_hardware() {
        assert!(
            passive_attack_succeeds(run_retbleed, Scheme::Unsafe, KernelConfig::test_small()),
            "RSB-underflow hijack must leak on the unprotected baseline"
        );
    }

    #[test]
    fn perspective_isv_blocks_retbleed() {
        let r = run_retbleed(Scheme::Perspective, KernelConfig::test_small(), 0x3C);
        assert!(!r.hot_lines.contains(&0x3C), "hot: {:?}", r.hot_lines);
    }

    #[test]
    fn fence_blocks_passive_attacks_too() {
        let r = run_btb_hijack(Scheme::Fence, KernelConfig::test_small(), 0x3C);
        assert!(!r.hot_lines.contains(&0x3C));
    }
}
