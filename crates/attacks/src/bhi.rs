//! Branch History Injection PoC (Table 4.1 row 5): bypassing
//! eIBRS-style BTB hardening.
//!
//! With the BTB in [`BtbMode::Ibrs`], entries are privilege-tagged and
//! the index/tag mix in the global branch history: the classic Spectre v2
//! injection (a user-mode jump at an aliasing address) no longer serves
//! kernel predictions — demonstrated by
//! [`plain_v2_fails_under_ibrs`]. But the *history register itself* is
//! attacker-controlled across the user→kernel transition. The attacker:
//!
//! 1. lets the kernel install a legitimate BTB entry for an ops-table
//!    handler that happens to be a *dispatch gadget* (it dereferences the
//!    first syscall-argument register — speculative type confusion);
//! 2. searches offline for a branch-history value under which the syscall
//!    dispatch's BTB lookup collides with that kernel entry (the BHB
//!    brute-force of the real PoC, here via
//!    [`Btb::find_colliding_history`](persp_uarch::predictor::Btb::find_colliding_history));
//! 3. executes a user-mode branch sequence encoding that history, puts a
//!    victim pointer in `r10`, and issues a syscall: the dispatch
//!    speculatively enters the gadget, dereferencing the victim's secret.
//!
//! In the paper's taxonomy this is an **active** attack (the attacker's
//! own kernel thread leaks foreign data), so Perspective stops it with
//! **DSVs** — even though the hijacked handler is a perfectly legitimate
//! kernel function.

use crate::lab::{AttackLab, Scheme};
use persp_kernel::body::DISPATCH_CALL_VA;
use persp_kernel::callgraph::KernelConfig;
use persp_kernel::layout::SYSCALL_TABLE;
use persp_kernel::syscalls::Sysno;
use persp_uarch::config::CoreConfig;
use persp_uarch::isa::{Assembler, Cond, Inst, REG_ARG0, REG_ARG1, REG_ARG2, REG_SYSNO};
use persp_uarch::predictor::BtbMode;
use perspective::taxonomy::AttackOutcome;

const PROBE_STRIDE: u64 = 4096;
/// History bits the attack encodes with user-mode branches (the BTB folds
/// 44 bits; the colliding values the search returns fit in 22).
const HISTORY_BITS: u64 = 44;

/// Report of one BHI run.
#[derive(Debug)]
pub struct BhiReport {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Outcome.
    pub outcome: AttackOutcome,
    /// Hot kernel-probe lines after the attack.
    pub hot_lines: Vec<u8>,
}

fn ibrs_core_config() -> CoreConfig {
    ibrs_core_config_from(CoreConfig::paper_default())
}

/// IBRS-style BTB hardening layered over an arbitrary base
/// configuration (the differential harness varies only
/// `idle_fastforward` in the base).
fn ibrs_core_config_from(base: CoreConfig) -> CoreConfig {
    CoreConfig {
        btb_mode: BtbMode::Ibrs,
        ..base
    }
}

/// Sanity arm: under IBRS, the classic aliased-install injection no
/// longer reaches kernel predictions.
pub fn plain_v2_fails_under_ibrs(kcfg: KernelConfig) -> bool {
    let mut lab =
        AttackLab::with_core_config(Scheme::Unsafe, kcfg, &[Sysno::Getpid], ibrs_core_config());
    let gadget_va = lab.kernel.borrow().graph.passive_target.expect("target").0;
    let gadget_va = lab.kernel.borrow().graph.func(gadget_va).entry_va;
    let hist = lab.core.pred.hist;
    let alias = lab.core.pred.btb.aliasing_pc(DISPATCH_CALL_VA);
    lab.core.pred.btb.install(alias, hist, gadget_va, false); // user install
    lab.core.pred.btb.predict(DISPATCH_CALL_VA, hist, true) != Some(gadget_va)
}

/// The attacker program: encode the colliding history with a straight
/// line of always/never-taken branches, load the victim pointer into
/// `r10`, and fire the syscall.
fn bhi_program(base: u64, history: u64, victim_ptr: u64) -> Vec<(u64, Inst)> {
    let mut asm = Assembler::new(base);
    // Oldest history bit first: the global history register shifts the
    // newest outcome into bit 0.
    for bit in (0..HISTORY_BITS).rev() {
        let next = asm.new_label();
        if history >> bit & 1 == 1 {
            asm.branch(Cond::Eq, 0, 0, next); // always taken
        } else {
            asm.branch(Cond::Ne, 0, 0, next); // never taken
        }
        asm.bind(next);
    }
    asm.movi(REG_ARG0, victim_ptr);
    asm.movi(REG_SYSNO, Sysno::Getpid as u16 as u64);
    asm.push(Inst::Syscall);
    asm.push(Inst::Halt);
    asm.finish()
}

/// Run the full BHI attack against `scheme` (always on IBRS-hardened
/// hardware — the point is bypassing that hardening).
pub fn run_bhi(scheme: Scheme, kcfg: KernelConfig, secret: u8) -> BhiReport {
    run_bhi_core(scheme, kcfg, secret, CoreConfig::paper_default())
}

/// [`run_bhi`] over an explicit base core configuration (the BHI cell
/// of the fast-vs-slow differential harness); the IBRS hardening the
/// attack bypasses is layered on top of `base`.
pub fn run_bhi_core(scheme: Scheme, kcfg: KernelConfig, secret: u8, base: CoreConfig) -> BhiReport {
    let mut lab = AttackLab::with_core_config(
        scheme,
        kcfg,
        &[Sysno::Getpid, Sysno::Read],
        ibrs_core_config_from(base),
    );
    let (handler, kprobe_base) = lab
        .kernel
        .borrow()
        .graph
        .bhi_target
        .expect("kernel has a BHI handler");
    let handler_va = lab.kernel.borrow().graph.func(handler).entry_va;

    lab.plant_victim_secret(secret);
    let secret_va = lab.victim_secret_va();

    // Step 1: ordinary kernel activity installs the handler's BTB entry
    // (the victim's write path legitimately calls it through the ops
    // table; the attacker itself never invokes write).
    let vbase = lab.user_text(lab.victim);
    let mut warm = Assembler::new(vbase);
    for _ in 0..4 {
        warm.movi(REG_ARG0, 3); // fd: the handler's benign argument
        warm.movi(REG_ARG1, lab.user_data(lab.victim) + 0x2000);
        warm.movi(REG_ARG2, 4);
        warm.movi(REG_SYSNO, Sysno::Write as u16 as u64);
        warm.push(Inst::Syscall);
    }
    warm.push(Inst::Halt);
    lab.core.machine.load_text(warm.finish());
    lab.run_as(lab.victim, vbase, 3_000_000)
        .expect("victim warmup");

    // Step 2: the offline BHB search.
    let Some(history) = lab
        .core
        .pred
        .btb
        .find_colliding_history(DISPATCH_CALL_VA, handler_va)
    else {
        return BhiReport {
            scheme,
            outcome: AttackOutcome::Inconclusive,
            hot_lines: Vec::new(),
        };
    };

    // Step 3: fire, over a few rounds (early shots warm the handler's
    // instruction lines; the dispatch-table line is evicted each round to
    // widen the window, and the victim's secret line is hot because the
    // victim is actively using it).
    for i in 0..256u64 {
        lab.core.mem.flush(kprobe_base + i * PROBE_STRIDE);
    }
    let abase = lab.user_text(lab.attacker);
    lab.core
        .machine
        .load_text(bhi_program(abase, history, secret_va));
    for _round in 0..4 {
        lab.core
            .mem
            .flush(SYSCALL_TABLE + (Sysno::Getpid as u16 as u64) * 8);
        lab.core.mem.read(secret_va);
        lab.run_as(lab.attacker, abase, 3_000_000)
            .expect("attack syscall");
    }

    let hot: Vec<u8> = (0..256u64)
        .filter(|&i| lab.core.mem.probe_any(kprobe_base + i * PROBE_STRIDE))
        .map(|i| i as u8)
        .collect();
    let outcome = if hot.contains(&secret) {
        AttackOutcome::Leaked {
            recovered: secret,
            expected: secret,
        }
    } else if hot.is_empty() {
        AttackOutcome::Blocked
    } else {
        AttackOutcome::Inconclusive
    };
    BhiReport {
        scheme,
        outcome,
        hot_lines: hot,
    }
}

/// Differential verdict over two secrets.
pub fn bhi_succeeds(scheme: Scheme, kcfg: KernelConfig) -> bool {
    let r1 = run_bhi(scheme, kcfg, 0x4D);
    let r2 = run_bhi(scheme, kcfg, 0xB2);
    r1.hot_lines.contains(&0x4D) && r2.hot_lines.contains(&0xB2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kcfg() -> KernelConfig {
        KernelConfig::test_small()
    }

    #[test]
    fn ibrs_stops_the_classic_injection() {
        assert!(plain_v2_fails_under_ibrs(kcfg()));
    }

    #[test]
    fn bhi_bypasses_ibrs_on_unsafe_hardware() {
        assert!(
            bhi_succeeds(Scheme::Unsafe, kcfg()),
            "history injection must reach the dispatch gadget"
        );
    }

    #[test]
    fn perspective_dsv_blocks_bhi() {
        // The hijacked handler is legitimate kernel code, but the
        // transient dereference targets *foreign* data: an active attack,
        // stopped by DSVs (taxonomy-rooted, variant-agnostic — §8.1).
        let r = run_bhi(Scheme::Perspective, kcfg(), 0x4D);
        assert!(!r.hot_lines.contains(&0x4D), "hot: {:?}", r.hot_lines);
        assert!(!bhi_succeeds(Scheme::Perspective, kcfg()));
    }

    #[test]
    fn fence_blocks_bhi_too() {
        assert!(!bhi_succeeds(Scheme::Fence, kcfg()));
    }
}
