//! Attack-scenario fast-vs-slow differential: every proof-of-concept
//! verdict (leaked / blocked / inconclusive, recovered byte, hot probe
//! lines) must be identical with the idle-cycle fast-forward on and
//! off. The attacks are the most timing-sensitive consumers of the
//! pipeline — they measure reload latencies, race transient windows
//! against resolution latencies, and depend on exact predictor state —
//! so verdict-level equality here is a strong end-to-end check that the
//! fast-forward is cycle-exact.

use persp_attacks::{run_active_attack_core, run_bhi_core, run_retbleed_core};
use persp_kernel::callgraph::KernelConfig;
use persp_uarch::config::CoreConfig;
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

fn pair() -> (CoreConfig, CoreConfig) {
    (
        CoreConfig {
            idle_fastforward: true,
            ..CoreConfig::paper_default()
        },
        CoreConfig {
            idle_fastforward: false,
            ..CoreConfig::paper_default()
        },
    )
}

/// Compare two attack reports via their `Debug` rendering — covers the
/// outcome, the recovered target, and the hot-line evidence.
fn assert_same<R: std::fmt::Debug>(fast: R, slow: R, what: &str) {
    assert_eq!(
        format!("{fast:#?}"),
        format!("{slow:#?}"),
        "{what}: fast-forward changed the attack verdict"
    );
}

#[test]
fn spectre_v1_verdicts_are_identical() {
    let (fast_cfg, slow_cfg) = pair();
    for scheme in [Scheme::Unsafe, Scheme::Perspective] {
        let run = |cfg| {
            run_active_attack_core(
                scheme,
                KernelConfig::test_small(),
                0x2A,
                PerspectiveConfig::default(),
                cfg,
            )
        };
        let fast = run(fast_cfg);
        let slow = run(slow_cfg);
        // The scenario must stay meaningful, not just equal: UNSAFE
        // leaks, Perspective blocks.
        match scheme {
            Scheme::Unsafe => assert!(fast.outcome.succeeded(), "UNSAFE must leak"),
            _ => assert!(!fast.outcome.succeeded(), "Perspective must block"),
        }
        assert_same(fast, slow, "spectre v1");
    }
}

#[test]
fn retbleed_verdicts_are_identical() {
    let (fast_cfg, slow_cfg) = pair();
    for scheme in [Scheme::Unsafe, Scheme::Perspective] {
        let fast = run_retbleed_core(scheme, KernelConfig::test_small(), 0x5A, fast_cfg);
        let slow = run_retbleed_core(scheme, KernelConfig::test_small(), 0x5A, slow_cfg);
        assert_same(fast, slow, "retbleed");
    }
}

#[test]
fn bhi_verdicts_are_identical() {
    let (fast_cfg, slow_cfg) = pair();
    for scheme in [Scheme::Unsafe, Scheme::Perspective] {
        let fast = run_bhi_core(scheme, KernelConfig::test_small(), 0x77, fast_cfg);
        let slow = run_bhi_core(scheme, KernelConfig::test_small(), 0x77, slow_cfg);
        assert_same(fast, slow, "bhi");
    }
}
