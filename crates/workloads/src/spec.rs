//! Workload specifications: syscall step sequences compiled into µISA
//! user programs.

use persp_kernel::syscalls::Sysno;
use persp_uarch::isa::{
    AluOp, Assembler, Cond, Inst, Reg, REG_ARG0, REG_ARG1, REG_ARG2, REG_SYSNO,
};
use std::collections::BTreeSet;

/// A syscall argument value, resolved against the process's data window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgVal {
    /// A literal.
    Imm(u64),
    /// `user_data_base + offset` (a pointer into the process's memory).
    Buf(u64),
}

impl ArgVal {
    fn resolve(self, data_base: u64) -> u64 {
        match self {
            ArgVal::Imm(v) => v,
            ArgVal::Buf(off) => data_base + off,
        }
    }
}

/// One syscall invocation within a workload iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallStep {
    /// The syscall.
    pub sys: Sysno,
    /// `r10`.
    pub arg0: ArgVal,
    /// `r11`.
    pub arg1: ArgVal,
    /// `r12`.
    pub arg2: ArgVal,
}

impl SyscallStep {
    /// A step with immediate arguments `(arg0, len)` and the standard
    /// buffer pointer in `arg1`.
    pub fn new(sys: Sysno, arg0: u64, arg2: u64) -> Self {
        SyscallStep {
            sys,
            arg0: ArgVal::Imm(arg0),
            arg1: ArgVal::Buf(0x2000),
            arg2: ArgVal::Imm(arg2),
        }
    }
}

/// A workload: named sequence of steps repeated `iters` times with
/// optional user-mode compute between iterations.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// Steps executed once at startup (socket setup, mapping the heap,
    /// loading configuration — the part of a real binary's syscall
    /// profile that static analysis must also cover).
    pub startup_steps: Vec<SyscallStep>,
    /// Steps of one iteration.
    pub steps: Vec<SyscallStep>,
    /// Iterations per run.
    pub iters: u64,
    /// User-mode ALU-loop iterations per workload iteration (models
    /// application compute; calibrates the kernel-time fraction).
    pub user_work: u64,
}

impl Workload {
    /// The distinct syscalls this workload uses — its seccomp-style
    /// profile, the input to static ISV generation.
    pub fn syscall_profile(&self) -> Vec<Sysno> {
        let set: BTreeSet<Sysno> = self
            .startup_steps
            .iter()
            .chain(&self.steps)
            .map(|s| s.sys)
            .collect();
        set.into_iter().collect()
    }

    /// Compile into a µISA program at `base`, with buffers resolved
    /// against `data_base`. Register use: `r6` iteration counter, `r7`
    /// bound, `r8` user-work counter.
    pub fn compile(&self, base: u64, data_base: u64) -> Vec<(u64, Inst)> {
        const CTR: Reg = 6;
        const BOUND: Reg = 7;
        const WORK: Reg = 8;
        let mut asm = Assembler::new(base);
        for step in &self.startup_steps {
            asm.movi(REG_ARG0, step.arg0.resolve(data_base));
            asm.movi(REG_ARG1, step.arg1.resolve(data_base));
            asm.movi(REG_ARG2, step.arg2.resolve(data_base));
            asm.movi(REG_SYSNO, step.sys as u16 as u64);
            asm.push(Inst::Syscall);
        }
        asm.movi(CTR, 0);
        asm.movi(BOUND, self.iters);
        let loop_top = asm.here();
        if self.user_work > 0 {
            asm.movi(WORK, self.user_work);
            let wtop = asm.here();
            asm.alui(AluOp::Sub, WORK, WORK, 1);
            asm.branch_to(Cond::Ne, WORK, 0, wtop);
        }
        for step in &self.steps {
            asm.movi(REG_ARG0, step.arg0.resolve(data_base));
            asm.movi(REG_ARG1, step.arg1.resolve(data_base));
            asm.movi(REG_ARG2, step.arg2.resolve(data_base));
            asm.movi(REG_SYSNO, step.sys as u16 as u64);
            asm.push(Inst::Syscall);
        }
        asm.alui(AluOp::Add, CTR, CTR, 1);
        asm.branch_to(Cond::Ltu, CTR, BOUND, loop_top);
        asm.push(Inst::Halt);
        asm.finish()
    }

    /// Total syscalls one run performs.
    pub fn total_syscalls(&self) -> u64 {
        self.startup_steps.len() as u64 + self.iters * self.steps.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload {
            name: "sample",
            startup_steps: vec![SyscallStep::new(Sysno::Open, 0, 0)],
            steps: vec![
                SyscallStep::new(Sysno::Read, 3, 8),
                SyscallStep::new(Sysno::Write, 3, 8),
            ],
            iters: 5,
            user_work: 10,
        }
    }

    #[test]
    fn profile_is_sorted_and_deduped() {
        let mut w = sample();
        w.steps.push(SyscallStep::new(Sysno::Read, 3, 8));
        assert_eq!(
            w.syscall_profile(),
            vec![Sysno::Read, Sysno::Write, Sysno::Open],
            "ordered by syscall number"
        );
    }

    #[test]
    fn compile_emits_syscalls_and_loop() {
        let w = sample();
        let prog = w.compile(0x1000, 0x10_0000);
        let syscalls = prog
            .iter()
            .filter(|(_, i)| matches!(i, Inst::Syscall))
            .count();
        assert_eq!(syscalls, 3, "one static site per step + startup");
        assert!(matches!(prog.last().unwrap().1, Inst::Halt));
        assert_eq!(w.total_syscalls(), 11);
    }

    #[test]
    fn buffer_args_resolve_against_data_base() {
        let s = SyscallStep::new(Sysno::Read, 1, 2);
        assert_eq!(s.arg1.resolve(0x5000), 0x7000);
        assert_eq!(ArgVal::Imm(9).resolve(0x5000), 9);
    }
}
