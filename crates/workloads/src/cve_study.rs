//! The systematic study of transient execution vulnerabilities in the
//! Linux kernel — Table 4.1 of the paper.
//!
//! Nine vulnerability classes across two attack primitives (unauthorized
//! speculative data access à la Spectre v1, and speculative control-flow
//! hijacking à la Spectre v2/RSB), annotated with whether each arises
//! from an insufficient or misused mitigation.

use perspective::taxonomy::Scenario;

/// The attack primitive a vulnerability class enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Unauthorized speculative data access (Spectre v1-like).
    SpeculativeDataAccess,
    /// Speculative control-flow hijacking (Spectre v2, RSB, and more).
    ControlFlowHijack,
}

impl Primitive {
    /// Table 4.1's first-column label.
    pub fn label(self) -> &'static str {
        match self {
            Primitive::SpeculativeDataAccess => "Unauthorized speculative data access (Spectre v1)",
            Primitive::ControlFlowHijack => {
                "Speculative control-flow hijacking (Spectre v2, Spectre RSB, and more)"
            }
        }
    }
}

/// Why the vulnerability exists despite deployed mitigations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationGap {
    /// No prior mitigation applied (new gadget).
    None,
    /// Hardware mitigation proved insufficient.
    InsufficientHardware,
    /// Software mitigation proved insufficient.
    InsufficientSoftware,
    /// A mitigation existed but was misused / misconfigured.
    Misuse,
}

impl MitigationGap {
    /// Table 4.1's second-column label.
    pub fn label(self) -> &'static str {
        match self {
            MitigationGap::None => "n/a",
            MitigationGap::InsufficientHardware => "Hardware",
            MitigationGap::InsufficientSoftware => "Software",
            MitigationGap::Misuse => "Misuse",
        }
    }
}

/// One row of Table 4.1.
#[derive(Debug, Clone)]
pub struct CveRow {
    /// Row number in the paper.
    pub row: u8,
    /// Attack primitive enabled.
    pub primitive: Primitive,
    /// Mitigation gap.
    pub gap: MitigationGap,
    /// CVE identifiers / papers.
    pub references: &'static [&'static str],
    /// Description.
    pub description: &'static str,
    /// Where in the kernel the vulnerability originates.
    pub origin: &'static str,
}

impl CveRow {
    /// Which taxonomy scenarios this primitive can serve as a building
    /// block for. Data-access primitives drive active attacks directly;
    /// hijack primitives are the passive-attack enabler, and can also
    /// assist active ones.
    pub fn scenarios(&self) -> &'static [Scenario] {
        match self.primitive {
            Primitive::SpeculativeDataAccess => &[Scenario::Active],
            Primitive::ControlFlowHijack => &[Scenario::Active, Scenario::Passive],
        }
    }
}

/// The full Table 4.1 dataset.
pub fn table_4_1() -> Vec<CveRow> {
    vec![
        CveRow {
            row: 1,
            primitive: Primitive::SpeculativeDataAccess,
            gap: MitigationGap::None,
            references: &["CVE-2022-27223"],
            description: "Array index is not validated",
            origin: "Xilinx USB Driver",
        },
        CveRow {
            row: 2,
            primitive: Primitive::SpeculativeDataAccess,
            gap: MitigationGap::Misuse,
            references: &["CVE-2019-15902"],
            description: "Reintroduced Spectre vulnerabilities in backporting",
            origin: "ptrace",
        },
        CveRow {
            row: 3,
            primitive: Primitive::SpeculativeDataAccess,
            gap: MitigationGap::None,
            references: &[
                "CVE-2021-31829",
                "CVE-2019-7308",
                "CVE-2020-27170",
                "CVE-2020-27171",
                "CVE-2021-29155",
            ],
            description: "Out-of-bounds speculation on pointer arithmetic",
            origin: "eBPF verifier",
        },
        CveRow {
            row: 4,
            primitive: Primitive::SpeculativeDataAccess,
            gap: MitigationGap::None,
            references: &["CVE-2021-33624", "Kirzner & Morrison, USENIX Sec'21"],
            description: "Speculative type confusion",
            origin: "eBPF verifier",
        },
        CveRow {
            row: 5,
            primitive: Primitive::ControlFlowHijack,
            gap: MitigationGap::InsufficientHardware,
            references: &[
                "CVE-2022-0001",
                "CVE-2022-0002",
                "CVE-2022-23960",
                "BHI, USENIX Sec'22",
            ],
            description: "Branch history injection",
            origin: "Indirect calls and jumps",
        },
        CveRow {
            row: 6,
            primitive: Primitive::ControlFlowHijack,
            gap: MitigationGap::InsufficientSoftware,
            references: &["CVE-2021-26401"],
            description: "LFENCE/JMP is insufficient on AMD",
            origin: "Indirect calls and jumps",
        },
        CveRow {
            row: 7,
            primitive: Primitive::ControlFlowHijack,
            gap: MitigationGap::InsufficientSoftware,
            references: &[
                "CVE-2022-29900",
                "CVE-2022-29901",
                "Retbleed, USENIX Sec'22",
            ],
            description: "Retbleed",
            origin: "Retpoline",
        },
        CveRow {
            row: 8,
            primitive: Primitive::ControlFlowHijack,
            gap: MitigationGap::Misuse,
            references: &["CVE-2022-2196"],
            description: "Missing retpolines or IBPB",
            origin: "KVM",
        },
        CveRow {
            row: 9,
            primitive: Primitive::ControlFlowHijack,
            gap: MitigationGap::Misuse,
            references: &[
                "CVE-2019-18660",
                "CVE-2020-10767",
                "CVE-2022-23824",
                "CVE-2023-1998",
            ],
            description: "Improper use of hardware mitigations",
            origin: "Indirect calls and jumps",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_rows_in_order() {
        let t = table_4_1();
        assert_eq!(t.len(), 9);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(usize::from(r.row), i + 1);
            assert!(!r.references.is_empty());
            assert!(!r.description.is_empty());
        }
    }

    #[test]
    fn primitive_split_matches_the_paper() {
        let t = table_4_1();
        let data = t
            .iter()
            .filter(|r| r.primitive == Primitive::SpeculativeDataAccess)
            .count();
        let hijack = t
            .iter()
            .filter(|r| r.primitive == Primitive::ControlFlowHijack)
            .count();
        assert_eq!(data, 4, "rows 1-4");
        assert_eq!(hijack, 5, "rows 5-9");
    }

    #[test]
    fn hijack_primitives_enable_passive_attacks() {
        for r in table_4_1() {
            match r.primitive {
                Primitive::SpeculativeDataAccess => {
                    assert_eq!(r.scenarios(), &[Scenario::Active]);
                }
                Primitive::ControlFlowHijack => {
                    assert!(r.scenarios().contains(&Scenario::Passive));
                }
            }
        }
    }

    #[test]
    fn labels_are_printable() {
        for r in table_4_1() {
            assert!(!r.primitive.label().is_empty());
            assert!(!r.gap.label().is_empty());
        }
    }
}
