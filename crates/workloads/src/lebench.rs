//! The LEBench microbenchmark suite (Ren et al., SOSP'19), as used in
//! Figure 9.2: per-syscall latency microbenchmarks covering the kernel
//! operations that dominate Linux workloads.

use crate::spec::{ArgVal, SyscallStep, Workload};
use persp_kernel::syscalls::Sysno;

fn step(sys: Sysno, arg0: u64, arg2: u64) -> SyscallStep {
    SyscallStep::new(sys, arg0, arg2)
}

/// The LEBench tests, in the paper's figure order. Iteration counts are
/// scaled for simulation (relative latencies are what Figure 9.2 reports).
pub fn suite() -> Vec<Workload> {
    let w = |name, steps: Vec<SyscallStep>, iters| Workload {
        name,
        startup_steps: Vec::new(),
        steps,
        iters,
        user_work: 0,
    };
    vec![
        w("getpid", vec![step(Sysno::Getpid, 0, 0)], 40),
        w("context-switch", vec![step(Sysno::SchedYield, 0, 0)], 40),
        w("send", vec![step(Sysno::Send, 3, 16)], 30),
        w("recv", vec![step(Sysno::Recv, 3, 16)], 30),
        w("select", vec![step(Sysno::Select, 128, 0)], 15),
        w("poll", vec![step(Sysno::Poll, 128, 0)], 15),
        w("epoll", vec![step(Sysno::EpollWait, 128, 0)], 15),
        w("small-read", vec![step(Sysno::Read, 3, 8)], 30),
        w("big-read", vec![step(Sysno::Read, 3, 384)], 8),
        w("small-write", vec![step(Sysno::Write, 3, 8)], 30),
        w("big-write", vec![step(Sysno::Write, 3, 384)], 8),
        w("mmap", vec![step(Sysno::Mmap, 16, 0)], 20),
        w(
            "munmap",
            vec![step(Sysno::Mmap, 4, 0), step(Sysno::Munmap, 0, 0)],
            20,
        ),
        w("brk", vec![step(Sysno::Brk, 0, 0)], 30),
        w("page-fault", vec![step(Sysno::PageFault, 0, 0)], 30),
        w("fork", vec![step(Sysno::Fork, 0, 0)], 8),
        w("big-fork", vec![step(Sysno::Fork, 64, 0)], 8),
        w("thread-create", vec![step(Sysno::Clone, 0, 0)], 15),
    ]
}

/// Look up one test by name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

/// The union syscall profile of the whole suite (used for the Table 8.1
/// "LEBench" column).
pub fn union_profile() -> Vec<Sysno> {
    let mut set = std::collections::BTreeSet::new();
    for w in suite() {
        set.extend(w.syscall_profile());
    }
    set.into_iter().collect()
}

/// Sanity: LEBench buffers point at real user memory.
pub fn buffer_args_are_buffers() -> bool {
    suite()
        .iter()
        .flat_map(|w| &w.steps)
        .all(|s| matches!(s.arg1, ArgVal::Buf(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape() {
        let s = suite();
        assert_eq!(s.len(), 18, "LEBench coverage");
        let mut names: Vec<&str> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "unique names");
        assert!(s.iter().all(|w| w.iters > 0 && !w.steps.is_empty()));
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("select").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn union_profile_covers_many_syscalls() {
        let p = union_profile();
        assert!(p.len() >= 12, "{p:?}");
        assert!(p.contains(&Sysno::Select));
        assert!(p.contains(&Sysno::Fork));
    }

    #[test]
    fn buffers_are_buffers() {
        assert!(buffer_args_are_buffers());
    }
}
