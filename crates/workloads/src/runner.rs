//! The measurement harness: builds a simulated machine for a scheme, runs
//! a workload's warmup + region of interest, and collects every statistic
//! the evaluation chapters report.
//!
//! Protocol per (scheme, workload):
//!
//! 1. build kernel + process; for Perspective schemes the framework's
//!    sink is wired into the allocators;
//! 2. **warmup run** with call tracing enabled — this is both the cache/
//!    predictor warmup and, for the PERSPECTIVE scheme, the dynamic-ISV
//!    profiling run (§5.3's kernel-level tracing);
//! 3. install the scheme's ISV (static from the declared syscall profile,
//!    dynamic from the trace, ISV++ hardened with a bounded scan);
//! 4. **ROI run**, measured as a statistics delta (LEBench methodology).

use crate::memo;
use crate::spec::Workload;
use persp_kernel::callgraph::{CallGraph, FuncId, KernelConfig};
use persp_kernel::kernel::{Kernel, KernelImage, SharedKernel};
use persp_kernel::layout;
use persp_kernel::sink::NullSink;
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_scanner::scanner::scan_bounded;
use persp_uarch::config::CoreConfig;
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::Core;
use persp_uarch::stats::SimStats;
use persp_uarch::{Asid, MetricsRegistry, MetricsSource};
use perspective::framework::Perspective;
use perspective::hwcache::HwCacheStats;
use perspective::isv::Isv;
use perspective::policy::{FenceBreakdown, PerspectiveConfig, PerspectivePolicy};
use perspective::scheme::Scheme;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One measured region of interest.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Scheme measured.
    pub scheme: Scheme,
    /// Workload name.
    pub workload: &'static str,
    /// Statistics delta over the ROI.
    pub stats: SimStats,
    /// Perspective fence attribution (ISV/DSV/unknown), when applicable.
    pub fences: Option<FenceBreakdown>,
    /// ISV-cache statistics, when applicable.
    pub isv_cache: Option<HwCacheStats>,
    /// DSVMT-cache statistics, when applicable.
    pub dsvmt_cache: Option<HwCacheStats>,
    /// Functions in the installed ISV (for Table 8.1), when applicable.
    pub isv_funcs: Option<usize>,
    /// Named counters from every layer (pipeline, policy, hardware
    /// caches, kernel allocators) — the machine-readable form of the
    /// measurement, keyed by dotted names (`"sim.stall.vp_wait"`,
    /// `"kernel.slab.page_frees"`, ...).
    pub metrics: MetricsRegistry,
}

impl Measurement {
    /// ROI cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Requests (or iterations) per second at the configured frequency.
    pub fn rps(&self, requests: u64, freq_ghz: f64) -> f64 {
        requests as f64 * freq_ghz * 1e9 / self.stats.cycles.max(1) as f64
    }
}

/// A simulated machine instance for one scheme.
pub struct SimInstance {
    /// The core.
    pub core: Core,
    /// The kernel handle.
    pub kernel: SharedKernel,
    /// The framework (Perspective schemes only).
    pub perspective: Option<Perspective>,
    /// The workload process.
    pub asid: Asid,
    /// The scheme.
    pub scheme: Scheme,
}

impl SimInstance {
    /// Build an instance with a single workload process (cgroup 1).
    pub fn new(scheme: Scheme, kcfg: KernelConfig) -> Self {
        Self::with_config(scheme, kcfg, PerspectiveConfig::default())
    }

    /// Build with an explicit Perspective configuration (for the §9.2
    /// ablations, e.g. disabling unknown-allocation blocking).
    pub fn with_config(scheme: Scheme, kcfg: KernelConfig, pcfg: PerspectiveConfig) -> Self {
        Self::from_image_cfg(scheme, &KernelImage::build(kcfg), pcfg)
    }

    /// Build an instance from a pre-generated kernel image (cgroup 1).
    pub fn from_image(scheme: Scheme, image: &KernelImage) -> Self {
        Self::from_image_cfg(scheme, image, PerspectiveConfig::default())
    }

    /// [`SimInstance::from_image`] with an explicit Perspective
    /// configuration. The image's call graph and text are shared, not
    /// regenerated — this is the constructor the parallel experiment
    /// matrix uses for every cell. The core configuration is taken from
    /// the environment ([`core_config_from_env`]).
    pub fn from_image_cfg(scheme: Scheme, image: &KernelImage, pcfg: PerspectiveConfig) -> Self {
        Self::from_image_core(scheme, image, pcfg, core_config_from_env())
    }

    /// [`SimInstance::from_image_cfg`] with an explicit core
    /// configuration — the environment-free entry point; the fast-vs-slow
    /// differential harness drives this directly instead of mutating
    /// `PERSPECTIVE_NO_FASTFWD`.
    pub fn from_image_core(
        scheme: Scheme,
        image: &KernelImage,
        pcfg: PerspectiveConfig,
        core_cfg: CoreConfig,
    ) -> Self {
        let perspective = scheme.is_perspective().then(Perspective::new);
        let kernel = match &perspective {
            Some(p) => Kernel::from_image(image, p.sink()),
            None => Kernel::from_image(image, Rc::new(RefCell::new(NullSink))),
        };
        let shared = SharedKernel::new(kernel);
        let mut machine = Machine::new();
        shared.borrow().install(&mut machine);
        let pid = shared.borrow_mut().create_process(1, &mut machine);
        let asid = pid as Asid;
        shared.borrow().set_current(asid, &mut machine);
        let policy: Box<dyn persp_uarch::policy::SpecPolicy> = match &perspective {
            Some(p) => Box::new(p.policy(pcfg)),
            None => scheme.build_policy(None),
        };
        let core = Core::new(
            core_cfg,
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            policy,
            Box::new(shared.clone()),
        );
        SimInstance {
            core,
            kernel: shared,
            perspective,
            asid,
            scheme,
        }
    }

    /// Build an *instrumented* instance for the SNI checker: the
    /// Perspective framework's allocation sink is wired into the kernel
    /// even for baseline schemes (whose policies ignore it), so the
    /// ground-truth oracle has ownership metadata to judge every scheme
    /// against. `perspective` is therefore always `Some`. The policy is
    /// passed through `wrap` before entering the core — the hook the
    /// fault injector uses.
    pub fn instrumented(
        scheme: Scheme,
        image: &KernelImage,
        pcfg: PerspectiveConfig,
        wrap: impl FnOnce(
            Box<dyn persp_uarch::policy::SpecPolicy>,
            &Perspective,
        ) -> Box<dyn persp_uarch::policy::SpecPolicy>,
    ) -> Self {
        let perspective = Perspective::new();
        let kernel = Kernel::from_image(image, perspective.sink());
        let shared = SharedKernel::new(kernel);
        let mut machine = Machine::new();
        shared.borrow().install(&mut machine);
        let pid = shared.borrow_mut().create_process(1, &mut machine);
        let asid = pid as Asid;
        shared.borrow().set_current(asid, &mut machine);
        let policy: Box<dyn persp_uarch::policy::SpecPolicy> = if scheme.is_perspective() {
            Box::new(perspective.policy(pcfg))
        } else {
            scheme.build_policy(None)
        };
        let core = Core::new(
            core_config_from_env(),
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            wrap(policy, &perspective),
            Box::new(shared.clone()),
        );
        SimInstance {
            core,
            kernel: shared,
            perspective: Some(perspective),
            asid,
            scheme,
        }
    }

    /// User text base of the workload process.
    pub fn text_base(&self) -> u64 {
        layout::user_text_base(u32::from(self.asid))
    }

    /// User data base of the workload process.
    pub fn data_base(&self) -> u64 {
        layout::user_data_base(u32::from(self.asid))
    }

    fn with_policy<R>(&mut self, f: impl FnOnce(&mut PerspectivePolicy) -> R) -> Option<R> {
        self.core
            .policy_mut()
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<PerspectivePolicy>())
            .map(f)
    }

    fn policy_view<R>(&self, f: impl FnOnce(&PerspectivePolicy) -> R) -> Option<R> {
        self.core
            .policy()
            .as_any()
            .and_then(|a| a.downcast_ref::<PerspectivePolicy>())
            .map(f)
    }
}

/// Collect the named-counter registry for a finished ROI: the stats
/// delta under `"sim"`, the Perspective policy (fence attribution,
/// decision counters, metadata-cache hit rates) under `"policy"`, and
/// the kernel allocators under `"kernel"`.
fn collect_metrics(instance: &SimInstance, stats: &SimStats) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    stats.export_metrics("sim", &mut reg);
    instance.policy_view(|p| p.export_metrics("policy", &mut reg));
    instance.kernel.borrow().export_metrics("kernel", &mut reg);
    reg
}

/// Resolve a raw call trace (committed call-target VAs) to the set of
/// traced kernel functions. One dense-map probe per distinct VA; the
/// result feeds [`Isv::dynamic_from_funcs`] without further VA decoding.
pub fn trace_to_funcs(graph: &CallGraph, trace: &HashSet<u64>) -> HashSet<FuncId> {
    trace
        .iter()
        .filter_map(|&va| graph.func_of_va(va))
        .collect()
}

/// The per-scheme ISV used for a workload: static from the declared
/// profile, dynamic from the warmup trace, ISV++ audit-hardened.
pub(crate) fn build_isv(
    instance: &SimInstance,
    workload: &Workload,
    trace: &HashSet<FuncId>,
) -> Option<Isv> {
    let kernel = instance.kernel.borrow();
    let graph = &kernel.graph;
    match instance.scheme {
        Scheme::PerspectiveStatic => Some(Isv::static_for(graph, &workload.syscall_profile())),
        Scheme::Perspective => Some(Isv::dynamic_from_funcs(graph, trace.clone())),
        Scheme::PerspectivePlusPlus => {
            let dynamic = Isv::dynamic_from_funcs(graph, trace.clone());
            let report = scan_bounded(graph, dynamic.funcs(), |pc| {
                instance.core.machine.inst_at(pc)
            });
            Some(dynamic.hardened_with_audit(graph, report.flagged_functions()))
        }
        _ => None,
    }
}

/// Run the full measurement protocol for one (scheme, workload) pair.
///
/// # Panics
///
/// Panics if the simulation errors (generated workloads are well-formed,
/// so an error is a harness bug).
pub fn measure(scheme: Scheme, kcfg: KernelConfig, workload: &Workload) -> Measurement {
    measure_cfg(scheme, kcfg, workload, PerspectiveConfig::default())
}

/// [`measure`] with an explicit Perspective configuration (§9.2 ablations).
pub fn measure_cfg(
    scheme: Scheme,
    kcfg: KernelConfig,
    workload: &Workload,
    pcfg: PerspectiveConfig,
) -> Measurement {
    measure_image_cfg(scheme, &KernelImage::build(kcfg), workload, pcfg)
}

/// [`measure`] against a pre-generated kernel image.
pub fn measure_image(scheme: Scheme, image: &KernelImage, workload: &Workload) -> Measurement {
    measure_image_cfg(scheme, image, workload, PerspectiveConfig::default())
}

/// [`measure_cfg`] against a pre-generated kernel image.
///
/// # Panics
///
/// Panics if the simulation errors; use [`try_measure_image_cfg`] for a
/// harness that must degrade gracefully (e.g. under fault injection).
pub fn measure_image_cfg(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
    pcfg: PerspectiveConfig,
) -> Measurement {
    try_measure_image_cfg(scheme, image, workload, pcfg)
        .unwrap_or_else(|e| panic!("measuring {} under {scheme} failed: {e}", workload.name))
}

/// [`measure_image_cfg`] that reports simulation failures as `Err`
/// instead of panicking — a run that dies mid-ROI (a corrupted policy,
/// an injected fault cascading into a machine error) comes back as a
/// describable failure the caller can record.
pub fn try_measure_image_cfg(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
    pcfg: PerspectiveConfig,
) -> Result<Measurement, String> {
    try_measure_image_full(scheme, image, workload, pcfg, core_config_from_env())
}

/// [`try_measure_image_cfg`] with an explicit core configuration — the
/// environment-free entry point used by the fast-vs-slow differential
/// harness ([`crate::differential`]) to run the identical measurement
/// protocol under both stepping modes.
///
/// All simulated experiment cells funnel through here, so this is where
/// the content-addressed cell cache ([`crate::memo`]) is consulted:
/// under `PERSPECTIVE_CACHE=on|verify` a cell whose complete input
/// fingerprint matches a stored entry is served from (or verified
/// against) disk. With the cache off — the default — behavior is
/// unchanged.
pub fn try_measure_image_full(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
    pcfg: PerspectiveConfig,
    core_cfg: CoreConfig,
) -> Result<Measurement, String> {
    memo::cached_measure(
        &memo::CacheConfig::from_env(),
        memo::Protocol::Standard,
        scheme,
        &image.cfg,
        &pcfg,
        &core_cfg,
        workload,
        || measure_image_uncached(scheme, image, workload, pcfg, core_cfg),
    )
}

/// The actual measurement protocol behind [`try_measure_image_full`],
/// always simulating (never consulting the cell cache). The verify-mode
/// recomputation and the cache's own tests call this directly.
pub fn measure_image_uncached(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
    pcfg: PerspectiveConfig,
    core_cfg: CoreConfig,
) -> Result<Measurement, String> {
    let mut instance = SimInstance::from_image_core(scheme, image, pcfg, core_cfg);
    let text = instance.text_base();
    let data = instance.data_base();

    // Warmup + dynamic-ISV profiling run.
    let warm_prog = workload.compile(text, data);
    instance.core.machine.load_text(warm_prog);
    instance.core.enable_call_trace();
    instance
        .core
        .run(text, 80_000_000)
        .map_err(|e| format!("warmup of {} under {scheme} failed: {e}", workload.name))?;
    let raw_trace = instance.core.take_call_trace();
    let trace = trace_to_funcs(&image.graph, &raw_trace);

    // Install the scheme's view.
    let isv = build_isv(&instance, workload, &trace);
    let isv_funcs = isv.as_ref().map(|v| v.num_funcs());
    if let (Some(p), Some(view)) = (&instance.perspective, isv) {
        p.install_isv(instance.asid, view);
    }

    // Reset measurement state.
    instance.core.policy_mut().reset_counters();
    instance.with_policy(|p| p.reset_measurement());

    // Region of interest (same program, measured as a delta).
    let before = instance.core.stats();
    instance
        .core
        .run(text, 80_000_000)
        .map_err(|e| format!("ROI of {} under {scheme} failed: {e}", workload.name))?;
    let stats = instance.core.stats().delta_since(&before);

    Ok(Measurement {
        scheme,
        workload: workload.name,
        stats,
        fences: instance.policy_view(|p| p.fence_breakdown()),
        isv_cache: instance.policy_view(|p| p.isv_cache_stats()),
        dsvmt_cache: instance.policy_view(|p| p.dsvmt_cache_stats()),
        isv_funcs,
        metrics: collect_metrics(&instance, &stats),
    })
}

/// [`measure`] under per-syscall ISV enforcement (§11 future work): a
/// static per-syscall view is installed for every syscall in the
/// workload's profile and the policy switches views at dispatch,
/// flushing the ISV cache on each switch. Only meaningful for
/// Perspective schemes.
pub fn measure_per_syscall(scheme: Scheme, kcfg: KernelConfig, workload: &Workload) -> Measurement {
    measure_per_syscall_image(scheme, &KernelImage::build(kcfg), workload)
}

/// [`measure_per_syscall`] against a pre-generated kernel image.
///
/// # Panics
///
/// Panics if the simulation errors; use
/// [`try_measure_per_syscall_image`] for graceful degradation.
pub fn measure_per_syscall_image(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
) -> Measurement {
    try_measure_per_syscall_image(scheme, image, workload)
        .unwrap_or_else(|e| panic!("measuring {} under {scheme} failed: {e}", workload.name))
}

/// [`measure_per_syscall_image`] that reports simulation failures as
/// `Err` instead of panicking. Cells are memoized under the cell cache
/// with the distinct `per_syscall` protocol tag, so they never alias
/// the standard protocol's entries.
pub fn try_measure_per_syscall_image(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
) -> Result<Measurement, String> {
    let pcfg = PerspectiveConfig {
        per_syscall_isv: true,
        ..PerspectiveConfig::default()
    };
    let core_cfg = core_config_from_env();
    memo::cached_measure(
        &memo::CacheConfig::from_env(),
        memo::Protocol::PerSyscall,
        scheme,
        &image.cfg,
        &pcfg,
        &core_cfg,
        workload,
        || measure_per_syscall_uncached(scheme, image, workload, pcfg, core_cfg),
    )
}

fn measure_per_syscall_uncached(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
    pcfg: PerspectiveConfig,
    core_cfg: CoreConfig,
) -> Result<Measurement, String> {
    let mut instance = SimInstance::from_image_core(scheme, image, pcfg, core_cfg);
    let text = instance.text_base();
    let data = instance.data_base();

    let warm_prog = workload.compile(text, data);
    instance.core.machine.load_text(warm_prog);
    instance
        .core
        .run(text, 80_000_000)
        .map_err(|e| format!("warmup of {} under {scheme} failed: {e}", workload.name))?;

    // One static closure per profile syscall, switched at dispatch.
    let mut total_funcs = 0;
    if let Some(p) = &instance.perspective {
        let kernel = instance.kernel.borrow();
        for &sys in &workload.syscall_profile() {
            let view = Isv::static_for(&kernel.graph, &[sys]);
            total_funcs += view.num_funcs();
            p.install_isv_per_syscall(instance.asid, sys as u16, view);
        }
        drop(kernel);
        // Fallback for code outside any syscall (none in our workloads,
        // but the resolution path requires the process-wide entry).
        let kernel = instance.kernel.borrow();
        let profile = workload.syscall_profile();
        let union = Isv::static_for(&kernel.graph, &profile);
        drop(kernel);
        p.install_isv(instance.asid, union);
    }

    instance.core.policy_mut().reset_counters();
    instance.with_policy(|p| p.reset_measurement());

    let before = instance.core.stats();
    instance
        .core
        .run(text, 80_000_000)
        .map_err(|e| format!("ROI of {} under {scheme} failed: {e}", workload.name))?;
    let stats = instance.core.stats().delta_since(&before);

    Ok(Measurement {
        scheme,
        workload: workload.name,
        stats,
        fences: instance.policy_view(|p| p.fence_breakdown()),
        isv_cache: instance.policy_view(|p| p.isv_cache_stats()),
        dsvmt_cache: instance.policy_view(|p| p.dsvmt_cache_stats()),
        isv_funcs: Some(total_funcs),
        metrics: collect_metrics(&instance, &stats),
    })
}

/// Measure a workload under every scheme in `schemes`; returns
/// measurements in the same order.
pub fn measure_schemes(
    schemes: &[Scheme],
    kcfg: KernelConfig,
    workload: &Workload,
) -> Vec<Measurement> {
    let image = KernelImage::build(kcfg);
    run_parallel(schemes.to_vec(), |s| measure_image(s, &image, workload))
}

/// Core configuration honoring the `PERSPECTIVE_NO_FASTFWD` environment
/// variable: the paper configuration, with the idle-cycle fast-forward
/// disabled when `PERSPECTIVE_NO_FASTFWD=1`. The fast-forward is
/// provably cycle-exact, so the slow path exists for differential
/// validation (`ci.sh` re-runs the experiments under it and diffs the
/// JSON output against the same baselines). `0`, empty, or unset keeps
/// the default; any other value is rejected with a one-line warning on
/// stderr naming the bad value, and the default is used.
pub fn core_config_from_env() -> CoreConfig {
    let mut cfg = CoreConfig::paper_default();
    if let Ok(v) = std::env::var("PERSPECTIVE_NO_FASTFWD") {
        match v.trim() {
            "1" => cfg.idle_fastforward = false,
            "" | "0" => {}
            _ => eprintln!(
                "warning: ignoring invalid PERSPECTIVE_NO_FASTFWD={v:?} \
                 (expected 0 or 1); keeping the fast-forward enabled"
            ),
        }
    }
    cfg
}

/// Worker-pool width: the `PERSPECTIVE_THREADS` environment variable when
/// it parses to a positive integer (accepted range: `1..=usize::MAX`;
/// `1` forces fully serial execution), else the machine's available
/// parallelism. A value that is set but invalid — zero, negative, or
/// not a number — is rejected with a one-line warning on stderr naming
/// the bad value, and the default width is used instead.
pub fn num_threads() -> usize {
    let fallback = std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("PERSPECTIVE_THREADS") {
        Err(_) => fallback,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: ignoring invalid PERSPECTIVE_THREADS={v:?} \
                     (expected an integer >= 1); using {fallback} threads"
                );
                fallback
            }
        },
    }
}

/// Run `f` over `jobs` on a scoped worker pool of `threads` threads.
///
/// Results come back **in job order** — workers pull jobs from a shared
/// atomic cursor, so completion order is nondeterministic, but each
/// result is keyed by its job index and the returned vector is identical
/// to `jobs.into_iter().map(f).collect()` whatever the thread count.
/// A panic in any job propagates to the caller.
pub fn run_parallel_with<T, R>(threads: usize, jobs: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    let workers = threads.min(n);
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(i) else { break };
                        let job = slot.lock().unwrap().take().expect("each job taken once");
                        out.push((i, f(job)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(v) => v,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`run_parallel_with`] at the [`num_threads`] default width.
pub fn run_parallel<T: Send, R: Send>(jobs: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    run_parallel_with(num_threads(), jobs, f)
}

/// Measure every (workload, scheme) cell of an experiment matrix in
/// parallel, sharing one pre-generated kernel image across all workers.
///
/// Results are ordered workload-major and scheme-minor regardless of
/// which worker finishes first: cell `(w, s)` is at index
/// `w * schemes.len() + s`, so `chunks(schemes.len())` yields one
/// per-workload row after another, each in `schemes` order — exactly the
/// sequence the serial per-cell loops produced.
pub fn run_matrix(
    image: &KernelImage,
    schemes: &[Scheme],
    workloads: &[Workload],
) -> Vec<Measurement> {
    run_matrix_with(num_threads(), image, schemes, workloads)
}

/// [`run_matrix`] at an explicit worker-pool width — the environment-free
/// entry point; the determinism tests drive this directly instead of
/// mutating `PERSPECTIVE_THREADS`.
pub fn run_matrix_with(
    threads: usize,
    image: &KernelImage,
    schemes: &[Scheme],
    workloads: &[Workload],
) -> Vec<Measurement> {
    run_matrix_core(threads, image, schemes, workloads, core_config_from_env())
}

/// [`run_matrix_with`] with an explicit core configuration — fully
/// environment-free: the differential determinism tests run the same
/// matrix with the fast-forward on and off at several pool widths and
/// assert identical results, without touching `PERSPECTIVE_NO_FASTFWD`.
///
/// Cells with identical input fingerprints (same scheme *and* same
/// workload content — e.g. a caller passing a duplicated scheme list)
/// are simulated once and the result is cloned into every duplicate
/// position, so the worker pool only ever sees distinct cells. The
/// returned vector is positionally identical to the naive per-cell
/// loop: measurements are pure functions of their cell fingerprint.
pub fn run_matrix_core(
    threads: usize,
    image: &KernelImage,
    schemes: &[Scheme],
    workloads: &[Workload],
    core_cfg: CoreConfig,
) -> Vec<Measurement> {
    let pcfg = PerspectiveConfig::default();
    let mut canon_to_unique: HashMap<String, usize> = HashMap::new();
    let mut cell_unique: Vec<usize> = Vec::with_capacity(workloads.len() * schemes.len());
    let mut unique_jobs: Vec<(usize, usize)> = Vec::new();
    for (w, workload) in workloads.iter().enumerate() {
        for (s, &scheme) in schemes.iter().enumerate() {
            let canonical = memo::canonical_cell(
                memo::Protocol::Standard,
                scheme,
                &image.cfg,
                &pcfg,
                &core_cfg,
                workload,
            );
            let next = unique_jobs.len();
            let idx = *canon_to_unique.entry(canonical).or_insert(next);
            if idx == next {
                unique_jobs.push((w, s));
            }
            cell_unique.push(idx);
        }
    }
    let unique_results = run_parallel_with(threads, unique_jobs, |(w, s)| {
        measure_image_full(schemes[s], image, &workloads[w], core_cfg)
    });
    cell_unique
        .into_iter()
        .map(|i| unique_results[i].clone())
        .collect()
}

/// [`measure_image`] with an explicit core configuration.
///
/// # Panics
///
/// Panics if the simulation errors (generated workloads are well-formed,
/// so an error is a harness bug).
pub fn measure_image_full(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
    core_cfg: CoreConfig,
) -> Measurement {
    try_measure_image_full(
        scheme,
        image,
        workload,
        PerspectiveConfig::default(),
        core_cfg,
    )
    .unwrap_or_else(|e| panic!("measuring {} under {scheme} failed: {e}", workload.name))
}

/// Normalized overhead of `m` versus a baseline measurement.
pub fn overhead(m: &Measurement, baseline: &Measurement) -> f64 {
    m.stats.cycles as f64 / baseline.stats.cycles.max(1) as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lebench;

    fn kcfg() -> KernelConfig {
        KernelConfig::test_small()
    }

    #[test]
    fn getpid_measures_under_all_main_schemes() {
        let w = lebench::by_name("getpid").unwrap();
        let ms = measure_schemes(Scheme::MAIN, kcfg(), &w);
        for m in &ms {
            assert!(m.stats.cycles > 0, "{}: no cycles", m.scheme);
            assert_eq!(m.stats.syscalls, w.total_syscalls());
        }
        // Ordering: UNSAFE fastest, FENCE slowest of the five.
        let unsafe_c = ms[0].stats.cycles;
        let fence_c = ms[1].stats.cycles;
        assert!(fence_c > unsafe_c, "FENCE {fence_c} vs UNSAFE {unsafe_c}");
    }

    #[test]
    fn perspective_measurement_carries_rich_stats() {
        let w = lebench::by_name("small-read").unwrap();
        let m = measure(Scheme::Perspective, kcfg(), &w);
        assert!(m.fences.is_some());
        assert!(m.isv_cache.is_some());
        assert!(m.dsvmt_cache.is_some());
        assert!(m.isv_funcs.unwrap() > 0);
        let isv = m.isv_cache.unwrap();
        assert!(isv.hits + isv.misses > 0, "the ISV cache was exercised");
    }

    #[test]
    fn baseline_measurement_has_no_perspective_stats() {
        let w = lebench::by_name("getpid").unwrap();
        let m = measure(Scheme::Unsafe, kcfg(), &w);
        assert!(m.fences.is_none());
        assert!(m.isv_cache.is_none());
    }

    #[test]
    fn dynamic_isv_is_smaller_than_static() {
        let w = lebench::by_name("small-read").unwrap();
        let m_static = measure(Scheme::PerspectiveStatic, kcfg(), &w);
        let m_dyn = measure(Scheme::Perspective, kcfg(), &w);
        assert!(
            m_dyn.isv_funcs.unwrap() < m_static.isv_funcs.unwrap(),
            "dynamic {} vs static {}",
            m_dyn.isv_funcs.unwrap(),
            m_static.isv_funcs.unwrap()
        );
    }

    #[test]
    fn fence_overhead_exceeds_perspective_overhead_on_select() {
        let w = lebench::by_name("select").unwrap();
        let ms = measure_schemes(
            &[Scheme::Unsafe, Scheme::Fence, Scheme::Perspective],
            kcfg(),
            &w,
        );
        let fence_ov = overhead(&ms[1], &ms[0]);
        let persp_ov = overhead(&ms[2], &ms[0]);
        assert!(
            fence_ov > persp_ov,
            "FENCE {fence_ov:.3} must cost more than Perspective {persp_ov:.3}"
        );
        assert!(fence_ov > 0.10, "select is FENCE's bad case: {fence_ov:.3}");
    }

    #[test]
    fn stall_attribution_partitions_roi_stall_cycles() {
        let w = lebench::by_name("getpid").unwrap();
        let ms = measure_schemes(
            &[Scheme::Unsafe, Scheme::Fence, Scheme::Perspective],
            kcfg(),
            &w,
        );
        for m in &ms {
            assert_eq!(
                m.stats.stalls.total(),
                m.stats.stall_cycles,
                "{}: stall classes must partition the stall cycles",
                m.scheme
            );
            assert_eq!(
                m.metrics.get("sim.stall_cycles"),
                Some(m.stats.stall_cycles)
            );
            assert_eq!(m.metrics.get("sim.cycles"), Some(m.stats.cycles));
        }
        // Perspective measurements also export policy and kernel layers.
        let persp = &ms[2];
        assert!(persp.metrics.get("policy.fences.isv").is_some());
        assert!(persp.metrics.get("kernel.slab.object_allocs").is_some());
        // Baselines have no policy layer but still export the kernel.
        assert!(ms[0].metrics.get("policy.fences.isv").is_none());
        assert!(ms[0].metrics.get("kernel.buddy.allocs").is_some());
    }

    #[test]
    fn rps_conversion() {
        let w = lebench::by_name("getpid").unwrap();
        let m = measure(Scheme::Unsafe, kcfg(), &w);
        let rps = m.rps(100, 2.0);
        assert!(rps > 0.0);
        assert!((m.rps(200, 2.0) / rps - 2.0).abs() < 1e-9);
    }
}
