//! Machine-readable measurement output: a minimal JSON value, writer and
//! parser built on `std` alone (the workspace is offline — no serde).
//!
//! This module started life as `persp_bench::report`; it lives here so
//! the simulation-memoization layer ([`crate::memo`]) can serialize full
//! [`Measurement`]s without a `persp-bench → persp-workloads` dependency
//! cycle. `persp_bench::report` re-exports everything, so the experiment
//! binaries keep their import paths.
//!
//! Every experiment binary accepts `--json` and serializes its
//! measurement rows plus the per-measurement [`MetricsRegistry`] through
//! this module. Two invariants keep the output diff-able:
//!
//! * **Determinism** — objects preserve insertion order, registries are
//!   name-ordered, and nothing derived from wall-clock time is ever
//!   emitted; the same experiment at any `PERSPECTIVE_THREADS` width
//!   renders byte-identically.
//! * **Integers and strings only** — raw counters stay `u64`; derived
//!   ratios are pre-formatted strings (`norm()`/`pct()` in
//!   `persp_bench`), so no float formatting ambiguity can creep into
//!   the byte stream.

use crate::runner::Measurement;
use persp_uarch::stats::{SimStats, SniCounters, StallBreakdown};
use persp_uarch::MetricsRegistry;
use perspective::hwcache::HwCacheStats;
use perspective::policy::FenceBreakdown;
use perspective::scheme::Scheme;
use std::fmt::Write as _;

/// A JSON value. Arrays and objects own their children; object keys
/// keep insertion order so rendering is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all raw counters are `u64`).
    UInt(u64),
    /// A negative integer (the parser needs it for round-trips).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the subset this module writes: null, bools,
    /// integers, strings with `\uXXXX` escapes, arrays, objects).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

/// Maximum container nesting the parser accepts. Our own documents nest
/// a handful of levels; the bound turns adversarial `[[[[...` input into
/// an `Err` instead of a recursion-driven stack overflow.
const MAX_DEPTH: usize = 128;

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'-') => {
            let start = *pos;
            *pos += 1;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|e| format!("invalid utf-8 in number at byte {start}: {e}"))?;
            s.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad integer {s:?}: {e}"))
        }
        Some(b'0'..=b'9') => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|e| format!("invalid utf-8 in number at byte {start}: {e}"))?;
            s.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| format!("bad integer {s:?}: {e}"))
        }
        Some(&b) => Err(format!("unexpected {:?} at byte {}", b as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or(format!("bad codepoint {code:#x}"))?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing at
                // the next boundary is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| format!("unterminated string at byte {pos}", pos = *pos))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Was `--json` passed on the command line?
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// The kernel scale tag recorded in every JSON document (`"small"` under
/// `PERSPECTIVE_KERNEL=small`, `"paper"` otherwise).
pub fn kernel_tag() -> &'static str {
    match std::env::var("PERSPECTIVE_KERNEL").as_deref() {
        Ok("small") => "small",
        _ => "paper",
    }
}

/// A [`MetricsRegistry`] as a JSON object (name-ordered, all `u64`).
pub fn registry_json(reg: &MetricsRegistry) -> Json {
    Json::Object(
        reg.iter()
            .map(|(k, v)| (k.to_string(), Json::UInt(v)))
            .collect(),
    )
}

/// Parse a JSON object written by [`registry_json`] back into a
/// [`MetricsRegistry`]. Every value must be a non-negative integer.
pub fn registry_from_json(j: &Json) -> Result<MetricsRegistry, String> {
    let Json::Object(pairs) = j else {
        return Err("metrics: expected an object".into());
    };
    let mut reg = MetricsRegistry::new();
    for (k, v) in pairs {
        let n = v
            .as_u64()
            .ok_or_else(|| format!("metrics.{k}: expected a u64"))?;
        reg.set(k.clone(), n);
    }
    Ok(reg)
}

/// One measurement row: scheme, workload, ISV size when applicable, and
/// the full named-counter registry. This is the *experiment-document*
/// projection; the cache uses the lossless [`measurement_to_json_full`].
pub fn measurement_json(m: &Measurement) -> Json {
    let mut pairs = vec![
        ("scheme".to_string(), Json::str(m.scheme.name())),
        ("workload".to_string(), Json::str(m.workload)),
    ];
    if let Some(n) = m.isv_funcs {
        pairs.push(("isv_funcs".to_string(), Json::UInt(n as u64)));
    }
    pairs.push(("metrics".to_string(), registry_json(&m.metrics)));
    Json::Object(pairs)
}

/// Measurement rows, in sequence order.
pub fn measurements_json(ms: &[Measurement]) -> Json {
    Json::Array(ms.iter().map(measurement_json).collect())
}

/// The standard experiment envelope: experiment name, kernel scale,
/// then the caller's fields in order.
pub fn experiment_json(name: &str, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("experiment", Json::str(name)),
        ("kernel", Json::str(kernel_tag())),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// Print an experiment document to stdout (single line, trailing newline).
pub fn emit(doc: &Json) {
    println!("{}", doc.render());
}

/// Resolve a scheme display name (as printed by [`Scheme::name`]) back
/// to the scheme.
pub fn scheme_by_name(name: &str) -> Option<Scheme> {
    Scheme::ALL.iter().copied().find(|s| s.name() == name)
}

// ---------------------------------------------------------------------------
// Lossless Measurement codec (the cell-cache entry format).
// ---------------------------------------------------------------------------

fn stalls_json(s: &StallBreakdown) -> Json {
    Json::obj(vec![
        ("isv_fence", Json::UInt(s.isv_fence)),
        ("dsv_fence", Json::UInt(s.dsv_fence)),
        ("isv_miss", Json::UInt(s.isv_miss)),
        ("dsvmt_miss", Json::UInt(s.dsvmt_miss)),
        ("squash", Json::UInt(s.squash)),
        ("vp_wait", Json::UInt(s.vp_wait)),
        ("frontend", Json::UInt(s.frontend)),
        ("backend", Json::UInt(s.backend)),
    ])
}

fn sni_json(s: &SniCounters) -> Json {
    Json::obj(vec![
        ("shadow_checked", Json::UInt(s.shadow_checked)),
        ("shadow_mismatches", Json::UInt(s.shadow_mismatches)),
        ("unsafe_issues", Json::UInt(s.unsafe_issues)),
        ("secret_spec_loads", Json::UInt(s.secret_spec_loads)),
        ("tainted_transmits", Json::UInt(s.tainted_transmits)),
        (
            "committed_secret_roots",
            Json::UInt(s.committed_secret_roots),
        ),
    ])
}

fn stats_json(s: &SimStats) -> Json {
    Json::obj(vec![
        ("cycles", Json::UInt(s.cycles)),
        ("kernel_cycles", Json::UInt(s.kernel_cycles)),
        ("user_cycles", Json::UInt(s.user_cycles)),
        ("committed_insts", Json::UInt(s.committed_insts)),
        ("committed_loads", Json::UInt(s.committed_loads)),
        ("committed_stores", Json::UInt(s.committed_stores)),
        ("committed_branches", Json::UInt(s.committed_branches)),
        ("squashes", Json::UInt(s.squashes)),
        ("squashed_insts", Json::UInt(s.squashed_insts)),
        (
            "transient_loads_issued",
            Json::UInt(s.transient_loads_issued),
        ),
        ("syscalls", Json::UInt(s.syscalls)),
        ("loads_fenced", Json::UInt(s.loads_fenced)),
        ("stall_cycles", Json::UInt(s.stall_cycles)),
        ("taint_roots_overflow", Json::UInt(s.taint_roots_overflow)),
        ("sni", sni_json(&s.sni)),
        ("stalls", stalls_json(&s.stalls)),
    ])
}

fn hwcache_json(c: &HwCacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::UInt(c.hits)),
        ("misses", Json::UInt(c.misses)),
    ])
}

/// A [`Measurement`] as a lossless JSON object — every field is
/// serialized, so [`measurement_from_json`] reconstructs a value equal
/// to the original. The cell cache ([`crate::memo`]) stores exactly this
/// rendering.
pub fn measurement_to_json_full(m: &Measurement) -> Json {
    let opt = |v: Option<Json>| v.unwrap_or(Json::Null);
    Json::obj(vec![
        ("scheme", Json::str(m.scheme.name())),
        ("workload", Json::str(m.workload)),
        ("stats", stats_json(&m.stats)),
        (
            "fences",
            opt(m.fences.as_ref().map(|f| {
                Json::obj(vec![
                    ("isv", Json::UInt(f.isv)),
                    ("dsv", Json::UInt(f.dsv)),
                    ("unknown", Json::UInt(f.unknown)),
                ])
            })),
        ),
        ("isv_cache", opt(m.isv_cache.as_ref().map(hwcache_json))),
        ("dsvmt_cache", opt(m.dsvmt_cache.as_ref().map(hwcache_json))),
        ("isv_funcs", opt(m.isv_funcs.map(|n| Json::UInt(n as u64)))),
        ("metrics", registry_json(&m.metrics)),
    ])
}

fn req<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    req(j, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?}: expected a u64"))
}

fn stalls_from_json(j: &Json) -> Result<StallBreakdown, String> {
    Ok(StallBreakdown {
        isv_fence: req_u64(j, "isv_fence")?,
        dsv_fence: req_u64(j, "dsv_fence")?,
        isv_miss: req_u64(j, "isv_miss")?,
        dsvmt_miss: req_u64(j, "dsvmt_miss")?,
        squash: req_u64(j, "squash")?,
        vp_wait: req_u64(j, "vp_wait")?,
        frontend: req_u64(j, "frontend")?,
        backend: req_u64(j, "backend")?,
    })
}

fn sni_from_json(j: &Json) -> Result<SniCounters, String> {
    Ok(SniCounters {
        shadow_checked: req_u64(j, "shadow_checked")?,
        shadow_mismatches: req_u64(j, "shadow_mismatches")?,
        unsafe_issues: req_u64(j, "unsafe_issues")?,
        secret_spec_loads: req_u64(j, "secret_spec_loads")?,
        tainted_transmits: req_u64(j, "tainted_transmits")?,
        committed_secret_roots: req_u64(j, "committed_secret_roots")?,
    })
}

fn stats_from_json(j: &Json) -> Result<SimStats, String> {
    Ok(SimStats {
        cycles: req_u64(j, "cycles")?,
        kernel_cycles: req_u64(j, "kernel_cycles")?,
        user_cycles: req_u64(j, "user_cycles")?,
        committed_insts: req_u64(j, "committed_insts")?,
        committed_loads: req_u64(j, "committed_loads")?,
        committed_stores: req_u64(j, "committed_stores")?,
        committed_branches: req_u64(j, "committed_branches")?,
        squashes: req_u64(j, "squashes")?,
        squashed_insts: req_u64(j, "squashed_insts")?,
        transient_loads_issued: req_u64(j, "transient_loads_issued")?,
        syscalls: req_u64(j, "syscalls")?,
        loads_fenced: req_u64(j, "loads_fenced")?,
        stall_cycles: req_u64(j, "stall_cycles")?,
        taint_roots_overflow: req_u64(j, "taint_roots_overflow")?,
        sni: sni_from_json(req(j, "sni")?)?,
        stalls: stalls_from_json(req(j, "stalls")?)?,
    })
}

fn hwcache_from_json(j: &Json) -> Result<HwCacheStats, String> {
    Ok(HwCacheStats {
        hits: req_u64(j, "hits")?,
        misses: req_u64(j, "misses")?,
    })
}

fn opt_field<T>(
    j: &Json,
    key: &str,
    f: impl FnOnce(&Json) -> Result<T, String>,
) -> Result<Option<T>, String> {
    match req(j, key)? {
        Json::Null => Ok(None),
        v => f(v).map(Some),
    }
}

/// Reconstruct a [`Measurement`] from [`measurement_to_json_full`]
/// output. The stored scheme and workload names must match
/// `expected_scheme` / `expected_workload` (the workload name in a
/// `Measurement` is `&'static str`, so the caller supplies it); any
/// structural problem comes back as `Err`, never a panic.
pub fn measurement_from_json(
    j: &Json,
    expected_scheme: Scheme,
    expected_workload: &'static str,
) -> Result<Measurement, String> {
    let scheme_name = req(j, "scheme")?
        .as_str()
        .ok_or("field \"scheme\": expected a string")?;
    if scheme_name != expected_scheme.name() {
        return Err(format!(
            "scheme mismatch: entry has {scheme_name:?}, expected {:?}",
            expected_scheme.name()
        ));
    }
    let workload_name = req(j, "workload")?
        .as_str()
        .ok_or("field \"workload\": expected a string")?;
    if workload_name != expected_workload {
        return Err(format!(
            "workload mismatch: entry has {workload_name:?}, expected {expected_workload:?}"
        ));
    }
    Ok(Measurement {
        scheme: expected_scheme,
        workload: expected_workload,
        stats: stats_from_json(req(j, "stats")?)?,
        fences: opt_field(j, "fences", |f| {
            Ok(FenceBreakdown {
                isv: req_u64(f, "isv")?,
                dsv: req_u64(f, "dsv")?,
                unknown: req_u64(f, "unknown")?,
            })
        })?,
        isv_cache: opt_field(j, "isv_cache", hwcache_from_json)?,
        dsvmt_cache: opt_field(j, "dsvmt_cache", hwcache_from_json)?,
        isv_funcs: opt_field(j, "isv_funcs", |v| {
            v.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| "field \"isv_funcs\": expected a u64".into())
        })?,
        metrics: registry_from_json(req(j, "metrics")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_compact_and_ordered() {
        let doc = Json::obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Array(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::str("x\"y\\z\n")),
        ]);
        assert_eq!(doc.render(), r#"{"b":2,"a":[null,true],"s":"x\"y\\z\n"}"#);
    }

    #[test]
    fn parse_round_trips_what_we_write() {
        let doc = Json::obj(vec![
            ("name", Json::str("fig_9_2")),
            ("neg", Json::Int(-3)),
            ("big", Json::UInt(u64::MAX)),
            (
                "rows",
                Json::Array(vec![Json::obj(vec![
                    ("k", Json::str("välue \t with ünïcode")),
                    ("n", Json::UInt(42)),
                ])]),
            ),
            ("empty_obj", Json::Object(vec![])),
            ("empty_arr", Json::Array(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
        assert_eq!(back.render(), text, "render is a fixed point");
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().items().unwrap().len(), 2);
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn adversarial_inputs_error_instead_of_panicking() {
        // Every one of these used to be able to reach an `unwrap()` (or
        // unbounded recursion); all must now come back as Err.
        let cases: &[&str] = &[
            "-",                    // sign with no digits
            "-9223372036854775809", // i64 underflow
            "18446744073709551616", // u64 overflow
            "\"\\",                 // escape at end of input
            "\"\\u12",              // truncated \u escape
            "\"\\uD800\"",          // lone surrogate codepoint
            "\"\\q\"",              // unknown escape
            "\"unterminated",       // no closing quote
            "{\"k\"",               // object cut mid-pair
            "nul",                  // truncated literal
            "+5",                   // leading plus
            "01x",                  // trailing garbage after digits
        ];
        for c in cases {
            assert!(Json::parse(c).is_err(), "{c:?} must be rejected");
        }
        // Pathological nesting: an Err, not a stack overflow.
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
        // But reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn multibyte_and_escape_content_round_trips() {
        let doc = Json::obj(vec![
            ("emoji", Json::str("héllo \u{1F980} wörld")),
            ("ctl", Json::str("\u{1}\u{2}\u{1f}")),
            ("slash", Json::str("a/b\\c\"d")),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn registry_renders_name_ordered_and_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.set("z.last", 1);
        reg.set("a.first", 2);
        let json = registry_json(&reg);
        assert_eq!(json.render(), r#"{"a.first":2,"z.last":1}"#);
        assert_eq!(registry_from_json(&json).unwrap(), reg);
        assert!(registry_from_json(&Json::Null).is_err());
        assert!(registry_from_json(&Json::obj(vec![("k", Json::str("x"))])).is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::obj(vec![("n", Json::UInt(7)), ("s", Json::str("x"))]);
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn scheme_names_resolve_round_trip() {
        for &s in Scheme::ALL {
            assert_eq!(scheme_by_name(s.name()), Some(s));
        }
        assert_eq!(scheme_by_name("NOT-A-SCHEME"), None);
    }

    fn rich_measurement() -> Measurement {
        let mut stats = SimStats {
            cycles: 101,
            kernel_cycles: 60,
            user_cycles: 41,
            committed_insts: 500,
            committed_loads: 90,
            committed_stores: 40,
            committed_branches: 70,
            squashes: 3,
            squashed_insts: 17,
            transient_loads_issued: 5,
            syscalls: 12,
            loads_fenced: 8,
            stall_cycles: 33,
            taint_roots_overflow: 1,
            ..SimStats::default()
        };
        stats.sni.shadow_checked = 500;
        stats.sni.tainted_transmits = 2;
        stats.stalls.isv_fence = 10;
        stats.stalls.backend = 23;
        let mut metrics = MetricsRegistry::new();
        metrics.set("sim.cycles", 101);
        metrics.set("policy.fences.isv", 4);
        Measurement {
            scheme: Scheme::Perspective,
            workload: "getpid",
            stats,
            fences: Some(FenceBreakdown {
                isv: 4,
                dsv: 3,
                unknown: 1,
            }),
            isv_cache: Some(HwCacheStats { hits: 9, misses: 2 }),
            dsvmt_cache: Some(HwCacheStats { hits: 7, misses: 1 }),
            isv_funcs: Some(42),
            metrics,
        }
    }

    #[test]
    fn full_measurement_codec_round_trips() {
        let m = rich_measurement();
        let j = measurement_to_json_full(&m);
        let text = j.render();
        let back =
            measurement_from_json(&Json::parse(&text).unwrap(), Scheme::Perspective, "getpid")
                .unwrap();
        assert_eq!(back.scheme, m.scheme);
        assert_eq!(back.workload, m.workload);
        assert_eq!(back.stats, m.stats);
        assert_eq!(back.fences, m.fences);
        assert_eq!(back.isv_cache, m.isv_cache);
        assert_eq!(back.dsvmt_cache, m.dsvmt_cache);
        assert_eq!(back.isv_funcs, m.isv_funcs);
        assert_eq!(back.metrics, m.metrics);
        // The re-serialization is byte-identical (verify mode depends on it).
        assert_eq!(measurement_to_json_full(&back).render(), text);
    }

    #[test]
    fn baseline_measurement_codec_round_trips_nones() {
        let m = Measurement {
            scheme: Scheme::Unsafe,
            workload: "getpid",
            stats: SimStats::default(),
            fences: None,
            isv_cache: None,
            dsvmt_cache: None,
            isv_funcs: None,
            metrics: MetricsRegistry::new(),
        };
        let j = measurement_to_json_full(&m);
        let back = measurement_from_json(&j, Scheme::Unsafe, "getpid").unwrap();
        assert!(back.fences.is_none());
        assert!(back.isv_cache.is_none());
        assert!(back.isv_funcs.is_none());
        assert_eq!(measurement_to_json_full(&back), j);
    }

    #[test]
    fn measurement_codec_rejects_mismatches_and_damage() {
        let m = rich_measurement();
        let j = measurement_to_json_full(&m);
        // Wrong expected scheme or workload.
        assert!(measurement_from_json(&j, Scheme::Unsafe, "getpid").is_err());
        assert!(measurement_from_json(&j, Scheme::Perspective, "select").is_err());
        // A missing field is an error, not a default.
        if let Json::Object(pairs) = &j {
            for i in 0..pairs.len() {
                let mut damaged = pairs.clone();
                damaged.remove(i);
                assert!(
                    measurement_from_json(&Json::Object(damaged), Scheme::Perspective, "getpid")
                        .is_err(),
                    "dropping field {:?} must fail decoding",
                    pairs[i].0
                );
            }
        } else {
            panic!("measurement json must be an object");
        }
    }
}
