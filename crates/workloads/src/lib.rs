//! Workloads for the Perspective evaluation: the LEBench microbenchmark
//! suite, the four datacenter applications, the CVE study of Table 4.1,
//! and the measurement harness that runs them under every defense scheme.
//!
//! The measurement protocol mirrors the paper (Chapter 7): each workload
//! gets a warmup run — which doubles as the dynamic-ISV profiling trace —
//! followed by a measured region of interest; datacenter throughput is
//! reported as requests/second normalized to the UNSAFE baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cve_study;
pub mod differential;
pub mod lebench;
pub mod memo;
pub mod multiproc;
pub mod report;
pub mod runner;
pub mod sni;
pub mod spec;

pub use apps::App;
pub use runner::{
    core_config_from_env, measure, measure_cfg, measure_image, measure_image_cfg,
    measure_image_full, measure_image_uncached, measure_per_syscall, measure_per_syscall_image,
    measure_schemes, num_threads, overhead, run_matrix, run_matrix_core, run_parallel,
    run_parallel_with, trace_to_funcs, Measurement, SimInstance,
};
pub use spec::{ArgVal, SyscallStep, Workload};
