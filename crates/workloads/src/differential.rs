//! Fast-vs-slow differential harness at the workload level.
//!
//! The idle-cycle fast-forward ([`CoreConfig::idle_fastforward`]) claims
//! to change *nothing* about a simulation except its wall-clock cost.
//! The pipeline-level harness in `persp_uarch::testkit` pins that on
//! small programs; this module pins it on the full measurement protocol
//! — kernel image, warmup + dynamic-ISV profiling, view installation,
//! region-of-interest delta, and the exported metrics registry — by
//! running the identical [`runner`] protocol under both stepping modes
//! and asserting the resulting [`Measurement`]s are equal field for
//! field.

use crate::runner::{self, Measurement};
use crate::spec::Workload;
use persp_kernel::kernel::KernelImage;
use persp_uarch::config::CoreConfig;
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

/// The two core configurations the differential compares: the paper
/// configuration with the fast-forward forced on and forced off.
pub fn fastfwd_pair() -> (CoreConfig, CoreConfig) {
    let fast = CoreConfig {
        idle_fastforward: true,
        ..CoreConfig::paper_default()
    };
    let slow = CoreConfig {
        idle_fastforward: false,
        ..CoreConfig::paper_default()
    };
    (fast, slow)
}

/// Run the full measurement protocol for one (scheme, workload) cell
/// under both stepping modes and return `(fast, slow)`.
///
/// # Panics
///
/// Panics if either simulation errors.
pub fn measure_fastfwd_pair(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
) -> (Measurement, Measurement) {
    let (fast_cfg, slow_cfg) = fastfwd_pair();
    let fast = runner::try_measure_image_full(
        scheme,
        image,
        workload,
        PerspectiveConfig::default(),
        fast_cfg,
    )
    .unwrap_or_else(|e| panic!("fast-path {} under {scheme} failed: {e}", workload.name));
    let slow = runner::try_measure_image_full(
        scheme,
        image,
        workload,
        PerspectiveConfig::default(),
        slow_cfg,
    )
    .unwrap_or_else(|e| panic!("slow-path {} under {scheme} failed: {e}", workload.name));
    (fast, slow)
}

/// Assert two measurements of the same cell are identical — statistics,
/// fence attribution, metadata-cache statistics, ISV size, and the full
/// metrics registry. Compared via the `Debug` rendering, which covers
/// every field of [`Measurement`] and yields a readable diff on failure.
///
/// # Panics
///
/// Panics with both renderings when any component differs, and when the
/// stall-attribution partition is violated in either measurement.
pub fn assert_measurements_identical(fast: &Measurement, slow: &Measurement) {
    let fast_render = format!("{fast:#?}");
    let slow_render = format!("{slow:#?}");
    assert_eq!(
        fast_render, slow_render,
        "fast-forward diverged from the slow path for {} under {}",
        fast.workload, fast.scheme
    );
    for m in [fast, slow] {
        assert_eq!(
            m.stats.stalls.total(),
            m.stats.stall_cycles,
            "{} under {}: stall breakdown must partition the stall cycles",
            m.workload,
            m.scheme
        );
    }
}

/// The complete differential check for one (scheme, workload) cell:
/// measure under both stepping modes and assert equality.
///
/// # Panics
///
/// Panics if either simulation errors or the measurements differ.
pub fn assert_fastfwd_equivalent(scheme: Scheme, image: &KernelImage, workload: &Workload) {
    let (fast, slow) = measure_fastfwd_pair(scheme, image, workload);
    assert_measurements_identical(&fast, &slow);
}
