//! Content-addressed memoization of simulation results — the
//! cross-experiment *cell cache*.
//!
//! The reproduction is fully deterministic: identical (kernel config,
//! scheme, [`PerspectiveConfig`], [`CoreConfig`], workload) inputs
//! produce byte-identical [`Measurement`]s — a property pinned by the
//! matrix-determinism and fast-forward differential harnesses. Yet the
//! experiment bins overlap heavily (`fig_9_2` runs
//! `Scheme::ALL × lebench::suite()` while the ablation/sensitivity/
//! calibration bins re-run large subsets of the same cells), and every
//! bin cold-simulates each cell from scratch. This module turns each
//! simulated cell into a disk-backed cache entry keyed by a stable
//! fingerprint of *every* simulation input, so `run_all`'s concurrently
//! spawned children — and repeated runs — share work.
//!
//! # Key derivation
//!
//! A [`CellKey`] is an FNV-1a 64-bit hash (fixed offset basis and prime
//! — **never** `DefaultHasher`, whose keys are randomized per process)
//! over a canonical, line-oriented serialization of the inputs:
//! [`SIM_VERSION`], the measurement protocol, every `KernelConfig`
//! field (including the RNG seed; floats are serialized as exact IEEE
//! bit patterns), the scheme, every `PerspectiveConfig` and
//! [`CoreConfig`] knob, and the full workload content (startup steps,
//! per-iteration steps, iteration count, user work). The canonical
//! string itself is stored in each entry and compared on lookup, so a
//! 64-bit hash collision degrades to a cache miss, never a wrong result.
//!
//! Simulation parameters that are compile-time constants — the memory
//! [`HierarchyConfig`](persp_mem::hierarchy::HierarchyConfig), the run
//! budget, the warmup/ROI protocol itself — are covered by
//! [`SIM_VERSION`]: **bump it whenever simulation semantics change** in
//! any way that can alter a `Measurement`. The ci baselines
//! (`BENCH_*.json`) drift in lockstep, so a forgotten bump is caught by
//! the cold-then-warm ci cell as a baseline mismatch.
//!
//! # Storage and atomicity
//!
//! One file per cell (`cell-<16-hex>.json`) under
//! `PERSPECTIVE_CACHE_DIR` (default `target/persp-cache/`). Writers
//! serialize to a process-unique temp file in the same directory and
//! `rename(2)` it into place, so readers never observe a half-written
//! entry even when `run_all`'s children populate one cache
//! concurrently; concurrent writers of the same cell race benignly
//! (identical bytes). Any unreadable, unparseable, truncated, or
//! mismatched entry is treated as a miss and counted, never a panic.
//! Each entry also carries an FNV checksum of its measurement payload,
//! so corruption that still happens to parse as JSON (a flipped digit
//! in a counter, say) is rejected instead of silently returning a wrong
//! measurement.
//!
//! # Modes
//!
//! `PERSPECTIVE_CACHE=off|on|verify` (default `off`):
//!
//! * `off` — every call computes; the cache is never touched.
//! * `on` — hits return the deserialized entry; misses compute and
//!   store. Cached and cold runs produce byte-identical transcripts and
//!   `--json` documents; the hit/miss counters below are process-local
//!   observability and are never serialized into baseline documents
//!   (the same rule as wall clock).
//! * `verify` — every cell is recomputed and, when an entry exists, the
//!   fresh result must re-serialize byte-identically to the stored one;
//!   a mismatch is a hard error. This turns the cache into a cheap
//!   cross-run determinism checker in the spirit of the SNI and
//!   fast-forward differential harnesses.

use crate::report::{self, Json};
use crate::runner::Measurement;
use crate::spec::{ArgVal, SyscallStep, Workload};
use persp_kernel::callgraph::KernelConfig;
use persp_uarch::config::CoreConfig;
use persp_uarch::predictor::BtbMode;
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

/// Version salt folded into every [`CellKey`]. **Bump this whenever
/// simulation semantics change** — new counters, pipeline timing fixes,
/// protocol changes, hierarchy parameter changes — so stale entries can
/// never satisfy a lookup. Checked-in `BENCH_*.json` baselines change
/// under exactly the same circumstances; regenerate both together.
pub const SIM_VERSION: u32 = 1;

/// On-disk entry layout version (bump on envelope/codec changes).
const FORMAT_VERSION: u64 = 1;

/// Which measurement protocol produced a cell. The per-syscall protocol
/// ([`crate::runner::measure_per_syscall_image`]) installs a different
/// view configuration than the standard warmup→ISV→ROI protocol, so the
/// two must never share entries even for identical configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The standard warmup → install-ISV → ROI protocol.
    Standard,
    /// The §11 per-syscall-view protocol.
    PerSyscall,
}

impl Protocol {
    fn tag(self) -> &'static str {
        match self {
            Protocol::Standard => "standard",
            Protocol::PerSyscall => "per_syscall",
        }
    }
}

/// Cache operating mode (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Never touch the cache.
    Off,
    /// Serve hits, store misses.
    On,
    /// Recompute everything; assert byte-identity against stored entries.
    Verify,
}

/// Resolved cache configuration (mode + directory).
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Operating mode.
    pub mode: CacheMode,
    /// Entry directory (created on first store).
    pub dir: PathBuf,
}

impl CacheConfig {
    /// A disabled cache (the default).
    pub fn off() -> Self {
        CacheConfig {
            mode: CacheMode::Off,
            dir: PathBuf::from(DEFAULT_DIR),
        }
    }

    /// An enabled cache rooted at `dir`.
    pub fn on(dir: impl Into<PathBuf>) -> Self {
        CacheConfig {
            mode: CacheMode::On,
            dir: dir.into(),
        }
    }

    /// A verifying cache rooted at `dir`.
    pub fn verify(dir: impl Into<PathBuf>) -> Self {
        CacheConfig {
            mode: CacheMode::Verify,
            dir: dir.into(),
        }
    }

    /// Resolve from the environment: `PERSPECTIVE_CACHE` selects the
    /// mode (`off`, empty, or unset → off; `on` or `1` → on; `verify` →
    /// verify; anything else warns once on stderr and stays off), and
    /// `PERSPECTIVE_CACHE_DIR` overrides the entry directory (default
    /// `target/persp-cache`).
    pub fn from_env() -> Self {
        let mode = match std::env::var("PERSPECTIVE_CACHE") {
            Err(_) => CacheMode::Off,
            Ok(v) => match v.trim() {
                "" | "0" | "off" => CacheMode::Off,
                "1" | "on" => CacheMode::On,
                "verify" => CacheMode::Verify,
                _ => {
                    static WARN: Once = Once::new();
                    WARN.call_once(|| {
                        eprintln!(
                            "warning: ignoring invalid PERSPECTIVE_CACHE={v:?} \
                             (expected off, on, or verify); cache stays off"
                        );
                    });
                    CacheMode::Off
                }
            },
        };
        let dir = match std::env::var("PERSPECTIVE_CACHE_DIR") {
            Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
            _ => PathBuf::from(DEFAULT_DIR),
        };
        CacheConfig { mode, dir }
    }
}

/// Default entry directory.
pub const DEFAULT_DIR: &str = "target/persp-cache";

// ---------------------------------------------------------------------------
// Key derivation.
// ---------------------------------------------------------------------------

/// A stable 64-bit cell fingerprint (FNV-1a over the canonical input
/// serialization). Identical inputs produce the identical key in every
/// process; the canonical string stored alongside each entry makes hash
/// collisions harmless (they decay to misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey(pub u64);

impl CellKey {
    /// Fixed-width lowercase hex rendering (the entry file stem).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// FNV-1a with the standard 64-bit offset basis and prime — stable
/// across processes, platforms, and toolchains (unlike `DefaultHasher`,
/// which is seeded randomly per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    // Exact IEEE-754 bit pattern: no formatting/rounding ambiguity.
    let _ = writeln!(out, "{key}={:016x}", v.to_bits());
}

fn push_steps(out: &mut String, key: &str, steps: &[SyscallStep]) {
    let _ = write!(out, "{key}=[");
    for (i, s) in steps.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        let arg = |a: ArgVal| match a {
            ArgVal::Imm(v) => format!("i{v:x}"),
            ArgVal::Buf(o) => format!("b{o:x}"),
        };
        let _ = write!(
            out,
            "sys:{};{};{};{}",
            s.sys as u16,
            arg(s.arg0),
            arg(s.arg1),
            arg(s.arg2)
        );
    }
    out.push_str("]\n");
}

/// The canonical, line-oriented serialization of every simulation input
/// of one cell. This is what gets hashed into the [`CellKey`] *and*
/// stored in the entry for exact comparison on lookup. Field order and
/// rendering are part of the on-disk format: change them only together
/// with [`SIM_VERSION`].
pub fn canonical_cell(
    protocol: Protocol,
    scheme: Scheme,
    kcfg: &KernelConfig,
    pcfg: &PerspectiveConfig,
    core: &CoreConfig,
    workload: &Workload,
) -> String {
    let mut s = String::with_capacity(1024);
    let _ = writeln!(s, "persp-cell-v{FORMAT_VERSION}");
    let _ = writeln!(s, "sim_version={SIM_VERSION}");
    let _ = writeln!(s, "protocol={}", protocol.tag());

    let _ = writeln!(s, "kernel.num_functions={}", kcfg.num_functions);
    let _ = writeln!(s, "kernel.num_gadgets={}", kcfg.num_gadgets);
    push_f64(
        &mut s,
        "kernel.gadget_hot_fraction",
        kcfg.gadget_hot_fraction,
    );
    let _ = writeln!(s, "kernel.pool_mean={}", kcfg.pool_mean);
    let _ = writeln!(s, "kernel.num_utils={}", kcfg.num_utils);
    push_f64(&mut s, "kernel.cond_edge_prob", kcfg.cond_edge_prob);
    push_f64(&mut s, "kernel.flag_set_prob", kcfg.flag_set_prob);
    push_f64(&mut s, "kernel.indirect_only_prob", kcfg.indirect_only_prob);
    let _ = writeln!(s, "kernel.seed={:016x}", kcfg.seed);
    let _ = writeln!(s, "kernel.num_frames={}", kcfg.num_frames);
    let _ = writeln!(s, "kernel.secure_slab={}", kcfg.secure_slab);

    let _ = writeln!(s, "scheme={}", scheme.name());

    let _ = writeln!(s, "pcfg.enforce_dsv={}", pcfg.enforce_dsv);
    let _ = writeln!(s, "pcfg.enforce_isv={}", pcfg.enforce_isv);
    let _ = writeln!(s, "pcfg.block_unknown={}", pcfg.block_unknown);
    let _ = writeln!(s, "pcfg.isv_cache_entries={}", pcfg.isv_cache_entries);
    let _ = writeln!(s, "pcfg.dsvmt_cache_entries={}", pcfg.dsvmt_cache_entries);
    let _ = writeln!(s, "pcfg.per_syscall_isv={}", pcfg.per_syscall_isv);

    let _ = writeln!(s, "core.width={}", core.width);
    let _ = writeln!(s, "core.rob_entries={}", core.rob_entries);
    let _ = writeln!(s, "core.lq_entries={}", core.lq_entries);
    let _ = writeln!(s, "core.sq_entries={}", core.sq_entries);
    let _ = writeln!(s, "core.btb_entries={}", core.btb_entries);
    let btb = match core.btb_mode {
        BtbMode::Legacy => "legacy",
        BtbMode::Ibrs => "ibrs",
    };
    let _ = writeln!(s, "core.btb_mode={btb}");
    let _ = writeln!(s, "core.rsb_entries={}", core.rsb_entries);
    let _ = writeln!(s, "core.frontend_latency={}", core.frontend_latency);
    let _ = writeln!(s, "core.mispredict_penalty={}", core.mispredict_penalty);
    let _ = writeln!(
        s,
        "core.branch_resolve_latency={}",
        core.branch_resolve_latency
    );
    let _ = writeln!(s, "core.ret_resolve_latency={}", core.ret_resolve_latency);
    let _ = writeln!(s, "core.retpoline_cost={}", core.retpoline_cost);
    push_f64(&mut s, "core.freq_ghz", core.freq_ghz);
    let _ = writeln!(s, "core.idle_fastforward={}", core.idle_fastforward);

    let _ = writeln!(s, "workload.name={}", workload.name);
    push_steps(&mut s, "workload.startup_steps", &workload.startup_steps);
    push_steps(&mut s, "workload.steps", &workload.steps);
    let _ = writeln!(s, "workload.iters={}", workload.iters);
    let _ = writeln!(s, "workload.user_work={}", workload.user_work);
    s
}

/// The [`CellKey`] of a canonical serialization.
pub fn cell_key(canonical: &str) -> CellKey {
    CellKey(fnv1a64(canonical.as_bytes()))
}

/// Entry file path for a key under `dir`.
pub fn entry_path(dir: &Path, key: CellKey) -> PathBuf {
    dir.join(format!("cell-{}.json", key.hex()))
}

// ---------------------------------------------------------------------------
// Process-local observability.
// ---------------------------------------------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static VERIFIED: AtomicU64 = AtomicU64::new(0);
static INVALID: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-local cache counters. Observability only:
/// these are **never** serialized into experiment documents (the same
/// rule as wall clock), so cached and cold runs stay byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that computed (no entry, or an invalid one).
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Verify-mode recomputations that matched their stored entry.
    pub verified: u64,
    /// Entries that existed but were unreadable, unparseable, truncated,
    /// or mismatched (each also counts as a miss).
    pub invalid: u64,
}

/// Snapshot the process-local cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
        verified: VERIFIED.load(Ordering::Relaxed),
        invalid: INVALID.load(Ordering::Relaxed),
    }
}

/// Reset the process-local counters (test isolation).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    STORES.store(0, Ordering::Relaxed);
    VERIFIED.store(0, Ordering::Relaxed);
    INVALID.store(0, Ordering::Relaxed);
}

/// When `PERSPECTIVE_CACHE_STATS_FILE` names a path, mirror the counter
/// snapshot there after every cache operation (single writer, tiny
/// file). `run_all` points each child at its own file to build the
/// per-bin summary table without touching the children's stdout.
fn publish_stats() {
    let Ok(path) = std::env::var("PERSPECTIVE_CACHE_STATS_FILE") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    let s = stats();
    let body = format!(
        "hits={} misses={} stores={} verified={} invalid={}\n",
        s.hits, s.misses, s.stores, s.verified, s.invalid
    );
    // Best-effort observability: a failed write must never fail a run.
    let _ = std::fs::write(path, body);
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
    publish_stats();
}

// ---------------------------------------------------------------------------
// Entry I/O.
// ---------------------------------------------------------------------------

fn entry_json(canonical: &str, key: CellKey, m: &Measurement) -> Json {
    let payload = report::measurement_to_json_full(m);
    let checksum = format!("{:016x}", fnv1a64(payload.render().as_bytes()));
    Json::obj(vec![
        ("format", Json::UInt(FORMAT_VERSION)),
        ("sim_version", Json::UInt(u64::from(SIM_VERSION))),
        ("key", Json::str(key.hex())),
        ("canonical", Json::str(canonical)),
        ("checksum", Json::str(checksum)),
        ("measurement", payload),
    ])
}

/// Outcome of an entry load attempt.
enum Loaded {
    /// No entry file on disk — a plain miss.
    NoEntry,
    /// An entry file exists but cannot be used (corrupt, truncated,
    /// stale format, key collision, codec mismatch).
    Invalid(String),
    /// A usable entry (boxed: a `Measurement` dwarfs the other variants).
    Hit(Box<Measurement>),
}

/// Decode entry bytes against the expected canonical serialization.
/// Every failure is a describable `Err` — mangled bytes must never
/// panic or produce a wrong measurement (covered by proptest).
pub fn decode_entry(
    bytes: &[u8],
    canonical: &str,
    scheme: Scheme,
    workload_name: &'static str,
) -> Result<Measurement, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("entry is not utf-8: {e}"))?;
    let doc = Json::parse(text).map_err(|e| format!("entry does not parse: {e}"))?;
    let format = doc
        .get("format")
        .and_then(Json::as_u64)
        .ok_or("entry has no format field")?;
    if format != FORMAT_VERSION {
        return Err(format!("entry format {format} != {FORMAT_VERSION}"));
    }
    let sim = doc
        .get("sim_version")
        .and_then(Json::as_u64)
        .ok_or("entry has no sim_version field")?;
    if sim != u64::from(SIM_VERSION) {
        return Err(format!("entry sim_version {sim} != {SIM_VERSION}"));
    }
    let stored = doc
        .get("canonical")
        .and_then(Json::as_str)
        .ok_or("entry has no canonical field")?;
    if stored != canonical {
        return Err("canonical-input mismatch (key collision or stale entry)".into());
    }
    let m = doc.get("measurement").ok_or("entry has no measurement")?;
    let checksum = doc
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or("entry has no checksum field")?;
    let actual = format!("{:016x}", fnv1a64(m.render().as_bytes()));
    if checksum != actual {
        return Err(format!(
            "measurement checksum mismatch (stored {checksum}, payload hashes to {actual})"
        ));
    }
    report::measurement_from_json(m, scheme, workload_name)
}

fn load_entry(path: &Path, canonical: &str, scheme: Scheme, workload_name: &'static str) -> Loaded {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Loaded::NoEntry,
        Err(e) => return Loaded::Invalid(format!("unreadable: {e}")),
    };
    match decode_entry(&bytes, canonical, scheme, workload_name) {
        Ok(m) => Loaded::Hit(Box::new(m)),
        Err(e) => Loaded::Invalid(e),
    }
}

/// Atomically store an entry: write a process-unique temp file in the
/// cache directory, then rename it over the final name. Concurrent
/// writers of the same cell race benignly (identical content); readers
/// never see a partial file. Failures warn once and are otherwise
/// ignored — the cache is best-effort.
fn store_entry(dir: &Path, key: CellKey, canonical: &str, m: &Measurement) {
    let result = (|| -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".tmp-{}-{}", key.hex(), std::process::id()));
        let mut body = entry_json(canonical, key, m).render();
        body.push('\n');
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, entry_path(dir, key))?;
        Ok(())
    })();
    match result {
        Ok(()) => bump(&STORES),
        Err(e) => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: cell cache store under {dir:?} failed ({e}); \
                     continuing without caching"
                );
            });
        }
    }
}

// ---------------------------------------------------------------------------
// The memoized measurement entry point.
// ---------------------------------------------------------------------------

/// Memoize `compute` under the cell cache. `compute` must be the pure,
/// deterministic measurement of the cell described by the other
/// arguments; errors are never cached. See the module docs for the
/// mode semantics.
#[allow(clippy::too_many_arguments)]
pub fn cached_measure(
    cfg: &CacheConfig,
    protocol: Protocol,
    scheme: Scheme,
    kcfg: &KernelConfig,
    pcfg: &PerspectiveConfig,
    core_cfg: &CoreConfig,
    workload: &Workload,
    compute: impl FnOnce() -> Result<Measurement, String>,
) -> Result<Measurement, String> {
    if cfg.mode == CacheMode::Off {
        return compute();
    }
    let canonical = canonical_cell(protocol, scheme, kcfg, pcfg, core_cfg, workload);
    let key = cell_key(&canonical);
    let path = entry_path(&cfg.dir, key);
    let loaded = load_entry(&path, &canonical, scheme, workload.name);
    match cfg.mode {
        CacheMode::Off => unreachable!("handled above"),
        CacheMode::On => match loaded {
            Loaded::Hit(m) => {
                bump(&HITS);
                Ok(*m)
            }
            other => {
                if let Loaded::Invalid(why) = &other {
                    bump(&INVALID);
                    eprintln!("warning: cell cache entry {path:?} unusable ({why}); recomputing");
                }
                bump(&MISSES);
                let m = compute()?;
                store_entry(&cfg.dir, key, &canonical, &m);
                Ok(m)
            }
        },
        CacheMode::Verify => {
            let fresh = compute()?;
            match loaded {
                Loaded::Hit(cached) => {
                    let fresh_bytes = report::measurement_to_json_full(&fresh).render();
                    let cached_bytes = report::measurement_to_json_full(&cached).render();
                    if fresh_bytes != cached_bytes {
                        return Err(format!(
                            "cell cache VERIFY mismatch for {} / {} (key {}): the \
                             recomputed measurement differs from the stored entry — \
                             either the simulation is nondeterministic or its semantics \
                             changed without a SIM_VERSION bump\n  cached: {}\n  fresh:  {}",
                            scheme,
                            workload.name,
                            key.hex(),
                            cached_bytes,
                            fresh_bytes
                        ));
                    }
                    bump(&HITS);
                    bump(&VERIFIED);
                }
                Loaded::NoEntry => {
                    bump(&MISSES);
                    store_entry(&cfg.dir, key, &canonical, &fresh);
                }
                Loaded::Invalid(why) => {
                    bump(&INVALID);
                    bump(&MISSES);
                    eprintln!("warning: cell cache entry {path:?} unusable ({why}); rewriting");
                    store_entry(&cfg.dir, key, &canonical, &fresh);
                }
            }
            Ok(fresh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_hex_is_fixed_width() {
        assert_eq!(CellKey(0x1a).hex(), "000000000000001a");
        assert_eq!(CellKey(u64::MAX).hex(), "ffffffffffffffff");
    }

    #[test]
    fn entry_path_is_content_addressed() {
        let p = entry_path(Path::new("/tmp/c"), CellKey(7));
        assert_eq!(p, Path::new("/tmp/c/cell-0000000000000007.json"));
    }

    #[test]
    fn mode_parsing_from_env_values() {
        // from_env reads real env vars; test the match arms indirectly by
        // the explicit constructors instead (env-free, parallel-safe).
        assert_eq!(CacheConfig::off().mode, CacheMode::Off);
        assert_eq!(CacheConfig::on("x").mode, CacheMode::On);
        assert_eq!(CacheConfig::verify("x").mode, CacheMode::Verify);
        assert_eq!(CacheConfig::on("x").dir, PathBuf::from("x"));
    }
}
