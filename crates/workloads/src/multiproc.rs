//! Multi-process scenarios: context switching between mutually
//! distrusting containers on one core.
//!
//! Perspective's hardware structures are ASID-tagged precisely so that
//! context switches need no flushes (§6.2). This module provides a
//! ping-pong runner that alternates two processes from different cgroups
//! through the same core, which exercises:
//!
//! * per-context `CURRENT_TASK` switching and DSV ownership transitions,
//! * ASID-tagged ISV-cache and DSVMT-cache entries surviving switches,
//! * the secure slab allocator serving interleaved allocation streams.

use crate::runner::SimInstance;
use crate::spec::Workload;
use persp_kernel::callgraph::KernelConfig;
use persp_uarch::stats::SimStats;
use persp_uarch::Asid;
use perspective::isv::Isv;
use perspective::scheme::Scheme;

/// Result of a ping-pong run.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Total statistics across both processes.
    pub stats: SimStats,
    /// Context switches performed.
    pub switches: u64,
}

/// Two processes from different cgroups alternating on one core.
pub struct PingPong {
    /// The underlying instance (process A is `instance.asid`).
    pub instance: SimInstance,
    /// The second process's context.
    pub asid_b: Asid,
}

impl PingPong {
    /// Build a two-process instance. Process A is in cgroup 1 (created by
    /// [`SimInstance::new`]), process B in cgroup 2.
    pub fn new(scheme: Scheme, kcfg: KernelConfig) -> Self {
        let mut instance = SimInstance::new(scheme, kcfg);
        let pid_b = {
            let mut kernel = instance.kernel.borrow_mut();
            kernel.create_process(2, &mut instance.core.machine)
        };
        PingPong {
            instance,
            asid_b: pid_b as Asid,
        }
    }

    /// Install per-context ISVs for both processes (Perspective schemes).
    pub fn install_isvs(&self, workload_a: &Workload, workload_b: &Workload) {
        if let Some(p) = &self.instance.perspective {
            let kernel = self.instance.kernel.borrow();
            let g = &kernel.graph;
            p.install_isv(
                self.instance.asid,
                Isv::from_func_set(
                    g,
                    g.live_reachable(&workload_a.syscall_profile()),
                    perspective::isv::IsvKind::Dynamic,
                ),
            );
            p.install_isv(
                self.asid_b,
                Isv::from_func_set(
                    g,
                    g.live_reachable(&workload_b.syscall_profile()),
                    perspective::isv::IsvKind::Dynamic,
                ),
            );
        }
    }

    /// Alternate the two workloads for `rounds` rounds each.
    ///
    /// # Panics
    ///
    /// Panics on simulation errors (the workloads are well-formed).
    pub fn run(
        &mut self,
        workload_a: &Workload,
        workload_b: &Workload,
        rounds: usize,
    ) -> PingPongResult {
        let inst = &mut self.instance;
        let text_a = inst.text_base();
        let data_a = inst.data_base();
        let text_b = persp_kernel::layout::user_text_base(u32::from(self.asid_b));
        let data_b = persp_kernel::layout::user_data_base(u32::from(self.asid_b));
        inst.core
            .machine
            .load_text(workload_a.compile(text_a, data_a));
        inst.core
            .machine
            .load_text(workload_b.compile(text_b, data_b));

        let before = inst.core.stats();
        let mut switches = 0;
        for _ in 0..rounds {
            inst.kernel
                .borrow()
                .set_current(inst.asid, &mut inst.core.machine);
            inst.core.run(text_a, 200_000_000).expect("process A runs");
            switches += 1;
            inst.kernel
                .borrow()
                .set_current(self.asid_b, &mut inst.core.machine);
            inst.core.run(text_b, 200_000_000).expect("process B runs");
            switches += 1;
        }
        PingPongResult {
            stats: inst.core.stats().delta_since(&before),
            switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lebench;
    use perspective::policy::PerspectivePolicy;

    fn kcfg() -> KernelConfig {
        KernelConfig::test_small()
    }

    #[test]
    fn ping_pong_completes_under_unsafe() {
        let mut pp = PingPong::new(Scheme::Unsafe, kcfg());
        let a = lebench::by_name("getpid").unwrap();
        let b = lebench::by_name("small-read").unwrap();
        let r = pp.run(&a, &b, 3);
        assert_eq!(r.switches, 6);
        assert_eq!(
            r.stats.syscalls,
            3 * (a.total_syscalls() + b.total_syscalls())
        );
    }

    #[test]
    fn asid_tagging_survives_context_switches() {
        // Under Perspective, both contexts' ISV-cache entries coexist:
        // the second round of each process should mostly hit.
        let mut pp = PingPong::new(Scheme::Perspective, kcfg());
        let a = lebench::by_name("getpid").unwrap();
        let b = lebench::by_name("small-read").unwrap();
        pp.install_isvs(&a, &b);
        pp.run(&a, &b, 4);
        let hit_rate = pp
            .instance
            .core
            .policy()
            .as_any()
            .and_then(|x| x.downcast_ref::<PerspectivePolicy>())
            .map(|p| p.isv_cache_stats().hit_rate())
            .expect("perspective policy");
        assert!(
            hit_rate > 0.7,
            "tagged entries must survive switches: hit rate {hit_rate:.3}"
        );
    }

    #[test]
    fn cross_context_ownership_is_preserved() {
        // After interleaved runs, each process's kernel objects still
        // belong to its own cgroup (the allocators never mix domains).
        let mut pp = PingPong::new(Scheme::Perspective, kcfg());
        let a = lebench::by_name("mmap").unwrap();
        let b = lebench::by_name("brk").unwrap();
        pp.install_isvs(&a, &b);
        pp.run(&a, &b, 2);

        let p = pp.instance.perspective.as_ref().unwrap();
        let dsv = p.dsv();
        let kernel = pp.instance.kernel.borrow();
        let task_a = kernel.process(pp.instance.asid).unwrap().task_struct_va;
        let task_b = kernel.process(pp.asid_b).unwrap().task_struct_va;
        let mut table = dsv.borrow_mut();
        use perspective::dsv::DsvClass;
        assert_eq!(table.classify(task_a, pp.instance.asid), DsvClass::Owned);
        assert_eq!(table.classify(task_b, pp.asid_b), DsvClass::Owned);
        assert_eq!(table.classify(task_b, pp.instance.asid), DsvClass::Foreign);
        assert_eq!(table.classify(task_a, pp.asid_b), DsvClass::Foreign);
    }

    #[test]
    fn per_scheme_ping_pong_cost_ordering() {
        let a = lebench::by_name("select").unwrap();
        let b = lebench::by_name("poll").unwrap();
        let mut cycles = Vec::new();
        for scheme in [Scheme::Unsafe, Scheme::Fence, Scheme::Perspective] {
            let mut pp = PingPong::new(scheme, kcfg());
            pp.install_isvs(&a, &b);
            pp.run(&a, &b, 1); // warmup
            let r = pp.run(&a, &b, 1);
            cycles.push(r.stats.cycles);
        }
        assert!(cycles[1] > cycles[0], "FENCE slower than UNSAFE");
        assert!(cycles[2] < cycles[1], "Perspective cheaper than FENCE");
    }
}
