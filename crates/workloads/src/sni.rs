//! Speculative non-interference (SNI) measurement harness.
//!
//! Runs a workload through the usual warmup → install-view → ROI
//! protocol on an *instrumented* instance: the kernel's allocation
//! events always feed a Perspective framework (even under baseline
//! schemes, whose policies ignore them), a [`SniChecker`] is attached
//! to the core with a pristine [`GroundTruth`](perspective::GroundTruth)
//! oracle over that metadata, and — optionally — the scheme's policy is
//! wrapped in a seeded [`FaultInjector`].
//!
//! Three properties fall out of one harness:
//!
//! * **clean Perspective runs** report zero violations (no speculative
//!   load the pristine metadata forbids ever issues, and no tainted bit
//!   reaches a transmitter);
//! * **the unprotected baseline** reports nonzero leakage on workloads
//!   that speculatively touch out-of-view data;
//! * **fault-injected runs** are detected: every injected unsafe allow
//!   is independently flagged by the pipeline-side monitor, and a run
//!   that dies mid-simulation degrades into a reported failure instead
//!   of a panic.

use crate::runner::{build_isv, trace_to_funcs, SimInstance};
use crate::spec::Workload;
use persp_kernel::kernel::KernelImage;
use persp_uarch::stats::SniCounters;
use persp_uarch::SniChecker;
use perspective::fault::{FaultCounters, FaultInjector, FaultPlan};
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

/// Commit budget for the shadow re-execution oracle: enough to cover a
/// small-kernel LEBench ROI several times over while keeping CI cheap.
pub const DEFAULT_SHADOW_BUDGET: u64 = 500_000;

/// Outcome of one SNI-checked run.
#[derive(Debug, Clone)]
pub struct SniReport {
    /// Scheme the run executed under.
    pub scheme: Scheme,
    /// Workload name.
    pub workload: &'static str,
    /// Total cycles simulated (warmup + ROI).
    pub cycles: u64,
    /// The checker's counters over the whole run.
    pub sni: SniCounters,
    /// Taint-root set overflows observed by the pipeline.
    pub taint_roots_overflow: u64,
    /// Fault-injection accounting, when a plan was active.
    pub faults: Option<FaultCounters>,
    /// `Some(reason)` if the simulation errored mid-run — the harness
    /// degrades gracefully and reports whatever was counted up to the
    /// failure instead of panicking.
    pub degraded: Option<String>,
}

impl SniReport {
    /// SNI violations observed (unsafe allows + tainted transmits).
    pub fn violations(&self) -> u64 {
        self.sni.violations()
    }

    /// For fault-injected runs: did the monitor flag every injected
    /// violation? Vacuously true for clean runs.
    pub fn all_injected_detected(&self) -> bool {
        match &self.faults {
            Some(f) => self.sni.unsafe_issues >= f.injected_violations,
            None => true,
        }
    }
}

/// Run `workload` under `scheme` with the SNI checker attached,
/// optionally injecting faults per `plan`.
///
/// The ground-truth oracle judges with the same `pcfg` the policy
/// enforces (for Perspective schemes) — for baselines it defines what a
/// fully-enforcing Perspective *would* have blocked, which is exactly
/// the leakage the baseline permits.
pub fn run_sni_workload(
    scheme: Scheme,
    image: &KernelImage,
    workload: &Workload,
    pcfg: PerspectiveConfig,
    plan: Option<FaultPlan>,
    shadow_budget: u64,
) -> SniReport {
    let mut fault_handle = None;
    let mut instance = SimInstance::instrumented(scheme, image, pcfg, |inner, p| match plan {
        Some(plan) => {
            let inj = FaultInjector::new(inner, p.sni_oracle(pcfg), plan);
            fault_handle = Some(inj.counters_handle());
            Box::new(inj)
        }
        None => inner,
    });
    let p = instance.perspective.clone().expect("instrumented instance");
    instance
        .core
        .attach_sni(SniChecker::new(p.sni_oracle(pcfg), shadow_budget));

    let text = instance.text_base();
    let data = instance.data_base();
    let prog = workload.compile(text, data);
    instance.core.machine.load_text(prog);
    instance.core.enable_call_trace();

    let mut degraded = None;
    if let Err(e) = instance.core.run(text, 80_000_000) {
        degraded = Some(format!(
            "warmup of {} under {scheme} failed: {e}",
            workload.name
        ));
    }
    if degraded.is_none() {
        let raw_trace = instance.core.take_call_trace();
        let trace = trace_to_funcs(&image.graph, &raw_trace);
        if let Some(view) = build_isv(&instance, workload, &trace) {
            p.install_isv(instance.asid, view);
        }
        if let Err(e) = instance.core.run(text, 80_000_000) {
            degraded = Some(format!(
                "ROI of {} under {scheme} failed: {e}",
                workload.name
            ));
        }
    }

    let stats = instance.core.stats();
    SniReport {
        scheme,
        workload: workload.name,
        cycles: stats.cycles,
        sni: stats.sni,
        taint_roots_overflow: stats.taint_roots_overflow,
        faults: fault_handle.map(|h| {
            let c = *h.borrow();
            c
        }),
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lebench;
    use persp_kernel::callgraph::KernelConfig;

    fn image() -> KernelImage {
        KernelImage::build(KernelConfig::test_small())
    }

    #[test]
    fn clean_perspective_run_has_zero_violations() {
        let img = image();
        let w = lebench::by_name("getpid").unwrap();
        let r = run_sni_workload(
            Scheme::Perspective,
            &img,
            &w,
            PerspectiveConfig::default(),
            None,
            DEFAULT_SHADOW_BUDGET,
        );
        assert!(r.degraded.is_none(), "{:?}", r.degraded);
        assert_eq!(
            r.violations(),
            0,
            "full enforcement must be SNI: {:?}",
            r.sni
        );
        assert!(r.sni.shadow_checked > 0, "the shadow oracle ran");
        assert_eq!(r.sni.shadow_mismatches, 0, "replay matches the pipeline");
    }

    #[test]
    fn unsafe_baseline_run_is_flagged() {
        let img = image();
        let w = lebench::by_name("small-read").unwrap();
        let r = run_sni_workload(
            Scheme::Unsafe,
            &img,
            &w,
            PerspectiveConfig::default(),
            None,
            DEFAULT_SHADOW_BUDGET,
        );
        assert!(r.degraded.is_none());
        assert!(
            r.sni.unsafe_issues > 0,
            "UNSAFE must issue loads the ground truth forbids: {:?}",
            r.sni
        );
    }

    #[test]
    fn injected_faults_are_fully_detected() {
        let img = image();
        let w = lebench::by_name("getpid").unwrap();
        let r = run_sni_workload(
            Scheme::Perspective,
            &img,
            &w,
            PerspectiveConfig::default(),
            Some(FaultPlan::canned(0xC0FFEE)),
            DEFAULT_SHADOW_BUDGET,
        );
        let f = r.faults.expect("plan was active");
        assert!(f.decisions_seen > 0);
        assert!(
            f.injected_violations > 0,
            "the canned plan must actually inject: {f:?}"
        );
        assert_eq!(
            r.sni.unsafe_issues, f.injected_violations,
            "the monitor must flag exactly the injected unsafe allows"
        );
        assert!(r.all_injected_detected());
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let img = image();
        let w = lebench::by_name("getpid").unwrap();
        let go = |seed| {
            let r = run_sni_workload(
                Scheme::Perspective,
                &img,
                &w,
                PerspectiveConfig::default(),
                Some(FaultPlan::canned(seed)),
                DEFAULT_SHADOW_BUDGET,
            );
            (r.cycles, r.sni, r.faults.unwrap())
        };
        assert_eq!(go(7), go(7), "same seed, same run");
    }
}
