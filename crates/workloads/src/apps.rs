//! Datacenter application models (Figure 9.3): request-serving loops for
//! httpd, nginx, memcached, and redis.
//!
//! Each application is modelled as the syscall sequence one request
//! triggers plus user-mode compute, with the compute calibrated so the
//! kernel-time fraction lands near the paper's measurements (50 % httpd,
//! 65 % nginx, 65 % memcached, 53 % redis — Chapter 7). Clients and the
//! loopback interface are abstracted into the recv/send steps, matching
//! the paper's worst-case-for-Perspective setup where I/O never
//! bottlenecks.

use crate::spec::{SyscallStep, Workload};
use persp_kernel::syscalls::Sysno;

fn step(sys: Sysno, arg0: u64, arg2: u64) -> SyscallStep {
    SyscallStep::new(sys, arg0, arg2)
}

/// Startup syscalls a server binary performs before serving (heap setup,
/// config loading, socket creation) — part of its static syscall profile.
fn server_startup() -> Vec<SyscallStep> {
    vec![
        step(Sysno::Brk, 0, 0),
        step(Sysno::Mmap, 8, 0),
        step(Sysno::Open, 0, 0),
        step(Sysno::Fstat, 0, 0),
        step(Sysno::Read, 3, 16),
        step(Sysno::Close, 3, 0),
        step(Sysno::Socket, 0, 0),
        step(Sysno::Bind, 0, 0),
        step(Sysno::Listen, 0, 0),
        step(Sysno::EpollCreate, 0, 0),
        step(Sysno::EpollCtl, 0, 0),
        step(Sysno::Mprotect, 0, 0),
        step(Sysno::Getpid, 0, 0),
        step(Sysno::ClockGettime, 0, 0),
    ]
}

/// A datacenter application model.
#[derive(Debug, Clone)]
pub struct App {
    /// The request-serving workload (one iteration = one request).
    pub workload: Workload,
    /// The kernel-time fraction the paper measured for this app.
    pub paper_kernel_frac: f64,
    /// The paper's UNSAFE-baseline throughput (requests/second), for
    /// EXPERIMENTS.md comparison.
    pub paper_baseline_rps: f64,
}

/// All four applications.
pub fn apps() -> Vec<App> {
    vec![
        App {
            // Apache httpd: accept, read request, stat+open+read the file,
            // write the response, close, wait for the next event.
            workload: Workload {
                name: "httpd",
                startup_steps: server_startup(),
                steps: vec![
                    step(Sysno::Accept, 0, 0),
                    step(Sysno::Recv, 4, 16),
                    step(Sysno::Stat, 0, 0),
                    step(Sysno::Open, 0, 0),
                    step(Sysno::Read, 5, 96),
                    step(Sysno::Write, 4, 96),
                    step(Sysno::Close, 5, 0),
                    step(Sysno::Poll, 16, 0),
                ],
                iters: 12,
                user_work: 11000,
            },
            paper_kernel_frac: 0.50,
            paper_baseline_rps: 11_500.0,
        },
        App {
            // nginx: event loop + zero-copy-ish send path.
            workload: Workload {
                name: "nginx",
                startup_steps: server_startup(),
                steps: vec![
                    step(Sysno::EpollWait, 32, 0),
                    step(Sysno::Accept, 0, 0),
                    step(Sysno::Recv, 4, 16),
                    step(Sysno::Stat, 0, 0),
                    step(Sysno::Open, 0, 0),
                    step(Sysno::Read, 5, 64),
                    step(Sysno::Send, 4, 64),
                    step(Sysno::Close, 5, 0),
                ],
                iters: 12,
                user_work: 7000,
            },
            paper_kernel_frac: 0.65,
            paper_baseline_rps: 18_000.0,
        },
        App {
            // memcached: epoll loop with small get/set packets.
            workload: Workload {
                name: "memcached",
                startup_steps: server_startup(),
                steps: vec![
                    step(Sysno::EpollWait, 16, 0),
                    step(Sysno::Recv, 4, 8),
                    step(Sysno::Send, 4, 8),
                ],
                iters: 25,
                user_work: 800,
            },
            paper_kernel_frac: 0.65,
            paper_baseline_rps: 55_000.0,
        },
        App {
            // redis: single-threaded event loop; slightly more userspace
            // work per command than memcached.
            workload: Workload {
                name: "redis",
                startup_steps: server_startup(),
                steps: vec![
                    step(Sysno::EpollWait, 16, 0),
                    step(Sysno::Read, 4, 12),
                    step(Sysno::Write, 4, 12),
                ],
                iters: 25,
                user_work: 1900,
            },
            paper_kernel_frac: 0.53,
            paper_baseline_rps: 40_700.0,
        },
    ]
}

/// Look up an app by name.
pub fn by_name(name: &str) -> Option<App> {
    apps().into_iter().find(|a| a.workload.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_apps_with_unique_names() {
        let a = apps();
        assert_eq!(a.len(), 4);
        let names: Vec<&str> = a.iter().map(|x| x.workload.name).collect();
        assert_eq!(names, vec!["httpd", "nginx", "memcached", "redis"]);
    }

    #[test]
    fn profiles_are_realistic() {
        for app in apps() {
            let p = app.workload.syscall_profile();
            assert!(
                p.len() >= 3,
                "{} profile too small: {p:?}",
                app.workload.name
            );
            assert!(app.workload.iters > 0);
            assert!(app.paper_kernel_frac > 0.4 && app.paper_kernel_frac < 0.7);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("redis").is_some());
        assert!(by_name("postgres").is_none());
    }
}
