//! Key-sensitivity tests for the cell cache: every single simulation
//! input field must perturb the [`CellKey`], identical inputs must
//! produce the identical key in a *different process*, and the key must
//! stay pinned to a golden value (a change here means the canonical
//! format changed — which requires a `SIM_VERSION` bump).

use persp_kernel::callgraph::KernelConfig;
use persp_uarch::config::CoreConfig;
use persp_uarch::predictor::BtbMode;
use persp_workloads::memo::{self, CellKey, Protocol};
use persp_workloads::{ArgVal, SyscallStep, Workload};
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

fn fixture_workload() -> Workload {
    use persp_kernel::syscalls::Sysno;
    Workload {
        name: "memo-key-fixture",
        startup_steps: vec![SyscallStep::new(Sysno::Open, 1, 0)],
        steps: vec![
            SyscallStep::new(Sysno::Read, 3, 64),
            SyscallStep::new(Sysno::Write, 3, 64),
        ],
        iters: 7,
        user_work: 11,
    }
}

fn fixture_key() -> CellKey {
    memo::cell_key(&memo::canonical_cell(
        Protocol::Standard,
        Scheme::Perspective,
        &KernelConfig::test_small(),
        &PerspectiveConfig::default(),
        &CoreConfig::paper_default(),
        &fixture_workload(),
    ))
}

fn key_with(
    protocol: Protocol,
    scheme: Scheme,
    kcfg: &KernelConfig,
    pcfg: &PerspectiveConfig,
    core: &CoreConfig,
    workload: &Workload,
) -> CellKey {
    memo::cell_key(&memo::canonical_cell(
        protocol, scheme, kcfg, pcfg, core, workload,
    ))
}

/// Flip one field at a time and demand a different key each time.
#[test]
fn every_input_field_perturbs_the_key() {
    let base = fixture_key();
    let kcfg = KernelConfig::test_small();
    let pcfg = PerspectiveConfig::default();
    let core = CoreConfig::paper_default();
    let w = fixture_workload();

    let mut seen = std::collections::HashSet::new();
    seen.insert(base.0);
    let mut check = |label: &str, k: CellKey| {
        assert_ne!(k, base, "{label}: key must change");
        assert!(
            seen.insert(k.0),
            "{label}: key collides with another variant"
        );
    };

    // Scheme and protocol.
    check(
        "scheme",
        key_with(Protocol::Standard, Scheme::Fence, &kcfg, &pcfg, &core, &w),
    );
    check(
        "protocol",
        key_with(
            Protocol::PerSyscall,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &w,
        ),
    );

    // Every KernelConfig knob, including the seed.
    let kernel_variants: Vec<(&str, KernelConfig)> = vec![
        (
            "kernel.num_functions",
            KernelConfig {
                num_functions: kcfg.num_functions + 1,
                ..kcfg
            },
        ),
        (
            "kernel.num_gadgets",
            KernelConfig {
                num_gadgets: kcfg.num_gadgets + 1,
                ..kcfg
            },
        ),
        (
            "kernel.gadget_hot_fraction",
            KernelConfig {
                gadget_hot_fraction: kcfg.gadget_hot_fraction + 0.01,
                ..kcfg
            },
        ),
        (
            "kernel.pool_mean",
            KernelConfig {
                pool_mean: kcfg.pool_mean + 1,
                ..kcfg
            },
        ),
        (
            "kernel.num_utils",
            KernelConfig {
                num_utils: kcfg.num_utils + 1,
                ..kcfg
            },
        ),
        (
            "kernel.cond_edge_prob",
            KernelConfig {
                cond_edge_prob: kcfg.cond_edge_prob + 0.01,
                ..kcfg
            },
        ),
        (
            "kernel.flag_set_prob",
            KernelConfig {
                flag_set_prob: kcfg.flag_set_prob + 0.01,
                ..kcfg
            },
        ),
        (
            "kernel.indirect_only_prob",
            KernelConfig {
                indirect_only_prob: kcfg.indirect_only_prob + 0.01,
                ..kcfg
            },
        ),
        (
            "kernel.seed",
            KernelConfig {
                seed: kcfg.seed ^ 1,
                ..kcfg
            },
        ),
        (
            "kernel.num_frames",
            KernelConfig {
                num_frames: kcfg.num_frames + 1,
                ..kcfg
            },
        ),
        (
            "kernel.secure_slab",
            KernelConfig {
                secure_slab: !kcfg.secure_slab,
                ..kcfg
            },
        ),
    ];
    for (label, variant) in kernel_variants {
        check(
            label,
            key_with(
                Protocol::Standard,
                Scheme::Perspective,
                &variant,
                &pcfg,
                &core,
                &w,
            ),
        );
    }

    // Every PerspectiveConfig knob.
    let pcfg_variants: Vec<(&str, PerspectiveConfig)> = vec![
        (
            "pcfg.enforce_dsv",
            PerspectiveConfig {
                enforce_dsv: !pcfg.enforce_dsv,
                ..pcfg
            },
        ),
        (
            "pcfg.enforce_isv",
            PerspectiveConfig {
                enforce_isv: !pcfg.enforce_isv,
                ..pcfg
            },
        ),
        (
            "pcfg.block_unknown",
            PerspectiveConfig {
                block_unknown: !pcfg.block_unknown,
                ..pcfg
            },
        ),
        (
            "pcfg.isv_cache_entries",
            PerspectiveConfig {
                isv_cache_entries: pcfg.isv_cache_entries + 1,
                ..pcfg
            },
        ),
        (
            "pcfg.dsvmt_cache_entries",
            PerspectiveConfig {
                dsvmt_cache_entries: pcfg.dsvmt_cache_entries + 1,
                ..pcfg
            },
        ),
        (
            "pcfg.per_syscall_isv",
            PerspectiveConfig {
                per_syscall_isv: !pcfg.per_syscall_isv,
                ..pcfg
            },
        ),
    ];
    for (label, variant) in pcfg_variants {
        check(
            label,
            key_with(
                Protocol::Standard,
                Scheme::Perspective,
                &kcfg,
                &variant,
                &core,
                &w,
            ),
        );
    }

    // Every CoreConfig knob.
    let core_variants: Vec<(&str, CoreConfig)> = vec![
        (
            "core.width",
            CoreConfig {
                width: core.width + 1,
                ..core
            },
        ),
        (
            "core.rob_entries",
            CoreConfig {
                rob_entries: core.rob_entries + 1,
                ..core
            },
        ),
        (
            "core.lq_entries",
            CoreConfig {
                lq_entries: core.lq_entries + 1,
                ..core
            },
        ),
        (
            "core.sq_entries",
            CoreConfig {
                sq_entries: core.sq_entries + 1,
                ..core
            },
        ),
        (
            "core.btb_entries",
            CoreConfig {
                btb_entries: core.btb_entries * 2,
                ..core
            },
        ),
        (
            "core.btb_mode",
            CoreConfig {
                btb_mode: BtbMode::Ibrs,
                ..core
            },
        ),
        (
            "core.rsb_entries",
            CoreConfig {
                rsb_entries: core.rsb_entries + 1,
                ..core
            },
        ),
        (
            "core.frontend_latency",
            CoreConfig {
                frontend_latency: core.frontend_latency + 1,
                ..core
            },
        ),
        (
            "core.mispredict_penalty",
            CoreConfig {
                mispredict_penalty: core.mispredict_penalty + 1,
                ..core
            },
        ),
        (
            "core.branch_resolve_latency",
            CoreConfig {
                branch_resolve_latency: core.branch_resolve_latency + 1,
                ..core
            },
        ),
        (
            "core.ret_resolve_latency",
            CoreConfig {
                ret_resolve_latency: core.ret_resolve_latency + 1,
                ..core
            },
        ),
        (
            "core.retpoline_cost",
            CoreConfig {
                retpoline_cost: core.retpoline_cost + 1,
                ..core
            },
        ),
        (
            "core.freq_ghz",
            CoreConfig {
                freq_ghz: core.freq_ghz + 0.1,
                ..core
            },
        ),
        (
            "core.idle_fastforward",
            CoreConfig {
                idle_fastforward: !core.idle_fastforward,
                ..core
            },
        ),
    ];
    for (label, variant) in core_variants {
        check(
            label,
            key_with(
                Protocol::Standard,
                Scheme::Perspective,
                &kcfg,
                &pcfg,
                &variant,
                &w,
            ),
        );
    }

    // Workload content: name, step list contents, iters, user work.
    let mut renamed = w.clone();
    renamed.name = "memo-key-fixture-2";
    check(
        "workload.name",
        key_with(
            Protocol::Standard,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &renamed,
        ),
    );
    let mut extra_step = w.clone();
    extra_step.steps.push(SyscallStep::new(
        persp_kernel::syscalls::Sysno::Getpid,
        0,
        0,
    ));
    check(
        "workload.steps",
        key_with(
            Protocol::Standard,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &extra_step,
        ),
    );
    let mut arg_changed = w.clone();
    arg_changed.steps[0].arg0 = ArgVal::Imm(4);
    check(
        "workload.steps[0].arg0",
        key_with(
            Protocol::Standard,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &arg_changed,
        ),
    );
    let mut buf_vs_imm = w.clone();
    // Same numeric payload, different ArgVal variant: must not alias.
    buf_vs_imm.steps[0].arg0 = match buf_vs_imm.steps[0].arg0 {
        ArgVal::Imm(v) => ArgVal::Buf(v),
        ArgVal::Buf(v) => ArgVal::Imm(v),
    };
    check(
        "workload ArgVal variant",
        key_with(
            Protocol::Standard,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &buf_vs_imm,
        ),
    );
    let mut startup_changed = w.clone();
    startup_changed.startup_steps.clear();
    check(
        "workload.startup_steps",
        key_with(
            Protocol::Standard,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &startup_changed,
        ),
    );
    let mut iters_changed = w.clone();
    iters_changed.iters += 1;
    check(
        "workload.iters",
        key_with(
            Protocol::Standard,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &iters_changed,
        ),
    );
    let mut work_changed = w.clone();
    work_changed.user_work += 1;
    check(
        "workload.user_work",
        key_with(
            Protocol::Standard,
            Scheme::Perspective,
            &kcfg,
            &pcfg,
            &core,
            &work_changed,
        ),
    );
}

/// The canonical serialization embeds `SIM_VERSION`, so bumping it
/// invalidates every existing key. Simulate the bump by editing the
/// version line of the canonical text.
#[test]
fn sim_version_salts_the_key() {
    let canonical = memo::canonical_cell(
        Protocol::Standard,
        Scheme::Perspective,
        &KernelConfig::test_small(),
        &PerspectiveConfig::default(),
        &CoreConfig::paper_default(),
        &fixture_workload(),
    );
    let version_line = format!("sim_version={}\n", memo::SIM_VERSION);
    assert!(
        canonical.contains(&version_line),
        "canonical text must embed SIM_VERSION"
    );
    let bumped = canonical.replace(
        &version_line,
        &format!("sim_version={}\n", memo::SIM_VERSION + 1),
    );
    assert_ne!(memo::cell_key(&canonical), memo::cell_key(&bumped));
}

/// Identical inputs must hash identically. (The cross-process guarantee
/// is exercised for real in [`key_is_stable_across_processes`].)
#[test]
fn identical_inputs_produce_identical_keys() {
    assert_eq!(fixture_key(), fixture_key());
}

/// Golden key pin: FNV-1a with fixed constants is process-independent,
/// so this value must never drift between runs, processes, or hosts.
/// If this test fails, the canonical format changed — bump
/// `SIM_VERSION` and regenerate this constant (the assertion message
/// prints the new value).
#[test]
fn golden_key_is_pinned() {
    let key = fixture_key();
    assert_eq!(
        key.hex(),
        "e137e6b319857da9",
        "canonical cell format drifted; new key is {}",
        key.hex()
    );
}

/// Subprocess helper for [`key_is_stable_across_processes`]: when
/// re-invoked with `PERSP_MEMO_EMIT_KEY=1`, print the fixture key.
#[test]
fn emit_key_for_subprocess() {
    if std::env::var("PERSP_MEMO_EMIT_KEY").as_deref() == Ok("1") {
        println!("FIXTURE_KEY={}", fixture_key().hex());
    }
}

/// Re-run this test binary as a *second process* and demand it derives
/// the same key — the property `DefaultHasher` (random per-process
/// seed) would fail.
#[test]
fn key_is_stable_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args(["emit_key_for_subprocess", "--exact", "--nocapture"])
        .env("PERSP_MEMO_EMIT_KEY", "1")
        .output()
        .expect("spawn test binary");
    assert!(out.status.success(), "subprocess failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The harness may interleave its own "test ... ok" text around the
    // marker, so locate it as a substring and take the hex that follows.
    let at = stdout
        .find("FIXTURE_KEY=")
        .unwrap_or_else(|| panic!("no FIXTURE_KEY marker in subprocess output:\n{stdout}"));
    let hex: String = stdout[at + "FIXTURE_KEY=".len()..]
        .chars()
        .take_while(char::is_ascii_hexdigit)
        .collect();
    assert_eq!(hex, fixture_key().hex(), "key differs across processes");
}
