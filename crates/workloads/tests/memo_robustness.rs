//! Robustness of the cell cache against damaged entries: a corrupted,
//! truncated, or half-written cache file must be a describable decode
//! error (which `cached_measure` counts as a miss), **never** a panic
//! and never a wrong measurement.
//!
//! The oracle: for arbitrarily mangled entry bytes, `decode_entry`
//! either returns `Err`, or returns a measurement that re-serializes
//! byte-identically to the one originally stored (i.e. the mangling
//! didn't actually change the payload). The per-entry FNV checksum is
//! what closes the "still parses as JSON but with a flipped digit"
//! hole.

use persp_kernel::callgraph::KernelConfig;
use persp_uarch::config::CoreConfig;
use persp_uarch::stats::SimStats;
use persp_uarch::MetricsRegistry;
use persp_workloads::memo::{self, CacheConfig, Protocol};
use persp_workloads::report;
use persp_workloads::{Measurement, SyscallStep, Workload};
use perspective::hwcache::HwCacheStats;
use perspective::policy::{FenceBreakdown, PerspectiveConfig};
use perspective::scheme::Scheme;
use proptest::prelude::*;
use std::sync::OnceLock;

const WORKLOAD_NAME: &str = "memo-robust-fixture";

fn fixture_workload() -> Workload {
    use persp_kernel::syscalls::Sysno;
    Workload {
        name: WORKLOAD_NAME,
        startup_steps: Vec::new(),
        steps: vec![SyscallStep::new(Sysno::Getpid, 0, 0)],
        iters: 3,
        user_work: 5,
    }
}

/// A fully-populated synthetic measurement (no simulation needed —
/// `cached_measure` treats `compute` as the ground truth for the cell).
fn fixture_measurement() -> Measurement {
    let mut stats = SimStats {
        cycles: 20_101,
        kernel_cycles: 12_000,
        user_cycles: 8_101,
        committed_insts: 90_000,
        committed_loads: 14_000,
        committed_stores: 6_000,
        committed_branches: 11_000,
        squashes: 41,
        squashed_insts: 377,
        transient_loads_issued: 95,
        syscalls: 9,
        loads_fenced: 120,
        stall_cycles: 4_400,
        taint_roots_overflow: 2,
        ..SimStats::default()
    };
    stats.sni.shadow_checked = 90_000;
    stats.sni.tainted_transmits = 3;
    stats.stalls.isv_fence = 800;
    stats.stalls.backend = 2_100;
    let mut metrics = MetricsRegistry::new();
    metrics.set("sim.cycles", 20_101);
    metrics.set("policy.fences.isv", 37);
    Measurement {
        scheme: Scheme::Perspective,
        workload: WORKLOAD_NAME,
        stats,
        fences: Some(FenceBreakdown {
            isv: 37,
            dsv: 21,
            unknown: 4,
        }),
        isv_cache: Some(HwCacheStats {
            hits: 5_000,
            misses: 77,
        }),
        dsvmt_cache: Some(HwCacheStats {
            hits: 3_200,
            misses: 41,
        }),
        isv_funcs: Some(93),
        metrics,
    }
}

fn canonical() -> String {
    memo::canonical_cell(
        Protocol::Standard,
        Scheme::Perspective,
        &KernelConfig::test_small(),
        &PerspectiveConfig::default(),
        &CoreConfig::paper_default(),
        &fixture_workload(),
    )
}

/// Genuine on-disk entry bytes, produced once through the real store
/// path (`cached_measure` miss → atomic write), then read back.
fn entry_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!(
            "persp-memo-robust-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let cfg = CacheConfig::on(&dir);
        let m = memo::cached_measure(
            &cfg,
            Protocol::Standard,
            Scheme::Perspective,
            &KernelConfig::test_small(),
            &PerspectiveConfig::default(),
            &CoreConfig::paper_default(),
            &fixture_workload(),
            || Ok(fixture_measurement()),
        )
        .expect("store succeeds");
        assert_eq!(m.stats, fixture_measurement().stats);
        let key = memo::cell_key(&canonical());
        let bytes = std::fs::read(memo::entry_path(&dir, key)).expect("entry written");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

/// The stored payload rendering a correct decode must reproduce.
fn expected_payload() -> String {
    report::measurement_to_json_full(&fixture_measurement()).render()
}

/// `Err` or the exact original measurement — nothing in between, and
/// never a panic.
fn decode_is_sound(bytes: &[u8]) {
    let can = canonical();
    match memo::decode_entry(bytes, &can, Scheme::Perspective, WORKLOAD_NAME) {
        Err(_) => {}
        Ok(m) => assert_eq!(
            report::measurement_to_json_full(&m).render(),
            expected_payload(),
            "decode accepted mangled bytes but returned a different measurement"
        ),
    }
}

#[test]
fn pristine_entry_decodes_to_the_stored_measurement() {
    let m = memo::decode_entry(
        entry_bytes(),
        &canonical(),
        Scheme::Perspective,
        WORKLOAD_NAME,
    )
    .expect("pristine entry decodes");
    assert_eq!(
        report::measurement_to_json_full(&m).render(),
        expected_payload()
    );
}

#[test]
fn empty_and_garbage_entries_error() {
    decode_is_sound(b"");
    decode_is_sound(b"\0\0\0\0");
    decode_is_sound(b"not json at all");
    decode_is_sound("{\"format\":1}".as_bytes());
    // Valid JSON, wrong shape entirely.
    decode_is_sound(b"[1,2,3]");
}

#[test]
fn wrong_expectations_are_rejected_not_wrong_results() {
    let bytes = entry_bytes();
    // Wrong canonical (different cell wants this key): must miss.
    assert!(memo::decode_entry(bytes, "other", Scheme::Perspective, WORKLOAD_NAME).is_err());
    // Wrong scheme / workload expectation: must miss.
    assert!(memo::decode_entry(bytes, &canonical(), Scheme::Fence, WORKLOAD_NAME).is_err());
    assert!(memo::decode_entry(bytes, &canonical(), Scheme::Perspective, "other").is_err());
}

/// Every prefix of a valid entry — the shapes a reader could have seen
/// if writes weren't atomic — must fail cleanly. Exhaustive, not
/// sampled: half-written files are the motivating case.
#[test]
fn every_truncation_errs_cleanly() {
    let bytes = entry_bytes();
    // Cutting trailing whitespace (the final newline) leaves a complete,
    // correct entry — only truncations into the JSON body must fail.
    let body_end = bytes
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .expect("entry has content")
        + 1;
    for len in 0..bytes.len() {
        let m = memo::decode_entry(
            &bytes[..len],
            &canonical(),
            Scheme::Perspective,
            WORKLOAD_NAME,
        );
        if len < body_end {
            assert!(m.is_err(), "truncation to {len} bytes decoded successfully");
        } else {
            decode_is_sound(&bytes[..len]);
        }
    }
}

proptest! {
    /// Flip a single byte anywhere in the entry.
    #[test]
    fn single_byte_flip_is_sound(idx in 0usize..4096, bit in 0u8..8) {
        let mut bytes = entry_bytes().to_vec();
        let idx = idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        decode_is_sound(&bytes);
    }

    /// Splice arbitrary bytes over an arbitrary range.
    #[test]
    fn random_splice_is_sound(
        start in 0usize..4096,
        len in 0usize..64,
        patch in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = entry_bytes().to_vec();
        let start = start % bytes.len();
        let end = (start + len).min(bytes.len());
        bytes.splice(start..end, patch);
        decode_is_sound(&bytes);
    }

    /// Truncate then append garbage — a torn write plus later junk.
    #[test]
    fn torn_write_with_tail_garbage_is_sound(
        keep in 0usize..4096,
        tail in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut bytes = entry_bytes().to_vec();
        bytes.truncate(keep % (bytes.len() + 1));
        bytes.extend_from_slice(&tail);
        decode_is_sound(&bytes);
    }

    /// Fully random blobs never panic.
    #[test]
    fn random_blob_is_sound(blob in proptest::collection::vec(any::<u8>(), 0..512)) {
        decode_is_sound(&blob);
    }
}
