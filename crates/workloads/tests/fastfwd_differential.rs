//! LEBench-level fast-vs-slow differential: the full measurement
//! protocol (warmup + dynamic-ISV profiling, view installation, ROI
//! delta, exported metrics registry) must be identical with the
//! idle-cycle fast-forward on and off, for baselines and for every
//! Perspective scheme.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::KernelImage;
use persp_workloads::differential::{assert_fastfwd_equivalent, measure_fastfwd_pair};
use persp_workloads::lebench;
use perspective::scheme::Scheme;

#[test]
fn lebench_cells_are_identical_under_both_stepping_modes() {
    let image = KernelImage::build(KernelConfig::test_small());
    for name in ["getpid", "small-read", "select"] {
        let w = lebench::by_name(name).unwrap();
        for scheme in [Scheme::Unsafe, Scheme::Fence, Scheme::Perspective] {
            assert_fastfwd_equivalent(scheme, &image, &w);
        }
    }
}

#[test]
fn differential_pair_actually_exercises_the_protocol() {
    // Guard against the differential passing vacuously: the measured
    // cell must have done real work (cycles, syscalls, stalls) and, for
    // a Perspective scheme, carry the policy metrics layer.
    let image = KernelImage::build(KernelConfig::test_small());
    let w = lebench::by_name("getpid").unwrap();
    let (fast, slow) = measure_fastfwd_pair(Scheme::Perspective, &image, &w);
    for m in [&fast, &slow] {
        assert!(m.stats.cycles > 0);
        assert_eq!(m.stats.syscalls, w.total_syscalls());
        assert!(m.stats.stall_cycles > 0, "real workloads stall");
        assert!(m.metrics.get("policy.fences.isv").is_some());
    }
}
