//! The parallel experiment matrix must be a pure optimization: the same
//! measurement sequence, byte for byte, whatever the worker count.
//!
//! Every test here passes its worker-pool width explicitly through
//! `run_parallel_with` / `run_matrix_with` — none of them reads or
//! writes `PERSPECTIVE_THREADS`, so they are safe under the default
//! multi-threaded test harness.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::KernelImage;
use persp_workloads::{lebench, runner};
use perspective::scheme::Scheme;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Render a measurement sequence to its full debug form — any field
/// diverging between runs shows up as a byte difference.
fn render(ms: &[runner::Measurement]) -> String {
    ms.iter().map(|m| format!("{m:?}\n")).collect::<String>()
}

#[test]
fn matrix_is_identical_serial_and_parallel() {
    let image = KernelImage::build(KernelConfig::test_small());
    let schemes = [Scheme::Unsafe, Scheme::Fence, Scheme::Perspective];
    let workloads = vec![
        lebench::by_name("getpid").unwrap(),
        lebench::by_name("small-read").unwrap(),
    ];

    let serial = runner::run_matrix_with(1, &image, &schemes, &workloads);
    let parallel = runner::run_matrix_with(8, &image, &schemes, &workloads);

    assert_eq!(serial.len(), schemes.len() * workloads.len());
    assert_eq!(
        render(&serial),
        render(&parallel),
        "measurement sequences must be byte-identical across thread counts"
    );
    // Ordering is workload-major, scheme-minor.
    for (w, row) in workloads.iter().zip(serial.chunks(schemes.len())) {
        for (s, m) in schemes.iter().zip(row) {
            assert_eq!(m.workload, w.name);
            assert_eq!(m.scheme, *s);
        }
    }
}

#[test]
fn matrix_is_identical_with_fastforward_on_and_off_across_widths() {
    // The idle fast-forward must be invisible in every measurement field
    // at every worker-pool width: one slow-path golden render, and every
    // (width, stepping-mode) combination must reproduce it byte for
    // byte. Widths below, at, and above the cell count, plus a prime.
    let image = KernelImage::build(KernelConfig::test_small());
    let schemes = [Scheme::Unsafe, Scheme::Fence, Scheme::Perspective];
    let workloads = vec![
        lebench::by_name("getpid").unwrap(),
        lebench::by_name("small-read").unwrap(),
    ];
    let (fast_cfg, slow_cfg) = persp_workloads::differential::fastfwd_pair();

    let golden = render(&runner::run_matrix_core(
        1, &image, &schemes, &workloads, slow_cfg,
    ));
    for width in [1usize, 2, 7] {
        let fast = runner::run_matrix_core(width, &image, &schemes, &workloads, fast_cfg);
        assert_eq!(
            render(&fast),
            golden,
            "width {width}: fast-forward must be byte-invisible"
        );
    }
    let slow_wide = runner::run_matrix_core(7, &image, &schemes, &workloads, slow_cfg);
    assert_eq!(render(&slow_wide), golden, "slow path stable across widths");
}

#[test]
fn run_parallel_preserves_job_order_under_contention() {
    // Jobs whose completion order is deliberately scrambled (later jobs
    // finish first) must still come back in submission order.
    let jobs: Vec<usize> = (0..64).collect();
    let started = AtomicUsize::new(0);
    let results = runner::run_parallel_with(8, jobs, |i| {
        started.fetch_add(1, Ordering::Relaxed);
        // Earlier jobs spin longest.
        let spin = (64 - i) * 500;
        let mut acc = i as u64;
        for k in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
        }
        std::hint::black_box(acc);
        i * 2
    });
    assert_eq!(started.load(Ordering::Relaxed), 64);
    assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
}

#[test]
fn run_parallel_serial_width_matches_map() {
    let jobs = vec![3usize, 1, 4, 1, 5];
    let doubled = runner::run_parallel_with(1, jobs.clone(), |x| x * 2);
    assert_eq!(doubled, jobs.into_iter().map(|x| x * 2).collect::<Vec<_>>());
}

#[test]
fn run_parallel_result_order_is_stable_across_widths() {
    // Widths below, at, and above the job count (and a prime that
    // divides nothing) must all return submission order.
    let jobs: Vec<usize> = (0..23).collect();
    let expected: Vec<usize> = jobs.iter().map(|i| i * i + 1).collect();
    for width in [1usize, 2, 7] {
        let got = runner::run_parallel_with(width, jobs.clone(), |i| i * i + 1);
        assert_eq!(got, expected, "width {width}");
    }
}

#[test]
fn run_parallel_propagates_worker_panics() {
    for width in [1usize, 2, 7] {
        let result = std::panic::catch_unwind(|| {
            runner::run_parallel_with(width, (0..16).collect::<Vec<usize>>(), |i| {
                if i == 11 {
                    panic!("job {i} exploded");
                }
                i
            })
        });
        let err = result.expect_err("the job panic must reach the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(
            msg.contains("job 11 exploded"),
            "width {width}: panic payload preserved, got {msg:?}"
        );
    }
}
