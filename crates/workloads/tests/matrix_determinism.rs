//! The parallel experiment matrix must be a pure optimization: the same
//! measurement sequence, byte for byte, whatever the worker count.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::KernelImage;
use persp_workloads::{lebench, runner};
use perspective::scheme::Scheme;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Render a measurement sequence to its full debug form — any field
/// diverging between runs shows up as a byte difference.
fn render(ms: &[runner::Measurement]) -> String {
    ms.iter().map(|m| format!("{m:?}\n")).collect::<String>()
}

#[test]
fn matrix_is_identical_serial_and_parallel() {
    let image = KernelImage::build(KernelConfig::test_small());
    let schemes = [Scheme::Unsafe, Scheme::Fence, Scheme::Perspective];
    let workloads = vec![
        lebench::by_name("getpid").unwrap(),
        lebench::by_name("small-read").unwrap(),
    ];

    // This test owns PERSPECTIVE_THREADS while it runs: the other tests
    // in this binary pass explicit widths and never read the variable.
    std::env::set_var("PERSPECTIVE_THREADS", "1");
    assert_eq!(runner::num_threads(), 1);
    let serial = runner::run_matrix(&image, &schemes, &workloads);

    std::env::set_var("PERSPECTIVE_THREADS", "8");
    assert_eq!(runner::num_threads(), 8);
    let parallel = runner::run_matrix(&image, &schemes, &workloads);
    std::env::remove_var("PERSPECTIVE_THREADS");

    assert_eq!(serial.len(), schemes.len() * workloads.len());
    assert_eq!(
        render(&serial),
        render(&parallel),
        "measurement sequences must be byte-identical across thread counts"
    );
    // Ordering is workload-major, scheme-minor.
    for (w, row) in workloads.iter().zip(serial.chunks(schemes.len())) {
        for (s, m) in schemes.iter().zip(row) {
            assert_eq!(m.workload, w.name);
            assert_eq!(m.scheme, *s);
        }
    }
}

#[test]
fn run_parallel_preserves_job_order_under_contention() {
    // Jobs whose completion order is deliberately scrambled (later jobs
    // finish first) must still come back in submission order.
    let jobs: Vec<usize> = (0..64).collect();
    let started = AtomicUsize::new(0);
    let results = runner::run_parallel_with(8, jobs, |i| {
        started.fetch_add(1, Ordering::Relaxed);
        // Earlier jobs spin longest.
        let spin = (64 - i) * 500;
        let mut acc = i as u64;
        for k in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
        }
        std::hint::black_box(acc);
        i * 2
    });
    assert_eq!(started.load(Ordering::Relaxed), 64);
    assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
}

#[test]
fn run_parallel_serial_width_matches_map() {
    let jobs = vec![3usize, 1, 4, 1, 5];
    let doubled = runner::run_parallel_with(1, jobs.clone(), |x| x * 2);
    assert_eq!(doubled, jobs.into_iter().map(|x| x * 2).collect::<Vec<_>>());
}
