//! End-to-end behavior of `cached_measure` on a real (small-kernel)
//! simulation: miss → store → hit equality, verify-mode pass and
//! mismatch detection, and corrupted-entry recovery.
//!
//! Everything lives in one `#[test]` because the hit/miss counters are
//! process-global: a single sequential function keeps the counter
//! assertions race-free without any cross-test ordering assumptions.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::KernelImage;
use persp_uarch::config::CoreConfig;
use persp_workloads::memo::{self, CacheConfig, Protocol};
use persp_workloads::{lebench, report, runner};
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

#[test]
fn cache_round_trip_verify_and_corruption_recovery() {
    let image = KernelImage::build(KernelConfig::test_small());
    let workload = lebench::by_name("getpid").expect("suite workload");
    let pcfg = PerspectiveConfig::default();
    let core = CoreConfig::paper_default();
    let scheme = Scheme::Perspective;

    let dir = std::env::temp_dir().join(format!("persp-memo-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let on = CacheConfig::on(&dir);
    let verify = CacheConfig::verify(&dir);

    let compute = || runner::measure_image_uncached(scheme, &image, &workload, pcfg, core);
    let run = |cfg: &CacheConfig| {
        memo::cached_measure(
            cfg,
            Protocol::Standard,
            scheme,
            &image.cfg,
            &pcfg,
            &core,
            &workload,
            compute,
        )
        .expect("measurement succeeds")
    };
    let render = |m: &runner::Measurement| report::measurement_to_json_full(m).render();

    memo::reset_stats();

    // Cold: a miss that computes and stores.
    let cold = run(&on);
    let s = memo::stats();
    assert_eq!((s.hits, s.misses, s.stores), (0, 1, 1));
    let key = memo::cell_key(&memo::canonical_cell(
        Protocol::Standard,
        scheme,
        &image.cfg,
        &pcfg,
        &core,
        &workload,
    ));
    let path = memo::entry_path(&dir, key);
    assert!(path.exists(), "miss stored an entry at {path:?}");

    // Warm: a hit, byte-identical to the cold result — and the compute
    // closure must not run (a cache that recomputes on hit is no cache).
    let warm = memo::cached_measure(
        &on,
        Protocol::Standard,
        scheme,
        &image.cfg,
        &pcfg,
        &core,
        &workload,
        || panic!("hit must not recompute"),
    )
    .expect("hit");
    assert_eq!(render(&warm), render(&cold));
    let s = memo::stats();
    assert_eq!((s.hits, s.misses), (1, 1));

    // Verify mode recomputes, compares, and passes.
    let verified = run(&verify);
    assert_eq!(render(&verified), render(&cold));
    let s = memo::stats();
    assert_eq!((s.verified, s.invalid), (1, 0));

    // Verify mode catches a stored result that no longer matches what
    // the simulation produces — the "semantics changed without a
    // SIM_VERSION bump" failure. Model it by recomputing against a
    // tampered-but-decodable cell: rebuild the entry for this cell from
    // a *different* measurement via the public store path (a second
    // workload's result stored under the first workload's key would
    // fail the canonical check, so instead store a doctored compute).
    let doctored = {
        let mut m = cold.clone();
        m.stats.cycles += 1;
        m
    };
    let _ = std::fs::remove_file(&path);
    let stored = memo::cached_measure(
        &on,
        Protocol::Standard,
        scheme,
        &image.cfg,
        &pcfg,
        &core,
        &workload,
        || Ok(doctored.clone()),
    )
    .expect("store doctored entry");
    assert_eq!(render(&stored), render(&doctored));
    let err = memo::cached_measure(
        &verify,
        Protocol::Standard,
        scheme,
        &image.cfg,
        &pcfg,
        &core,
        &workload,
        compute,
    )
    .expect_err("verify must flag the divergent entry");
    assert!(err.contains("VERIFY mismatch"), "unexpected error: {err}");
    assert!(
        err.contains("SIM_VERSION"),
        "error must mention the bump rule: {err}"
    );

    // Corruption recovery: clobber the entry; the next `on` lookup is a
    // counted invalid+miss that recomputes, rewrites, and still returns
    // the right result.
    std::fs::write(&path, b"{\"format\":1,\"truncated").expect("clobber entry");
    memo::reset_stats();
    let recovered = run(&on);
    assert_eq!(render(&recovered), render(&cold));
    let s = memo::stats();
    assert_eq!((s.hits, s.misses, s.invalid, s.stores), (0, 1, 1, 1));
    // And the rewrite restored a servable entry.
    let again = run(&on);
    assert_eq!(render(&again), render(&cold));
    assert_eq!(memo::stats().hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}
