//! Taint analysis over emitted kernel µISA code.
//!
//! A Kasper-style detector for bounds-check-bypass transient execution
//! gadgets. It runs directly on the *instructions* the pipeline executes
//! (not on generator metadata), tracking three facts per register:
//!
//! * **Arg-tainted** — derived from a syscall argument (`r10..=r15`), the
//!   attacker-controlled inputs;
//! * **mem-loaded** — freshly loaded from memory (candidate bound value);
//! * **secret-tainted** — loaded through an arg-tainted address *under a
//!   bounds-check guard* (the transient "access" step).
//!
//! A finding is the access plus a *transmitter* the secret reaches:
//! a dependent load (cache channel), a store of secret data (MDS-style
//! buffer leak), or a secret-dependent multiply (port contention) —
//! Kasper's three covert-channel categories (§8.2).

use persp_kernel::callgraph::{CallGraph, FuncId, GadgetKind, KFunction};
use persp_uarch::isa::{AluOp, Cond, Inst, NUM_REGS};

/// One detected gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding {
    /// Function containing the gadget.
    pub func: FuncId,
    /// Address of the access load.
    pub access_pc: u64,
    /// Address of the transmitter.
    pub transmit_pc: u64,
    /// Covert-channel category.
    pub kind: GadgetKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Taint {
    Clean,
    Arg,
    Secret,
}

/// How many instructions a bounds-check guard protects (a pragmatic
/// window, as in pattern-based scanners).
const GUARD_WINDOW: usize = 12;

/// Scan one function's emitted instructions.
///
/// `fetch` resolves an address to the instruction there (usually
/// `machine.inst_at`).
pub fn scan_function(func: &KFunction, fetch: impl Fn(u64) -> Option<Inst>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut taint = [Taint::Clean; NUM_REGS];
    let mut mem_loaded = [false; NUM_REGS];
    // Syscall arguments are attacker-controlled.
    for t in taint.iter_mut().take(16).skip(10) {
        *t = Taint::Arg;
    }
    let mut guard_at: Option<usize> = None;
    let mut last_access: Option<u64> = None;

    for i in 0..func.len_insts as usize {
        let pc = func.entry_va + i as u64 * 4;
        let Some(inst) = fetch(pc) else { continue };
        let guarded = guard_at.is_some_and(|g| i - g <= GUARD_WINDOW);
        match inst {
            Inst::MovImm { dst, .. } => {
                taint[dst as usize] = Taint::Clean;
                mem_loaded[dst as usize] = false;
            }
            Inst::Alu { op, dst, a, b } => {
                let t = taint[a as usize].max_with(taint[b as usize]);
                if op == AluOp::Mul && t == Taint::Secret {
                    if let Some(access_pc) = last_access {
                        findings.push(Finding {
                            func: func.id,
                            access_pc,
                            transmit_pc: pc,
                            kind: GadgetKind::Port,
                        });
                    }
                }
                taint[dst as usize] = t;
                mem_loaded[dst as usize] = false;
            }
            Inst::AluImm { dst, a, .. } => {
                taint[dst as usize] = taint[a as usize];
                mem_loaded[dst as usize] = false;
            }
            Inst::Load { dst, base, .. } => {
                match taint[base as usize] {
                    Taint::Secret => {
                        if let Some(access_pc) = last_access {
                            findings.push(Finding {
                                func: func.id,
                                access_pc,
                                transmit_pc: pc,
                                kind: GadgetKind::Cache,
                            });
                        }
                        taint[dst as usize] = Taint::Secret;
                    }
                    Taint::Arg if guarded => {
                        // The transient ACCESS: attacker-indexed load
                        // behind a mistrainable bounds check.
                        taint[dst as usize] = Taint::Secret;
                        last_access = Some(pc);
                    }
                    _ => {
                        taint[dst as usize] = Taint::Clean;
                    }
                }
                mem_loaded[dst as usize] = true;
            }
            Inst::Store { src, .. } if taint[src as usize] == Taint::Secret => {
                if let Some(access_pc) = last_access {
                    findings.push(Finding {
                        func: func.id,
                        access_pc,
                        transmit_pc: pc,
                        kind: GadgetKind::Mds,
                    });
                }
            }
            Inst::Branch { cond, a, b, .. } => {
                // A guard is a bounds comparison of an attacker value
                // against a freshly memory-loaded limit.
                let bounds_cond = matches!(cond, Cond::Ltu | Cond::Geu | Cond::Lt | Cond::Ge);
                let ab = taint[a as usize] == Taint::Arg && mem_loaded[b as usize];
                let ba = taint[b as usize] == Taint::Arg && mem_loaded[a as usize];
                if bounds_cond && (ab || ba) {
                    guard_at = Some(i);
                }
            }
            _ => {}
        }
    }
    findings
}

trait TaintMax {
    fn max_with(self, other: Taint) -> Taint;
}

impl TaintMax for Taint {
    fn max_with(self, other: Taint) -> Taint {
        use Taint::*;
        match (self, other) {
            (Secret, _) | (_, Secret) => Secret,
            (Arg, _) | (_, Arg) => Arg,
            _ => Clean,
        }
    }
}

/// Scan a set of functions; `bound` restricts the search space (the ISV
/// acceleration of §5.4). Returns the findings and the number of
/// instructions examined (the analysis-work metric).
pub fn scan_functions(
    graph: &CallGraph,
    funcs: impl IntoIterator<Item = FuncId>,
    fetch: impl Fn(u64) -> Option<Inst> + Copy,
) -> (Vec<Finding>, u64) {
    let mut findings = Vec::new();
    let mut insts = 0u64;
    for f in funcs {
        let kf = graph.func(f);
        insts += u64::from(kf.len_insts);
        findings.extend(scan_function(kf, fetch));
    }
    (findings, insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::body::emit_kernel;
    use persp_kernel::callgraph::KernelConfig;
    use persp_uarch::machine::Machine;
    use std::collections::HashMap;

    fn setup() -> (CallGraph, Machine) {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        let text = emit_kernel(&mut g);
        let mut m = Machine::new();
        m.load_text(text);
        (g, m)
    }

    #[test]
    fn scanner_finds_every_planted_gadget() {
        let (g, m) = setup();
        let all: Vec<FuncId> = g.funcs.iter().map(|f| f.id).collect();
        let (findings, _) = scan_functions(&g, all, |pc| m.inst_at(pc));
        let mut planted: HashMap<FuncId, usize> = HashMap::new();
        for (f, _) in &g.gadgets {
            *planted.entry(*f).or_insert(0) += 1;
        }
        let mut found: HashMap<FuncId, usize> = HashMap::new();
        for f in &findings {
            *found.entry(f.func).or_insert(0) += 1;
        }
        assert_eq!(
            findings.len(),
            g.gadgets.len(),
            "find exactly the planted set"
        );
        assert_eq!(planted, found, "per-function counts match");
    }

    #[test]
    fn scanner_classifies_kinds_correctly() {
        let (g, m) = setup();
        let all: Vec<FuncId> = g.funcs.iter().map(|f| f.id).collect();
        let (findings, _) = scan_functions(&g, all, |pc| m.inst_at(pc));
        for finding in findings {
            // The hosting gadget is the one with the greatest sequence
            // address at or before the access.
            let planted = g
                .gadgets
                .iter()
                .filter(|(f, s)| *f == finding.func && s.seq_va <= finding.access_pc)
                .max_by_key(|(_, s)| s.seq_va)
                .map(|(_, s)| s.kind);
            assert_eq!(
                planted,
                Some(finding.kind),
                "kind mismatch at {:#x}",
                finding.access_pc
            );
        }
    }

    #[test]
    fn benign_functions_produce_no_findings() {
        let (g, m) = setup();
        let benign: Vec<FuncId> = g
            .funcs
            .iter()
            .filter(|f| !g.gadgets.iter().any(|(gf, _)| *gf == f.id))
            .map(|f| f.id)
            .collect();
        let (findings, _) = scan_functions(&g, benign, |pc| m.inst_at(pc));
        assert!(findings.is_empty(), "false positives: {findings:?}");
    }

    #[test]
    fn bounding_reduces_work_proportionally() {
        let (g, m) = setup();
        let all: Vec<FuncId> = g.funcs.iter().map(|f| f.id).collect();
        let (_, full_work) = scan_functions(&g, all.clone(), |pc| m.inst_at(pc));
        let half: Vec<FuncId> = all.into_iter().take(g.len() / 2).collect();
        let (_, half_work) = scan_functions(&g, half, |pc| m.inst_at(pc));
        assert!(half_work < full_work);
        assert!(half_work > 0);
    }

    #[test]
    fn access_without_transmitter_is_not_a_finding() {
        // Hand-built: guard + access but the secret never transmits.
        use persp_kernel::callgraph::{BodyOp, FuncKind, KFunction};
        let func = KFunction {
            id: FuncId(0),
            name: "synthetic".into(),
            kind: FuncKind::ColdDriver,
            body: vec![BodyOp::Ret],
            entry_va: 0x1000,
            len_insts: 5,
        };
        let code: Vec<Inst> = vec![
            Inst::MovImm {
                dst: 20,
                imm: 0x9000,
            },
            Inst::Load {
                dst: 21,
                base: 20,
                offset: 0,
                width: persp_uarch::isa::Width::Q,
            },
            Inst::Branch {
                cond: Cond::Geu,
                a: 10,
                b: 21,
                target: 0x1014,
            },
            Inst::Load {
                dst: 22,
                base: 10,
                offset: 0,
                width: persp_uarch::isa::Width::B,
            },
            Inst::Ret,
        ];
        let findings = scan_function(&func, |pc| code.get(((pc - 0x1000) / 4) as usize).copied());
        assert!(findings.is_empty(), "access alone does not leak");
    }
}
