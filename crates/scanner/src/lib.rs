//! A Kasper-analog transient-execution gadget scanner with Syzkaller-lite
//! fuzzing, for the Perspective reproduction.
//!
//! Three layers, mirroring the paper's auditing pipeline (§5.4, §6.1,
//! §8.2):
//!
//! * [`taint`] — taint analysis over the *emitted kernel instructions*,
//!   detecting bounds-check-bypass gadgets and classifying their covert
//!   channel (MDS buffer / port contention / cache).
//! * [`scanner`] — kernel-wide sweeps, optionally bounded to an ISV (the
//!   search-space reduction), producing the exclusion lists that harden
//!   views into ISV++.
//! * [`fuzzer`] — a coverage-guided syscall fuzzer interleaving execution
//!   on the simulated core with analysis, reproducing the
//!   gadgets-per-hour discovery-rate experiment of Figure 9.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzzer;
pub mod scanner;
pub mod taint;

pub use fuzzer::{compare_bounded, FuzzReport, Fuzzer, SearchSpace};
pub use scanner::{scan_bounded, scan_kernel, ScanReport};
pub use taint::{scan_function, scan_functions, Finding};
