//! Kernel-wide gadget scanning with optional ISV bounding.
//!
//! Reproduces the §8.2 auditing experiment: scanning the whole kernel
//! examines ~28 K functions; bounding the search space to a workload's
//! ISV shrinks it to a few percent, which both accelerates discovery and
//! yields the exclusion list that hardens the view into ISV++.

use crate::taint::{scan_functions, Finding};
use persp_kernel::callgraph::{CallGraph, FuncId, GadgetKind};
use persp_uarch::isa::Inst;
use std::collections::HashSet;

/// Result of one scanning campaign.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// All findings.
    pub findings: Vec<Finding>,
    /// Functions examined.
    pub functions_scanned: usize,
    /// Instructions examined (analysis-work metric).
    pub insts_scanned: u64,
}

impl ScanReport {
    /// Count findings of one category.
    pub fn count_kind(&self, kind: GadgetKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// The set of functions hosting at least one finding — the exclusion
    /// list for ISV++ hardening.
    pub fn flagged_functions(&self) -> HashSet<FuncId> {
        self.findings.iter().map(|f| f.func).collect()
    }
}

/// Scan the whole kernel.
pub fn scan_kernel(graph: &CallGraph, fetch: impl Fn(u64) -> Option<Inst> + Copy) -> ScanReport {
    let all: Vec<FuncId> = graph.funcs.iter().map(|f| f.id).collect();
    let functions_scanned = all.len();
    let (findings, insts_scanned) = scan_functions(graph, all, fetch);
    ScanReport {
        findings,
        functions_scanned,
        insts_scanned,
    }
}

/// Scan only the functions inside an ISV (the bounded search space).
pub fn scan_bounded(
    graph: &CallGraph,
    bound: &HashSet<FuncId>,
    fetch: impl Fn(u64) -> Option<Inst> + Copy,
) -> ScanReport {
    let mut funcs: Vec<FuncId> = bound.iter().copied().collect();
    funcs.sort_unstable();
    let functions_scanned = funcs.len();
    let (findings, insts_scanned) = scan_functions(graph, funcs, fetch);
    ScanReport {
        findings,
        functions_scanned,
        insts_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::body::emit_kernel;
    use persp_kernel::callgraph::KernelConfig;
    use persp_kernel::syscalls::Sysno;
    use persp_uarch::machine::Machine;

    fn setup() -> (CallGraph, Machine) {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        let text = emit_kernel(&mut g);
        let mut m = Machine::new();
        m.load_text(text);
        (g, m)
    }

    #[test]
    fn full_scan_matches_planted_totals() {
        let (g, m) = setup();
        let report = scan_kernel(&g, |pc| m.inst_at(pc));
        assert_eq!(report.findings.len(), g.gadgets.len());
        assert_eq!(report.functions_scanned, g.len());
        // Category split follows Kasper's proportions (MDS > Port > Cache).
        let mds = report.count_kind(GadgetKind::Mds);
        let port = report.count_kind(GadgetKind::Port);
        let cache = report.count_kind(GadgetKind::Cache);
        assert!(mds > port && port > cache, "{mds}/{port}/{cache}");
    }

    #[test]
    fn bounded_scan_reduces_space_and_finds_subset() {
        let (g, m) = setup();
        let bound = g.static_reachable(&[Sysno::Read, Sysno::Write, Sysno::Poll]);
        let full = scan_kernel(&g, |pc| m.inst_at(pc));
        let bounded = scan_bounded(&g, &bound, |pc| m.inst_at(pc));
        assert!(bounded.functions_scanned < full.functions_scanned / 2);
        assert!(bounded.insts_scanned < full.insts_scanned / 2);
        let full_set = full.flagged_functions();
        for f in bounded.flagged_functions() {
            assert!(full_set.contains(&f));
        }
    }

    #[test]
    fn flagged_functions_harden_into_a_gadget_free_view() {
        use perspective::isv::{Isv, IsvKind};
        let (g, m) = setup();
        let live = g.live_reachable(Sysno::ALL);
        let isv = Isv::from_func_set(&g, live.clone(), IsvKind::Dynamic);
        let report = scan_bounded(&g, &live, |pc| m.inst_at(pc));
        let hardened = isv.hardened_with_audit(&g, report.flagged_functions());
        // ISV++ blocks every identified gadget (Table 8.2's 100 % row).
        for (host, _) in &g.gadgets {
            assert!(!hardened.contains_func(*host));
        }
    }
}
