//! A Syzkaller-lite coverage-guided syscall fuzzer driving the gadget
//! scanner — the discovery-rate experiment of Figure 9.1.
//!
//! Kasper's pipeline interleaves *execution* (fuzzing syscalls to grow
//! coverage) with *analysis* (taint-scanning the covered code). Bounding
//! the campaign to a workload's ISV shrinks the analysis work and skips
//! out-of-profile syscalls, improving the gadgets-per-hour rate by the
//! 1.14–2.23× range the paper reports; execution work is unchanged, which
//! is why the speedup is far below the raw 20× search-space reduction.

use crate::scanner::ScanReport;
use crate::taint::scan_functions;
use persp_kernel::callgraph::FuncId;
use persp_kernel::kernel::SharedKernel;
use persp_kernel::layout;
use persp_kernel::syscalls::Sysno;
use persp_uarch::isa::{Assembler, Inst, REG_ARG0, REG_ARG1, REG_ARG2, REG_SYSNO};
use persp_uarch::pipeline::Core;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Work-accounting constants: one simulated cycle of fuzz execution vs.
/// one instruction of taint analysis. Analysis is the cheaper unit but a
/// full-kernel sweep runs it over ~600 K instructions per round.
const ANALYSIS_COST_PER_INST: u64 = 4;

/// Result of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Distinct gadgets discovered, as `(function, access pc)`.
    pub found: HashSet<(FuncId, u64)>,
    /// Total work units spent (execution + analysis).
    pub work_units: u64,
    /// Simulated execution cycles.
    pub exec_cycles: u64,
    /// Instructions taint-scanned.
    pub insts_scanned: u64,
    /// Functions covered by fuzz executions.
    pub coverage: usize,
}

impl FuzzReport {
    /// Distinct gadgets discovered.
    pub fn gadgets_found(&self) -> usize {
        self.found.len()
    }

    /// Discovery rate in gadgets per mega-work-unit (∝ gadgets/hour).
    pub fn discovery_rate(&self) -> f64 {
        self.rate_over(self.found.len())
    }

    /// Discovery rate counting only the gadgets inside `relevant` — the
    /// ones that remain speculatively reachable under the deployed ISV,
    /// i.e. the audit targets of §8.2. This is the Figure 9.1 metric: a
    /// baseline Kasper campaign spends most of its work on code the ISV
    /// already blocks.
    pub fn relevant_rate(&self, relevant: &HashSet<FuncId>) -> f64 {
        let n = self
            .found
            .iter()
            .filter(|(f, _)| relevant.contains(f))
            .count();
        self.rate_over(n)
    }

    fn rate_over(&self, n: usize) -> f64 {
        if self.work_units == 0 {
            0.0
        } else {
            n as f64 * 1_000_000.0 / self.work_units as f64
        }
    }
}

/// A fuzzing campaign over a live kernel instance.
pub struct Fuzzer<'a> {
    core: &'a mut Core,
    kernel: SharedKernel,
    rng: SmallRng,
    seed: u64,
    asid: u16,
    rounds_between_scans: usize,
}

impl<'a> Fuzzer<'a> {
    /// Attach a fuzzer to a running core/kernel pair (process `asid` must
    /// exist).
    pub fn new(core: &'a mut Core, kernel: SharedKernel, asid: u16, seed: u64) -> Self {
        Fuzzer {
            core,
            kernel,
            rng: SmallRng::seed_from_u64(seed),
            seed,
            asid,
            rounds_between_scans: 4,
        }
    }

    fn fuzz_program(&mut self, base: u64, syscalls: &[Sysno], calls: usize) -> Vec<(u64, Inst)> {
        let mut asm = Assembler::new(base);
        let data = layout::user_data_base(u32::from(self.asid));
        for _ in 0..calls {
            let sys = syscalls[self.rng.gen_range(0..syscalls.len())];
            asm.movi(REG_ARG0, self.rng.gen_range(0..64));
            asm.movi(REG_ARG1, data + self.rng.gen_range(0..16u64) * 4096);
            asm.movi(REG_ARG2, self.rng.gen_range(0..16));
            asm.movi(REG_SYSNO, sys as u16 as u64);
            asm.push(Inst::Syscall);
        }
        asm.push(Inst::Halt);
        asm.finish()
    }

    /// Run a campaign of `rounds` fuzz programs, scanning newly covered
    /// functions after every few rounds. `bound` restricts both the
    /// syscall profile and the analysis space (the ISV acceleration); pass
    /// `None` for the whole-kernel baseline.
    pub fn campaign(
        &mut self,
        rounds: usize,
        syscalls: &[Sysno],
        bound: Option<&HashSet<FuncId>>,
    ) -> FuzzReport {
        let mut covered: HashSet<FuncId> = HashSet::new();
        let mut scanned: HashSet<FuncId> = HashSet::new();
        let mut found: HashSet<(FuncId, u64)> = HashSet::new();
        let mut exec_cycles = 0u64;
        let mut insts_scanned = 0u64;

        // Each campaign assembles its programs into a seed-dependent slice
        // of the text window so that concurrent campaigns on one machine
        // image never collide.
        let base =
            layout::user_text_base(u32::from(self.asid)) + 0x10_0000 + (self.seed % 8) * 0x10_0000;
        for round in 0..rounds {
            // Execution: one randomized syscall program.
            let prog = self.fuzz_program(base + round as u64 * 0x4000, syscalls, 6);
            self.core.machine.load_text(prog);
            self.kernel
                .borrow()
                .set_current(self.asid, &mut self.core.machine);
            self.core.enable_call_trace();
            let entry = base + round as u64 * 0x4000;
            if let Ok(summary) = self.core.run(entry, 4_000_000) {
                exec_cycles += summary.stats.cycles;
            }
            let trace = self.core.take_call_trace();
            {
                let kernel = self.kernel.borrow();
                for va in trace {
                    if let Some(f) = kernel.graph.func_of_va(va) {
                        if bound.is_none_or(|b| b.contains(&f)) {
                            covered.insert(f);
                        }
                    }
                }
            }

            // Analysis: scan functions covered since the last scan.
            if (round + 1) % self.rounds_between_scans == 0 || round + 1 == rounds {
                let fresh: Vec<FuncId> = covered.difference(&scanned).copied().collect();
                let kernel = self.kernel.borrow();
                let machine = &self.core.machine;
                let (findings, insts) =
                    scan_functions(&kernel.graph, fresh.iter().copied(), |pc| {
                        machine.inst_at(pc)
                    });
                insts_scanned += insts;
                for f in findings {
                    found.insert((f.func, f.access_pc));
                }
                scanned.extend(fresh);
            }
        }

        FuzzReport {
            found,
            work_units: exec_cycles + insts_scanned * ANALYSIS_COST_PER_INST,
            exec_cycles,
            insts_scanned,
            coverage: covered.len(),
        }
    }
}

/// Convenience: full-kernel campaign versus ISV-bounded campaign for one
/// application profile; returns `(baseline, bounded)` reports.
pub fn compare_bounded(
    core: &mut Core,
    kernel: SharedKernel,
    asid: u16,
    app_syscalls: &[Sysno],
    isv_funcs: &HashSet<FuncId>,
    rounds: usize,
) -> (FuzzReport, FuzzReport) {
    // Both campaigns explore the same (whole) syscall interface with the
    // same seed and a reset syscall-sequence counter: coverage is
    // identical, so the rate difference isolates the analysis-work
    // savings of bounding Kasper's scanning to the ISV (§6.1). A
    // discarded warmup round equalizes microarchitectural state.
    let _ = app_syscalls;
    let all: Vec<Sysno> = Sysno::ALL
        .iter()
        .copied()
        .filter(|s| !matches!(s, Sysno::Exit | Sysno::Execve | Sysno::Fork | Sysno::Clone))
        .collect();
    let _warmup = Fuzzer::new(core, kernel.clone(), asid, 0xF055).campaign(rounds, &all, None);
    core.machine
        .mem
        .write_u64(persp_kernel::layout::SYSCALL_SEQ, 0);
    let baseline = Fuzzer::new(core, kernel.clone(), asid, 0xF055).campaign(rounds, &all, None);
    core.machine
        .mem
        .write_u64(persp_kernel::layout::SYSCALL_SEQ, 0);
    let bounded = Fuzzer::new(core, kernel, asid, 0xF055).campaign(rounds, &all, Some(isv_funcs));
    (baseline, bounded)
}

/// Gadget search-space summary (the "28 K → 1.4 K" numbers of §8.2).
#[derive(Debug, Clone, Copy)]
pub struct SearchSpace {
    /// Functions in the whole kernel.
    pub kernel_functions: usize,
    /// Functions inside the ISV.
    pub isv_functions: usize,
}

impl SearchSpace {
    /// Reduction factor.
    pub fn reduction(&self) -> f64 {
        self.kernel_functions as f64 / self.isv_functions.max(1) as f64
    }
}

/// Scan-only acceleration report: how much faster a single full-space
/// sweep becomes when bounded (pure analysis, no fuzzing).
pub fn sweep_speedup(full: &ScanReport, bounded: &ScanReport) -> f64 {
    if bounded.insts_scanned == 0 {
        return 1.0;
    }
    full.insts_scanned as f64 / bounded.insts_scanned as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::callgraph::KernelConfig;
    use persp_kernel::kernel::Kernel;
    use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
    use persp_uarch::config::CoreConfig;
    use persp_uarch::machine::Machine;
    use persp_uarch::policy::UnsafePolicy;

    fn setup() -> (Core, SharedKernel, u16) {
        let kernel = Kernel::build_unprotected(KernelConfig::test_small());
        let shared = SharedKernel::new(kernel);
        let mut machine = Machine::new();
        shared.borrow().install(&mut machine);
        let pid = shared.borrow_mut().create_process(1, &mut machine);
        let core = Core::new(
            CoreConfig::paper_default(),
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            Box::new(UnsafePolicy::new()),
            Box::new(shared.clone()),
        );
        (core, shared, pid as u16)
    }

    #[test]
    fn campaign_finds_gadgets_and_accounts_work() {
        let (mut core, kernel, asid) = setup();
        let mut fuzzer = Fuzzer::new(&mut core, kernel, asid, 7);
        let report = fuzzer.campaign(8, &[Sysno::Getpid, Sysno::Read, Sysno::Fstat], None);
        assert!(report.coverage > 3, "coverage {}", report.coverage);
        assert!(report.exec_cycles > 0);
        assert!(report.insts_scanned > 0);
        assert!(report.work_units >= report.exec_cycles);
    }

    #[test]
    fn bounded_campaign_accelerates_relevant_discovery() {
        let (mut core, kernel, asid) = setup();
        let app: Vec<Sysno> = vec![
            Sysno::Read,
            Sysno::Write,
            Sysno::Fstat,
            Sysno::Poll,
            Sysno::Open,
            Sysno::Close,
        ];
        let isv_funcs = kernel.borrow().graph.live_reachable(&app);
        let (baseline, bounded) = compare_bounded(&mut core, kernel, asid, &app, &isv_funcs, 12);
        assert!(
            bounded.gadgets_found() > 0,
            "bounded campaign still finds gadgets"
        );
        let b = baseline.relevant_rate(&isv_funcs);
        let r = bounded.relevant_rate(&isv_funcs);
        assert!(
            r > b,
            "bounding must accelerate discovery of ISV gadgets: {r} vs {b}"
        );
    }

    #[test]
    fn search_space_reduction_factor() {
        let s = SearchSpace {
            kernel_functions: 28_000,
            isv_functions: 1_400,
        };
        assert!((s.reduction() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_given_seed() {
        let (mut core, kernel, asid) = setup();
        let r1 = Fuzzer::new(&mut core, kernel.clone(), asid, 42).campaign(
            4,
            &[Sysno::Getpid, Sysno::Read],
            None,
        );
        let (mut core2, kernel2, asid2) = setup();
        let r2 = Fuzzer::new(&mut core2, kernel2, asid2, 42).campaign(
            4,
            &[Sysno::Getpid, Sysno::Read],
            None,
        );
        assert_eq!(r1.gadgets_found(), r2.gadgets_found());
        assert_eq!(r1.coverage, r2.coverage);
        let _ = asid;
    }
}
