//! The simulated virtual address space layout.
//!
//! The mini-OS mirrors the monolithic Linux layout the paper targets: one
//! flat address space with kernel text, shared kernel globals, a *direct
//! map* of every physical frame (the region that makes kernel gadgets so
//! dangerous — §2.3), and low userspace ranges. There is no translation in
//! the simulator; disjoint ranges play the role of distinct mappings.

/// Page size (bytes).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;

/// Base of kernel text (synthetic kernel functions + syscall stubs).
pub const KTEXT_BASE: u64 = 0xFFFF_8000_0000_0000;
/// Base of shared kernel globals: the syscall dispatch table, function
/// pointer (ops) tables, per-cpu variables such as `CURRENT_TASK`.
/// These are *Shared*-ownership data: every DSV contains them.
pub const KDATA_SHARED_BASE: u64 = 0xFFFF_8400_0000_0000;
/// Base of kernel-*private* globals: data the kernel owns itself
/// (scheduler run-queues, inode hashes). A process's kernel thread reads
/// them architecturally, but they are in no process DSV, so speculative
/// access is fenced — the benign false positives §9.2 attributes to DSVs.
pub const KDATA_KPRIV_BASE: u64 = 0xFFFF_8500_0000_0000;
/// Base of kernel globals with *Unknown* ownership (§6.1 "Resolving
/// Unknown Allocations"): not registered with any DSV, so Perspective
/// conservatively blocks speculative access.
pub const KDATA_UNKNOWN_BASE: u64 = 0xFFFF_8600_0000_0000;
/// Base of the direct map: physical frame `f` is visible at
/// `DIRECT_MAP_BASE + f * PAGE_SIZE`.
pub const DIRECT_MAP_BASE: u64 = 0xFFFF_9000_0000_0000;
/// First address above every kernel region (exclusive bound).
pub const KERNEL_SPACE_END: u64 = 0xFFFF_A000_0000_0000;

/// Address of the per-cpu `CURRENT_TASK` pointer (shared kernel data).
pub const CURRENT_TASK_PTR: u64 = KDATA_SHARED_BASE;
/// Address of the shared global holding the most recent allocation's
/// direct-map address (what allocation-heavy syscall paths touch next).
pub const LAST_ALLOC_PTR: u64 = KDATA_SHARED_BASE + 8;
/// Address of the global syscall sequence counter (incremented by every
/// syscall's semantics hook); gates rarely-taken kernel paths.
pub const SYSCALL_SEQ: u64 = KDATA_SHARED_BASE + 16;
/// Address of the shared global holding the current eBPF map pointer
/// (set by the extension loader; read by the ioctl hook prologue).
pub const EBPF_MAP_PTR: u64 = KDATA_SHARED_BASE + 24;
/// Text region where verified extension programs are installed.
pub const EBPF_TEXT_BASE: u64 = KTEXT_BASE + 0x0100_0000_0000;
/// Address of the syscall dispatch table (shared kernel rodata); entry `n`
/// is at `SYSCALL_TABLE + n * 8`.
pub const SYSCALL_TABLE: u64 = KDATA_SHARED_BASE + 0x1000;
/// Address of the kernel ops (function pointer) tables used by indirect
/// calls; laid out by the code generator.
pub const OPS_TABLES: u64 = KDATA_SHARED_BASE + 0x4000;
/// Scratch region for miscellaneous shared globals used by generated
/// function bodies.
pub const SHARED_GLOBALS: u64 = KDATA_SHARED_BASE + 0x0100_0000;

/// Base of userspace text; process `pid` gets a 16 MiB text window.
pub const USER_TEXT_BASE: u64 = 0x0000_0000_4000_0000;
/// Base of userspace data; process `pid` gets a 256 MiB data window.
pub const USER_DATA_BASE: u64 = 0x0000_0010_0000_0000;
/// Per-process text window size.
pub const USER_TEXT_STRIDE: u64 = 16 * 1024 * 1024;
/// Per-process data window size.
pub const USER_DATA_STRIDE: u64 = 256 * 1024 * 1024;

/// Direct-map virtual address of a physical frame.
pub fn frame_to_va(frame: u64) -> u64 {
    DIRECT_MAP_BASE + frame * PAGE_SIZE
}

/// Physical frame of a direct-map virtual address, if it is one.
pub fn va_to_frame(va: u64) -> Option<u64> {
    if (DIRECT_MAP_BASE..KERNEL_SPACE_END).contains(&va) {
        Some((va - DIRECT_MAP_BASE) >> PAGE_SHIFT)
    } else {
        None
    }
}

/// Is this a kernel-space address (text, globals, or direct map)?
pub fn is_kernel_va(va: u64) -> bool {
    va >= KTEXT_BASE
}

/// Userspace text base of process `pid`.
pub fn user_text_base(pid: u32) -> u64 {
    USER_TEXT_BASE + u64::from(pid) * USER_TEXT_STRIDE
}

/// Userspace data base of process `pid`.
pub fn user_data_base(pid: u32) -> u64 {
    USER_DATA_BASE + u64::from(pid) * USER_DATA_STRIDE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_map_round_trip() {
        assert_eq!(va_to_frame(frame_to_va(42)), Some(42));
        assert_eq!(va_to_frame(0x1000), None);
        assert_eq!(va_to_frame(KTEXT_BASE), None);
    }

    #[test]
    fn kernel_classification() {
        assert!(is_kernel_va(KTEXT_BASE));
        assert!(is_kernel_va(frame_to_va(7)));
        assert!(is_kernel_va(CURRENT_TASK_PTR));
        assert!(!is_kernel_va(user_text_base(3)));
    }

    #[test]
    fn user_windows_are_disjoint() {
        assert!(user_text_base(0) + USER_TEXT_STRIDE <= user_text_base(1));
        assert!(user_data_base(0) + USER_DATA_STRIDE <= user_data_base(1));
        assert!(
            user_text_base(1000) < USER_DATA_BASE,
            "text never collides with data"
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents layout invariants
    fn shared_regions_are_ordered() {
        assert!(CURRENT_TASK_PTR < LAST_ALLOC_PTR);
        assert!(LAST_ALLOC_PTR < SYSCALL_TABLE);
        assert!(SYSCALL_TABLE < OPS_TABLES);
        assert!(OPS_TABLES < SHARED_GLOBALS);
        assert!(SHARED_GLOBALS < KDATA_KPRIV_BASE);
        assert!(KDATA_KPRIV_BASE < KDATA_UNKNOWN_BASE);
    }
}
