//! Procedurally generated kernel call graph.
//!
//! The paper's attack-surface and auditing experiments are properties of
//! the Linux call graph: ~28 K functions, of which each application's
//! syscall footprint statically reaches ~9 % and dynamically exercises
//! ~5 %, with transient-execution gadgets "deeply buried within
//! infrequently used modules" (§4.2). We reproduce that *shape* with a
//! seeded, deterministic generator:
//!
//! * **Syscall entry functions** — one per [`Sysno`], rooted at the
//!   dispatch stub.
//! * **Syscall implementation pools** — per-syscall trees of helper
//!   functions connected by unconditional, conditional (flag-guarded) and
//!   indirect (ops-table) call edges. Conditional edges whose flag is
//!   clear and indirect-only callees are what separate the *static* ISV
//!   (direct-edge closure) from the *dynamic* ISV (actually executed).
//! * **Shared utilities** — `copy_to_user`-style helpers reachable from
//!   many syscalls.
//! * **Cold driver modules** — the bulk of the kernel; unreachable from
//!   common workloads and hosting most of the planted gadgets.
//!
//! The same structures drive µISA code generation ([`crate::body`]), so
//! the graph the analyses see is exactly the code the pipeline runs.

use crate::layout::{KDATA_KPRIV_BASE, SHARED_GLOBALS};
use crate::syscalls::Sysno;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Identifier of a kernel function (index into [`CallGraph::funcs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Dense VA → function-index map over the contiguous function region.
///
/// Functions are laid out back-to-back (64-byte aligned) from a single
/// base address, so one `u32` per 4-byte instruction slot resolves any
/// text VA to its owning function in O(1) — the lookup the ISV
/// membership probe performs on every cache-line fill. Alignment
/// padding between functions maps to [`VaFuncMap::NONE`].
#[derive(Debug, Clone, Default)]
pub struct VaFuncMap {
    /// First mapped VA (the entry of the first function).
    base: u64,
    /// Function index per instruction slot; `NONE` for padding.
    slots: Vec<u32>,
}

impl VaFuncMap {
    /// Sentinel for unmapped slots (alignment padding).
    pub const NONE: u32 = u32::MAX;

    /// Build from emitted functions (requires `entry_va`/`len_insts`
    /// assigned, i.e. run after [`crate::body::emit_kernel`] pass 1).
    pub fn build(funcs: &[KFunction]) -> Self {
        let Some(first) = funcs.first() else {
            return VaFuncMap::default();
        };
        let base = first.entry_va;
        let end = funcs
            .last()
            .map(|f| f.entry_va + u64::from(f.len_insts) * 4)
            .unwrap_or(base);
        let mut slots = vec![Self::NONE; ((end - base) / 4) as usize];
        for f in funcs {
            let start = ((f.entry_va - base) / 4) as usize;
            slots[start..start + f.len_insts as usize].fill(f.id.0);
        }
        VaFuncMap { base, slots }
    }

    /// The function containing `va`, if `va` is a mapped text address.
    #[inline]
    pub fn func_of_va(&self, va: u64) -> Option<FuncId> {
        let slot = va.checked_sub(self.base)? / 4;
        match self.slots.get(slot as usize) {
            Some(&idx) if idx != Self::NONE => Some(FuncId(idx)),
            _ => None,
        }
    }

    /// True once [`VaFuncMap::build`] has populated the map.
    pub fn is_built(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Number of instruction slots covered (padding included).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }
}

/// Transient-execution gadget categories, following Kasper's taxonomy
/// (§8.2): microarchitectural-buffer leaks, port contention, and
/// cache-based covert channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetKind {
    /// Leaks through microarchitectural buffers (store with secret data).
    Mds,
    /// Leaks through execution-port contention (secret-dependent latency).
    Port,
    /// Leaks through the cache (secret-dependent load address).
    Cache,
}

/// The role a function plays in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncKind {
    /// `sys_<name>` entry function.
    SyscallEntry(Sysno),
    /// Helper in one syscall's implementation pool.
    SyscallImpl(Sysno),
    /// Shared utility (`copy_to_user` and friends).
    SharedUtil,
    /// Cold driver / rarely-used subsystem code.
    ColdDriver,
}

/// One generated kernel function.
#[derive(Debug, Clone)]
pub struct KFunction {
    /// Identifier.
    pub id: FuncId,
    /// Human-readable name (`sys_read`, `fs_0042`, ...).
    pub name: String,
    /// Role.
    pub kind: FuncKind,
    /// Body intermediate representation (emitted by [`crate::body`]).
    pub body: Vec<BodyOp>,
    /// Entry virtual address (assigned by [`crate::body::emit_kernel`]).
    pub entry_va: u64,
    /// Body length in instructions (assigned during emission).
    pub len_insts: u32,
}

/// Body intermediate representation. Emission rules live in
/// [`crate::body`]; the ops are kept abstract here so analyses (scanner,
/// ISV generation) can work on structure instead of raw instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyOp {
    /// `n` register-to-register ALU instructions.
    AluBurst(u8),
    /// Load from an absolute shared-global address.
    SharedLoad(u64),
    /// Dereference `CURRENT_TASK -> task.field -> object` (+ optional
    /// store back): the ctx-owned data accesses DSVs govern.
    CtxAccess {
        /// Task-struct field index.
        field: u8,
        /// Store to the object after loading it.
        store: bool,
    },
    /// Load from a global with unknown ownership (§6.1).
    UnknownLoad(u64),
    /// Unconditional direct call.
    CallDirect(FuncId),
    /// Direct call guarded by a runtime flag load + branch.
    CallCond {
        /// Callee.
        callee: FuncId,
        /// Address of the guarding flag (shared global).
        flag_addr: u64,
        /// Whether the flag is set at boot (the edge executes).
        taken: bool,
    },
    /// Indirect call through an ops-table slot.
    CallIndirect {
        /// Slot index in the ops table.
        slot: u32,
    },
    /// Direct call taken only when the global syscall sequence counter
    /// hits the mask — a *rarely executed* kernel path (error handling,
    /// slow paths). Statically reachable, dynamically traced only during
    /// long profiling runs, and cheap to exclude from hardened views
    /// because it seldom runs.
    CallRare {
        /// Callee.
        callee: FuncId,
        /// Executes when `seq & mask == 0`.
        mask: u64,
    },
    /// A planted transient-execution gadget.
    Gadget(GadgetSite),
    /// A "dispatch gadget": dereferences the first syscall-argument
    /// register and transmits the byte through a kernel probe region —
    /// the speculative-type-confusion pattern BHI-style attacks pivot
    /// into. It is a *legitimate* indirect-call target on the `getpid`
    /// path, so the kernel itself installs its BTB entry.
    BhiGadget {
        /// Kernel probe region base used by the transmit step.
        kprobe_base_va: u64,
    },
    /// The passive-attack PoC target: dereferences
    /// `CURRENT_TASK -> secret` and transmits the byte through a
    /// kernel probe region. Sits in cold driver code — outside every
    /// workload ISV — and is only ever *speculatively* reached via
    /// control-flow hijacking (Figure 4.2's "Function 2").
    SecretLeak {
        /// Kernel probe region base used by the transmit step.
        kprobe_base_va: u64,
    },
    /// Data-dependent scan over the fd array (select/poll/epoll bodies).
    FdScanLoop,
    /// Word-copy loop between the user buffer and the page cache.
    CopyLoop {
        /// Copy toward userspace (read) or from it (write).
        to_user: bool,
    },
    /// The ioctl extension hook: loads the current eBPF map pointer and
    /// dispatches through the reserved ops-table slot (benign stub until
    /// a program is loaded).
    EbpfHook {
        /// Reserved ops-table slot the loader repoints.
        slot: u32,
    },
    /// Touch the most recently allocated kernel object (through the
    /// `LAST_ALLOC_PTR` global) — what allocation-heavy paths do right
    /// after allocating; the first speculative touch of a fresh page is a
    /// DSVMT miss (the fork/page-fault overhead source of §9.1).
    TouchRecentAlloc,
    /// Kernel semantic hook.
    Hook(u16),
    /// Function epilogue.
    Ret,
}

/// A planted gadget and the addresses its code uses — enough for the
/// attack PoCs to target it and for the scanner to verify against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GadgetSite {
    /// Category.
    pub kind: GadgetKind,
    /// Shared global holding a *pointer* to the bound (double indirection
    /// widens the speculation window, as in real CVE gadgets where the
    /// length sits behind an object graph).
    pub bound_ptr_va: u64,
    /// Shared global holding the bound value.
    pub bound_val_va: u64,
    /// Base of the in-bounds array the gadget legitimately indexes.
    pub array_base_va: u64,
    /// Kernel probe region used by the transmit step.
    pub kprobe_base_va: u64,
    /// VA of the gadget's first instruction (filled during emission);
    /// the hijack target for passive-attack PoCs.
    pub seq_va: u64,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelConfig {
    /// Total kernel functions (paper: ~28 K in Linux v5.4).
    pub num_functions: usize,
    /// Planted gadgets (Kasper finds 1533 in Linux).
    pub num_gadgets: usize,
    /// Fraction of gadgets placed in syscall-reachable code (the rest go
    /// to cold drivers). Calibrated so Table 8.2's blocked percentages
    /// emerge.
    pub gadget_hot_fraction: f64,
    /// Mean size of one syscall's implementation pool.
    pub pool_mean: usize,
    /// Number of shared utility functions.
    pub num_utils: usize,
    /// Probability that a call edge is conditional.
    pub cond_edge_prob: f64,
    /// Probability that a conditional edge's flag is set (edge executes).
    pub flag_set_prob: f64,
    /// Probability that a pool function is reachable only indirectly.
    pub indirect_only_prob: f64,
    /// RNG seed (everything is deterministic given the seed).
    pub seed: u64,
    /// Physical frames the kernel manages.
    pub num_frames: u64,
    /// Use Perspective's secure slab allocator.
    pub secure_slab: bool,
}

impl KernelConfig {
    /// Paper-scale kernel: 28 K functions, 1533 gadgets.
    pub fn paper() -> Self {
        KernelConfig {
            num_functions: 28_000,
            num_gadgets: 1533,
            gadget_hot_fraction: 0.40,
            pool_mean: 140,
            num_utils: 420,
            cond_edge_prob: 0.55,
            flag_set_prob: 0.55,
            indirect_only_prob: 0.04,
            seed: 0x5eed_1dea,
            num_frames: 1 << 16,
            secure_slab: true,
        }
    }

    /// A small kernel for fast unit tests (same shape, ~1/20 scale).
    pub fn test_small() -> Self {
        KernelConfig {
            num_functions: 1_500,
            num_gadgets: 90,
            pool_mean: 18,
            num_utils: 40,
            ..Self::paper()
        }
    }
}

/// The generated kernel call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Configuration used for generation.
    pub cfg: KernelConfig,
    /// All functions, indexed by [`FuncId`].
    pub funcs: Vec<KFunction>,
    /// Entry function per syscall.
    pub entries: HashMap<Sysno, FuncId>,
    /// Ops-table slot -> target function (indirect-call resolution).
    pub ops_table: Vec<FuncId>,
    /// Boot-time values of shared globals `(va, value)` (flags, bounds,
    /// gadget pointers).
    pub globals: Vec<(u64, u64)>,
    /// All planted gadgets with their host functions.
    pub gadgets: Vec<(FuncId, GadgetSite)>,
    /// The passive-attack PoC target function and its kernel probe base.
    pub passive_target: Option<(FuncId, u64)>,
    /// The BHI dispatch-gadget handler, its kernel probe base, and the
    /// ops-table slot whose indirect call legitimately reaches it.
    pub bhi_target: Option<(FuncId, u64)>,
    /// The reserved ops-table slot for loaded extension programs.
    pub ebpf_slot: u32,
    /// Functions reached only through rarely-taken (`CallRare`) edges —
    /// where most reachable gadgets hide (§4.2's "infrequently used
    /// code").
    pub rare_funcs: Vec<FuncId>,
    /// Next free shared-global address (bump allocator).
    next_global: u64,
    /// Next free kernel-private global address (bump allocator).
    next_kpriv: u64,
    /// Sorted `(entry_va, id)` for VA lookup; built during emission.
    pub va_index: Vec<(u64, FuncId)>,
    /// Dense O(1) VA → function map; built during emission. Shared via
    /// `Arc` so speculation views can keep a handle without cloning the
    /// table.
    pub va_map: Arc<VaFuncMap>,
}

impl CallGraph {
    /// Generate a kernel deterministically from `cfg.seed`.
    pub fn generate(cfg: KernelConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut graph = CallGraph {
            cfg,
            funcs: Vec::with_capacity(cfg.num_functions),
            entries: HashMap::new(),
            ops_table: Vec::new(),
            globals: Vec::new(),
            gadgets: Vec::new(),
            passive_target: None,
            bhi_target: None,
            ebpf_slot: 0,
            rare_funcs: Vec::new(),
            next_global: SHARED_GLOBALS,
            next_kpriv: KDATA_KPRIV_BASE,
            va_index: Vec::new(),
            va_map: Arc::new(VaFuncMap::default()),
        };

        // 1. Syscall entry functions.
        for &sys in Sysno::ALL {
            let id = graph.push(format!("sys_{sys}"), FuncKind::SyscallEntry(sys));
            graph.entries.insert(sys, id);
        }

        // 2. Shared utilities (leaf-ish helpers used across syscalls).
        let util_start = graph.funcs.len();
        for i in 0..cfg.num_utils {
            graph.push(format!("util_{i:04}"), FuncKind::SharedUtil);
        }
        let utils: Vec<FuncId> = (util_start..util_start + cfg.num_utils)
            .map(|i| FuncId(i as u32))
            .collect();

        // 3. Per-syscall implementation pools.
        let mut pools: HashMap<Sysno, Vec<FuncId>> = HashMap::new();
        for &sys in Sysno::ALL {
            let size = rng.gen_range(cfg.pool_mean * 2 / 3..=cfg.pool_mean * 4 / 3);
            let mut pool = Vec::with_capacity(size);
            for i in 0..size {
                if graph.funcs.len() >= cfg.num_functions {
                    break;
                }
                pool.push(graph.push(format!("{sys}_impl_{i:03}"), FuncKind::SyscallImpl(sys)));
            }
            pools.insert(sys, pool);
        }

        // 4. Cold drivers fill the remainder.
        let mut cold = Vec::new();
        let mut i = 0;
        while graph.funcs.len() < cfg.num_functions {
            cold.push(graph.push(format!("drv_{i:05}"), FuncKind::ColdDriver));
            i += 1;
        }

        // 4a2. Guarantee at least one Cache gadget on an unconditionally
        //      executed path (the active-attack PoC target): the first
        //      root of the `fstat` pool is called on every invocation.
        let guaranteed_host = pools[&Sysno::Fstat].first().copied();

        // 4b. Dedicate one cold-driver function as the passive-attack PoC
        //     target (the "Function 2" of Figure 4.2).
        if let Some(&target) = cold.first() {
            let kprobe = graph.next_global;
            graph.next_global += 4096 * 257; // room for a 256-line probe region
            graph.funcs[target.0 as usize].body = vec![
                BodyOp::SecretLeak {
                    kprobe_base_va: kprobe,
                },
                BodyOp::Ret,
            ];
            graph.passive_target = Some((target, kprobe));
        }

        // 5. Wire the pools into trees and give everything a body.
        for &sys in Sysno::ALL {
            let pool = pools[&sys].clone();
            graph.wire_syscall(sys, &pool, &utils, &mut rng);
        }
        for (k, &u) in utils.iter().enumerate() {
            // Utils may only call strictly-later utils: keeps the call
            // graph acyclic (no unbounded recursion at runtime).
            let later = utils[k + 1..].to_vec();
            let body = graph.generic_body(&mut rng, &[], &later, 0.15);
            graph.funcs[u.0 as usize].body = body;
        }
        let reserved_slot_target = (cold.len() > 2).then(|| cold[2]);
        for &c in &cold {
            if graph.passive_target.map(|(f, _)| f) == Some(c)
                || graph.bhi_target.map(|(f, _)| f) == Some(c)
                || reserved_slot_target == Some(c)
            {
                continue;
            }
            let body = graph.generic_body(&mut rng, &[], &[], 0.0);
            graph.funcs[c.0 as usize].body = body;
        }

        // 5b. Dedicate another cold function as the BHI dispatch gadget:
        //     a legitimate ops-table target on the *write* path. On that
        //     path the argument register legitimately holds a small fd, so
        //     the dereference is architecturally harmless; the type
        //     confusion only exists when a *different* syscall's dispatch
        //     is transiently steered here.
        if cold.len() > 1 {
            let handler = cold[1];
            let kprobe = graph.next_global;
            graph.next_global += 4096 * 257;
            graph.funcs[handler.0 as usize].body = vec![
                BodyOp::BhiGadget {
                    kprobe_base_va: kprobe,
                },
                BodyOp::Ret,
            ];
            let slot = graph.ops_table.len() as u32;
            graph.ops_table.push(handler);
            let entry = graph.entries[&Sysno::Write];
            let body = &mut graph.funcs[entry.0 as usize].body;
            let at = body.len().saturating_sub(1);
            body.insert(at, BodyOp::CallIndirect { slot });
            graph.bhi_target = Some((handler, kprobe));
        }

        // 5c. Reserve the extension (eBPF) hook: a benign stub handler in
        //     the ops table, dispatched from the ioctl path; the loader
        //     repoints the slot at verified user programs.
        if cold.len() > 2 {
            let stub = cold[2];
            graph.funcs[stub.0 as usize].body = vec![BodyOp::AluBurst(1), BodyOp::Ret];
            let slot = graph.ops_table.len() as u32;
            graph.ops_table.push(stub);
            graph.ebpf_slot = slot;
            let entry = graph.entries[&Sysno::Ioctl];
            let body = &mut graph.funcs[entry.0 as usize].body;
            let at = body.len().saturating_sub(1);
            body.insert(at, BodyOp::EbpfHook { slot });
        }

        // 6. Plant gadgets: `gadget_hot_fraction` into syscall-reachable
        //    code, the rest deep in cold drivers (§4.2's observation).
        let hot_candidates: Vec<FuncId> = Sysno::ALL
            .iter()
            .flat_map(|s| pools[s].iter().copied())
            .chain(utils.iter().copied())
            .collect();
        // Kasper's split: 805 MDS / 509 Port / 219 Cache out of 1533.
        // Kind and placement are independent draws so that every category
        // appears both in reachable code and in cold drivers.
        let random_gadgets = cfg.num_gadgets.saturating_sub(1);
        let kinds: Vec<GadgetKind> = (0..random_gadgets)
            .map(|k| match k * 1533 / random_gadgets.max(1) {
                0..=804 => GadgetKind::Mds,
                805..=1313 => GadgetKind::Port,
                _ => GadgetKind::Cache,
            })
            .collect();
        let rare_pool = graph.rare_funcs.clone();
        if let Some(host) = guaranteed_host {
            let site = graph.new_gadget_site(GadgetKind::Cache);
            let body = &mut graph.funcs[host.0 as usize].body;
            let at = body.len().saturating_sub(1);
            body.insert(at, BodyOp::Gadget(site));
            graph.gadgets.push((host, site));
        }
        for (k, kind) in kinds.into_iter().enumerate() {
            let _ = k;
            let hot = rng.gen_bool(cfg.gadget_hot_fraction) || cold.is_empty();
            let host = if hot {
                // Reachable gadgets sit overwhelmingly in rarely-executed
                // code (§4.2); a small share lands on hot paths.
                if !rare_pool.is_empty() && rng.gen_bool(0.96) {
                    rare_pool[rng.gen_range(0..rare_pool.len())]
                } else {
                    hot_candidates[rng.gen_range(0..hot_candidates.len())]
                }
            } else {
                cold[rng.gen_range(0..cold.len())]
            };
            let site = graph.new_gadget_site(kind);
            // Insert before the epilogue.
            let body = &mut graph.funcs[host.0 as usize].body;
            let at = body.len().saturating_sub(1);
            body.insert(at, BodyOp::Gadget(site));
            graph.gadgets.push((host, site));
        }

        graph
    }

    fn push(&mut self, name: String, kind: FuncKind) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(KFunction {
            id,
            name,
            kind,
            body: vec![BodyOp::Ret],
            entry_va: 0,
            len_insts: 0,
        });
        id
    }

    fn alloc_global(&mut self, value: u64) -> u64 {
        let va = self.next_global;
        self.next_global += 8;
        self.globals.push((va, value));
        va
    }

    fn alloc_kpriv_global(&mut self, value: u64) -> u64 {
        let va = self.next_kpriv;
        self.next_kpriv += 8;
        self.globals.push((va, value));
        va
    }

    fn new_gadget_site(&mut self, kind: GadgetKind) -> GadgetSite {
        // Each hop of the bound chain lives on its own cache line: the
        // double indirection only widens the speculation window if both
        // loads actually miss (as in real gadgets, where the length sits
        // in a separately-allocated object).
        self.next_global = (self.next_global + 63) & !63;
        let bound_val_va = self.alloc_global(64); // benign bound
        self.next_global = (self.next_global + 63) & !63;
        let bound_ptr_va = self.alloc_global(bound_val_va);
        // A 64-entry in-bounds array the gadget legitimately indexes.
        self.next_global = (self.next_global + 63) & !63;
        let array_base_va = self.next_global;
        for _ in 0..8 {
            self.alloc_global(0x1111_1111_1111_1111);
        }
        self.next_global = (self.next_global + 63) & !63;
        let kprobe_base_va = self.next_global;
        // Reserve the probe region sparsely (values irrelevant).
        self.next_global += 4096 * 4;
        GadgetSite {
            kind,
            bound_ptr_va,
            bound_val_va,
            array_base_va,
            kprobe_base_va,
            seq_va: 0,
        }
    }

    /// Build the call tree for one syscall: the entry calls 1–3 pool
    /// roots; each subsequent pool function hangs off an earlier one via
    /// an unconditional, conditional, or indirect edge.
    fn wire_syscall(&mut self, sys: Sysno, pool: &[FuncId], utils: &[FuncId], rng: &mut SmallRng) {
        let cfg = self.cfg;
        // Give each pool function a generic body first (call edges appended).
        for (idx, &f) in pool.iter().enumerate() {
            let later = &pool[idx + 1..];
            let body = self.generic_body(rng, later, utils, 0.3);
            self.funcs[f.0 as usize].body = body;
        }
        // Tree edges: parent(j) < j. The `stat` pool is wired as one deep
        // linear, unconditional chain — call depth far beyond the 16-entry
        // RSB, the Retbleed/Spectre-RSB precondition (§4.2).
        let deep_chain = sys == Sysno::Stat;
        let rare_from = pool.len().saturating_sub(pool.len() * 15 / 100);
        let mut indirect_only: Vec<bool> = vec![false; pool.len()];
        for j in 1..pool.len() {
            let parent = if deep_chain {
                pool[j - 1]
            } else {
                // Indirect-only targets are leaf handlers: never parents.
                let mut p = rng.gen_range(0..j);
                for _ in 0..8 {
                    if !indirect_only[p] {
                        break;
                    }
                    p = rng.gen_range(0..j);
                }
                if indirect_only[p] {
                    p = 0;
                }
                pool[p]
            };
            let child = pool[j];
            let op = if deep_chain {
                BodyOp::CallDirect(child)
            } else if j >= rare_from {
                // Slow/error paths: statically reachable, rarely run.
                self.rare_funcs.push(child);
                BodyOp::CallRare {
                    callee: child,
                    mask: 0x3,
                }
            } else if rng.gen_bool(cfg.indirect_only_prob) {
                let slot = self.ops_table.len() as u32;
                self.ops_table.push(child);
                indirect_only[j] = true;
                // Indirect-call targets are small ops handlers (a
                // `file_operations` callback doing one field's work).
                let addr = self.alloc_global(rng.gen_range(1..1000));
                self.funcs[child.0 as usize].body =
                    vec![BodyOp::AluBurst(2), BodyOp::SharedLoad(addr), BodyOp::Ret];
                BodyOp::CallIndirect { slot }
            } else if rng.gen_bool(cfg.cond_edge_prob) {
                let taken = rng.gen_bool(cfg.flag_set_prob);
                let flag_addr = self.alloc_global(u64::from(taken));
                BodyOp::CallCond {
                    callee: child,
                    flag_addr,
                    taken,
                }
            } else {
                BodyOp::CallDirect(child)
            };
            let body = &mut self.funcs[parent.0 as usize].body;
            let at = body.len().saturating_sub(1);
            body.insert(at, op);
        }
        // The entry function: semantics hook + special body + root calls.
        let entry = self.entries[&sys];
        let mut body = vec![BodyOp::Hook(sys as u16), BodyOp::AluBurst(2)];
        match sys {
            Sysno::Select | Sysno::Poll | Sysno::EpollWait => body.push(BodyOp::FdScanLoop),
            Sysno::Read | Sysno::Recv | Sysno::Recvfrom => {
                body.push(BodyOp::CopyLoop { to_user: true })
            }
            Sysno::Write | Sysno::Send | Sysno::Sendto => {
                body.push(BodyOp::CopyLoop { to_user: false })
            }
            _ => body.push(BodyOp::CtxAccess {
                field: 0,
                store: false,
            }),
        }
        let roots = rng.gen_range(1..=3.min(pool.len().max(1)));
        for &root in pool.iter().take(roots) {
            body.push(BodyOp::CallDirect(root));
        }
        if matches!(
            sys,
            Sysno::Mmap
                | Sysno::Brk
                | Sysno::PageFault
                | Sysno::Fork
                | Sysno::Clone
                | Sysno::Poll
                | Sysno::Select
                | Sysno::EpollWait
                | Sysno::Open
                | Sysno::Socket
        ) {
            body.push(BodyOp::TouchRecentAlloc);
        }
        body.push(BodyOp::Ret);
        self.funcs[entry.0 as usize].body = body;
    }

    /// A generic function body: ALU work, data accesses, and occasional
    /// extra util calls.
    fn generic_body(
        &mut self,
        rng: &mut SmallRng,
        _later_pool: &[FuncId],
        utils: &[FuncId],
        util_call_prob: f64,
    ) -> Vec<BodyOp> {
        let mut body = Vec::new();
        body.push(BodyOp::AluBurst(rng.gen_range(1..=3)));
        for _ in 0..rng.gen_range(1..=3) {
            let r: f64 = rng.gen();
            if r < 0.40 {
                let field = rng.gen_range(0..5u8);
                body.push(BodyOp::CtxAccess {
                    field,
                    store: rng.gen_bool(0.3),
                });
            } else if r < 0.58 {
                let addr = self.alloc_global(rng.gen_range(1..1000));
                body.push(BodyOp::SharedLoad(addr));
            } else if r < 0.985 {
                // Kernel-private data: architecturally fine, but in no
                // process DSV — the dominant benign DSV fence source
                // (Table 10.1's ~80 % DSV share).
                let addr = self.alloc_kpriv_global(rng.gen_range(1..1000));
                body.push(BodyOp::SharedLoad(addr));
            } else {
                // Rare unknown-ownership access (§6.1, §9.2).
                let addr = crate::layout::KDATA_UNKNOWN_BASE + rng.gen_range(0..1u64 << 20) * 8;
                body.push(BodyOp::UnknownLoad(addr));
            }
        }
        if !utils.is_empty() && rng.gen_bool(util_call_prob) {
            let u = utils[rng.gen_range(0..utils.len())];
            body.push(BodyOp::CallDirect(u));
        }
        body.push(BodyOp::Ret);
        body
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Is the graph empty (never true for generated kernels)?
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Function metadata by id.
    pub fn func(&self, id: FuncId) -> &KFunction {
        &self.funcs[id.0 as usize]
    }

    /// Static analysis: the set of functions reachable from `syscalls`
    /// entry points following *direct* edges only (unconditional and
    /// conditional calls). Indirect-call targets are invisible to static
    /// analysis (§5.3, Figure 5.3a) and are not included.
    pub fn static_reachable(&self, syscalls: &[Sysno]) -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<FuncId> = syscalls
            .iter()
            .filter_map(|s| self.entries.get(s))
            .copied()
            .collect();
        for &f in &stack {
            seen.insert(f);
        }
        while let Some(f) = stack.pop() {
            for op in &self.funcs[f.0 as usize].body {
                let callee = match op {
                    BodyOp::CallDirect(c) => Some(*c),
                    BodyOp::CallCond { callee, .. } => Some(*callee),
                    BodyOp::CallRare { callee, .. } => Some(*callee),
                    _ => None,
                };
                if let Some(c) = callee {
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
        }
        seen
    }

    /// Runtime-reachability: the set of functions the execution of
    /// `syscalls` actually enters — unconditional and flag-set conditional
    /// edges, *plus* indirect-call targets (which execute even though
    /// static analysis cannot see them). This is the ground truth a
    /// dynamic trace converges to.
    pub fn live_reachable(&self, syscalls: &[Sysno]) -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<FuncId> = syscalls
            .iter()
            .filter_map(|s| self.entries.get(s))
            .copied()
            .collect();
        for &f in &stack {
            seen.insert(f);
        }
        while let Some(f) = stack.pop() {
            for op in &self.funcs[f.0 as usize].body {
                let callee = match op {
                    BodyOp::CallDirect(c) => Some(*c),
                    BodyOp::CallCond {
                        callee,
                        taken: true,
                        ..
                    } => Some(*callee),
                    BodyOp::CallIndirect { slot } => Some(self.ops_table[*slot as usize]),
                    BodyOp::CallRare { callee, .. } => Some(*callee),
                    _ => None,
                };
                if let Some(c) = callee {
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
        }
        seen
    }

    /// Like [`CallGraph::live_reachable`] but excluding rarely-taken
    /// (`CallRare`) edges: the set of functions *every* execution of the
    /// syscalls enters, regardless of sequence alignment.
    pub fn live_always_reachable(&self, syscalls: &[Sysno]) -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<FuncId> = syscalls
            .iter()
            .filter_map(|s| self.entries.get(s))
            .copied()
            .collect();
        for &f in &stack {
            seen.insert(f);
        }
        while let Some(f) = stack.pop() {
            for op in &self.funcs[f.0 as usize].body {
                let callee = match op {
                    BodyOp::CallDirect(c) => Some(*c),
                    BodyOp::CallCond {
                        callee,
                        taken: true,
                        ..
                    } => Some(*callee),
                    BodyOp::CallIndirect { slot } => Some(self.ops_table[*slot as usize]),
                    _ => None,
                };
                if let Some(c) = callee {
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
        }
        seen
    }

    /// The function containing `va`, if any (valid after emission).
    pub fn func_of_va(&self, va: u64) -> Option<FuncId> {
        if self.va_map.is_built() {
            return self.va_map.func_of_va(va);
        }
        let idx = self.va_index.partition_point(|&(entry, _)| entry <= va);
        if idx == 0 {
            return None;
        }
        let (entry, id) = self.va_index[idx - 1];
        let f = self.func(id);
        (va < entry + u64::from(f.len_insts) * 4).then_some(id)
    }

    /// Gadgets hosted by functions in `set`.
    pub fn gadgets_within(&self, set: &HashSet<FuncId>) -> Vec<(FuncId, GadgetSite)> {
        self.gadgets
            .iter()
            .filter(|(f, _)| set.contains(f))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CallGraph {
        CallGraph::generate(KernelConfig::test_small())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.funcs.iter().zip(&b.funcs) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.body, fb.body);
        }
    }

    #[test]
    fn every_syscall_has_an_entry() {
        let g = small();
        for &s in Sysno::ALL {
            let e = g.entries[&s];
            assert!(matches!(g.func(e).kind, FuncKind::SyscallEntry(x) if x == s));
            assert!(matches!(g.func(e).body.first(), Some(BodyOp::Hook(_))));
        }
    }

    #[test]
    fn function_count_matches_config() {
        let g = small();
        assert_eq!(g.len(), KernelConfig::test_small().num_functions);
    }

    #[test]
    fn gadget_count_and_split() {
        let g = small();
        assert_eq!(g.gadgets.len(), KernelConfig::test_small().num_gadgets);
        let mds = g
            .gadgets
            .iter()
            .filter(|(_, s)| s.kind == GadgetKind::Mds)
            .count();
        let port = g
            .gadgets
            .iter()
            .filter(|(_, s)| s.kind == GadgetKind::Port)
            .count();
        let cache = g
            .gadgets
            .iter()
            .filter(|(_, s)| s.kind == GadgetKind::Cache)
            .count();
        assert!(
            mds > port && port > cache,
            "Kasper split order: {mds}/{port}/{cache}"
        );
    }

    #[test]
    fn static_reachability_is_a_small_fraction() {
        // The small test kernel has proportionally fewer cold drivers, so
        // use a realistic application-sized syscall set.
        let g = small();
        let app = &Sysno::ALL[..8];
        let reach = g.static_reachable(app);
        assert!(reach.len() < g.len() / 2, "{} of {}", reach.len(), g.len());
        assert!(reach.len() > app.len());
    }

    #[test]
    fn static_reachability_grows_with_syscall_set() {
        let g = small();
        let small_set = g.static_reachable(&[Sysno::Getpid]);
        let bigger = g.static_reachable(&[Sysno::Getpid, Sysno::Read, Sysno::Mmap]);
        assert!(bigger.len() > small_set.len());
        assert!(small_set.is_subset(&bigger));
    }

    #[test]
    fn indirect_targets_are_not_statically_reachable() {
        let g = small();
        let all: Vec<Sysno> = Sysno::ALL.to_vec();
        let reach = g.static_reachable(&all);
        // At least one ops-table target whose only inbound edge is the
        // indirect call must be outside the static closure.
        let mut direct_targets = HashSet::new();
        for f in &g.funcs {
            for op in &f.body {
                match op {
                    BodyOp::CallDirect(c) => {
                        direct_targets.insert(*c);
                    }
                    BodyOp::CallCond { callee, .. } => {
                        direct_targets.insert(*callee);
                    }
                    _ => {}
                }
            }
        }
        let indirect_only: Vec<FuncId> = g
            .ops_table
            .iter()
            .copied()
            .filter(|t| !direct_targets.contains(t))
            .collect();
        assert!(
            !indirect_only.is_empty(),
            "generator produced no indirect-only functions"
        );
        assert!(indirect_only.iter().any(|t| !reach.contains(t)));
    }

    #[test]
    fn gadgets_within_filters_by_set() {
        let g = small();
        let all_funcs: HashSet<FuncId> = g.funcs.iter().map(|f| f.id).collect();
        assert_eq!(g.gadgets_within(&all_funcs).len(), g.gadgets.len());
        assert!(g.gadgets_within(&HashSet::new()).is_empty());
    }

    #[test]
    fn cold_drivers_host_most_gadgets() {
        let g = small();
        let cold = g
            .gadgets
            .iter()
            .filter(|(f, _)| matches!(g.func(*f).kind, FuncKind::ColdDriver))
            .count();
        // Roughly half land in cold drivers (the placement knob is
        // calibrated so Table 8.2's in-view fractions emerge).
        assert!(
            cold * 5 > g.gadgets.len() * 2,
            "gadgets should be buried in cold modules: {cold}/{}",
            g.gadgets.len()
        );
    }
}
