//! A minimal eBPF-style extension subsystem — the Table 4.1 rows 3–4
//! vulnerability class.
//!
//! Userspace can load small restricted programs into the kernel; a
//! verifier proves them *architecturally* memory-safe before they are
//! installed behind the `ioctl` path's extension hook. The verifier
//! reasons about committed execution only — bounds checks are trusted to
//! be respected — which is precisely the blind spot the eBPF CVEs
//! exploit: a mistrained branch lets the *transient* execution of a
//! verified program sail past its own bounds check (speculative
//! out-of-bounds, CVE-2019-7308 and friends; speculative type confusion,
//! CVE-2021-33624).
//!
//! The paper's point (§4.2): such vulnerabilities let an attacker
//! *inject* transient execution gadgets into the kernel, and Perspective
//! neutralizes them wholesale — the injected gadget's speculative access
//! to foreign data violates the attacker's DSV no matter how it got into
//! the kernel.

use crate::kernel::Kernel;
use persp_uarch::isa::{AluOp, Cond, Inst, INST_BYTES};
use persp_uarch::machine::Machine;
use std::fmt;

/// Register conventions for extension programs: `r10`/`r11` are the ioctl
/// arguments, `r13` holds the map base (set up by the kernel-side hook),
/// and `r18..=r28` are scratch.
pub const EBPF_MAP_REG: u8 = 13;

/// Size of the per-program data map in bytes.
pub const EBPF_MAP_BYTES: u64 = 256;

/// Maximum program length (instructions, excluding the final `Ret`).
pub const EBPF_MAX_INSTS: usize = 64;

/// Why the verifier rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// Program too long.
    TooLong,
    /// An instruction type is not allowed in extension programs.
    ForbiddenInstruction {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A memory access was not provably inside the map.
    UnprovenAccess {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A branch target leaves the program (only forward skips within the
    /// program are allowed).
    BadBranchTarget {
        /// Index of the offending instruction.
        index: usize,
    },
    /// The program must end with `Ret`.
    MissingRet,
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::TooLong => write!(f, "program exceeds {EBPF_MAX_INSTS} instructions"),
            VerifierError::ForbiddenInstruction { index } => {
                write!(f, "forbidden instruction at {index}")
            }
            VerifierError::UnprovenAccess { index } => {
                write!(f, "memory access at {index} not provably within the map")
            }
            VerifierError::BadBranchTarget { index } => {
                write!(f, "branch at {index} leaves the program")
            }
            VerifierError::MissingRet => write!(f, "program must end with ret"),
        }
    }
}

impl std::error::Error for VerifierError {}

/// The *architectural* verifier: forward abstract interpretation tracking,
/// per register, whether its value is a known-bounded map offset.
///
/// A load/store through `r13 + r` is accepted if `r` is (a) a constant
/// within the map, or (b) **dominated by a bounds check** `branch Geu r,
/// bound -> skip-past-the-access` — architecturally sound, because a
/// committed out-of-bounds value takes the branch. Transiently it is not,
/// and the verifier cannot know that: the modelled CVE.
pub fn verify(prog: &[Inst]) -> Result<(), VerifierError> {
    if prog.len() > EBPF_MAX_INSTS + 1 {
        return Err(VerifierError::TooLong);
    }
    match prog.last() {
        Some(Inst::Ret) => {}
        _ => return Err(VerifierError::MissingRet),
    }

    // Abstract state:
    // * `upper[r]`    — conservative upper bound on r's value;
    // * `guard_end[r]` — r is a *bounds-checked index* (< the map size)
    //   for instructions before this index (established by a dominating
    //   `if (r >= bound) skip` branch);
    // * `safe_ptr_end[r]` — r is `map_base + checked_index`, valid as a
    //   pointer into the map before this index.
    let mut upper: [Option<u64>; 32] = [None; 32];
    upper[0] = Some(0);
    let mut guard_end: [Option<usize>; 32] = [None; 32];
    let mut safe_ptr_end: [Option<usize>; 32] = [None; 32];
    // For safe pointers: bytes of provable headroom above the pointer's
    // maximum value within the map.
    let mut safe_room: [u64; 32] = [0; 32];
    // Registers holding the kernel-maintained bound from map slot 0
    // (calling-convention contract: the loader keeps `map[0] <=` the map
    // size, so a comparison against it is a valid bounds check).
    let mut is_map_bound: [bool; 32] = [false; 32];

    for (i, inst) in prog.iter().enumerate() {
        match *inst {
            Inst::MovImm { dst, imm } => {
                upper[dst as usize] = Some(imm);
                guard_end[dst as usize] = None;
                safe_ptr_end[dst as usize] = None;
                is_map_bound[dst as usize] = false;
            }
            Inst::Alu { op, dst, a, b } => {
                // `map + index` produces a safe map pointer when the
                // index is either branch-guarded (architecturally only!)
                // or *data-flow bounded* (e.g. masked — sound even
                // transiently, since ALU facts hold on wrong paths too).
                // (scope, headroom): guard-derived indices may reach the
                // whole map (no headroom); data-flow-bounded indices
                // leave `MAP - upper` bytes of room above the pointer.
                let bounded = |r: u8| -> Option<(usize, u64)> {
                    if let Some(end) = guard_end[r as usize] {
                        return Some((end, 0));
                    }
                    upper[r as usize]
                        .filter(|&u| u + 8 <= EBPF_MAP_BYTES)
                        .map(|u| (usize::MAX, EBPF_MAP_BYTES - u))
                };
                let safe = match op {
                    AluOp::Add if a == EBPF_MAP_REG => bounded(b),
                    AluOp::Add if b == EBPF_MAP_REG => bounded(a),
                    _ => None,
                };
                safe_ptr_end[dst as usize] = safe.map(|(end, _)| end);
                safe_room[dst as usize] = safe.map_or(0, |(_, room)| room);
                upper[dst as usize] = match (op, upper[a as usize], upper[b as usize]) {
                    (AluOp::Add, Some(x), Some(y)) => x.checked_add(y),
                    (AluOp::And, Some(x), Some(y)) => Some(x.min(y)),
                    (AluOp::And, Some(x), None) | (AluOp::And, None, Some(x)) => Some(x),
                    _ => None,
                };
                guard_end[dst as usize] = None;
                is_map_bound[dst as usize] = false;
            }
            Inst::AluImm { op, dst, a, imm } => {
                upper[dst as usize] = match (op, upper[a as usize]) {
                    (AluOp::Add, Some(x)) => x.checked_add(imm),
                    (AluOp::And, _) => Some(imm),
                    (AluOp::Shl, Some(x)) => x.checked_shl((imm & 63) as u32),
                    (AluOp::Shr, Some(x)) => Some(x >> (imm & 63)),
                    // a <= x implies a^imm <= a|imm <= x|imm.
                    (AluOp::Xor, Some(x)) => Some(x | imm),
                    _ => None,
                };
                guard_end[dst as usize] = None;
                safe_ptr_end[dst as usize] = None;
                is_map_bound[dst as usize] = false;
            }
            Inst::Load {
                base,
                offset,
                width,
                dst,
            } => {
                check_access(i, base, offset, width.bytes(), &safe_ptr_end, &safe_room)?;
                upper[dst as usize] = None;
                guard_end[dst as usize] = None;
                safe_ptr_end[dst as usize] = None;
                is_map_bound[dst as usize] = base == EBPF_MAP_REG && offset == 0;
            }
            Inst::Store {
                base,
                offset,
                width,
                ..
            } => {
                check_access(i, base, offset, width.bytes(), &safe_ptr_end, &safe_room)?;
            }
            Inst::Branch { cond, a, b, target } => {
                // Only forward skips within the program.
                let this_pc = i as u64 * INST_BYTES;
                if target <= this_pc || target > prog.len() as u64 * INST_BYTES {
                    return Err(VerifierError::BadBranchTarget { index: i });
                }
                let skip_to = (target / INST_BYTES) as usize;
                // `if (a >= bound) goto skip` architecturally guarantees
                // a < bound on the fall-through path up to `skip_to` —
                // and only architecturally, which is the modelled CVE.
                if cond == Cond::Geu {
                    let const_bound =
                        upper[b as usize].is_some_and(|bound| bound <= EBPF_MAP_BYTES);
                    if const_bound || is_map_bound[b as usize] {
                        if let Some(bound) = upper[b as usize] {
                            upper[a as usize] = Some(bound.saturating_sub(1));
                        }
                        guard_end[a as usize] = Some(skip_to);
                    }
                }
            }
            Inst::Nop | Inst::Ret => {}
            _ => return Err(VerifierError::ForbiddenInstruction { index: i }),
        }
        // Expire guard scopes we have left.
        for g in guard_end.iter_mut().chain(safe_ptr_end.iter_mut()) {
            if let Some(end) = *g {
                if i + 1 >= end {
                    *g = None;
                }
            }
        }
    }
    Ok(())
}

fn check_access(
    index: usize,
    base: u8,
    offset: i64,
    bytes: u64,
    safe_ptr_end: &[Option<usize>; 32],
    safe_room: &[u64; 32],
) -> Result<(), VerifierError> {
    if base == EBPF_MAP_REG {
        if offset >= 0 && offset as u64 + bytes <= EBPF_MAP_BYTES {
            return Ok(());
        }
        return Err(VerifierError::UnprovenAccess { index });
    }
    // Guard-derived pointers get one access-width of contractual slack
    // (the kernel sizes maps so `map[bound-1]` is loadable); data-flow
    // bounded pointers carry their proven headroom.
    let room = safe_room[base as usize].max(8);
    if offset >= 0
        && offset as u64 + bytes <= room
        && safe_ptr_end[base as usize].is_some_and(|end| index < end)
    {
        return Ok(());
    }
    Err(VerifierError::UnprovenAccess { index })
}

/// A loaded program's kernel-side metadata.
#[derive(Debug, Clone, Copy)]
pub struct LoadedEbpf {
    /// Entry address of the installed program text.
    pub entry_va: u64,
    /// Direct-map address of the program's data map.
    pub map_va: u64,
}

impl Kernel {
    /// Verify and install an extension program for the `ioctl` hook of
    /// the current machine image. Returns the installed entry and map.
    ///
    /// # Errors
    ///
    /// Returns the verifier's rejection, leaving the kernel unchanged.
    pub fn load_ebpf(
        &mut self,
        prog: &[Inst],
        cgroup: crate::context::CgroupId,
        machine: &mut Machine,
    ) -> Result<LoadedEbpf, VerifierError> {
        verify(prog)?;

        // Allocate the map (ctx-owned: the loader's cgroup).
        let sink = self.sink();
        let mut s = sink.borrow_mut();
        let map_va = self
            .slab
            .kmalloc(EBPF_MAP_BYTES as usize, cgroup, &mut self.buddy, &mut *s)
            .expect("out of kernel memory for eBPF map");
        drop(s);

        // Install the text in the extension region and point the ioctl
        // ops-table slot at it.
        let entry_va = self.next_ebpf_va;
        let mut va = entry_va;
        let mut text = Vec::with_capacity(prog.len());
        for inst in prog {
            // Rebase branch targets (program-relative) to absolute.
            let abs = match *inst {
                Inst::Branch { cond, a, b, target } => Inst::Branch {
                    cond,
                    a,
                    b,
                    target: entry_va + target,
                },
                other => other,
            };
            text.push((va, abs));
            va += INST_BYTES;
        }
        self.next_ebpf_va = (va + 63) & !63;
        machine.load_text(text);
        machine.mem.write_u64(crate::layout::EBPF_MAP_PTR, map_va);
        machine.mem.write_u64(
            crate::layout::OPS_TABLES + u64::from(self.graph.ebpf_slot) * 8,
            entry_va,
        );
        Ok(LoadedEbpf { entry_va, map_va })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_uarch::isa::Width;

    fn ld(dst: u8, base: u8, offset: i64) -> Inst {
        Inst::Load {
            dst,
            base,
            offset,
            width: Width::B,
        }
    }

    #[test]
    fn constant_offset_access_is_accepted() {
        let prog = vec![ld(20, EBPF_MAP_REG, 8), Inst::Ret];
        assert_eq!(verify(&prog), Ok(()));
    }

    #[test]
    fn out_of_map_constant_offset_is_rejected() {
        let prog = vec![ld(20, EBPF_MAP_REG, EBPF_MAP_BYTES as i64), Inst::Ret];
        assert!(matches!(
            verify(&prog),
            Err(VerifierError::UnprovenAccess { index: 0 })
        ));
    }

    #[test]
    fn unguarded_dynamic_index_is_rejected() {
        // addr = map + r10 (attacker-controlled, unguarded).
        let prog = vec![
            Inst::Alu {
                op: AluOp::Add,
                dst: 20,
                a: EBPF_MAP_REG,
                b: 10,
            },
            ld(21, 20, 0),
            Inst::Ret,
        ];
        assert!(matches!(
            verify(&prog),
            Err(VerifierError::UnprovenAccess { index: 1 })
        ));
    }

    #[test]
    fn guarded_dynamic_index_is_accepted_architecturally() {
        // if (r10 >= 64) goto end; addr = map + r10; load [addr]
        // — architecturally safe; transiently the whole point of the CVE.
        let prog = vec![
            Inst::MovImm { dst: 19, imm: 64 },
            Inst::Branch {
                cond: Cond::Geu,
                a: 10,
                b: 19,
                target: 5 * INST_BYTES,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: 20,
                a: EBPF_MAP_REG,
                b: 10,
            },
            ld(21, 20, 0),
            Inst::Nop,
            Inst::Ret,
        ];
        assert_eq!(verify(&prog), Ok(()));
    }

    #[test]
    fn guard_expires_outside_its_scope() {
        // The access sits past the branch's skip target: unprotected.
        let prog = vec![
            Inst::MovImm { dst: 19, imm: 64 },
            Inst::Branch {
                cond: Cond::Geu,
                a: 10,
                b: 19,
                target: 3 * INST_BYTES,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: 20,
                a: EBPF_MAP_REG,
                b: 10,
            },
            ld(21, 20, 0), // index 3 == skip target: guard no longer holds
            Inst::Ret,
        ];
        assert!(matches!(
            verify(&prog),
            Err(VerifierError::UnprovenAccess { .. })
        ));
    }

    #[test]
    fn forbidden_instructions_are_rejected() {
        for bad in [
            Inst::Syscall,
            Inst::KHook { id: 1 },
            Inst::Call { target: 0 },
            Inst::Halt,
        ] {
            let prog = vec![bad, Inst::Ret];
            assert!(
                matches!(
                    verify(&prog),
                    Err(VerifierError::ForbiddenInstruction { index: 0 })
                ),
                "{bad} must be forbidden"
            );
        }
    }

    #[test]
    fn backward_branches_are_rejected() {
        let prog = vec![
            Inst::Nop,
            Inst::Branch {
                cond: Cond::Eq,
                a: 0,
                b: 0,
                target: 0,
            },
            Inst::Ret,
        ];
        assert!(matches!(
            verify(&prog),
            Err(VerifierError::BadBranchTarget { index: 1 })
        ));
    }

    #[test]
    fn missing_ret_is_rejected() {
        assert!(matches!(
            verify(&[Inst::Nop]),
            Err(VerifierError::MissingRet)
        ));
    }

    #[test]
    fn too_long_is_rejected() {
        let mut prog = vec![Inst::Nop; EBPF_MAX_INSTS + 1];
        prog.push(Inst::Ret);
        assert!(matches!(verify(&prog), Err(VerifierError::TooLong)));
    }
}
