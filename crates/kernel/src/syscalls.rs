//! The syscall table of the mini-OS.
//!
//! Forty syscalls cover the workloads the paper evaluates: the LEBench
//! microbenchmark suite and the four datacenter applications. The numbers
//! are stable across runs (they index the in-memory dispatch table).

use std::fmt;

macro_rules! syscalls {
    ($(($variant:ident, $num:expr, $name:expr),)*) => {
        /// A system call number.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u16)]
        pub enum Sysno {
            $(
                #[doc = $name]
                $variant = $num,
            )*
        }

        impl Sysno {
            /// All syscalls, in number order.
            pub const ALL: &'static [Sysno] = &[$(Sysno::$variant,)*];

            /// The syscall's Linux-style name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Sysno::$variant => $name,)*
                }
            }

            /// Parse a raw number.
            pub fn from_u16(n: u16) -> Option<Sysno> {
                match n {
                    $($num => Some(Sysno::$variant),)*
                    _ => None,
                }
            }
        }
    };
}

syscalls! {
    (Getpid, 0, "getpid"),
    (Read, 1, "read"),
    (Write, 2, "write"),
    (Open, 3, "open"),
    (Close, 4, "close"),
    (Stat, 5, "stat"),
    (Fstat, 6, "fstat"),
    (Lseek, 7, "lseek"),
    (Mmap, 8, "mmap"),
    (Munmap, 9, "munmap"),
    (Brk, 10, "brk"),
    (PageFault, 11, "page_fault"),
    (Fork, 12, "fork"),
    (Clone, 13, "clone"),
    (Execve, 14, "execve"),
    (Exit, 15, "exit"),
    (Poll, 16, "poll"),
    (Select, 17, "select"),
    (EpollCreate, 18, "epoll_create"),
    (EpollCtl, 19, "epoll_ctl"),
    (EpollWait, 20, "epoll_wait"),
    (Socket, 21, "socket"),
    (Bind, 22, "bind"),
    (Listen, 23, "listen"),
    (Accept, 24, "accept"),
    (Connect, 25, "connect"),
    (Send, 26, "send"),
    (Recv, 27, "recv"),
    (Sendto, 28, "sendto"),
    (Recvfrom, 29, "recvfrom"),
    (Pipe, 30, "pipe"),
    (Dup, 31, "dup"),
    (Ioctl, 32, "ioctl"),
    (Futex, 33, "futex"),
    (Nanosleep, 34, "nanosleep"),
    (ClockGettime, 35, "clock_gettime"),
    (Getuid, 36, "getuid"),
    (SchedYield, 37, "sched_yield"),
    (Madvise, 38, "madvise"),
    (Mprotect, 39, "mprotect"),
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of syscalls in the table.
pub const NUM_SYSCALLS: usize = Sysno::ALL.len();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for &s in Sysno::ALL {
            assert_eq!(Sysno::from_u16(s as u16), Some(s));
        }
        assert_eq!(Sysno::from_u16(9999), None);
    }

    #[test]
    fn numbers_are_dense_and_ordered() {
        for (i, &s) in Sysno::ALL.iter().enumerate() {
            assert_eq!(s as u16 as usize, i, "{s} out of order");
        }
        assert_eq!(NUM_SYSCALLS, 40);
    }

    #[test]
    fn names_are_nonempty_and_unique() {
        let mut names: Vec<&str> = Sysno::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
