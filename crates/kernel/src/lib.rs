//! A miniature monolithic OS kernel for the Perspective reproduction.
//!
//! This crate stands in for the modified Linux v5.4 kernel of the paper
//! (see DESIGN.md §2). It provides:
//!
//! * a **synthetic kernel call graph** at Linux scale (~28 K functions)
//!   whose syscall footprints, conditional/indirect call edges and planted
//!   transient-execution gadgets reproduce the shapes the paper's
//!   attack-surface and auditing experiments measure ([`callgraph`]);
//! * µISA **code generation** so the very same graph is what the pipeline
//!   executes ([`body`]);
//! * the **memory-management substrate** Perspective instruments: a buddy
//!   page allocator and both the packing baseline slab and Perspective's
//!   secure slab allocator ([`mm`]);
//! * **processes and cgroups**, a syscall table, and the kernel semantics
//!   hooks dispatched from generated code ([`kernel`], [`syscalls`],
//!   [`context`]);
//! * the **allocation-ownership event stream** ([`sink`]) that
//!   Perspective's DSV manager consumes.
//!
//! # Example
//!
//! ```
//! use persp_kernel::callgraph::KernelConfig;
//! use persp_kernel::kernel::Kernel;
//! use persp_uarch::machine::Machine;
//!
//! let mut kernel = Kernel::build_unprotected(KernelConfig::test_small());
//! let mut machine = Machine::new();
//! kernel.install(&mut machine);
//! let pid = kernel.create_process(/* cgroup */ 1, &mut machine);
//! kernel.set_current(pid as u16, &mut machine);
//! assert!(machine.text_len() > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod body;
pub mod callgraph;
pub mod context;
pub mod ebpf;
pub mod kernel;
pub mod layout;
pub mod mm;
pub mod sink;
pub mod syscalls;

pub use callgraph::{CallGraph, FuncId, GadgetKind, GadgetSite, KernelConfig};
pub use context::{CgroupId, Pid, Process};
pub use kernel::{Kernel, KernelImage, SharedKernel};
pub use sink::{AllocSink, NullSink, Owner};
pub use syscalls::{Sysno, NUM_SYSCALLS};
