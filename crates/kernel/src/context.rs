//! Execution contexts: processes, cgroups, and their kernel-side state.
//!
//! Perspective associates speculation views with execution contexts. The
//! implementation tracks resources per *cgroup* (§6.1); for simplicity each
//! process of the mini-OS lives in exactly one cgroup, and the ASID exposed
//! to the hardware equals the PID.

use persp_uarch::Asid;

/// Process identifier.
pub type Pid = u32;
/// Control-group identifier (the DSV ownership domain).
pub type CgroupId = u32;

/// Number of pointer fields a task struct exposes to generated kernel code.
pub const TASK_FIELDS: usize = 8;
/// Size of the simulated task struct in bytes.
pub const TASK_STRUCT_BYTES: u64 = 512;

/// Kernel-side state of one process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Owning cgroup (DSV domain).
    pub cgroup: CgroupId,
    /// Hardware context tag. Equal to `pid` truncated to 16 bits.
    pub asid: Asid,
    /// Direct-map address of the task struct (ctx-owned slab object).
    pub task_struct_va: u64,
    /// Base of this process's user text window.
    pub user_text: u64,
    /// Base of this process's user data window.
    pub user_data: u64,
    /// Next unused offset in the user data window (bump allocation for
    /// mmap/brk results).
    pub user_data_top: u64,
    /// Direct-map addresses of ctx-owned kernel objects reachable through
    /// the task struct fields (what generated bodies dereference).
    pub ctx_objects: Vec<u64>,
    /// Slab objects backing open file descriptors / sockets (freed by
    /// `close`).
    pub open_objects: Vec<u64>,
    /// Outstanding mmap'd regions `(va, backing frames)` for munmap.
    pub mmaps: Vec<(u64, Vec<u64>)>,
    /// Page-cache frame backing this process's file reads/writes.
    pub page_cache_va: Option<u64>,
}

impl Process {
    /// The ASID of a PID.
    pub fn asid_of(pid: Pid) -> Asid {
        pid as Asid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_is_pid_truncation() {
        assert_eq!(Process::asid_of(5), 5);
        assert_eq!(Process::asid_of(0x1_0002), 2);
    }
}
