//! µISA code generation for the synthetic kernel.
//!
//! Two passes: first compute each function's instruction count and assign
//! entry addresses; then emit instructions with all cross-references
//! (callee addresses, ops-table slots, gadget globals) resolved. The same
//! [`BodyOp`] IR drives both the emitted code and the structural analyses,
//! so the scanner and the ISV generators reason about exactly the code the
//! pipeline executes.
//!
//! Register conventions inside kernel bodies: syscall args arrive in
//! `r10..=r15`, the syscall number in `r17`; bodies use `r18..=r28` as
//! temporaries and leave the argument registers intact so nested calls and
//! gadgets can observe them.

use crate::callgraph::{BodyOp, CallGraph, GadgetKind};
use crate::context::TASK_FIELDS;
use crate::layout::{
    CURRENT_TASK_PTR, EBPF_MAP_PTR, KTEXT_BASE, LAST_ALLOC_PTR, OPS_TABLES, SYSCALL_SEQ,
    SYSCALL_TABLE,
};
use persp_uarch::isa::{AluOp, Cond, Inst, Width, INST_BYTES};

/// Task-struct field index of the fd-array pointer.
pub const F_FDARRAY: u8 = 5;
/// Task-struct field index of the page-cache pointer.
pub const F_PAGECACHE: u8 = 6;
/// Task-struct field index of the ctx-secret pointer (used by PoCs).
pub const F_SECRET: u8 = 7;

/// VA of the kernel entry / dispatch stub.
pub const ENTRY_STUB_VA: u64 = KTEXT_BASE;
/// VA of the dispatch `CallInd` inside the stub — the canonical passive
/// attack hijack point (fourth instruction, see [`emit_entry_stub`]).
pub const DISPATCH_CALL_VA: u64 = KTEXT_BASE + 4 * INST_BYTES;
/// First function is placed here.
const FUNCS_BASE: u64 = KTEXT_BASE + 0x1000;

/// Instructions emitted for one body op. Kept in lockstep with the
/// internal emitter; an emission-time assertion enforces it.
pub fn op_len(op: &BodyOp) -> u32 {
    match op {
        BodyOp::AluBurst(n) => u32::from(*n),
        BodyOp::SharedLoad(_) => 2,
        BodyOp::CtxAccess { store, .. } => {
            if *store {
                5
            } else {
                4
            }
        }
        BodyOp::UnknownLoad(_) => 2,
        BodyOp::CallDirect(_) => 1,
        BodyOp::CallCond { .. } => 4,
        BodyOp::CallRare { .. } => 5,
        BodyOp::EbpfHook { .. } => 5,
        BodyOp::CallIndirect { .. } => 3,
        BodyOp::Gadget(site) => match site.kind {
            GadgetKind::Cache => 10,
            GadgetKind::Mds => 10,
            GadgetKind::Port => 8,
        },
        BodyOp::SecretLeak { .. } => 8,
        BodyOp::BhiGadget { .. } => 5,
        BodyOp::TouchRecentAlloc => 4,
        BodyOp::FdScanLoop => 13,
        BodyOp::CopyLoop { .. } => 13,
        BodyOp::Hook(_) => 1,
        BodyOp::Ret => 1,
    }
}

/// Total instruction count of a body.
pub fn body_len(body: &[BodyOp]) -> u32 {
    body.iter().map(op_len).sum()
}

/// Emit the kernel: assigns `entry_va`/`len_insts` on every function,
/// fills the `va_index`, records gadget sequence addresses, and returns
/// the full text image (including the entry stub).
pub fn emit_kernel(graph: &mut CallGraph) -> Vec<(u64, Inst)> {
    // Pass 1: addresses.
    let mut va = FUNCS_BASE;
    for f in &mut graph.funcs {
        f.entry_va = va;
        f.len_insts = body_len(&f.body);
        va += u64::from(f.len_insts) * INST_BYTES;
        va = (va + 63) & !63; // 64-byte align the next function
    }
    graph.va_index = graph.funcs.iter().map(|f| (f.entry_va, f.id)).collect();
    graph.va_map = std::sync::Arc::new(crate::callgraph::VaFuncMap::build(&graph.funcs));

    // Pass 2: emission.
    let mut text = emit_entry_stub();
    let entry_vas: Vec<u64> = graph.funcs.iter().map(|f| f.entry_va).collect();
    let ops_table_vas: Vec<u64> = graph
        .ops_table
        .iter()
        .map(|t| entry_vas[t.0 as usize])
        .collect();

    let mut gadget_seqs: Vec<(u64, u64)> = Vec::new(); // (bound_ptr_va, seq_va)
    for fi in 0..graph.funcs.len() {
        let entry = graph.funcs[fi].entry_va;
        let body = graph.funcs[fi].body.clone();
        let mut pc = entry;
        for op in &body {
            let start = pc;
            let insts = emit_op(op, pc, &entry_vas, &ops_table_vas);
            debug_assert_eq!(
                insts.len() as u32,
                op_len(op),
                "op_len out of sync for {op:?}"
            );
            text.extend(
                insts
                    .into_iter()
                    .enumerate()
                    .map(|(k, inst)| (start + k as u64 * INST_BYTES, inst)),
            );
            pc = start + u64::from(op_len(op)) * INST_BYTES;
            if let BodyOp::Gadget(site) = op {
                gadget_seqs.push((site.bound_ptr_va, start));
            }
        }
        debug_assert_eq!(
            pc - entry,
            u64::from(graph.funcs[fi].len_insts) * INST_BYTES
        );
    }

    // Back-patch gadget sequence addresses into the graph metadata.
    for (bound_ptr, seq_va) in gadget_seqs {
        for (_, site) in &mut graph.gadgets {
            if site.bound_ptr_va == bound_ptr {
                site.seq_va = seq_va;
            }
        }
        for f in &mut graph.funcs {
            for op in &mut f.body {
                if let BodyOp::Gadget(site) = op {
                    if site.bound_ptr_va == bound_ptr {
                        site.seq_va = seq_va;
                    }
                }
            }
        }
    }
    text
}

/// The kernel entry stub: dispatch through the in-memory syscall table via
/// an indirect call, then return to userspace. The `CallInd` is a real
/// BTB-predicted indirect branch — the hijack point passive attacks abuse.
pub fn emit_entry_stub() -> Vec<(u64, Inst)> {
    let mut pc = ENTRY_STUB_VA;
    let mut out = Vec::new();
    let mut push = |inst: Inst, pc: &mut u64| {
        out.push((*pc, inst));
        *pc += INST_BYTES;
    };
    push(
        Inst::MovImm {
            dst: 20,
            imm: SYSCALL_TABLE,
        },
        &mut pc,
    );
    push(
        Inst::AluImm {
            op: AluOp::Shl,
            dst: 21,
            a: 17,
            imm: 3,
        },
        &mut pc,
    );
    push(
        Inst::Alu {
            op: AluOp::Add,
            dst: 22,
            a: 20,
            b: 21,
        },
        &mut pc,
    );
    push(
        Inst::Load {
            dst: 23,
            base: 22,
            offset: 0,
            width: Width::Q,
        },
        &mut pc,
    );
    debug_assert_eq!(pc, DISPATCH_CALL_VA);
    push(Inst::CallInd { base: 23 }, &mut pc);
    push(Inst::Sysret, &mut pc);
    out
}

fn emit_op(op: &BodyOp, pc: u64, entry_vas: &[u64], ops_table_vas: &[u64]) -> Vec<Inst> {
    let mut out = Vec::new();
    match op {
        BodyOp::AluBurst(n) => {
            for k in 0..*n {
                out.push(Inst::AluImm {
                    op: AluOp::Add,
                    dst: 18,
                    a: 18,
                    imm: u64::from(k) + 1,
                });
            }
        }
        BodyOp::SharedLoad(addr) => {
            out.push(Inst::MovImm {
                dst: 19,
                imm: *addr,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
        }
        BodyOp::CtxAccess { field, store } => {
            assert!((*field as usize) < TASK_FIELDS);
            out.push(Inst::MovImm {
                dst: 19,
                imm: CURRENT_TASK_PTR,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 21,
                base: 20,
                offset: i64::from(*field) * 8,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 22,
                base: 21,
                offset: 0,
                width: Width::Q,
            });
            if *store {
                out.push(Inst::Store {
                    src: 22,
                    base: 21,
                    offset: 8,
                    width: Width::Q,
                });
            }
        }
        BodyOp::UnknownLoad(addr) => {
            out.push(Inst::MovImm {
                dst: 19,
                imm: *addr,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
        }
        BodyOp::CallDirect(callee) => {
            out.push(Inst::Call {
                target: entry_vas[callee.0 as usize],
            });
        }
        BodyOp::CallCond {
            callee, flag_addr, ..
        } => {
            let skip = pc + 4 * INST_BYTES;
            out.push(Inst::MovImm {
                dst: 19,
                imm: *flag_addr,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Branch {
                cond: Cond::Eq,
                a: 20,
                b: 0,
                target: skip,
            });
            out.push(Inst::Call {
                target: entry_vas[callee.0 as usize],
            });
        }
        BodyOp::CallRare { callee, mask } => {
            let skip = pc + 5 * INST_BYTES;
            out.push(Inst::MovImm {
                dst: 19,
                imm: SYSCALL_SEQ,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::AluImm {
                op: AluOp::And,
                dst: 21,
                a: 20,
                imm: *mask,
            });
            out.push(Inst::Branch {
                cond: Cond::Ne,
                a: 21,
                b: 0,
                target: skip,
            });
            out.push(Inst::Call {
                target: entry_vas[callee.0 as usize],
            });
        }
        BodyOp::EbpfHook { slot } => {
            // r13 = *EBPF_MAP_PTR; dispatch through the reserved slot.
            out.push(Inst::MovImm {
                dst: 19,
                imm: EBPF_MAP_PTR,
            });
            out.push(Inst::Load {
                dst: crate::ebpf::EBPF_MAP_REG,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::MovImm {
                dst: 19,
                imm: OPS_TABLES + u64::from(*slot) * 8,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::CallInd { base: 20 });
        }
        BodyOp::CallIndirect { slot } => {
            let _ = ops_table_vas; // targets resolved at runtime via memory
            out.push(Inst::MovImm {
                dst: 19,
                imm: OPS_TABLES + u64::from(*slot) * 8,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::CallInd { base: 20 });
        }
        BodyOp::Gadget(site) => {
            // Bounds check behind double indirection (widens the window,
            // like real CVE gadgets where the length sits in an object
            // graph): r10 is the attacker-influenced syscall argument.
            let len = op_len(op) as u64;
            let skip = pc + len * INST_BYTES;
            out.push(Inst::MovImm {
                dst: 19,
                imm: site.bound_ptr_va,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 21,
                base: 20,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Branch {
                cond: Cond::Geu,
                a: 10,
                b: 21,
                target: skip,
            });
            // ACCESS: array[idx] — out-of-bounds reaches arbitrary kernel
            // memory through the monolithic address space.
            out.push(Inst::MovImm {
                dst: 22,
                imm: site.array_base_va,
            });
            out.push(Inst::Alu {
                op: AluOp::Add,
                dst: 23,
                a: 22,
                b: 10,
            });
            out.push(Inst::Load {
                dst: 24,
                base: 23,
                offset: 0,
                width: Width::B,
            });
            match site.kind {
                GadgetKind::Cache => {
                    // TRANSMIT via a secret-dependent line of the
                    // *user-supplied* buffer in r11 — the classic
                    // `array2[s * 4096]` pattern with `array2` pointing at
                    // attacker-readable memory.
                    out.push(Inst::AluImm {
                        op: AluOp::Shl,
                        dst: 25,
                        a: 24,
                        imm: 12,
                    });
                    out.push(Inst::Alu {
                        op: AluOp::Add,
                        dst: 27,
                        a: 11,
                        b: 25,
                    });
                    out.push(Inst::Load {
                        dst: 28,
                        base: 27,
                        offset: 0,
                        width: Width::B,
                    });
                }
                GadgetKind::Mds => {
                    // TRANSMIT via a store of secret data (fill-buffer
                    // style leak).
                    out.push(Inst::AluImm {
                        op: AluOp::Shl,
                        dst: 25,
                        a: 24,
                        imm: 2,
                    });
                    out.push(Inst::MovImm {
                        dst: 26,
                        imm: site.kprobe_base_va,
                    });
                    out.push(Inst::Store {
                        src: 25,
                        base: 26,
                        offset: 0,
                        width: Width::Q,
                    });
                }
                GadgetKind::Port => {
                    // TRANSMIT via secret-dependent execution latency.
                    out.push(Inst::Alu {
                        op: AluOp::Mul,
                        dst: 25,
                        a: 24,
                        b: 24,
                    });
                }
            }
            debug_assert_eq!(out.len() as u64, len);
        }
        BodyOp::BhiGadget { kprobe_base_va } => {
            // Dereference the attacker-influenced argument register and
            // transmit the byte — a speculative type confusion when the
            // dispatch is hijacked here with a pointer in r10.
            out.push(Inst::Load {
                dst: 22,
                base: 10,
                offset: 0,
                width: Width::B,
            });
            out.push(Inst::AluImm {
                op: AluOp::Shl,
                dst: 23,
                a: 22,
                imm: 12,
            });
            out.push(Inst::MovImm {
                dst: 24,
                imm: *kprobe_base_va,
            });
            out.push(Inst::Alu {
                op: AluOp::Add,
                dst: 25,
                a: 24,
                b: 23,
            });
            out.push(Inst::Load {
                dst: 26,
                base: 25,
                offset: 0,
                width: Width::B,
            });
        }
        BodyOp::SecretLeak { kprobe_base_va } => {
            // CURRENT -> task.secret_ptr -> secret byte, transmitted via a
            // secret-dependent kernel probe line. All three loads are
            // cache-warm during an attack (the victim was just using its
            // secret), so the sequence fits inside a hijack window.
            out.push(Inst::MovImm {
                dst: 19,
                imm: CURRENT_TASK_PTR,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 21,
                base: 20,
                offset: i64::from(F_SECRET) * 8,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 22,
                base: 21,
                offset: 0,
                width: Width::B,
            });
            out.push(Inst::AluImm {
                op: AluOp::Shl,
                dst: 23,
                a: 22,
                imm: 12,
            });
            out.push(Inst::MovImm {
                dst: 24,
                imm: *kprobe_base_va,
            });
            out.push(Inst::Alu {
                op: AluOp::Add,
                dst: 25,
                a: 24,
                b: 23,
            });
            out.push(Inst::Load {
                dst: 26,
                base: 25,
                offset: 0,
                width: Width::B,
            });
        }
        BodyOp::FdScanLoop => {
            // acc = 0; for (i = 0; i < r10; i++) if (fd[i & 127]) acc++;
            // The per-iteration data-dependent branch after a load is what
            // makes select/poll/epoll FENCE's worst case (§9.1).
            out.push(Inst::MovImm {
                dst: 19,
                imm: CURRENT_TASK_PTR,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 21,
                base: 20,
                offset: i64::from(F_FDARRAY) * 8,
                width: Width::Q,
            });
            out.push(Inst::MovImm { dst: 22, imm: 0 }); // i
            out.push(Inst::MovImm { dst: 25, imm: 0 }); // acc
            let loop_top = pc + 5 * INST_BYTES;
            out.push(Inst::AluImm {
                op: AluOp::And,
                dst: 23,
                a: 22,
                imm: 127,
            });
            out.push(Inst::AluImm {
                op: AluOp::Shl,
                dst: 23,
                a: 23,
                imm: 3,
            });
            out.push(Inst::Alu {
                op: AluOp::Add,
                dst: 24,
                a: 21,
                b: 23,
            });
            out.push(Inst::Load {
                dst: 26,
                base: 24,
                offset: 0,
                width: Width::Q,
            });
            let skip_inc = loop_top + 6 * INST_BYTES;
            out.push(Inst::Branch {
                cond: Cond::Eq,
                a: 26,
                b: 0,
                target: skip_inc,
            });
            out.push(Inst::AluImm {
                op: AluOp::Add,
                dst: 25,
                a: 25,
                imm: 1,
            });
            out.push(Inst::AluImm {
                op: AluOp::Add,
                dst: 22,
                a: 22,
                imm: 1,
            });
            out.push(Inst::Branch {
                cond: Cond::Ltu,
                a: 22,
                b: 10,
                target: loop_top,
            });
        }
        BodyOp::CopyLoop { to_user } => {
            // for (i = 0; i < r12; i++) copy word between page cache and
            // the user buffer (r11).
            out.push(Inst::MovImm {
                dst: 19,
                imm: CURRENT_TASK_PTR,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 21,
                base: 20,
                offset: i64::from(F_PAGECACHE) * 8,
                width: Width::Q,
            });
            out.push(Inst::MovImm { dst: 22, imm: 0 }); // i
            let loop_top = pc + 4 * INST_BYTES;
            out.push(Inst::AluImm {
                op: AluOp::And,
                dst: 23,
                a: 22,
                imm: 511,
            });
            out.push(Inst::AluImm {
                op: AluOp::Shl,
                dst: 23,
                a: 23,
                imm: 3,
            });
            out.push(Inst::Alu {
                op: AluOp::Add,
                dst: 24,
                a: 21,
                b: 23,
            }); // kernel side
            out.push(Inst::AluImm {
                op: AluOp::Shl,
                dst: 28,
                a: 22,
                imm: 3,
            });
            out.push(Inst::Alu {
                op: AluOp::Add,
                dst: 27,
                a: 11,
                b: 28,
            }); // user side
            if *to_user {
                out.push(Inst::Load {
                    dst: 26,
                    base: 24,
                    offset: 0,
                    width: Width::Q,
                });
                out.push(Inst::Store {
                    src: 26,
                    base: 27,
                    offset: 0,
                    width: Width::Q,
                });
            } else {
                out.push(Inst::Load {
                    dst: 26,
                    base: 27,
                    offset: 0,
                    width: Width::Q,
                });
                out.push(Inst::Store {
                    src: 26,
                    base: 24,
                    offset: 0,
                    width: Width::Q,
                });
            }
            out.push(Inst::AluImm {
                op: AluOp::Add,
                dst: 22,
                a: 22,
                imm: 1,
            });
            out.push(Inst::Branch {
                cond: Cond::Ltu,
                a: 22,
                b: 12,
                target: loop_top,
            });
        }
        BodyOp::TouchRecentAlloc => {
            out.push(Inst::MovImm {
                dst: 19,
                imm: LAST_ALLOC_PTR,
            });
            out.push(Inst::Load {
                dst: 20,
                base: 19,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Load {
                dst: 21,
                base: 20,
                offset: 0,
                width: Width::Q,
            });
            out.push(Inst::Store {
                src: 21,
                base: 20,
                offset: 8,
                width: Width::Q,
            });
        }
        BodyOp::Hook(id) => out.push(Inst::KHook { id: *id }),
        BodyOp::Ret => out.push(Inst::Ret),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{CallGraph, KernelConfig};
    use std::collections::HashSet;

    #[test]
    fn emission_is_consistent_with_lengths() {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        let text = emit_kernel(&mut g);
        let total: u64 = g.funcs.iter().map(|f| u64::from(f.len_insts)).sum();
        // Stub adds 6 instructions.
        assert_eq!(text.len() as u64, total + 6);
    }

    #[test]
    fn no_overlapping_addresses() {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        let text = emit_kernel(&mut g);
        let mut seen = HashSet::new();
        for (addr, _) in &text {
            assert!(seen.insert(*addr), "address {addr:#x} emitted twice");
        }
    }

    #[test]
    fn functions_are_aligned_and_ordered() {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        let mut prev_end = 0;
        for f in &g.funcs {
            assert_eq!(f.entry_va % 64, 0, "{} misaligned", f.name);
            assert!(f.entry_va >= prev_end);
            prev_end = f.entry_va + u64::from(f.len_insts) * INST_BYTES;
        }
    }

    #[test]
    fn va_lookup_finds_interior_addresses() {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        let f = &g.funcs[10];
        assert_eq!(g.func_of_va(f.entry_va), Some(f.id));
        assert_eq!(g.func_of_va(f.entry_va + 4), Some(f.id));
        assert_eq!(g.func_of_va(0), None);
    }

    #[test]
    fn gadget_seq_vas_are_backpatched() {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        for (host, site) in &g.gadgets {
            assert_ne!(
                site.seq_va,
                0,
                "gadget in {} missing seq_va",
                g.func(*host).name
            );
            assert_eq!(g.func_of_va(site.seq_va), Some(*host));
        }
    }

    #[test]
    fn entry_stub_shape() {
        let stub = emit_entry_stub();
        assert_eq!(stub.len(), 6);
        assert_eq!(stub[0].0, ENTRY_STUB_VA);
        assert!(matches!(stub[4].1, persp_uarch::isa::Inst::CallInd { .. }));
        assert_eq!(stub[4].0, DISPATCH_CALL_VA);
        assert!(matches!(stub[5].1, persp_uarch::isa::Inst::Sysret));
    }
}
