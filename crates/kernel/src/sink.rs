//! Allocation-event observer interface.
//!
//! The paper's DSVs are *defined through allocations* (§5.2): every page or
//! slab allocation associates memory with the execution context it was
//! allocated on behalf of. The kernel's allocators emit ownership events
//! through this trait; Perspective's DSV manager (in the `perspective`
//! crate) implements it, and the unprotected baseline plugs in
//! [`NullSink`].

use crate::context::CgroupId;

/// Who owns a piece of kernel memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// Owned by one execution context (cgroup). Only that context's DSV
    /// contains it.
    Cgroup(CgroupId),
    /// Shared kernel data (per-cpu variables, dispatch tables): part of
    /// every DSV.
    Shared,
    /// Unknown provenance (§6.1): part of *no* DSV; Perspective blocks
    /// speculation on it.
    Unknown,
}

/// Receiver of allocator ownership events.
pub trait AllocSink {
    /// A new execution context exists: `asid` belongs to `cgroup`.
    /// Default: ignored.
    fn register_context(&mut self, _asid: u16, _cgroup: CgroupId) {}

    /// `count` physical frames starting at `first_frame` now belong to
    /// `owner`.
    fn assign_frames(&mut self, first_frame: u64, count: u64, owner: Owner);

    /// The frames were freed; ownership is dissolved.
    fn release_frames(&mut self, first_frame: u64, count: u64);

    /// A non-direct-map virtual range (user pages, boot-time regions) now
    /// belongs to `owner`.
    fn assign_va_range(&mut self, va: u64, bytes: u64, owner: Owner);

    /// The virtual range was released.
    fn release_va_range(&mut self, va: u64, bytes: u64);
}

/// Sink that discards all events (the unprotected baseline kernel).
#[derive(Debug, Default)]
pub struct NullSink;

impl AllocSink for NullSink {
    fn assign_frames(&mut self, _first_frame: u64, _count: u64, _owner: Owner) {}
    fn release_frames(&mut self, _first_frame: u64, _count: u64) {}
    fn assign_va_range(&mut self, _va: u64, _bytes: u64, _owner: Owner) {}
    fn release_va_range(&mut self, _va: u64, _bytes: u64) {}
}

/// Fan-out: forward every event to two sinks (e.g. the DSV table and a
/// hardware-metadata mirror).
#[derive(Debug)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Combine two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: AllocSink, B: AllocSink> AllocSink for TeeSink<A, B> {
    fn register_context(&mut self, asid: u16, cgroup: CgroupId) {
        self.a.register_context(asid, cgroup);
        self.b.register_context(asid, cgroup);
    }
    fn assign_frames(&mut self, first_frame: u64, count: u64, owner: Owner) {
        self.a.assign_frames(first_frame, count, owner);
        self.b.assign_frames(first_frame, count, owner);
    }
    fn release_frames(&mut self, first_frame: u64, count: u64) {
        self.a.release_frames(first_frame, count);
        self.b.release_frames(first_frame, count);
    }
    fn assign_va_range(&mut self, va: u64, bytes: u64, owner: Owner) {
        self.a.assign_va_range(va, bytes, owner);
        self.b.assign_va_range(va, bytes, owner);
    }
    fn release_va_range(&mut self, va: u64, bytes: u64) {
        self.a.release_va_range(va, bytes);
        self.b.release_va_range(va, bytes);
    }
}

/// Sink that records events for inspection (used by tests).
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// `(first_frame, count, owner)` assignment events.
    pub frame_assigns: Vec<(u64, u64, Owner)>,
    /// `(first_frame, count)` release events.
    pub frame_releases: Vec<(u64, u64)>,
    /// `(va, bytes, owner)` assignment events.
    pub va_assigns: Vec<(u64, u64, Owner)>,
    /// `(va, bytes)` release events.
    pub va_releases: Vec<(u64, u64)>,
}

impl AllocSink for RecordingSink {
    fn assign_frames(&mut self, first_frame: u64, count: u64, owner: Owner) {
        self.frame_assigns.push((first_frame, count, owner));
    }
    fn release_frames(&mut self, first_frame: u64, count: u64) {
        self.frame_releases.push((first_frame, count));
    }
    fn assign_va_range(&mut self, va: u64, bytes: u64, owner: Owner) {
        self.va_assigns.push((va, bytes, owner));
    }
    fn release_va_range(&mut self, va: u64, bytes: u64) {
        self.va_releases.push((va, bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = TeeSink::new(RecordingSink::default(), RecordingSink::default());
        tee.register_context(1, 10);
        tee.assign_frames(3, 2, Owner::Cgroup(10));
        tee.release_frames(3, 2);
        tee.assign_va_range(0x1000, 4096, Owner::Shared);
        tee.release_va_range(0x1000, 4096);
        assert_eq!(tee.a.frame_assigns, tee.b.frame_assigns);
        assert_eq!(tee.a.frame_releases, tee.b.frame_releases);
        assert_eq!(tee.a.va_assigns, tee.b.va_assigns);
        assert_eq!(tee.a.va_releases, tee.b.va_releases);
        assert_eq!(tee.a.frame_assigns.len(), 1);
    }

    #[test]
    fn recording_sink_captures_events() {
        let mut s = RecordingSink::default();
        s.assign_frames(4, 2, Owner::Cgroup(7));
        s.release_frames(4, 2);
        s.assign_va_range(0x1000, 4096, Owner::Shared);
        s.release_va_range(0x1000, 4096);
        assert_eq!(s.frame_assigns, vec![(4, 2, Owner::Cgroup(7))]);
        assert_eq!(s.frame_releases, vec![(4, 2)]);
        assert_eq!(s.va_assigns, vec![(0x1000, 4096, Owner::Shared)]);
        assert_eq!(s.va_releases, vec![(0x1000, 4096)]);
    }
}
