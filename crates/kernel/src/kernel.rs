//! The kernel facade: builds the synthetic kernel, installs it into a
//! machine image, manages processes/cgroups, and implements the syscall
//! semantics hooks the generated code dispatches to.

use crate::body::{emit_kernel, ENTRY_STUB_VA, F_FDARRAY, F_PAGECACHE, F_SECRET};
use crate::callgraph::{CallGraph, KernelConfig};
use crate::context::{CgroupId, Pid, Process, TASK_STRUCT_BYTES};
use crate::layout::{
    self, CURRENT_TASK_PTR, LAST_ALLOC_PTR, OPS_TABLES, SYSCALL_SEQ, SYSCALL_TABLE,
};
use crate::mm::{BuddyAllocator, SlabAllocator};
use crate::sink::{AllocSink, NullSink, Owner};
use crate::syscalls::Sysno;
use persp_uarch::hooks::{HookHandler, HookResult};
use persp_uarch::machine::Machine;
use persp_uarch::Asid;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// A shared allocation-event sink handle.
pub type SharedSink = Rc<RefCell<dyn AllocSink>>;

/// The cgroup id reserved for the kernel's own (non-shared) data; user
/// processes always get ids ≥ 1, so kernel-private data is in no process
/// DSV.
pub const KERNEL_CGROUP: CgroupId = 0;

/// A pre-built kernel image: the generated call graph plus the emitted
/// text, shareable read-only between simulation instances. Generating the
/// paper-scale graph (~28 K functions) is by far the most expensive part
/// of building a [`Kernel`]; the experiment matrix builds one image per
/// configuration and hands cheap [`Arc`] clones to every worker thread.
#[derive(Clone)]
pub struct KernelImage {
    /// Generator configuration.
    pub cfg: KernelConfig,
    /// The synthetic call graph (post-emission: addresses assigned).
    pub graph: Arc<CallGraph>,
    /// The emitted kernel text.
    pub text: Arc<Vec<(u64, persp_uarch::isa::Inst)>>,
}

impl KernelImage {
    /// Generate and emit a kernel image.
    pub fn build(cfg: KernelConfig) -> Self {
        let mut graph = CallGraph::generate(cfg);
        let text = emit_kernel(&mut graph);
        KernelImage {
            cfg,
            graph: Arc::new(graph),
            text: Arc::new(text),
        }
    }
}

impl std::fmt::Debug for KernelImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelImage")
            .field("functions", &self.graph.len())
            .field("text_insts", &self.text.len())
            .finish()
    }
}

/// The mini-OS kernel.
pub struct Kernel {
    /// Generator configuration.
    pub cfg: KernelConfig,
    /// The synthetic call graph (post-emission: addresses assigned),
    /// shared read-only with every instance built from the same image.
    pub graph: Arc<CallGraph>,
    /// Physical page allocator.
    pub buddy: BuddyAllocator,
    /// Slab allocator (secure variant iff `cfg.secure_slab`).
    pub slab: SlabAllocator,
    /// Live processes by ASID.
    pub procs: HashMap<Asid, Process>,
    /// Per-syscall invocation counts (the tracing subsystem's coarse view).
    pub syscall_counts: HashMap<Sysno, u64>,
    sink: SharedSink,
    text: Arc<Vec<(u64, persp_uarch::isa::Inst)>>,
    next_pid: Pid,
    /// Next free address in the extension-program text region.
    pub(crate) next_ebpf_va: u64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("functions", &self.graph.len())
            .field("procs", &self.procs.len())
            .finish_non_exhaustive()
    }
}

impl persp_uarch::MetricsSource for Kernel {
    fn export_metrics(&self, prefix: &str, reg: &mut persp_uarch::MetricsRegistry) {
        self.buddy.export_metrics(&format!("{prefix}.buddy"), reg);
        self.slab.export_metrics(&format!("{prefix}.slab"), reg);
        reg.set(format!("{prefix}.procs"), self.procs.len() as u64);
        reg.set(
            format!("{prefix}.syscalls"),
            self.syscall_counts.values().sum(),
        );
    }
}

impl Kernel {
    /// Generate and emit a kernel. `sink` receives every ownership event
    /// (pass Perspective's DSV manager, or a [`NullSink`] for baselines).
    pub fn build(cfg: KernelConfig, sink: SharedSink) -> Self {
        Self::from_image(&KernelImage::build(cfg), sink)
    }

    /// Build a kernel from a pre-generated image, sharing its call graph
    /// and text instead of regenerating them. This is what the parallel
    /// experiment matrix uses: one [`KernelImage::build`] per kernel
    /// configuration, one `from_image` per (scheme, workload) cell.
    pub fn from_image(image: &KernelImage, sink: SharedSink) -> Self {
        Kernel {
            buddy: BuddyAllocator::new(image.cfg.num_frames),
            slab: SlabAllocator::new(image.cfg.secure_slab),
            procs: HashMap::new(),
            syscall_counts: HashMap::new(),
            sink,
            text: image.text.clone(),
            next_pid: 1,
            next_ebpf_va: layout::EBPF_TEXT_BASE,
            graph: image.graph.clone(),
            cfg: image.cfg,
        }
    }

    /// Build with a discarding sink (the unprotected baseline).
    pub fn build_unprotected(cfg: KernelConfig) -> Self {
        Self::build(cfg, Rc::new(RefCell::new(NullSink)))
    }

    /// Install the kernel into a machine: text image, syscall dispatch
    /// table, ops tables, boot-time globals, and the shared-region
    /// ownership registrations.
    pub fn install(&self, machine: &mut Machine) {
        machine.load_text(self.text.iter().copied());
        machine.kernel_entry = ENTRY_STUB_VA;
        // Syscall dispatch table.
        for (&sys, &fid) in &self.graph.entries {
            let va = self.graph.func(fid).entry_va;
            machine
                .mem
                .write_u64(SYSCALL_TABLE + (sys as u16 as u64) * 8, va);
        }
        // Ops (function-pointer) tables for indirect calls.
        for (slot, target) in self.graph.ops_table.iter().enumerate() {
            let va = self.graph.func(*target).entry_va;
            machine.mem.write_u64(OPS_TABLES + slot as u64 * 8, va);
        }
        // Boot-time globals (flags, gadget bounds).
        for &(va, value) in &self.graph.globals {
            machine.mem.write_u64(va, value);
        }
        // The next-allocation pointer starts at a harmless shared target.
        machine.mem.write_u64(LAST_ALLOC_PTR, CURRENT_TASK_PTR);
        // Ownership of boot-time regions: per-cpu variables and dispatch
        // tables are in every DSV; kernel-private globals belong to the
        // kernel's own context and are in *no* process DSV.
        let mut sink = self.sink.borrow_mut();
        sink.register_context(0, KERNEL_CGROUP);
        sink.assign_va_range(
            layout::KDATA_SHARED_BASE,
            layout::KDATA_KPRIV_BASE - layout::KDATA_SHARED_BASE,
            Owner::Shared,
        );
        sink.assign_va_range(
            layout::KDATA_KPRIV_BASE,
            layout::KDATA_UNKNOWN_BASE - layout::KDATA_KPRIV_BASE,
            Owner::Cgroup(KERNEL_CGROUP),
        );
        // Kernel text is shared (it is fetched, rarely loaded).
        sink.assign_va_range(layout::KTEXT_BASE, 1 << 32, Owner::Shared);
    }

    /// Create a process inside `cgroup`: allocates the task struct and its
    /// ctx-owned kernel objects from the slab, registers the user windows,
    /// and wires the task-struct fields in machine memory.
    pub fn create_process(&mut self, cgroup: CgroupId, machine: &mut Machine) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        let asid = Process::asid_of(pid);

        let sink = self.sink.clone();
        let mut s = sink.borrow_mut();
        s.register_context(asid, cgroup);
        let task_va = self
            .slab
            .kmalloc(TASK_STRUCT_BYTES as usize, cgroup, &mut self.buddy, &mut *s)
            .expect("out of kernel memory for task struct");

        // Ctx-owned objects reachable through task fields 0..=4.
        let mut ctx_objects = Vec::new();
        for field in 0..5u8 {
            let obj = self
                .slab
                .kmalloc(256, cgroup, &mut self.buddy, &mut *s)
                .expect("out of kernel memory");
            machine.mem.write_u64(task_va + u64::from(field) * 8, obj);
            machine.mem.write_u64(obj, 0x100 + u64::from(field));
            ctx_objects.push(obj);
        }
        // Long-lived per-process metadata of the transient-allocation
        // size classes (anchors the slab pages poll/epoll metadata cycles
        // through, as long-lived kernel objects do in practice).
        for anchor_size in [1024usize, 2048] {
            let obj = self
                .slab
                .kmalloc(anchor_size, cgroup, &mut self.buddy, &mut *s)
                .expect("out of kernel memory");
            ctx_objects.push(obj);
        }
        // fd array (task field 5): 128 descriptors, every third one ready.
        let fd_array = self
            .slab
            .kmalloc(1024, cgroup, &mut self.buddy, &mut *s)
            .expect("out of kernel memory");
        for i in 0..128u64 {
            machine
                .mem
                .write_u64(fd_array + i * 8, u64::from(i % 3 == 0));
        }
        machine
            .mem
            .write_u64(task_va + u64::from(F_FDARRAY) * 8, fd_array);
        // Page cache frame (task field 6).
        let pc_frame = self
            .buddy
            .alloc_for_cgroup(0, cgroup, &mut *s)
            .expect("oom");
        let pc_va = layout::frame_to_va(pc_frame);
        machine
            .mem
            .write_u64(task_va + u64::from(F_PAGECACHE) * 8, pc_va);
        // Secret object (task field 7) — the data PoCs steal.
        let secret = self
            .slab
            .kmalloc(64, cgroup, &mut self.buddy, &mut *s)
            .expect("out of kernel memory");
        machine
            .mem
            .write_u64(task_va + u64::from(F_SECRET) * 8, secret);

        // User windows are owned by the process's cgroup.
        let user_text = layout::user_text_base(pid);
        let user_data = layout::user_data_base(pid);
        s.assign_va_range(user_text, layout::USER_TEXT_STRIDE, Owner::Cgroup(cgroup));
        s.assign_va_range(user_data, layout::USER_DATA_STRIDE, Owner::Cgroup(cgroup));
        drop(s);

        ctx_objects.push(fd_array);
        ctx_objects.push(secret);
        self.procs.insert(
            asid,
            Process {
                pid,
                cgroup,
                asid,
                task_struct_va: task_va,
                user_text,
                user_data,
                user_data_top: 0,
                ctx_objects,
                open_objects: Vec::new(),
                mmaps: Vec::new(),
                page_cache_va: Some(pc_va),
            },
        );
        pid
    }

    /// Switch the current context: sets the machine ASID and repoints the
    /// per-cpu `CURRENT_TASK` pointer.
    ///
    /// # Panics
    ///
    /// Panics if `asid` has no process.
    pub fn set_current(&self, asid: Asid, machine: &mut Machine) {
        let proc = self.procs.get(&asid).expect("no such process");
        machine.asid = asid;
        machine.mem.write_u64(CURRENT_TASK_PTR, proc.task_struct_va);
    }

    /// The process table entry for `asid`.
    pub fn process(&self, asid: Asid) -> Option<&Process> {
        self.procs.get(&asid)
    }

    /// Direct-map address of the process's kernel-side secret object.
    pub fn secret_va(&self, asid: Asid) -> Option<u64> {
        let p = self.procs.get(&asid)?;
        p.ctx_objects.last().copied()
    }

    /// The shared sink handle.
    pub fn sink(&self) -> SharedSink {
        self.sink.clone()
    }

    /// Tear down a process: frees its slab objects, page-cache frame and
    /// mmap'd frames, and releases its user-window ownership. Every freed
    /// slab page that drains is a domain reassignment (§9.2).
    ///
    /// # Panics
    ///
    /// Panics if `asid` has no process.
    pub fn destroy_process(&mut self, asid: Asid) {
        let proc = self.procs.remove(&asid).expect("no such process");
        let sink = self.sink.clone();
        let mut s = sink.borrow_mut();
        for obj in proc.open_objects {
            self.slab.kfree(obj, &mut self.buddy, &mut *s);
        }
        for obj in proc.ctx_objects {
            self.slab.kfree(obj, &mut self.buddy, &mut *s);
        }
        self.slab
            .kfree(proc.task_struct_va, &mut self.buddy, &mut *s);
        if let Some(pc_va) = proc.page_cache_va {
            if let Some(frame) = layout::va_to_frame(pc_va) {
                self.buddy.free(frame, &mut *s);
            }
        }
        for (_va, frames) in proc.mmaps {
            for frame in frames {
                self.buddy.free(frame, &mut *s);
            }
        }
        s.release_va_range(proc.user_text, layout::USER_TEXT_STRIDE);
        s.release_va_range(proc.user_data, layout::USER_DATA_STRIDE);
    }

    fn handle_syscall(&mut self, sys: Sysno, machine: &mut Machine) -> HookResult {
        *self.syscall_counts.entry(sys).or_insert(0) += 1;
        let seq = machine.mem.read_u64(SYSCALL_SEQ).wrapping_add(1);
        machine.mem.write_u64(SYSCALL_SEQ, seq);
        let asid = machine.asid;
        let sink = self.sink.clone();
        let arg0 = machine.reg(10);
        match sys {
            Sysno::Mmap => {
                let pages = arg0.clamp(1, 64);
                let mut s = sink.borrow_mut();
                let cgroup = self.procs[&asid].cgroup;
                let mut frames = Vec::new();
                for _ in 0..pages {
                    if let Some(f) = self.buddy.alloc_for_cgroup(0, cgroup, &mut *s) {
                        frames.push(f);
                    }
                }
                drop(s);
                if let Some(&f) = frames.first() {
                    machine
                        .mem
                        .write_u64(LAST_ALLOC_PTR, layout::frame_to_va(f));
                }
                let proc = self.procs.get_mut(&asid).expect("current process exists");
                let va = proc.user_data + proc.user_data_top;
                proc.user_data_top += pages * layout::PAGE_SIZE;
                proc.mmaps.push((va, frames));
                machine.set_reg(1, va);
                HookResult::cost(40 + 8 * pages)
            }
            Sysno::Munmap => {
                let proc = self.procs.get_mut(&asid).expect("current process exists");
                let region = proc.mmaps.pop();
                let mut cost = 30;
                if let Some((_va, frames)) = region {
                    cost += 5 * frames.len() as u64;
                    let mut s = sink.borrow_mut();
                    for frame in frames {
                        self.buddy.free(frame, &mut *s);
                    }
                }
                machine.set_reg(1, 0);
                HookResult::cost(cost)
            }
            Sysno::Brk => {
                let cgroup = self.procs[&asid].cgroup;
                let mut s = sink.borrow_mut();
                let frame = self.buddy.alloc_for_cgroup(0, cgroup, &mut *s);
                drop(s);
                if let Some(f) = frame {
                    machine
                        .mem
                        .write_u64(LAST_ALLOC_PTR, layout::frame_to_va(f));
                }
                let proc = self.procs.get_mut(&asid).expect("current process exists");
                proc.user_data_top += layout::PAGE_SIZE;
                machine.set_reg(1, proc.user_data + proc.user_data_top);
                HookResult::cost(30)
            }
            Sysno::PageFault => {
                let cgroup = self.procs[&asid].cgroup;
                let mut s = sink.borrow_mut();
                let frame = self.buddy.alloc_for_cgroup(0, cgroup, &mut *s);
                drop(s);
                if let Some(f) = frame {
                    machine
                        .mem
                        .write_u64(LAST_ALLOC_PTR, layout::frame_to_va(f));
                }
                HookResult::cost(25)
            }
            Sysno::Fork => {
                let cgroup = self.procs[&asid].cgroup;
                // big-fork passes a copy weight in arg0.
                let extra = arg0.clamp(0, 64);
                let mut s = sink.borrow_mut();
                for _ in 0..extra {
                    let _ = self.buddy.alloc_for_cgroup(0, cgroup, &mut *s);
                }
                drop(s);
                let child = self.create_process(cgroup, machine);
                let task = self.procs[&(child as Asid)].task_struct_va;
                machine.mem.write_u64(LAST_ALLOC_PTR, task);
                machine.set_reg(1, u64::from(child));
                HookResult::cost(150 + 10 * extra)
            }
            Sysno::Clone => {
                let cgroup = self.procs[&asid].cgroup;
                let mut s = sink.borrow_mut();
                let obj =
                    self.slab
                        .kmalloc(TASK_STRUCT_BYTES as usize, cgroup, &mut self.buddy, &mut *s);
                drop(s);
                if let Some(o) = obj {
                    machine.mem.write_u64(LAST_ALLOC_PTR, o);
                }
                machine.set_reg(1, u64::from(self.next_pid));
                HookResult::cost(80)
            }
            Sysno::Poll | Sysno::Select | Sysno::EpollWait => {
                // Implicit metadata allocation (§5.2's poll() example).
                let cgroup = self.procs[&asid].cgroup;
                let bytes = (arg0 * 8).clamp(8, 2048) as usize;
                let mut s = sink.borrow_mut();
                if let Some(meta) = self.slab.kmalloc(bytes, cgroup, &mut self.buddy, &mut *s) {
                    self.slab.kfree(meta, &mut self.buddy, &mut *s);
                    drop(s);
                    machine.mem.write_u64(LAST_ALLOC_PTR, meta);
                }
                HookResult::cost(20)
            }
            Sysno::EpollCreate
            | Sysno::Socket
            | Sysno::Open
            | Sysno::Pipe
            | Sysno::Dup
            | Sysno::Accept
            | Sysno::Connect
            | Sysno::Bind
            | Sysno::Listen
            | Sysno::EpollCtl => {
                let cgroup = self.procs[&asid].cgroup;
                let mut s = sink.borrow_mut();
                if let Some(obj) = self.slab.kmalloc(128, cgroup, &mut self.buddy, &mut *s) {
                    drop(s);
                    machine.mem.write_u64(LAST_ALLOC_PTR, obj);
                    let proc = self.procs.get_mut(&asid).expect("current process exists");
                    proc.open_objects.push(obj);
                }
                machine.set_reg(1, 3);
                HookResult::cost(25)
            }
            Sysno::Close => {
                let proc = self.procs.get_mut(&asid).expect("current process exists");
                if let Some(obj) = proc.open_objects.pop() {
                    let mut s = sink.borrow_mut();
                    self.slab.kfree(obj, &mut self.buddy, &mut *s);
                }
                machine.set_reg(1, 0);
                HookResult::cost(15)
            }
            Sysno::Read
            | Sysno::Write
            | Sysno::Send
            | Sysno::Recv
            | Sysno::Sendto
            | Sysno::Recvfrom => {
                machine.set_reg(1, machine.reg(12));
                HookResult::cost(15)
            }
            Sysno::Exit => {
                machine.set_reg(1, 0);
                HookResult::cost(100)
            }
            Sysno::Execve => HookResult::cost(120),
            Sysno::Getpid | Sysno::Getuid => {
                machine.set_reg(1, u64::from(self.procs[&asid].pid));
                HookResult::cost(5)
            }
            _ => {
                machine.set_reg(1, 0);
                HookResult::cost(10)
            }
        }
    }
}

/// A cloneable, shared kernel handle implementing the core's
/// [`HookHandler`] interface.
#[derive(Clone)]
pub struct SharedKernel(pub Rc<RefCell<Kernel>>);

impl SharedKernel {
    /// Wrap a kernel for sharing between the core and the workload driver.
    pub fn new(kernel: Kernel) -> Self {
        SharedKernel(Rc::new(RefCell::new(kernel)))
    }

    /// Borrow the kernel immutably.
    pub fn borrow(&self) -> std::cell::Ref<'_, Kernel> {
        self.0.borrow()
    }

    /// Borrow the kernel mutably.
    pub fn borrow_mut(&self) -> std::cell::RefMut<'_, Kernel> {
        self.0.borrow_mut()
    }
}

impl std::fmt::Debug for SharedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedKernel({:?})", self.0.borrow())
    }
}

impl HookHandler for SharedKernel {
    fn on_hook(&mut self, id: u16, machine: &mut Machine) -> HookResult {
        let Some(sys) = Sysno::from_u16(id) else {
            return HookResult::nop();
        };
        self.0.borrow_mut().handle_syscall(sys, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TASK_FIELDS;
    use crate::sink::RecordingSink;

    fn kernel_with_recording() -> (Kernel, Rc<RefCell<RecordingSink>>) {
        let rec = Rc::new(RefCell::new(RecordingSink::default()));
        let sink: SharedSink = rec.clone();
        (Kernel::build(KernelConfig::test_small(), sink), rec)
    }

    #[test]
    fn install_populates_dispatch_table() {
        let (k, _) = kernel_with_recording();
        let mut m = Machine::new();
        k.install(&mut m);
        assert_eq!(m.kernel_entry, ENTRY_STUB_VA);
        for &sys in Sysno::ALL {
            let va = m.mem.read_u64(SYSCALL_TABLE + (sys as u16 as u64) * 8);
            let fid = k.graph.entries[&sys];
            assert_eq!(va, k.graph.func(fid).entry_va, "{sys} entry mismatch");
        }
    }

    #[test]
    fn install_registers_shared_regions() {
        let (k, rec) = kernel_with_recording();
        let mut m = Machine::new();
        k.install(&mut m);
        let sink = rec.borrow();
        assert!(sink
            .va_assigns
            .iter()
            .any(|&(va, _, o)| va == layout::KDATA_SHARED_BASE && o == Owner::Shared));
    }

    #[test]
    fn create_process_wires_task_struct() {
        let (mut k, _) = kernel_with_recording();
        let mut m = Machine::new();
        k.install(&mut m);
        let pid = k.create_process(7, &mut m);
        let asid = Process::asid_of(pid);
        let proc = k.process(asid).unwrap().clone();
        // Every task field points at a valid kernel object.
        for field in 0..TASK_FIELDS as u64 {
            let ptr = m.mem.read_u64(proc.task_struct_va + field * 8);
            assert!(
                layout::va_to_frame(ptr).is_some(),
                "field {field} -> {ptr:#x}"
            );
        }
        // fd array has the expected pattern.
        let fd_array = m
            .mem
            .read_u64(proc.task_struct_va + u64::from(F_FDARRAY) * 8);
        assert_eq!(m.mem.read_u64(fd_array), 1);
        assert_eq!(m.mem.read_u64(fd_array + 8), 0);
    }

    #[test]
    fn process_allocations_carry_cgroup_ownership() {
        let (mut k, rec) = kernel_with_recording();
        let mut m = Machine::new();
        k.install(&mut m);
        k.create_process(9, &mut m);
        let sink = rec.borrow();
        assert!(
            sink.frame_assigns
                .iter()
                .any(|&(_, _, o)| o == Owner::Cgroup(9)),
            "task-struct slab pages must be owned by cgroup 9"
        );
        assert!(sink
            .va_assigns
            .iter()
            .any(|&(va, len, o)| va == layout::user_data_base(1)
                && len == layout::USER_DATA_STRIDE
                && o == Owner::Cgroup(9)));
    }

    #[test]
    fn set_current_points_current_task() {
        let (mut k, _) = kernel_with_recording();
        let mut m = Machine::new();
        k.install(&mut m);
        let p1 = k.create_process(1, &mut m);
        let p2 = k.create_process(2, &mut m);
        k.set_current(Process::asid_of(p1), &mut m);
        let t1 = m.mem.read_u64(CURRENT_TASK_PTR);
        k.set_current(Process::asid_of(p2), &mut m);
        let t2 = m.mem.read_u64(CURRENT_TASK_PTR);
        assert_ne!(t1, t2);
        assert_eq!(m.asid, Process::asid_of(p2));
    }

    #[test]
    fn mmap_hook_allocates_and_returns_va() {
        let (k, _) = kernel_with_recording();
        let mut shared = SharedKernel::new(k);
        let mut m = Machine::new();
        shared.borrow().install(&mut m);
        let pid = shared.borrow_mut().create_process(1, &mut m);
        shared.borrow().set_current(Process::asid_of(pid), &mut m);

        let free_before = shared.borrow().buddy.free_frames();
        m.set_reg(10, 4); // 4 pages
        let r = shared.on_hook(Sysno::Mmap as u16, &mut m);
        assert!(r.extra_cycles > 0);
        let va = m.reg(1);
        assert_eq!(va, layout::user_data_base(pid));
        assert_eq!(shared.borrow().buddy.free_frames(), free_before - 4);

        // munmap releases them again.
        let r2 = shared.on_hook(Sysno::Munmap as u16, &mut m);
        assert!(r2.extra_cycles > 0);
        assert_eq!(shared.borrow().buddy.free_frames(), free_before);
    }

    #[test]
    fn fork_creates_a_child_process() {
        let (k, _) = kernel_with_recording();
        let mut shared = SharedKernel::new(k);
        let mut m = Machine::new();
        shared.borrow().install(&mut m);
        let pid = shared.borrow_mut().create_process(1, &mut m);
        shared.borrow().set_current(Process::asid_of(pid), &mut m);
        m.set_reg(10, 0);
        shared.on_hook(Sysno::Fork as u16, &mut m);
        let child = m.reg(1) as u32;
        assert_ne!(child, pid);
        assert!(shared.borrow().process(Process::asid_of(child)).is_some());
    }

    #[test]
    fn syscall_counts_accumulate() {
        let (k, _) = kernel_with_recording();
        let mut shared = SharedKernel::new(k);
        let mut m = Machine::new();
        shared.borrow().install(&mut m);
        let pid = shared.borrow_mut().create_process(1, &mut m);
        shared.borrow().set_current(Process::asid_of(pid), &mut m);
        shared.on_hook(Sysno::Getpid as u16, &mut m);
        shared.on_hook(Sysno::Getpid as u16, &mut m);
        assert_eq!(shared.borrow().syscall_counts[&Sysno::Getpid], 2);
        assert_eq!(m.reg(1), u64::from(pid), "getpid returns the pid");
    }

    #[test]
    fn destroy_process_frees_all_resources() {
        let (mut k, rec) = kernel_with_recording();
        let mut m = Machine::new();
        k.install(&mut m);
        let free0 = k.buddy.free_frames();
        let pages0 = k.slab.live_pages();
        let pid = k.create_process(3, &mut m);
        assert!(k.buddy.free_frames() < free0);
        k.destroy_process(Process::asid_of(pid));
        assert_eq!(k.buddy.free_frames(), free0, "every frame returned");
        assert_eq!(k.slab.live_pages(), pages0, "every slab page drained");
        assert!(k.process(Process::asid_of(pid)).is_none());
        let sink = rec.borrow();
        assert!(sink
            .va_releases
            .iter()
            .any(|&(va, _)| va == layout::user_data_base(pid)));
    }

    #[test]
    fn unknown_hook_is_a_nop() {
        let (k, _) = kernel_with_recording();
        let mut shared = SharedKernel::new(k);
        let mut m = Machine::new();
        assert_eq!(shared.on_hook(9999, &mut m), HookResult::nop());
    }
}
