//! The slab allocator — standard (Linux-like) and Perspective's secure
//! variant.
//!
//! Linux's slab packs small allocations from *mutually distrusting*
//! contexts into the same pages (even the same cache line), which defeats
//! page-granular ownership tracking (§5.2). Perspective's **secure slab
//! allocator** (§6.1) keeps, for each object size class, *separate page
//! lists per cgroup*, eliminating collocation at page granularity.
//!
//! Both variants are implemented behind one type so the evaluation can
//! compare fragmentation (§9.2 "Memory Fragmentation") and count the
//! page-level domain-reassignment operations (§9.2 "Domain Reassignment").

use crate::context::CgroupId;
use crate::layout::{frame_to_va, va_to_frame, PAGE_SIZE};
use crate::mm::buddy::BuddyAllocator;
use crate::sink::{AllocSink, Owner};
use std::collections::HashMap;

/// kmalloc size classes, as in Linux (8 B up to one page).
pub const SIZE_CLASSES: [usize; 10] = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Pick the smallest class that fits `size`.
pub fn size_class(size: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= size)
}

/// Slab statistics (drives the §9.2 sensitivity analyses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Object allocations served.
    pub object_allocs: u64,
    /// Object frees.
    pub object_frees: u64,
    /// Pages obtained from the buddy allocator.
    pub page_allocs: u64,
    /// Pages returned to the buddy allocator — each one is a *domain
    /// reassignment* in the secure allocator.
    pub page_frees: u64,
}

impl SlabStats {
    /// Fraction of object frees that caused a page to go back to the buddy
    /// allocator (the paper reports 0.003 %–0.23 % across workloads).
    pub fn page_op_ratio(&self) -> f64 {
        if self.object_frees == 0 {
            0.0
        } else {
            self.page_frees as f64 / self.object_frees as f64
        }
    }
}

#[derive(Debug)]
struct SlabPage {
    class: usize,
    owner_key: u64,
    used: Vec<bool>,
    free_count: usize,
}

impl SlabPage {
    fn objects_per_page(class: usize) -> usize {
        PAGE_SIZE as usize / SIZE_CLASSES[class]
    }
}

/// The slab allocator. `secure: true` gives Perspective's per-cgroup page
/// lists; `false` gives the packing Linux baseline.
#[derive(Debug)]
pub struct SlabAllocator {
    secure: bool,
    /// (class, owner_key) -> frames with at least one free slot.
    partial: HashMap<(usize, u64), Vec<u64>>,
    pages: HashMap<u64, SlabPage>,
    stats: SlabStats,
}

const SHARED_KEY: u64 = u64::MAX;

impl SlabAllocator {
    /// Create an allocator; `secure` selects Perspective's variant.
    pub fn new(secure: bool) -> Self {
        SlabAllocator {
            secure,
            partial: HashMap::new(),
            pages: HashMap::new(),
            stats: SlabStats::default(),
        }
    }

    /// Is this the secure (per-cgroup) variant?
    pub fn is_secure(&self) -> bool {
        self.secure
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SlabStats {
        self.stats
    }

    fn owner_key(&self, cgroup: CgroupId) -> u64 {
        if self.secure {
            u64::from(cgroup)
        } else {
            SHARED_KEY
        }
    }

    /// Allocate `size` bytes on behalf of `cgroup` (Linux `kmalloc`).
    /// Returns the object's direct-map virtual address.
    ///
    /// Under the secure variant the backing page's DSV ownership is the
    /// allocating cgroup; under the baseline the page is `Shared` (packed
    /// across contexts — the very problem §5.2 describes).
    pub fn kmalloc(
        &mut self,
        size: usize,
        cgroup: CgroupId,
        buddy: &mut BuddyAllocator,
        sink: &mut dyn AllocSink,
    ) -> Option<u64> {
        let class = size_class(size)?;
        let key = self.owner_key(cgroup);
        let frame = match self
            .partial
            .get(&(class, key))
            .and_then(|v| v.last().copied())
        {
            Some(f) => f,
            None => {
                let owner = if self.secure {
                    Owner::Cgroup(cgroup)
                } else {
                    Owner::Shared
                };
                let f = buddy.alloc(0, owner, sink)?;
                self.stats.page_allocs += 1;
                self.pages.insert(
                    f,
                    SlabPage {
                        class,
                        owner_key: key,
                        used: vec![false; SlabPage::objects_per_page(class)],
                        free_count: SlabPage::objects_per_page(class),
                    },
                );
                self.partial.entry((class, key)).or_default().push(f);
                f
            }
        };
        let page = self.pages.get_mut(&frame).expect("partial page exists");
        let slot = page
            .used
            .iter()
            .position(|u| !u)
            .expect("partial page has a free slot");
        page.used[slot] = true;
        page.free_count -= 1;
        if page.free_count == 0 {
            let list = self.partial.get_mut(&(class, key)).expect("listed");
            list.retain(|&f| f != frame);
        }
        self.stats.object_allocs += 1;
        Some(frame_to_va(frame) + (slot * SIZE_CLASSES[class]) as u64)
    }

    /// Free an object previously returned by [`SlabAllocator::kmalloc`].
    /// When the last object of a page is freed, the page returns to the
    /// buddy allocator — a domain-reassignment event.
    ///
    /// # Panics
    ///
    /// Panics on addresses that are not live slab objects.
    pub fn kfree(&mut self, va: u64, buddy: &mut BuddyAllocator, sink: &mut dyn AllocSink) {
        let frame = va_to_frame(va).expect("kfree of non-direct-map address");
        let page = self.pages.get_mut(&frame).expect("kfree of non-slab page");
        let class = page.class;
        let key = page.owner_key;
        let offset = (va - frame_to_va(frame)) as usize;
        assert_eq!(offset % SIZE_CLASSES[class], 0, "kfree of interior pointer");
        let slot = offset / SIZE_CLASSES[class];
        assert!(page.used[slot], "double kfree at {va:#x}");
        page.used[slot] = false;
        let was_full = page.free_count == 0;
        page.free_count += 1;
        self.stats.object_frees += 1;

        if page.free_count == page.used.len() {
            // Whole page free: return it to the buddy allocator.
            self.pages.remove(&frame);
            if let Some(list) = self.partial.get_mut(&(class, key)) {
                list.retain(|&f| f != frame);
            }
            buddy.free(frame, sink);
            self.stats.page_frees += 1;
        } else if was_full {
            self.partial.entry((class, key)).or_default().push(frame);
        }
    }

    /// Memory utilization: `(active_object_bytes, total_slab_bytes)`.
    /// The §9.2 fragmentation metric is `1 - active/total` relative to the
    /// baseline allocator.
    pub fn utilization(&self) -> (u64, u64) {
        let mut active = 0u64;
        let mut total = 0u64;
        for page in self.pages.values() {
            let objs = page.used.len();
            let used = objs - page.free_count;
            active += (used * SIZE_CLASSES[page.class]) as u64;
            total += PAGE_SIZE;
        }
        (active, total)
    }

    /// Number of live slab pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len()
    }
}

impl persp_uarch::MetricsSource for SlabAllocator {
    fn export_metrics(&self, prefix: &str, reg: &mut persp_uarch::MetricsRegistry) {
        reg.set(format!("{prefix}.object_allocs"), self.stats.object_allocs);
        reg.set(format!("{prefix}.object_frees"), self.stats.object_frees);
        reg.set(format!("{prefix}.page_allocs"), self.stats.page_allocs);
        reg.set(format!("{prefix}.page_frees"), self.stats.page_frees);
        reg.set(format!("{prefix}.live_pages"), self.pages.len() as u64);
        let (active, total) = self.utilization();
        reg.set(format!("{prefix}.active_bytes"), active);
        reg.set(format!("{prefix}.total_bytes"), total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, RecordingSink};

    fn setup() -> (BuddyAllocator, NullSink) {
        (BuddyAllocator::new(4096), NullSink)
    }

    #[test]
    fn size_class_selection() {
        assert_eq!(size_class(1), Some(0));
        assert_eq!(size_class(8), Some(0));
        assert_eq!(size_class(9), Some(1));
        assert_eq!(size_class(4096), Some(9));
        assert_eq!(size_class(4097), None);
    }

    #[test]
    fn kmalloc_kfree_round_trip() {
        let (mut buddy, mut sink) = setup();
        let mut slab = SlabAllocator::new(true);
        let a = slab.kmalloc(64, 1, &mut buddy, &mut sink).unwrap();
        let b = slab.kmalloc(64, 1, &mut buddy, &mut sink).unwrap();
        assert_ne!(a, b);
        assert_eq!(b - a, 64, "objects pack within a page");
        slab.kfree(a, &mut buddy, &mut sink);
        slab.kfree(b, &mut buddy, &mut sink);
        assert_eq!(slab.live_pages(), 0, "empty page returned to buddy");
        assert_eq!(slab.stats().page_frees, 1);
    }

    #[test]
    fn baseline_packs_across_cgroups() {
        let (mut buddy, mut sink) = setup();
        let mut slab = SlabAllocator::new(false);
        let a = slab.kmalloc(8, 1, &mut buddy, &mut sink).unwrap();
        let b = slab.kmalloc(8, 2, &mut buddy, &mut sink).unwrap();
        // Mutually distrusting contexts share a page (and a cache line!).
        assert_eq!(a & !0xfff, b & !0xfff);
        assert_eq!(b - a, 8);
    }

    #[test]
    fn secure_slab_isolates_cgroups_at_page_granularity() {
        let (mut buddy, mut sink) = setup();
        let mut slab = SlabAllocator::new(true);
        let a = slab.kmalloc(8, 1, &mut buddy, &mut sink).unwrap();
        let b = slab.kmalloc(8, 2, &mut buddy, &mut sink).unwrap();
        assert_ne!(a & !0xfff, b & !0xfff, "no collocation across cgroups");
    }

    #[test]
    fn secure_pages_carry_cgroup_ownership() {
        let mut buddy = BuddyAllocator::new(4096);
        let mut sink = RecordingSink::default();
        let mut slab = SlabAllocator::new(true);
        slab.kmalloc(128, 5, &mut buddy, &mut sink).unwrap();
        assert_eq!(sink.frame_assigns.len(), 1);
        assert_eq!(sink.frame_assigns[0].2, Owner::Cgroup(5));

        let mut sink2 = RecordingSink::default();
        let mut slab2 = SlabAllocator::new(false);
        slab2.kmalloc(128, 5, &mut buddy, &mut sink2).unwrap();
        assert_eq!(sink2.frame_assigns[0].2, Owner::Shared);
    }

    #[test]
    fn page_reused_after_partial_free() {
        let (mut buddy, mut sink) = setup();
        let mut slab = SlabAllocator::new(true);
        // Fill a whole 4096/2048 = 2-object page.
        let a = slab.kmalloc(2048, 1, &mut buddy, &mut sink).unwrap();
        let b = slab.kmalloc(2048, 1, &mut buddy, &mut sink).unwrap();
        assert_eq!(a & !0xfff, b & !0xfff);
        slab.kfree(a, &mut buddy, &mut sink);
        // The page moved back to the partial list and the slot is reused.
        let c = slab.kmalloc(2048, 1, &mut buddy, &mut sink).unwrap();
        assert_eq!(c, a);
        assert_eq!(slab.stats().page_allocs, 1, "no second page needed");
    }

    #[test]
    fn utilization_accounts_active_bytes() {
        let (mut buddy, mut sink) = setup();
        let mut slab = SlabAllocator::new(true);
        slab.kmalloc(64, 1, &mut buddy, &mut sink).unwrap();
        slab.kmalloc(64, 1, &mut buddy, &mut sink).unwrap();
        let (active, total) = slab.utilization();
        assert_eq!(active, 128);
        assert_eq!(total, PAGE_SIZE);
    }

    #[test]
    fn secure_variant_fragments_more_than_baseline() {
        // 4 cgroups × small allocations: the baseline packs them into one
        // page, the secure variant needs one page per cgroup.
        let (mut buddy, mut sink) = setup();
        let mut base = SlabAllocator::new(false);
        let mut secure = SlabAllocator::new(true);
        for cg in 0..4 {
            base.kmalloc(8, cg, &mut buddy, &mut sink).unwrap();
            secure.kmalloc(8, cg, &mut buddy, &mut sink).unwrap();
        }
        assert_eq!(base.live_pages(), 1);
        assert_eq!(secure.live_pages(), 4);
    }

    #[test]
    #[should_panic(expected = "double kfree")]
    fn double_free_detected() {
        let (mut buddy, mut sink) = setup();
        let mut slab = SlabAllocator::new(true);
        // Keep a second object live so the page isn't returned to buddy.
        let a = slab.kmalloc(64, 1, &mut buddy, &mut sink).unwrap();
        let _b = slab.kmalloc(64, 1, &mut buddy, &mut sink).unwrap();
        slab.kfree(a, &mut buddy, &mut sink);
        slab.kfree(a, &mut buddy, &mut sink);
    }

    #[test]
    fn page_op_ratio_matches_definition() {
        let (mut buddy, mut sink) = setup();
        let mut slab = SlabAllocator::new(true);
        let objs: Vec<u64> = (0..4)
            .map(|_| slab.kmalloc(2048, 1, &mut buddy, &mut sink).unwrap())
            .collect();
        for o in objs {
            slab.kfree(o, &mut buddy, &mut sink);
        }
        // 4 frees, 2 page releases (2 objects per page).
        let s = slab.stats();
        assert_eq!(s.object_frees, 4);
        assert_eq!(s.page_frees, 2);
        assert!((s.page_op_ratio() - 0.5).abs() < 1e-12);
    }
}
