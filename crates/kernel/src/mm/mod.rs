//! Kernel memory management: the buddy allocator and the slab allocators.

pub mod buddy;
pub mod slab;

pub use buddy::{BuddyAllocator, BuddyStats, MAX_ORDER};
pub use slab::{size_class, SlabAllocator, SlabStats, SIZE_CLASSES};
