//! A buddy allocator over physical frames.
//!
//! This is the mini-OS analog of Linux's `alloc_pages()`. Perspective's
//! integration point (§6.1) is exactly here: every allocation carries the
//! cgroup of the requesting context, and the allocator reports ownership to
//! the configured [`AllocSink`] so the DSV of the
//! corresponding direct-map pages stays current.

use crate::context::CgroupId;
use crate::sink::{AllocSink, Owner};
use std::collections::{BTreeSet, HashMap};

/// Largest supported order (2^10 frames = 4 MiB blocks).
pub const MAX_ORDER: u8 = 10;

/// Buddy allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuddyStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Block splits performed.
    pub splits: u64,
    /// Buddy merges performed.
    pub merges: u64,
    /// Allocation failures (out of memory).
    pub failures: u64,
}

impl persp_uarch::MetricsSource for BuddyAllocator {
    fn export_metrics(&self, prefix: &str, reg: &mut persp_uarch::MetricsRegistry) {
        reg.set(format!("{prefix}.allocs"), self.stats.allocs);
        reg.set(format!("{prefix}.frees"), self.stats.frees);
        reg.set(format!("{prefix}.splits"), self.stats.splits);
        reg.set(format!("{prefix}.merges"), self.stats.merges);
        reg.set(format!("{prefix}.failures"), self.stats.failures);
        reg.set(format!("{prefix}.free_frames"), self.free_frames());
        reg.set(format!("{prefix}.num_frames"), self.num_frames);
    }
}

/// The buddy allocator.
#[derive(Debug)]
pub struct BuddyAllocator {
    num_frames: u64,
    free_lists: Vec<BTreeSet<u64>>,
    allocated: HashMap<u64, (u8, Owner)>,
    stats: BuddyStats,
}

impl BuddyAllocator {
    /// Manage `num_frames` physical frames, initially all free.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames` is zero.
    pub fn new(num_frames: u64) -> Self {
        assert!(num_frames > 0, "cannot manage zero frames");
        let mut free_lists = vec![BTreeSet::new(); (MAX_ORDER + 1) as usize];
        // Seed with maximal aligned blocks.
        let mut frame = 0;
        while frame < num_frames {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                if frame % size == 0 && frame + size <= num_frames {
                    break;
                }
                order -= 1;
            }
            free_lists[order as usize].insert(frame);
            frame += 1u64 << order;
        }
        BuddyAllocator {
            num_frames,
            free_lists,
            allocated: HashMap::new(),
            stats: BuddyStats::default(),
        }
    }

    /// Total managed frames.
    pub fn num_frames(&self) -> u64 {
        self.num_frames
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BuddyStats {
        self.stats
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_lists
            .iter()
            .enumerate()
            .map(|(order, set)| set.len() as u64 * (1u64 << order))
            .sum()
    }

    /// Allocate a block of `2^order` frames on behalf of `owner`,
    /// reporting ownership to `sink`. Returns the first frame number.
    pub fn alloc(&mut self, order: u8, owner: Owner, sink: &mut dyn AllocSink) -> Option<u64> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest order with a free block.
        let mut from = None;
        for o in order..=MAX_ORDER {
            if let Some(&frame) = self.free_lists[o as usize].iter().next() {
                from = Some((o, frame));
                break;
            }
        }
        let Some((mut o, frame)) = from else {
            self.stats.failures += 1;
            return None;
        };
        self.free_lists[o as usize].remove(&frame);
        // Split down to the requested order.
        while o > order {
            o -= 1;
            let buddy = frame + (1u64 << o);
            self.free_lists[o as usize].insert(buddy);
            self.stats.splits += 1;
        }
        self.allocated.insert(frame, (order, owner));
        self.stats.allocs += 1;
        sink.assign_frames(frame, 1 << order, owner);
        Some(frame)
    }

    /// Allocate a single frame (order 0) for `owner`.
    pub fn alloc_page(&mut self, owner: Owner, sink: &mut dyn AllocSink) -> Option<u64> {
        self.alloc(0, owner, sink)
    }

    /// Convenience: allocate for a cgroup.
    pub fn alloc_for_cgroup(
        &mut self,
        order: u8,
        cgroup: CgroupId,
        sink: &mut dyn AllocSink,
    ) -> Option<u64> {
        self.alloc(order, Owner::Cgroup(cgroup), sink)
    }

    /// Free a previously allocated block; merges with free buddies.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not the start of a live allocation
    /// (double-free / bad-pointer detection).
    pub fn free(&mut self, frame: u64, sink: &mut dyn AllocSink) {
        let (order, _owner) = self
            .allocated
            .remove(&frame)
            .unwrap_or_else(|| panic!("free of unallocated frame {frame}"));
        sink.release_frames(frame, 1 << order);
        self.stats.frees += 1;
        // Merge upward.
        let mut frame = frame;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = frame ^ (1u64 << order);
            if !self.free_lists[order as usize].remove(&buddy) {
                break;
            }
            self.stats.merges += 1;
            frame = frame.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(frame);
    }

    /// Owner of the allocation containing nothing but `frame` as its first
    /// frame, if live.
    pub fn owner_of(&self, frame: u64) -> Option<Owner> {
        self.allocated.get(&frame).map(|&(_, o)| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, RecordingSink};

    #[test]
    fn alloc_free_round_trip() {
        let mut b = BuddyAllocator::new(1024);
        let mut sink = NullSink;
        assert_eq!(b.free_frames(), 1024);
        let f = b.alloc(0, Owner::Shared, &mut sink).unwrap();
        assert_eq!(b.free_frames(), 1023);
        b.free(f, &mut sink);
        assert_eq!(b.free_frames(), 1024);
    }

    #[test]
    fn split_and_merge_restore_invariant() {
        let mut b = BuddyAllocator::new(1 << MAX_ORDER);
        let mut sink = NullSink;
        let frames: Vec<u64> = (0..8)
            .map(|_| b.alloc(0, Owner::Shared, &mut sink).unwrap())
            .collect();
        assert!(b.stats().splits > 0);
        for f in frames {
            b.free(f, &mut sink);
        }
        assert_eq!(b.free_frames(), 1 << MAX_ORDER);
        // Everything merged back into one maximal block.
        assert_eq!(b.free_lists[MAX_ORDER as usize].len(), 1);
        assert!(b.stats().merges > 0);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut b = BuddyAllocator::new(256);
        let mut sink = NullSink;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let f = b.alloc(1, Owner::Shared, &mut sink).unwrap(); // 2 frames each
            assert!(seen.insert(f));
            assert!(seen.insert(f + 1) || !seen.contains(&(f + 1)));
        }
    }

    #[test]
    fn out_of_memory_returns_none() {
        let mut b = BuddyAllocator::new(2);
        let mut sink = NullSink;
        assert!(b.alloc(0, Owner::Shared, &mut sink).is_some());
        assert!(b.alloc(0, Owner::Shared, &mut sink).is_some());
        assert!(b.alloc(0, Owner::Shared, &mut sink).is_none());
        assert_eq!(b.stats().failures, 1);
    }

    #[test]
    fn ownership_is_reported_to_sink() {
        let mut b = BuddyAllocator::new(64);
        let mut sink = RecordingSink::default();
        let f = b.alloc_for_cgroup(2, 9, &mut sink).unwrap();
        assert_eq!(sink.frame_assigns, vec![(f, 4, Owner::Cgroup(9))]);
        assert_eq!(b.owner_of(f), Some(Owner::Cgroup(9)));
        b.free(f, &mut sink);
        assert_eq!(sink.frame_releases, vec![(f, 4)]);
        assert_eq!(b.owner_of(f), None);
    }

    #[test]
    #[should_panic(expected = "free of unallocated frame")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(16);
        let mut sink = NullSink;
        let f = b.alloc(0, Owner::Shared, &mut sink).unwrap();
        b.free(f, &mut sink);
        b.free(f, &mut sink);
    }

    #[test]
    fn non_power_of_two_frame_counts_are_seeded_fully() {
        let b = BuddyAllocator::new(1000);
        assert_eq!(b.free_frames(), 1000);
    }
}
