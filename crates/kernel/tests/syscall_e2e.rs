//! End-to-end: user programs trap into the generated kernel through the
//! simulated pipeline — dispatch stub, indirect call, nested kernel
//! functions, semantic hooks, and back through `sysret`.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::{Kernel, SharedKernel};
use persp_kernel::layout;
use persp_kernel::syscalls::Sysno;
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::isa::{Assembler, Inst, REG_ARG0, REG_ARG1, REG_ARG2, REG_SYSNO};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::Core;
use persp_uarch::policy::{FencePolicy, SpecPolicy, UnsafePolicy};

fn build_core(policy: Box<dyn SpecPolicy>) -> (Core, SharedKernel, u16) {
    let kernel = Kernel::build_unprotected(KernelConfig::test_small());
    let shared = SharedKernel::new(kernel);
    let mut machine = Machine::new();
    shared.borrow().install(&mut machine);
    let pid = shared.borrow_mut().create_process(1, &mut machine);
    let asid = pid as u16;
    shared.borrow().set_current(asid, &mut machine);
    let core = Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::paper_default()),
        policy,
        Box::new(shared.clone()),
    );
    (core, shared, asid)
}

fn user_syscall_program(base: u64, sys: Sysno, args: &[(u8, u64)]) -> Vec<(u64, Inst)> {
    let mut asm = Assembler::new(base);
    for &(reg, val) in args {
        asm.movi(reg, val);
    }
    asm.movi(REG_SYSNO, sys as u16 as u64);
    asm.push(Inst::Syscall);
    asm.push(Inst::Halt);
    asm.finish()
}

#[test]
fn getpid_round_trip() {
    let (mut core, shared, asid) = build_core(Box::new(UnsafePolicy::new()));
    let pid = shared.borrow().process(asid).unwrap().pid;
    let base = layout::user_text_base(pid);
    let prog = user_syscall_program(base, Sysno::Getpid, &[]);
    core.machine.load_text(prog);

    let summary = core.run(base, 2_000_000).expect("getpid completes");
    assert_eq!(
        core.machine.reg(1),
        u64::from(pid),
        "getpid returns the pid"
    );
    assert_eq!(summary.stats.syscalls, 1);
    assert!(
        summary.stats.kernel_cycles > 0,
        "time was spent in the kernel"
    );
    assert!(
        summary.stats.committed_insts > 20,
        "the syscall path runs real kernel code: {:?}",
        summary.stats
    );
    assert_eq!(
        core.machine.mode,
        persp_uarch::Mode::User,
        "returned to userspace"
    );
    assert!(core.machine.call_stack.is_empty(), "call stack balanced");
}

#[test]
fn select_scans_fds_and_counts_kernel_work() {
    let (mut core, _shared, _asid) = build_core(Box::new(UnsafePolicy::new()));
    let base = layout::user_text_base(1);
    let prog = user_syscall_program(base, Sysno::Select, &[(REG_ARG0, 128)]);
    core.machine.load_text(prog);

    let summary = core.run(base, 2_000_000).expect("select completes");
    // The fd-scan loop runs 128 iterations of ~8 instructions.
    assert!(
        summary.stats.committed_insts > 800,
        "select must loop over 128 fds: {:?}",
        summary.stats
    );
    assert!(
        summary.stats.committed_branches >= 256,
        "two branches per fd iteration"
    );
}

#[test]
fn read_copies_into_user_buffer() {
    let (mut core, shared, asid) = build_core(Box::new(UnsafePolicy::new()));
    let pid = shared.borrow().process(asid).unwrap().pid;
    let base = layout::user_text_base(pid);
    let buf = layout::user_data_base(pid) + 0x1000;

    // Fill the page-cache page with a pattern.
    let pc_va = shared
        .borrow()
        .process(asid)
        .unwrap()
        .page_cache_va
        .unwrap();
    for i in 0..8u64 {
        core.machine.mem.write_u64(pc_va + i * 8, 0xAB00 + i);
    }

    let prog = user_syscall_program(
        base,
        Sysno::Read,
        &[(REG_ARG0, 3), (REG_ARG1, buf), (REG_ARG2, 8)],
    );
    core.machine.load_text(prog);
    core.run(base, 2_000_000).expect("read completes");

    for i in 0..8u64 {
        assert_eq!(
            core.machine.mem.read_u64(buf + i * 8),
            0xAB00 + i,
            "word {i} copied to the user buffer"
        );
    }
    assert_eq!(core.machine.reg(1), 8, "read returns the word count");
}

#[test]
fn mmap_allocates_and_registers_ownership() {
    let (mut core, shared, _asid) = build_core(Box::new(UnsafePolicy::new()));
    let base = layout::user_text_base(1);
    let prog = user_syscall_program(base, Sysno::Mmap, &[(REG_ARG0, 4)]);
    core.machine.load_text(prog);

    let free_before = shared.borrow().buddy.free_frames();
    core.run(base, 2_000_000).expect("mmap completes");
    assert_eq!(core.machine.reg(1), layout::user_data_base(1));
    assert_eq!(shared.borrow().buddy.free_frames(), free_before - 4);
}

#[test]
fn every_syscall_completes_under_unsafe_and_fence() {
    for fence in [false, true] {
        let policy: Box<dyn SpecPolicy> = if fence {
            Box::new(FencePolicy::new())
        } else {
            Box::new(UnsafePolicy::new())
        };
        let (mut core, _shared, _asid) = build_core(policy);
        let base = layout::user_text_base(1);
        let buf = layout::user_data_base(1) + 0x10_000;
        let mut asm = Assembler::new(base);
        for &sys in Sysno::ALL {
            if matches!(sys, Sysno::Exit | Sysno::Execve) {
                continue; // destructive semantics exercised separately
            }
            asm.movi(REG_ARG0, 4);
            asm.movi(REG_ARG1, buf);
            asm.movi(REG_ARG2, 4);
            asm.movi(REG_SYSNO, sys as u16 as u64);
            asm.push(Inst::Syscall);
        }
        asm.push(Inst::Halt);
        core.machine.load_text(asm.finish());

        let summary = core.run(base, 20_000_000).expect("all syscalls complete");
        assert_eq!(summary.stats.syscalls as usize, Sysno::ALL.len() - 2);
    }
}

#[test]
fn fence_is_slower_than_unsafe_on_select() {
    let mut cycles = Vec::new();
    for fence in [false, true] {
        let policy: Box<dyn SpecPolicy> = if fence {
            Box::new(FencePolicy::new())
        } else {
            Box::new(UnsafePolicy::new())
        };
        let (mut core, _shared, _asid) = build_core(policy);
        let base = layout::user_text_base(1);
        let prog = user_syscall_program(base, Sysno::Select, &[(REG_ARG0, 256)]);
        core.machine.load_text(prog);
        // Warm up, then measure.
        core.run(base, 4_000_000).expect("warmup");
        let s = core.run(base, 4_000_000).expect("measured run");
        cycles.push(s.stats.cycles);
    }
    assert!(
        cycles[1] > cycles[0] * 11 / 10,
        "FENCE must cost ≥10% on the fd-scan loop: unsafe={} fence={}",
        cycles[0],
        cycles[1]
    );
}

#[test]
fn call_trace_records_kernel_functions() {
    let (mut core, shared, _asid) = build_core(Box::new(UnsafePolicy::new()));
    let base = layout::user_text_base(1);
    let prog = user_syscall_program(
        base,
        Sysno::Read,
        &[(REG_ARG1, layout::user_data_base(1)), (REG_ARG2, 2)],
    );
    core.machine.load_text(prog);

    core.enable_call_trace();
    core.run(base, 2_000_000).expect("runs");
    let trace = core.take_call_trace();
    let kernel = shared.borrow();
    let traced_funcs: Vec<_> = trace
        .iter()
        .filter_map(|&va| kernel.graph.func_of_va(va))
        .collect();
    assert!(
        traced_funcs.len() >= 2,
        "dispatch + sys_read + helpers must appear in the trace: {traced_funcs:?}"
    );
    let entry = kernel.graph.entries[&Sysno::Read];
    assert!(
        traced_funcs.contains(&entry),
        "sys_read entry must be traced"
    );
}
