//! End-to-end extension programs: verified code loaded behind the ioctl
//! hook and executed architecturally through the pipeline.

use persp_kernel::callgraph::KernelConfig;
use persp_kernel::ebpf::{verify, VerifierError, EBPF_MAP_REG};
use persp_kernel::kernel::{Kernel, SharedKernel};
use persp_kernel::layout;
use persp_kernel::syscalls::Sysno;
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::isa::{AluOp, Assembler, Inst, Width, REG_ARG0, REG_SYSNO};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::Core;
use persp_uarch::policy::UnsafePolicy;

fn setup() -> (Core, SharedKernel, u16) {
    let kernel = Kernel::build_unprotected(KernelConfig::test_small());
    let shared = SharedKernel::new(kernel);
    let mut machine = Machine::new();
    shared.borrow().install(&mut machine);
    let pid = shared.borrow_mut().create_process(1, &mut machine);
    shared.borrow().set_current(pid as u16, &mut machine);
    let core = Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::paper_default()),
        Box::new(UnsafePolicy::new()),
        Box::new(shared.clone()),
    );
    (core, shared, pid as u16)
}

fn ioctl_once(base: u64, arg0: u64) -> Vec<(u64, Inst)> {
    let mut asm = Assembler::new(base);
    asm.movi(REG_ARG0, arg0);
    asm.movi(REG_SYSNO, Sysno::Ioctl as u16 as u64);
    asm.push(Inst::Syscall);
    asm.push(Inst::Halt);
    asm.finish()
}

/// A verified counter program: `map[8] += 1`.
fn counter_program() -> Vec<Inst> {
    vec![
        Inst::Load {
            dst: 20,
            base: EBPF_MAP_REG,
            offset: 8,
            width: Width::Q,
        },
        Inst::AluImm {
            op: AluOp::Add,
            dst: 20,
            a: 20,
            imm: 1,
        },
        Inst::Store {
            src: 20,
            base: EBPF_MAP_REG,
            offset: 8,
            width: Width::Q,
        },
        Inst::Ret,
    ]
}

#[test]
fn loaded_program_runs_on_every_ioctl() {
    let (mut core, shared, asid) = setup();
    let loaded = shared
        .borrow_mut()
        .load_ebpf(&counter_program(), 1, &mut core.machine)
        .expect("counter verifies");

    let base = layout::user_text_base(u32::from(asid));
    core.machine.load_text(ioctl_once(base, 0));
    for _ in 0..5 {
        shared.borrow().set_current(asid, &mut core.machine);
        core.run(base, 2_000_000).expect("ioctl completes");
    }
    assert_eq!(
        core.machine.mem.read_u64(loaded.map_va + 8),
        5,
        "the extension ran exactly once per ioctl"
    );
}

#[test]
fn reloading_replaces_the_hook_target() {
    let (mut core, shared, asid) = setup();
    let first = shared
        .borrow_mut()
        .load_ebpf(&counter_program(), 1, &mut core.machine)
        .expect("verifies");
    // Second program writes a constant instead.
    let second_prog = vec![
        Inst::MovImm { dst: 20, imm: 0xAA },
        Inst::Store {
            src: 20,
            base: EBPF_MAP_REG,
            offset: 16,
            width: Width::Q,
        },
        Inst::Ret,
    ];
    let second = shared
        .borrow_mut()
        .load_ebpf(&second_prog, 1, &mut core.machine)
        .expect("verifies");
    assert_ne!(
        first.entry_va, second.entry_va,
        "programs get distinct text"
    );
    assert_ne!(first.map_va, second.map_va, "programs get distinct maps");

    let base = layout::user_text_base(u32::from(asid));
    core.machine.load_text(ioctl_once(base, 0));
    shared.borrow().set_current(asid, &mut core.machine);
    core.run(base, 2_000_000).expect("ioctl completes");
    assert_eq!(core.machine.mem.read_u64(second.map_va + 16), 0xAA);
    assert_eq!(
        core.machine.mem.read_u64(first.map_va + 8),
        0,
        "the replaced program no longer runs"
    );
}

#[test]
fn rejected_programs_are_never_installed() {
    let (mut core, shared, asid) = setup();
    // Unguarded dynamic access: rejected.
    let bad = vec![
        Inst::Alu {
            op: AluOp::Add,
            dst: 20,
            a: EBPF_MAP_REG,
            b: 10,
        },
        Inst::Load {
            dst: 21,
            base: 20,
            offset: 0,
            width: Width::B,
        },
        Inst::Ret,
    ];
    assert!(matches!(
        verify(&bad),
        Err(VerifierError::UnprovenAccess { .. })
    ));
    let err = shared.borrow_mut().load_ebpf(&bad, 1, &mut core.machine);
    assert!(err.is_err());

    // The ioctl path still runs (benign stub), with no extension effect.
    let base = layout::user_text_base(u32::from(asid));
    core.machine.load_text(ioctl_once(base, 0));
    shared.borrow().set_current(asid, &mut core.machine);
    core.run(base, 2_000_000)
        .expect("ioctl completes with the stub");
}

#[test]
fn map_is_owned_by_the_loader() {
    use persp_kernel::sink::Owner;
    let (mut core, shared, _asid) = setup();
    let loaded = shared
        .borrow_mut()
        .load_ebpf(&counter_program(), 1, &mut core.machine)
        .expect("verifies");
    let kernel = shared.borrow();
    let frame = layout::va_to_frame(loaded.map_va).expect("map lives in the direct map");
    // The backing slab page belongs to the loader's cgroup — which is why
    // DSVs see an injected gadget's out-of-map access as foreign.
    assert_eq!(kernel.buddy.owner_of(frame), Some(Owner::Cgroup(1)));
}
