//! Model-based property testing of the set-associative cache against a
//! reference LRU oracle, including Perspective's deferred-LRU semantics.

use persp_mem::cache::{Cache, CacheConfig, CacheStats};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model: per set, an LRU-ordered list of resident tags
/// (front = most recently used). Counts the same events as
/// [`CacheStats`] so the counters are pinned too, not just residency.
struct OracleCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line_shift: u32,
    set_bits: u32,
    stats: CacheStats,
}

impl OracleCache {
    fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.num_sets();
        OracleCache {
            sets: vec![VecDeque::new(); sets],
            ways: cfg.ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & ((1 << self.set_bits) - 1)) as usize,
            line >> self.set_bits,
        )
    }

    /// Normal access: returns hit, allocates, moves to MRU.
    fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let ways = self.ways;
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.push_front(tag);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            if list.len() == ways {
                list.pop_back();
                self.stats.evictions += 1;
            }
            list.push_front(tag);
            false
        }
    }

    /// Deferred access: allocates at MRU on miss, does NOT reorder on hit.
    fn touch_deferred(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let ways = self.ways;
        let list = &mut self.sets[set];
        if list.contains(&tag) {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            if list.len() == ways {
                list.pop_back();
                self.stats.evictions += 1;
            }
            list.push_front(tag);
            false
        }
    }

    fn commit_touch(&mut self, addr: u64) {
        let (set, tag) = self.locate(addr);
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.push_front(tag);
        }
    }

    fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        self.sets[set].contains(&tag)
    }

    fn flush_line(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            self.stats.flushes += 1;
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    TouchDeferred(u64),
    CommitTouch(u64),
    Probe(u64),
    Flush(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Addresses confined to a few sets so collisions and evictions are
    // frequent.
    let addr = (0u64..4, 0u64..8).prop_map(|(set, tag)| (tag << 8) | (set << 6));
    prop_oneof![
        addr.clone().prop_map(Op::Access),
        addr.clone().prop_map(Op::TouchDeferred),
        addr.clone().prop_map(Op::CommitTouch),
        addr.clone().prop_map(Op::Probe),
        addr.prop_map(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_agrees_with_lru_oracle(ops in prop::collection::vec(arb_op(), 1..200)) {
        let cfg = CacheConfig {
            size_bytes: 4 * 64 * 2, // 4 sets x 2 ways
            line_bytes: 64,
            ways: 2,
            rt_latency: 1,
            name: "model",
        };
        let mut cache = Cache::new(cfg);
        let mut oracle = OracleCache::new(&cfg);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Access(a) => {
                    prop_assert_eq!(cache.access(a), oracle.access(a), "access #{} at {:#x}", i, a);
                }
                Op::TouchDeferred(a) => {
                    prop_assert_eq!(
                        cache.touch_deferred(a),
                        oracle.touch_deferred(a),
                        "deferred #{} at {:#x}", i, a
                    );
                }
                Op::CommitTouch(a) => {
                    cache.commit_touch(a);
                    oracle.commit_touch(a);
                }
                Op::Probe(a) => {
                    prop_assert_eq!(cache.probe(a), oracle.probe(a), "probe #{} at {:#x}", i, a);
                }
                Op::Flush(a) => {
                    prop_assert_eq!(cache.flush_line(a), oracle.flush_line(a), "flush #{}", i);
                }
            }
        }
        // Final residency agreement over the whole address universe.
        for set in 0..4u64 {
            for tag in 0..8u64 {
                let a = (tag << 8) | (set << 6);
                prop_assert_eq!(cache.probe(a), oracle.probe(a), "final state at {:#x}", a);
            }
        }
        // Every counter, not just residency: hits, misses, evictions,
        // flushes must all agree with the naive event counts.
        prop_assert_eq!(cache.stats(), oracle.stats);
    }
}
