//! Memory-hierarchy models for the Perspective reproduction.
//!
//! This crate provides the microarchitectural memory substrate that the
//! out-of-order core in `persp-uarch` drives:
//!
//! * [`cache`] — parameterized set-associative caches with LRU replacement,
//!   non-allocating probes (needed by the Delay-on-Miss baseline) and
//!   deferred LRU updates (needed by Perspective's visibility-point
//!   semantics).
//! * [`hierarchy`] — a two-level private L1I/L1D + shared L2 + DRAM model
//!   matching Table 7.1 of the paper.
//! * [`tlb`] — an ASID-tagged TLB used by the ISV/DSVMT refill paths.
//! * [`sram`] — a CACTI-inspired analytical SRAM model used to regenerate
//!   Table 9.1 (area / access time / energy / leakage at 22 nm).
//! * [`covert`] — flush+reload timing classification helpers used by the
//!   attack proof-of-concepts.
//!
//! # Example
//!
//! ```
//! use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_default());
//! let cold = mem.read(0x4000);          // miss all the way to DRAM
//! let warm = mem.read(0x4000);          // now hits in L1D
//! assert!(warm < cold);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod covert;
pub mod hierarchy;
pub mod sram;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{HierarchyConfig, MemoryHierarchy};
pub use sram::{SramCharacterization, SramConfig};
pub use tlb::{Tlb, TlbConfig};
