//! ASID-tagged TLB model.
//!
//! Perspective's ISV cache refill path sends "the instruction VA combined
//! with the offset ... to the TLB to locate the physical address of the ISV
//! page" (§6.2). We model the TLB as a tagged, set-associative structure
//! whose only observable behavior is hit/miss latency; translation itself is
//! identity in the simulator (the mini-OS uses a direct-mapped layout).

use std::fmt;

/// Geometry of the TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Page size covered by one entry, in bytes.
    pub page_bytes: u64,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Latency of a miss (page-table walk), in cycles.
    pub miss_latency: u64,
}

impl TlbConfig {
    /// A 64-entry, 4-way, 4 KiB-page TLB with a 20-cycle walk — a typical
    /// L1 DTLB configuration.
    pub fn default_dtlb() -> Self {
        TlbConfig {
            entries: 64,
            ways: 4,
            page_bytes: 4096,
            hit_latency: 1,
            miss_latency: 20,
        }
    }
}

/// Hit/miss counters (same shape as [`crate::CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that required a walk.
    pub misses: u64,
    /// Walks whose refill displaced a live entry.
    pub evictions: u64,
    /// Live entries dropped by [`Tlb::invalidate_asid`].
    pub flushes: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; `1.0` when empty.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            1.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    asid: u16,
    valid: bool,
    lru: u64,
}

/// ASID-tagged set-associative TLB.
pub struct Tlb {
    cfg: TlbConfig,
    sets: Vec<Vec<TlbEntry>>,
    clock: u64,
    stats: TlbStats,
    set_mask: u64,
    page_shift: u32,
}

impl fmt::Debug for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tlb")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Tlb {
    /// Build an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways`, or the set count /
    /// page size is not a power of two.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(
            cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways),
            "entries must be a multiple of ways"
        );
        let sets = cfg.entries / cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            cfg,
            sets: vec![
                vec![
                    TlbEntry {
                        vpn: 0,
                        asid: 0,
                        valid: false,
                        lru: 0
                    };
                    cfg.ways
                ];
                sets
            ],
            clock: 0,
            stats: TlbStats::default(),
            set_mask: (sets - 1) as u64,
            page_shift: cfg.page_bytes.trailing_zeros(),
        }
    }

    /// Translate `va` for address space `asid`. Returns the access latency;
    /// allocates an entry on a miss. Thanks to ASID tags, no flush is needed
    /// on context switch.
    pub fn translate(&mut self, va: u64, asid: u16) -> u64 {
        self.clock += 1;
        let clock = self.clock;
        let vpn = va >> self.page_shift;
        let set_idx = (vpn & self.set_mask) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn && e.asid == asid)
        {
            e.lru = clock;
            self.stats.hits += 1;
            return self.cfg.hit_latency;
        }
        self.stats.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("tlb set is never empty");
        if victim.valid {
            self.stats.evictions += 1;
        }
        *victim = TlbEntry {
            vpn,
            asid,
            valid: true,
            lru: clock,
        };
        self.cfg.miss_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Drop every entry belonging to `asid` (used when an address space is
    /// destroyed).
    pub fn invalidate_asid(&mut self, asid: u16) {
        for set in &mut self.sets {
            for e in set.iter_mut() {
                if e.valid && e.asid == asid {
                    e.valid = false;
                    self.stats.flushes += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(TlbConfig::default_dtlb());
        assert_eq!(t.translate(0x1000, 1), 20);
        assert_eq!(t.translate(0x1fff, 1), 1, "same page hits");
        assert_eq!(t.translate(0x2000, 1), 20, "next page misses");
    }

    #[test]
    fn asid_tags_isolate_contexts() {
        let mut t = Tlb::new(TlbConfig::default_dtlb());
        t.translate(0x1000, 1);
        assert_eq!(t.translate(0x1000, 2), 20, "different ASID must miss");
        assert_eq!(t.translate(0x1000, 1), 1, "original ASID still resident");
    }

    #[test]
    fn invalidate_asid_clears_only_that_space() {
        let mut t = Tlb::new(TlbConfig::default_dtlb());
        t.translate(0x1000, 1);
        t.translate(0x1000, 2);
        t.invalidate_asid(1);
        assert_eq!(t.translate(0x1000, 1), 20);
        assert_eq!(t.translate(0x1000, 2), 1);
    }

    #[test]
    fn evictions_and_flushes_across_two_asids() {
        // 64-entry / 4-way => 16 sets; VPNs congruent mod 16 share a
        // set. Fill set 0 with two pages per ASID (4 ways, no
        // evictions yet), then overflow it and tear one space down.
        let mut t = Tlb::new(TlbConfig::default_dtlb());
        let va = |vpn: u64| vpn << 12;
        t.translate(va(0), 1);
        t.translate(va(16), 1);
        t.translate(va(32), 2);
        t.translate(va(48), 2);
        assert_eq!(t.stats().evictions, 0, "set not yet full");

        t.translate(va(64), 2); // 5th page in the set: displaces LRU (vpn 0, asid 1)
        assert_eq!(t.stats().evictions, 1);
        assert_eq!(t.translate(va(0), 1), 20, "victim was evicted");
        assert_eq!(
            t.stats().evictions,
            2,
            "refill displaced another live entry"
        );

        let before = t.stats();
        t.invalidate_asid(2);
        assert_eq!(
            t.stats().flushes,
            3,
            "asid 2 had three live entries (one of its pages was evicted)"
        );
        t.invalidate_asid(2);
        assert_eq!(
            t.stats().flushes,
            3,
            "already-invalid entries do not recount"
        );
        assert_eq!(t.stats().hits, before.hits, "invalidation is not an access");
        assert_eq!(t.translate(va(32), 2), 20, "asid 2 must re-walk");
        assert_eq!(t.translate(va(0), 1), 1, "asid 1 untouched by the flush");
    }

    #[test]
    fn hit_rate_accounts() {
        let mut t = Tlb::new(TlbConfig::default_dtlb());
        t.translate(0x0, 0);
        t.translate(0x0, 0);
        t.translate(0x0, 0);
        let s = t.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
