//! Two-level cache hierarchy + DRAM, per Table 7.1 of the paper.
//!
//! Private L1-I and L1-D backed by a shared L2 slice and a flat-latency
//! DRAM. The hierarchy returns *round-trip latencies in cycles*; the core
//! simulator schedules load completion with them. Presence state is what the
//! covert-channel experiments observe.

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// DRAM round-trip latency in cycles *after* an L2 miss.
    ///
    /// Table 7.1 gives 50 ns after L2 at 2.0 GHz = 100 cycles.
    pub dram_latency: u64,
    /// Enable the per-L1 next-line prefetcher (Table 7.1: "1 hardware
    /// prefetcher" on each L1). On an L1 miss the following line is
    /// brought in as well; classic flush+reload probe arrays defeat it
    /// with a 4 KiB stride.
    pub next_line_prefetch: bool,
}

impl HierarchyConfig {
    /// The exact parameters of Table 7.1.
    pub fn paper_default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1i_paper(),
            l1d: CacheConfig::l1d_paper(),
            l2: CacheConfig::l2_paper(),
            dram_latency: 100,
            next_line_prefetch: true,
        }
    }

    /// Paper parameters with prefetching disabled (for ablations and for
    /// tests that need exact residency control).
    pub fn no_prefetch() -> Self {
        HierarchyConfig {
            next_line_prefetch: false,
            ..Self::paper_default()
        }
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Satisfied by the L1 (instruction or data, depending on port).
    L1,
    /// Missed L1, hit the shared L2.
    L2,
    /// Missed both levels; went to DRAM.
    Dram,
}

/// The full memory hierarchy.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    prefetches: u64,
}

impl MemoryHierarchy {
    /// Build an empty (cold) hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemoryHierarchy {
            cfg,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            prefetches: 0,
        }
    }

    /// Prefetches issued so far.
    pub fn prefetch_count(&self) -> u64 {
        self.prefetches
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Data read: returns round-trip latency in cycles and fills the caches.
    pub fn read(&mut self, addr: u64) -> u64 {
        self.read_classified(addr).0
    }

    /// Data read returning both latency and the level that satisfied it.
    pub fn read_classified(&mut self, addr: u64) -> (u64, HitLevel) {
        if self.l1d.access(addr) {
            return (self.cfg.l1d.rt_latency, HitLevel::L1);
        }
        // L1 miss: the next-line prefetcher (if enabled) pulls in the
        // following line in the background (latency-free for the miss).
        if self.cfg.next_line_prefetch {
            let line = self.cfg.l1d.line_bytes as u64;
            self.l1d.access(addr + line);
            self.l2.access(addr + line);
            self.prefetches += 1;
        }
        if self.l2.access(addr) {
            return (
                self.cfg.l1d.rt_latency + self.cfg.l2.rt_latency,
                HitLevel::L2,
            );
        }
        (
            self.cfg.l1d.rt_latency + self.cfg.l2.rt_latency + self.cfg.dram_latency,
            HitLevel::Dram,
        )
    }

    /// Data write. Write-allocate, write-back: same presence effect as a read.
    pub fn write(&mut self, addr: u64) -> u64 {
        self.read(addr)
    }

    /// Instruction fetch: goes through L1-I then the shared L2.
    pub fn fetch(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            return self.cfg.l1i.rt_latency;
        }
        if self.cfg.next_line_prefetch {
            let line = self.cfg.l1i.line_bytes as u64;
            self.l1i.access(addr + line);
            self.l2.access(addr + line);
            self.prefetches += 1;
        }
        if self.l2.access(addr) {
            return self.cfg.l1i.rt_latency + self.cfg.l2.rt_latency;
        }
        self.cfg.l1i.rt_latency + self.cfg.l2.rt_latency + self.cfg.dram_latency
    }

    /// Would a data read hit in the L1? Used by Delay-on-Miss. No side
    /// effects.
    pub fn probe_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Is the line resident anywhere in the hierarchy? No side effects.
    pub fn probe_any(&self, addr: u64) -> bool {
        self.l1d.probe(addr) || self.l2.probe(addr)
    }

    /// The latency a read *would* observe, without changing any state.
    ///
    /// Used to model timing measurements of the reload phase of
    /// flush+reload when the attacker wants a clean probe.
    pub fn peek_read_latency(&self, addr: u64) -> u64 {
        if self.l1d.probe(addr) {
            self.cfg.l1d.rt_latency
        } else if self.l2.probe(addr) {
            self.cfg.l1d.rt_latency + self.cfg.l2.rt_latency
        } else {
            self.cfg.l1d.rt_latency + self.cfg.l2.rt_latency + self.cfg.dram_latency
        }
    }

    /// `clflush`: evict the line from every level.
    pub fn flush(&mut self, addr: u64) {
        self.l1d.flush_line(addr);
        self.l1i.flush_line(addr);
        self.l2.flush_line(addr);
    }

    /// Invalidate everything (e.g. between benchmark repetitions).
    pub fn flush_all(&mut self) {
        self.l1d.flush_all();
        self.l1i.flush_all();
        self.l2.flush_all();
    }

    /// L1-D statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L1-I statistics.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Reset statistics on all levels; contents are untouched.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_default())
    }

    #[test]
    fn latencies_match_table_7_1() {
        let mut m = mem();
        // Cold: 2 (L1) + 8 (L2) + 100 (DRAM).
        assert_eq!(m.read(0x1000), 110);
        // Warm in L1.
        assert_eq!(m.read(0x1000), 2);
        // Evicted from L1 only → L2 hit = 2 + 8.
        m.l1d.flush_line(0x1000);
        assert_eq!(m.read(0x1000), 10);
    }

    #[test]
    fn fetch_uses_l1i_port() {
        let mut m = mem();
        assert_eq!(m.fetch(0x2000), 110);
        assert_eq!(m.fetch(0x2000), 2);
        // Data port does not see the instruction line in L1D, but the
        // shared L2 holds it.
        assert_eq!(m.read(0x2000), 10);
    }

    #[test]
    fn flush_removes_from_all_levels() {
        let mut m = mem();
        m.read(0x3000);
        m.flush(0x3000);
        assert!(!m.probe_any(0x3000));
        assert_eq!(m.read(0x3000), 110);
    }

    #[test]
    fn classified_read_levels() {
        let mut m = mem();
        assert_eq!(m.read_classified(0x40).1, HitLevel::Dram);
        assert_eq!(m.read_classified(0x40).1, HitLevel::L1);
        m.l1d.flush_line(0x40);
        assert_eq!(m.read_classified(0x40).1, HitLevel::L2);
    }

    #[test]
    fn peek_matches_subsequent_read() {
        let mut m = mem();
        m.read(0x880);
        assert_eq!(m.peek_read_latency(0x880), 2);
        assert_eq!(m.peek_read_latency(0x0dea_d000), 110);
    }

    #[test]
    fn probe_l1d_is_side_effect_free() {
        let m = mem();
        assert!(!m.probe_l1d(0x1234));
        assert_eq!(m.l1d_stats(), CacheStats::default());
    }
}
