//! CACTI-inspired analytical SRAM characterization at 22 nm.
//!
//! The paper characterizes Perspective's two new hardware structures with
//! CACTI 7 at 22 nm (Table 9.1). CACTI itself is a large C++ tool; for the
//! reproduction we fit a small analytical model of the same form CACTI uses
//! for little tagged SRAM arrays — linear in bit count for area/energy/
//! leakage and `a + b·√bits` for access time (wordline + bitline delay grow
//! with the array's side length).
//!
//! The constants are calibrated so that the paper's two design points are
//! reproduced:
//!
//! | Structure | Config | Area | Access | Dyn. energy | Leakage |
//! |---|---|---|---|---|---|
//! | DSV cache | 128 × 53 b | 0.0024 mm² | 114 ps | 1.21 pJ | 0.78 mW |
//! | ISV cache | 128 × 57 b | 0.0025 mm² | 115 ps | 1.29 pJ | 0.79 mW |

/// Geometry of a small tagged SRAM structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Number of entries.
    pub entries: usize,
    /// Payload+tag bits per entry.
    pub bits_per_entry: usize,
    /// Associativity (number of ways probed in parallel).
    pub ways: usize,
    /// Human-readable name for reports.
    pub name: &'static str,
}

impl SramConfig {
    /// The paper's DSV cache: 128 entries, 32 sets, 4-way, 53 bits/entry.
    pub fn dsv_cache_paper() -> Self {
        SramConfig {
            entries: 128,
            bits_per_entry: 53,
            ways: 4,
            name: "DSV Cache",
        }
    }

    /// The paper's ISV cache: 128 entries, 32 sets, 4-way, 57 bits/entry.
    pub fn isv_cache_paper() -> Self {
        SramConfig {
            entries: 128,
            bits_per_entry: 57,
            ways: 4,
            name: "ISV Cache",
        }
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> usize {
        self.entries * self.bits_per_entry
    }
}

/// Area/time/energy/leakage estimate for one structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCharacterization {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Access time in picoseconds.
    pub access_ps: f64,
    /// Dynamic energy per access in picojoules.
    pub dynamic_pj: f64,
    /// Leakage power in milliwatts.
    pub leakage_mw: f64,
}

// Calibrated against the two Table 9.1 design points (see module docs).
const AREA_PER_BIT_MM2: f64 = 1.953_125e-7; // (0.0025-0.0024)/512
const AREA_FIXED_MM2: f64 = 0.0024 - AREA_PER_BIT_MM2 * 6784.0;
const ACCESS_SQRT_COEFF_PS: f64 = 0.333;
const ACCESS_FIXED_PS: f64 = 114.0 - 0.333 * 82.365; // sqrt(6784) ≈ 82.365
const ENERGY_PER_BIT_PJ: f64 = (1.29 - 1.21) / 512.0;
const ENERGY_FIXED_PJ: f64 = 1.21 - ENERGY_PER_BIT_PJ * 6784.0;
const LEAK_PER_BIT_MW: f64 = (0.79 - 0.78) / 512.0;
const LEAK_FIXED_MW: f64 = 0.78 - LEAK_PER_BIT_MW * 6784.0;

/// Characterize a structure at the 22 nm node.
///
/// # Example
///
/// ```
/// use persp_mem::sram::{characterize_22nm, SramConfig};
///
/// let c = characterize_22nm(&SramConfig::isv_cache_paper());
/// assert!((c.area_mm2 - 0.0025).abs() < 1e-4);
/// assert!((c.access_ps - 115.0).abs() < 1.0);
/// ```
pub fn characterize_22nm(cfg: &SramConfig) -> SramCharacterization {
    let bits = cfg.total_bits() as f64;
    // Higher associativity burns slightly more comparator energy; CACTI
    // reports this as a second-order effect for structures this small.
    let assoc_energy = 0.002 * (cfg.ways.max(1) as f64 - 1.0);
    SramCharacterization {
        area_mm2: AREA_FIXED_MM2 + AREA_PER_BIT_MM2 * bits,
        access_ps: ACCESS_FIXED_PS + ACCESS_SQRT_COEFF_PS * bits.sqrt(),
        dynamic_pj: ENERGY_FIXED_PJ + ENERGY_PER_BIT_PJ * bits + assoc_energy,
        leakage_mw: LEAK_FIXED_MW + LEAK_PER_BIT_MW * bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_dsv_cache_point() {
        let c = characterize_22nm(&SramConfig::dsv_cache_paper());
        assert!((c.area_mm2 - 0.0024).abs() < 1e-4, "area {}", c.area_mm2);
        assert!((c.access_ps - 114.0).abs() < 1.0, "access {}", c.access_ps);
        assert!(
            (c.dynamic_pj - 1.21).abs() < 0.02,
            "energy {}",
            c.dynamic_pj
        );
        assert!((c.leakage_mw - 0.78).abs() < 0.01, "leak {}", c.leakage_mw);
    }

    #[test]
    fn reproduces_isv_cache_point() {
        let c = characterize_22nm(&SramConfig::isv_cache_paper());
        assert!((c.area_mm2 - 0.0025).abs() < 1e-4);
        assert!((c.access_ps - 115.0).abs() < 1.0);
        assert!((c.dynamic_pj - 1.29).abs() < 0.02);
        assert!((c.leakage_mw - 0.79).abs() < 0.01);
    }

    #[test]
    fn bigger_structures_cost_more() {
        let small = characterize_22nm(&SramConfig {
            entries: 64,
            bits_per_entry: 53,
            ways: 4,
            name: "small",
        });
        let big = characterize_22nm(&SramConfig {
            entries: 1024,
            bits_per_entry: 53,
            ways: 4,
            name: "big",
        });
        assert!(big.area_mm2 > small.area_mm2);
        assert!(big.access_ps > small.access_ps);
        assert!(big.dynamic_pj > small.dynamic_pj);
        assert!(big.leakage_mw > small.leakage_mw);
    }

    #[test]
    fn total_bits_is_product() {
        assert_eq!(SramConfig::isv_cache_paper().total_bits(), 128 * 57);
    }
}
