//! Set-associative cache model with LRU replacement.
//!
//! The cache tracks *presence* of lines only (no data payload — the
//! architectural memory image lives in the core simulator). What matters for
//! transient-execution experiments is which lines are resident, because that
//! is the microarchitectural state a covert channel observes.
//!
//! Three access flavors are provided:
//!
//! * [`Cache::access`] — the normal path: lookup, allocate on miss, update
//!   LRU. Returns whether the access hit.
//! * [`Cache::probe`] — a side-effect-free lookup used by the Delay-on-Miss
//!   baseline ("would this load hit in L1?") and by flush+reload attack
//!   verdict checks.
//! * [`Cache::touch_deferred`] / [`Cache::commit_touch`] — Perspective's
//!   visibility-point semantics: on a speculative hit the LRU bits are *not*
//!   updated until the instruction reaches its VP (§6.2 of the paper).

use std::fmt;

/// Static geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Round-trip latency in cycles on a hit at this level.
    pub rt_latency: u64,
    /// Human-readable name used in reports ("L1-D", "L2", ...).
    pub name: &'static str,
}

impl CacheConfig {
    /// Paper Table 7.1: 32 KB, 64 B line, 4-way, 2-cycle RT L1 instruction cache.
    pub fn l1i_paper() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
            rt_latency: 2,
            name: "L1-I",
        }
    }

    /// Paper Table 7.1: 32 KB, 64 B line, 8-way, 2-cycle RT L1 data cache.
    pub fn l1d_paper() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
            rt_latency: 2,
            name: "L1-D",
        }
    }

    /// Paper Table 7.1: 2 MB slice, 64 B line, 16-way, 8-cycle RT shared L2.
    pub fn l2_paper() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            rt_latency: 8,
            name: "L2",
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes or capacity not a
    /// multiple of `line_bytes * ways`).
    pub fn num_sets(&self) -> usize {
        assert!(
            self.line_bytes > 0 && self.ways > 0,
            "degenerate cache geometry"
        );
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "capacity must be a whole number of sets"
        );
        lines / self.ways
    }
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line resident.
    pub hits: u64,
    /// Lookups that missed and allocated.
    pub misses: u64,
    /// Valid lines displaced by allocations.
    pub evictions: u64,
    /// Lines removed by explicit flushes.
    pub flushes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `1.0` when no accesses have been made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// Monotonic timestamp of last (committed) use; lowest = LRU victim.
    lru: u64,
}

impl Line {
    const INVALID: Line = Line {
        tag: 0,
        valid: false,
        lru: 0,
    };
}

/// Miss path shared by [`Cache::access`] and [`Cache::touch_deferred`]:
/// pick the LRU victim of `set` (any invalid way first), count the
/// eviction if it displaces a live line, and install `tag` stamped with
/// `clock`. A free function over the split borrows so callers keep
/// `&mut self` usable.
fn allocate_victim(set: &mut [Line], tag: u64, clock: u64, stats: &mut CacheStats) {
    let victim = set
        .iter_mut()
        .min_by_key(|l| if l.valid { l.lru } else { 0 })
        .expect("cache set is never empty");
    if victim.valid {
        stats.evictions += 1;
    }
    *victim = Line {
        tag,
        valid: true,
        lru: clock,
    };
}

/// A single set-associative cache level.
///
/// See the [module docs](self) for the three access flavors.
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Cache {
    /// Create an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            sets: vec![vec![Line::INVALID; cfg.ways]; sets],
            clock: 0,
            stats: CacheStats::default(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        (
            (line_addr & self.set_mask) as usize,
            line_addr >> self.set_mask.count_ones(),
        )
    }

    /// Normal access: lookup, allocate on miss, update LRU. Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        allocate_victim(set, tag, clock, &mut self.stats);
        false
    }

    /// Side-effect-free lookup: no allocation, no LRU update, no stats.
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Lookup and allocate on miss, but do **not** update LRU on a hit.
    ///
    /// This models Perspective's rule that "on a hit, DSV and ISV LRU bits
    /// are not updated until the instruction reaches its VP" (§6.2). Pair
    /// with [`Cache::commit_touch`] once the instruction is non-speculative.
    /// Returns `true` on hit.
    pub fn touch_deferred(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        if set.iter().any(|l| l.valid && l.tag == tag) {
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        allocate_victim(set, tag, clock, &mut self.stats);
        false
    }

    /// Apply the deferred LRU update for `addr` (the instruction reached its
    /// visibility point). No-op if the line has since been evicted.
    pub fn commit_touch(&mut self, addr: u64) {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.index(addr);
        if let Some(line) = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.lru = clock;
        }
    }

    /// Remove the line containing `addr` (models `clflush`). Returns whether
    /// a line was actually present.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        if let Some(line) = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.valid = false;
            self.stats.flushes += 1;
            true
        } else {
            false
        }
    }

    /// Invalidate the entire cache (keeps statistics).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.valid {
                    line.valid = false;
                    self.stats.flushes += 1;
                }
            }
        }
    }

    /// Number of currently valid lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            rt_latency: 1,
            name: "tiny",
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line, different offset");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines whose (addr >> 6) & 3 == 0: 0x000, 0x100, 0x200...
        c.access(0x000);
        c.access(0x100);
        c.access(0x000); // refresh 0x000 → LRU victim is 0x100
        c.access(0x200); // evicts 0x100
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), CacheStats::default());
        c.access(0x40);
        let before = c.stats();
        assert!(c.probe(0x40));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn flush_line_removes_presence() {
        let mut c = tiny();
        c.access(0x40);
        assert!(c.flush_line(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.flush_line(0x40), "second flush finds nothing");
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn deferred_touch_does_not_refresh_lru() {
        let mut c = tiny();
        c.access(0x000);
        c.access(0x100);
        // Speculative hit on 0x000 must NOT make 0x100 the victim.
        assert!(c.touch_deferred(0x000));
        c.access(0x200); // victim must still be 0x000 (oldest committed use)
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn commit_touch_applies_update() {
        let mut c = tiny();
        c.access(0x000);
        c.access(0x100);
        assert!(c.touch_deferred(0x000));
        c.commit_touch(0x000); // VP reached: now 0x100 is LRU
        c.access(0x200);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = tiny();
        for i in 0..8 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() > 0);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn paper_geometries_are_consistent() {
        assert_eq!(CacheConfig::l1i_paper().num_sets(), 128);
        assert_eq!(CacheConfig::l1d_paper().num_sets(), 64);
        assert_eq!(CacheConfig::l2_paper().num_sets(), 2048);
    }

    #[test]
    fn hit_rate_on_empty_stats_is_one() {
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
    }
}
