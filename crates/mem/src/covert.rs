//! Flush+reload covert-channel helpers.
//!
//! A transient execution gadget transmits a secret by touching one line of a
//! *probe array* indexed by the secret value. The receiver then times a
//! reload of every candidate line: the one that comes back fast was touched
//! transiently. This module supplies the timing classifier and a helper
//! that scans a probe array over a [`MemoryHierarchy`].
//!
//! The actual attacks in `persp-attacks` run real µISA probe loops through
//! the pipeline; these helpers are shared verdict logic and are also handy
//! for unit tests.

use crate::hierarchy::MemoryHierarchy;

/// Classifier separating cached from uncached reload timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingClassifier {
    /// Latencies `<= threshold` are classified as cache hits.
    pub threshold_cycles: u64,
}

impl TimingClassifier {
    /// Derive a threshold from the hierarchy configuration: anything at or
    /// below an L2 hit counts as "was resident"; only DRAM round trips are
    /// misses.
    pub fn for_hierarchy(mem: &MemoryHierarchy) -> Self {
        let cfg = mem.config();
        TimingClassifier {
            threshold_cycles: cfg.l1d.rt_latency + cfg.l2.rt_latency,
        }
    }

    /// Was the observed reload latency a hit?
    pub fn is_hit(&self, latency: u64) -> bool {
        latency <= self.threshold_cycles
    }
}

/// Stride between probe-array entries. 4096 defeats the adjacent-line
/// prefetcher, exactly as in Kocher et al.'s PoC (`array2[s * 4096]`).
pub const PROBE_STRIDE: u64 = 4096;

/// Flush all `n` probe lines of the array starting at `base`.
pub fn flush_probe_array(mem: &mut MemoryHierarchy, base: u64, n: usize) {
    for i in 0..n {
        mem.flush(base + i as u64 * PROBE_STRIDE);
    }
}

/// Reload every probe line and return the indices classified as hits.
///
/// Reload order is permuted (simple stride-7 walk) so the scan itself does
/// not act as a prefetch oracle, mirroring real PoCs.
pub fn reload_and_classify(mem: &mut MemoryHierarchy, base: u64, n: usize) -> Vec<usize> {
    let classifier = TimingClassifier::for_hierarchy(mem);
    let mut hits = Vec::new();
    for k in 0..n {
        let i = (k * 7 + 1) % n;
        let lat = mem.peek_read_latency(base + i as u64 * PROBE_STRIDE);
        if classifier.is_hit(lat) {
            hits.push(i);
        }
    }
    hits.sort_unstable();
    hits
}

/// Outcome of one covert-channel transmission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelVerdict {
    /// Exactly one probe line was hot: the secret byte was recovered.
    Recovered(u8),
    /// No probe line was hot: the transmission was blocked.
    NoSignal,
    /// More than one line was hot: noisy/ambiguous.
    Ambiguous(Vec<usize>),
}

/// Classify the full probe array into a channel verdict.
pub fn channel_verdict(mem: &mut MemoryHierarchy, base: u64, n: usize) -> ChannelVerdict {
    let hits = reload_and_classify(mem, base, n);
    match hits.as_slice() {
        [] => ChannelVerdict::NoSignal,
        [only] => ChannelVerdict::Recovered(*only as u8),
        _ => ChannelVerdict::Ambiguous(hits),
    }
}

// ---------------------------------------------------------------------
// Prime+probe (no clflush required)
// ---------------------------------------------------------------------

/// An L1-D eviction set: attacker-owned lines that all map to the same
/// cache set as a target address. Priming fills the set's ways with
/// attacker lines; a victim access to *any* line in that set must evict
/// one of them, which the attacker detects without ever executing a
/// flush instruction — the receiver real kernels can't take away.
#[derive(Debug, Clone)]
pub struct EvictionSet {
    addrs: Vec<u64>,
    set_index: usize,
}

impl EvictionSet {
    /// Build the eviction set for the L1-D set that `target` maps to,
    /// out of attacker-controlled memory starting at `region_base`
    /// (which must be set-aligned, i.e. a multiple of the L1-D way
    /// stride; `region_base` itself is never aliased with `target`).
    pub fn for_l1d(mem: &MemoryHierarchy, region_base: u64, target: u64) -> Self {
        let cfg = &mem.config().l1d;
        let line = cfg.line_bytes as u64;
        let sets = cfg.num_sets() as u64;
        let stride = line * sets; // distance between same-set lines
        assert!(
            region_base.is_multiple_of(stride),
            "region base must be way-stride aligned"
        );
        let set_index = ((target / line) % sets) as usize;
        let first = region_base + set_index as u64 * line;
        let addrs = (0..cfg.ways as u64).map(|w| first + w * stride).collect();
        EvictionSet { addrs, set_index }
    }

    /// The L1-D set this eviction set occupies.
    pub fn set_index(&self) -> usize {
        self.set_index
    }

    /// The member addresses (one per way).
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Fill every way of the target set with attacker lines.
    pub fn prime(&self, mem: &mut MemoryHierarchy) {
        // Two rounds so LRU state settles with all members resident even
        // if some were partially resident before.
        for _ in 0..2 {
            for &a in &self.addrs {
                mem.read(a);
            }
        }
    }

    /// Did a victim access land in this set since [`EvictionSet::prime`]?
    /// Detection is by absence: some member was evicted. Uses probes
    /// (no fills), so measuring does not disturb other sets.
    pub fn probe_evicted(&self, mem: &MemoryHierarchy) -> bool {
        self.addrs.iter().any(|&a| !mem.probe_l1d(a))
    }
}

/// A set-granular prime+probe channel over the whole L1-D: one
/// [`EvictionSet`] per cache set. A transient victim access to
/// `probe_base + v * PROBE_STRIDE` is decoded back to the cache set it
/// mapped to.
///
/// Resolution is *per set* (64 sets for the paper's 32 KB / 64 B / 8-way
/// L1-D), i.e. `log2(sets)` bits per transmission — exactly the
/// real-world limitation of L1 prime+probe versus flush+reload's
/// byte-granular probe array.
#[derive(Debug, Clone)]
pub struct PrimeProbeChannel {
    sets: Vec<EvictionSet>,
}

impl PrimeProbeChannel {
    /// Build eviction sets for every L1-D set out of the attacker region
    /// at `region_base` (way-stride aligned).
    pub fn new(mem: &MemoryHierarchy, region_base: u64) -> Self {
        let cfg = &mem.config().l1d;
        let line = cfg.line_bytes as u64;
        let sets = (0..cfg.num_sets() as u64)
            .map(|s| EvictionSet::for_l1d(mem, region_base, s * line))
            .collect();
        PrimeProbeChannel { sets }
    }

    /// Prime every set.
    pub fn prime(&self, mem: &mut MemoryHierarchy) {
        for s in &self.sets {
            s.prime(mem);
        }
    }

    /// Decode: which sets saw a victim access since priming?
    pub fn probe(&self, mem: &MemoryHierarchy) -> Vec<usize> {
        self.sets
            .iter()
            .filter(|s| s.probe_evicted(mem))
            .map(EvictionSet::set_index)
            .collect()
    }

    /// The set a victim address would signal in.
    pub fn set_of(&self, mem: &MemoryHierarchy, victim_addr: u64) -> usize {
        let cfg = &mem.config().l1d;
        ((victim_addr / cfg.line_bytes as u64) % cfg.num_sets() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::paper_default())
    }

    #[test]
    fn classifier_threshold_is_l2_hit() {
        let m = mem();
        let c = TimingClassifier::for_hierarchy(&m);
        assert!(c.is_hit(2));
        assert!(c.is_hit(10));
        assert!(!c.is_hit(110));
    }

    #[test]
    fn recovered_secret_round_trip() {
        let mut m = mem();
        let base = 0x10_0000;
        flush_probe_array(&mut m, base, 256);
        // "Transient" touch of the line for secret byte 0x2a.
        m.read(base + 0x2a * PROBE_STRIDE);
        assert_eq!(
            channel_verdict(&mut m, base, 256),
            ChannelVerdict::Recovered(0x2a)
        );
    }

    #[test]
    fn blocked_transmission_yields_no_signal() {
        let mut m = mem();
        let base = 0x10_0000;
        flush_probe_array(&mut m, base, 256);
        assert_eq!(channel_verdict(&mut m, base, 256), ChannelVerdict::NoSignal);
    }

    #[test]
    fn two_hot_lines_are_ambiguous() {
        let mut m = mem();
        let base = 0x10_0000;
        flush_probe_array(&mut m, base, 16);
        m.read(base + 3 * PROBE_STRIDE);
        m.read(base + 9 * PROBE_STRIDE);
        assert_eq!(
            channel_verdict(&mut m, base, 16),
            ChannelVerdict::Ambiguous(vec![3, 9])
        );
    }

    #[test]
    fn eviction_set_detects_same_set_victim_access() {
        let mut m = mem();
        let target = 0x40_0000u64 + 5 * 64; // some line in set 5
        let es = EvictionSet::for_l1d(&m, 0x80_0000, target);
        es.prime(&mut m);
        assert!(!es.probe_evicted(&m), "freshly primed: all ways resident");
        m.read(target); // victim access, no flush anywhere
        assert!(es.probe_evicted(&m), "victim fill evicted an attacker way");
    }

    #[test]
    fn eviction_set_ignores_other_sets() {
        let mut m = mem();
        let target = 0x40_0000u64 + 5 * 64;
        let es = EvictionSet::for_l1d(&m, 0x80_0000, target);
        es.prime(&mut m);
        // Victim touches a *different* set (stride past the prefetcher).
        m.read(0x40_0000 + 9 * 64 + 8192);
        assert!(!es.probe_evicted(&m));
    }

    #[test]
    fn prime_probe_channel_decodes_the_touched_set() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::no_prefetch());
        let chan = PrimeProbeChannel::new(&m, 0x80_0000);
        let victim = 0x40_0000u64 + 23 * PROBE_STRIDE;
        let expected = chan.set_of(&m, victim);
        chan.prime(&mut m);
        m.read(victim);
        let hot = chan.probe(&m);
        assert_eq!(hot, vec![expected], "exactly the victim's set signals");
    }

    #[test]
    fn unprimed_channel_quiescent_after_prime() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::no_prefetch());
        let chan = PrimeProbeChannel::new(&m, 0x80_0000);
        chan.prime(&mut m);
        assert!(chan.probe(&m).is_empty(), "no victim access: no signal");
    }

    #[test]
    fn reload_does_not_perturb_verdict() {
        let mut m = mem();
        let base = 0x20_0000;
        flush_probe_array(&mut m, base, 64);
        m.read(base + 5 * PROBE_STRIDE);
        // Two scans in a row agree because reload uses peek (no fills).
        assert_eq!(reload_and_classify(&mut m, base, 64), vec![5]);
        assert_eq!(reload_and_classify(&mut m, base, 64), vec![5]);
    }
}
