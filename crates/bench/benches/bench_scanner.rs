//! Criterion bench: gadget scanning, full-kernel vs. ISV-bounded — the
//! hot path behind Figure 9.1 (E5).

use criterion::{criterion_group, criterion_main, Criterion};
use persp_kernel::body::emit_kernel;
use persp_kernel::callgraph::{CallGraph, KernelConfig};
use persp_kernel::syscalls::Sysno;
use persp_scanner::{scan_bounded, scan_kernel};
use persp_uarch::machine::Machine;
use std::hint::black_box;

fn setup() -> (CallGraph, Machine) {
    let mut g = CallGraph::generate(KernelConfig::test_small());
    let text = emit_kernel(&mut g);
    let mut m = Machine::new();
    m.load_text(text);
    (g, m)
}

fn bench_scans(c: &mut Criterion) {
    let (g, m) = setup();
    let bound = g.live_reachable(&Sysno::ALL[..10]);

    c.bench_function("scanner/full-kernel-sweep", |b| {
        b.iter(|| black_box(scan_kernel(&g, |pc| m.inst_at(pc))));
    });
    c.bench_function("scanner/isv-bounded-sweep", |b| {
        b.iter(|| black_box(scan_bounded(&g, &bound, |pc| m.inst_at(pc))));
    });
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
