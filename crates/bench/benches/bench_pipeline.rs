//! Criterion bench: simulated-core throughput per defense scheme — the
//! hot path behind Figures 9.2/9.3 (E6/E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use persp_kernel::callgraph::KernelConfig;
use persp_workloads::{lebench, SimInstance};
use perspective::scheme::Scheme;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/getpid-roundtrip");
    group.sample_size(10);
    for &scheme in &[Scheme::Unsafe, Scheme::Fence, Scheme::Perspective] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                let kcfg = KernelConfig::test_small();
                let w = lebench::by_name("getpid").unwrap();
                let mut inst = SimInstance::new(scheme, kcfg);
                let text = inst.text_base();
                let data = inst.data_base();
                inst.core.machine.load_text(w.compile(text, data));
                b.iter(|| {
                    inst.core.run(text, 10_000_000).expect("run completes");
                });
            },
        );
    }
    group.finish();
}

fn bench_select_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/select-128fds");
    group.sample_size(10);
    for &scheme in &[Scheme::Unsafe, Scheme::Fence] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                let kcfg = KernelConfig::test_small();
                let w = lebench::by_name("select").unwrap();
                let mut inst = SimInstance::new(scheme, kcfg);
                let text = inst.text_base();
                let data = inst.data_base();
                inst.core.machine.load_text(w.compile(text, data));
                b.iter(|| {
                    inst.core.run(text, 20_000_000).expect("run completes");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_select_loop);
criterion_main!(benches);
