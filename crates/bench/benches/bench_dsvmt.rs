//! Criterion bench: DSVMT tree walks, range updates, and the tagged
//! metadata caches — the per-access machinery whose latency budget
//! Table 9.1 characterizes and whose hit rates §9.2 reports.

use criterion::{criterion_group, criterion_main, Criterion};
use perspective::dsvmt::DsvmtTree;
use perspective::hwcache::{HwCacheConfig, HwLookup, TaggedMetadataCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const PAGE: u64 = 1 << 12;

/// A tree shaped like a live system: a few uniform huge regions plus a
/// fragmented working set of 4 KiB leaves.
fn populated_tree() -> DsvmtTree {
    let mut t = DsvmtTree::new();
    t.set_range(0, 2 << 30, true); // direct map, uniform
    t.set_range(2 << 30, 64 << 21, false); // kernel-private
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..2_000 {
        let page = rng.gen_range(0u64..(1 << 18));
        t.set_range((3 << 30) + page * PAGE, PAGE, rng.gen_bool(0.5));
    }
    t
}

fn bench_tree(c: &mut Criterion) {
    let mut tree = populated_tree();
    let mut rng = StdRng::seed_from_u64(11);
    let addrs: Vec<u64> = (0..1024)
        .map(|_| rng.gen_range(0u64..(4u64 << 30)))
        .collect();

    c.bench_function("dsvmt/walk-mixed-1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &va in &addrs {
                acc += u64::from(tree.walk(black_box(va)).in_view);
            }
            black_box(acc)
        });
    });

    c.bench_function("dsvmt/set-range-1g-uniform", |b| {
        b.iter(|| {
            let mut t = populated_tree();
            t.set_range(3 << 30, 1 << 30, true);
            black_box(t.footprint())
        });
    });

    c.bench_function("dsvmt/set-range-4k-churn", |b| {
        b.iter(|| {
            let mut t = DsvmtTree::new();
            for p in 0..256u64 {
                t.set_range(p * PAGE * 3, PAGE, true);
            }
            black_box(t.footprint())
        });
    });
}

fn bench_hwcache(c: &mut Criterion) {
    let tree = std::cell::RefCell::new(populated_tree());
    let mut cache = TaggedMetadataCache::new(HwCacheConfig::dsvmt_paper());
    let mut rng = StdRng::seed_from_u64(13);
    // Hot working set small enough to mostly hit (the ~99 % regime the
    // paper reports), with a cold tail forcing refills.
    let hot: Vec<u64> = (0..64).map(|i| i * PAGE).collect();
    let cold: Vec<u64> = (0..64).map(|_| rng.gen_range(0u64..(4u64 << 30))).collect();

    c.bench_function("dsvmt-cache/lookup-hot", |b| {
        // Pre-warm.
        for &va in &hot {
            let aligned = va & !(cache.span_bytes() - 1);
            cache.refill(va, 1, |i| {
                tree.borrow_mut()
                    .walk(aligned + u64::from(i) * PAGE)
                    .in_view
            });
        }
        b.iter(|| {
            let mut acc = 0u64;
            for &va in &hot {
                acc += u64::from(matches!(cache.lookup(black_box(va), 1), HwLookup::Hit(_)));
            }
            black_box(acc)
        });
    });

    c.bench_function("dsvmt-cache/miss-refill-walk", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &va in &cold {
                if matches!(cache.lookup(black_box(va), 2), HwLookup::Miss) {
                    let aligned = va & !(cache.span_bytes() - 1);
                    cache.refill(va, 2, |i| {
                        tree.borrow_mut()
                            .walk(aligned + u64::from(i) * PAGE)
                            .in_view
                    });
                    acc += 1;
                }
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_tree, bench_hwcache);
criterion_main!(benches);
