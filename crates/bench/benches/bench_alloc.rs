//! Criterion bench: allocator fast paths — the secure slab allocator vs.
//! the packing baseline (the §9.2 fragmentation/reassignment substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use persp_kernel::mm::{BuddyAllocator, SlabAllocator};
use persp_kernel::sink::NullSink;
use persp_kernel::sink::{AllocSink, Owner};
use perspective::dsv::DsvTable;
use std::hint::black_box;

fn bench_slab(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc/slab-kmalloc-kfree");
    for secure in [false, true] {
        let label = if secure { "secure" } else { "baseline" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &secure, |b, &secure| {
            let mut buddy = BuddyAllocator::new(1 << 14);
            let mut slab = SlabAllocator::new(secure);
            let mut sink = NullSink;
            b.iter(|| {
                let mut objs = Vec::with_capacity(64);
                for i in 0..64u32 {
                    let cg = 1 + i % 4;
                    if let Some(va) = slab.kmalloc(64, cg, &mut buddy, &mut sink) {
                        objs.push(va);
                    }
                }
                for va in objs {
                    slab.kfree(va, &mut buddy, &mut sink);
                }
            });
        });
    }
    group.finish();
}

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("alloc/buddy-alloc-free-order3", |b| {
        let mut buddy = BuddyAllocator::new(1 << 14);
        let mut sink = NullSink;
        b.iter(|| {
            let f = buddy.alloc(3, Owner::Shared, &mut sink).expect("space");
            buddy.free(f, &mut sink);
        });
    });
}

fn bench_dsv_classify(c: &mut Criterion) {
    c.bench_function("alloc/dsv-classify", |b| {
        let mut dsv = DsvTable::new();
        dsv.register_context(1, 10);
        for f in 0..2048 {
            dsv.assign_frames(f, 1, Owner::Cgroup(10 + (f % 4) as u32));
        }
        let mut f = 0u64;
        b.iter(|| {
            f = (f + 7) % 2048;
            black_box(dsv.classify(persp_kernel::layout::frame_to_va(f), 1))
        });
    });
}

criterion_group!(benches, bench_slab, bench_buddy, bench_dsv_classify);
criterion_main!(benches);
