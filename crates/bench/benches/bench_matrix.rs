//! Criterion bench: the experiment matrix end to end on the small
//! kernel — image generation, one measured cell, and the serial vs.
//! parallel harness around a 2-scheme × 2-workload matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use persp_kernel::callgraph::KernelConfig;
use persp_kernel::kernel::KernelImage;
use persp_workloads::{lebench, runner, Workload};
use perspective::scheme::Scheme;
use std::hint::black_box;

const SCHEMES: [Scheme; 2] = [Scheme::Unsafe, Scheme::Perspective];

fn workloads() -> Vec<Workload> {
    vec![
        lebench::by_name("getpid").unwrap(),
        lebench::by_name("small-read").unwrap(),
    ]
}

fn matrix_cells(image: &KernelImage, threads: usize) -> usize {
    let jobs: Vec<(usize, usize)> = (0..workloads().len())
        .flat_map(|w| (0..SCHEMES.len()).map(move |s| (w, s)))
        .collect();
    let ws = workloads();
    runner::run_parallel_with(threads, jobs, |(w, s)| {
        runner::measure_image(SCHEMES[s], image, &ws[w])
    })
    .len()
}

fn bench_image_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix");
    group.sample_size(10);
    group.bench_function("kernel-image-build-small", |b| {
        b.iter(|| black_box(KernelImage::build(KernelConfig::test_small())))
    });
    group.finish();
}

fn bench_single_cell(c: &mut Criterion) {
    let image = KernelImage::build(KernelConfig::test_small());
    let w = lebench::by_name("getpid").unwrap();
    let mut group = c.benchmark_group("matrix");
    group.sample_size(10);
    group.bench_function("cell-getpid-unsafe", |b| {
        b.iter(|| black_box(runner::measure_image(Scheme::Unsafe, &image, &w)))
    });
    group.finish();
}

fn bench_matrix_widths(c: &mut Criterion) {
    let image = KernelImage::build(KernelConfig::test_small());
    let mut group = c.benchmark_group("matrix");
    group.sample_size(10);
    group.bench_function("2x2-serial", |b| {
        b.iter(|| black_box(matrix_cells(&image, 1)))
    });
    group.bench_function("2x2-threads-4", |b| {
        b.iter(|| black_box(matrix_cells(&image, 4)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_image_build,
    bench_single_cell,
    bench_matrix_widths
);
criterion_main!(benches);
