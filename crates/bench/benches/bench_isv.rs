//! Criterion bench: ISV generation and lookup — the hot paths behind
//! Tables 8.1/8.2 (E3/E4) and the per-load policy checks.

use criterion::{criterion_group, criterion_main, Criterion};
use persp_kernel::body::emit_kernel;
use persp_kernel::callgraph::{CallGraph, FuncId, KernelConfig};
use persp_kernel::syscalls::Sysno;
use perspective::isv::Isv;
use std::collections::HashSet;
use std::hint::black_box;

fn graph() -> CallGraph {
    let mut g = CallGraph::generate(KernelConfig::test_small());
    emit_kernel(&mut g);
    g
}

fn bench_generation(c: &mut Criterion) {
    let g = graph();
    c.bench_function("isv/static-generation-8-syscalls", |b| {
        let profile = &Sysno::ALL[..8];
        b.iter(|| black_box(Isv::static_for(&g, profile)));
    });
    c.bench_function("isv/live-reachability-all-syscalls", |b| {
        b.iter(|| black_box(g.live_reachable(Sysno::ALL)));
    });
}

fn bench_lookup(c: &mut Criterion) {
    let g = graph();
    let isv = Isv::static_for(&g, Sysno::ALL);
    let pcs: Vec<u64> = g.funcs.iter().map(|f| f.entry_va + 8).collect();
    c.bench_function("isv/contains-va-lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % pcs.len();
            black_box(isv.contains_va(pcs[i]))
        });
    });
}

/// The membership probe, dense bitset vs. the hash-set representation it
/// replaced: `contains_func` is one word load + mask either way the view
/// is consulted, where the `HashSet` probe hashes and chases buckets.
/// Likewise `contains_va` through the dense VA → function map vs. the
/// former binary search over the view's merged VA ranges.
fn bench_membership_representation(c: &mut Criterion) {
    let g = graph();
    let isv = Isv::static_for(&g, Sysno::ALL);
    let oracle: HashSet<FuncId> = isv.funcs().clone();
    let ids: Vec<FuncId> = (0..g.len() as u32).map(FuncId).collect();
    c.bench_function("isv/contains-func-bitset", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(isv.contains_func(ids[i]))
        });
    });
    c.bench_function("isv/contains-func-hashset", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(oracle.contains(&ids[i]))
        });
    });

    let pcs: Vec<u64> = g.funcs.iter().map(|f| f.entry_va + 8).collect();
    let ranges = isv.ranges().to_vec();
    c.bench_function("isv/contains-va-rangescan", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % pcs.len();
            let va = pcs[i];
            let idx = ranges.partition_point(|&(start, _)| start <= va);
            black_box(idx > 0 && va < ranges[idx - 1].1)
        });
    });
}

fn bench_hardening(c: &mut Criterion) {
    let g = graph();
    c.bench_function("isv/audit-hardening", |b| {
        b.iter(|| {
            let isv = Isv::static_for(&g, Sysno::ALL);
            let flagged: Vec<_> = g.gadgets.iter().map(|(f, _)| *f).collect();
            black_box(isv.hardened_with_audit(&g, flagged))
        });
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_lookup,
    bench_membership_representation,
    bench_hardening
);
criterion_main!(benches);
