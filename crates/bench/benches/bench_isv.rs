//! Criterion bench: ISV generation and lookup — the hot paths behind
//! Tables 8.1/8.2 (E3/E4) and the per-load policy checks.

use criterion::{criterion_group, criterion_main, Criterion};
use persp_kernel::body::emit_kernel;
use persp_kernel::callgraph::{CallGraph, KernelConfig};
use persp_kernel::syscalls::Sysno;
use perspective::isv::Isv;
use std::hint::black_box;

fn graph() -> CallGraph {
    let mut g = CallGraph::generate(KernelConfig::test_small());
    emit_kernel(&mut g);
    g
}

fn bench_generation(c: &mut Criterion) {
    let g = graph();
    c.bench_function("isv/static-generation-8-syscalls", |b| {
        let profile = &Sysno::ALL[..8];
        b.iter(|| black_box(Isv::static_for(&g, profile)));
    });
    c.bench_function("isv/live-reachability-all-syscalls", |b| {
        b.iter(|| black_box(g.live_reachable(Sysno::ALL)));
    });
}

fn bench_lookup(c: &mut Criterion) {
    let g = graph();
    let isv = Isv::static_for(&g, Sysno::ALL);
    let pcs: Vec<u64> = g.funcs.iter().map(|f| f.entry_va + 8).collect();
    c.bench_function("isv/contains-va-lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % pcs.len();
            black_box(isv.contains_va(pcs[i]))
        });
    });
}

fn bench_hardening(c: &mut Criterion) {
    let g = graph();
    c.bench_function("isv/audit-hardening", |b| {
        b.iter(|| {
            let isv = Isv::static_for(&g, Sysno::ALL);
            let flagged: Vec<_> = g.gadgets.iter().map(|(f, _)| *f).collect();
            black_box(isv.hardened_with_audit(&g, flagged))
        });
    });
}

criterion_group!(benches, bench_generation, bench_lookup, bench_hardening);
criterion_main!(benches);
