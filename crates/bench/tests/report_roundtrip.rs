//! Property tests for `persp_bench::report::Json`: the writer is a
//! fixed point of the parser over arbitrary documents (non-ASCII,
//! escapes, nesting), and a malformed-document corpus always comes back
//! as `Err` — never a panic.

use persp_bench::report::Json;
use proptest::prelude::*;
use proptest::strategy::boxed_arm;

/// Characters that stress every writer/parser path: escapes, control
/// characters, multi-byte scalars, and JSON syntax.
const PALETTE: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{1}',
    '\u{1f}',
    '{',
    '}',
    '[',
    ']',
    ':',
    ',',
    '-',
    'é',
    'ü',
    '\u{7FF}',
    '\u{FFFD}',
    '\u{1F980}',
];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            (0usize..PALETTE.len()).prop_map(|i| PALETTE[i]),
            // Arbitrary scalar values (surrogate range mapped away).
            (0u32..0x11_0000).prop_map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Leaf JSON values. `Int` is negative-only by construction — the
/// parser assigns non-negative integers to `UInt`, so a non-negative
/// `Int` could never round-trip.
fn arb_leaf() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<u64>().prop_map(Json::UInt),
        any::<i64>().prop_map(|n| Json::Int(if n < 0 { n } else { -(n / 2) - 1 })),
        arb_string().prop_map(Json::Str),
    ]
}

/// Arbitrary documents up to `depth` container levels.
fn arb_json(depth: usize) -> Box<dyn Strategy<Value = Json>> {
    if depth == 0 {
        return boxed_arm(arb_leaf());
    }
    boxed_arm(prop_oneof![
        arb_leaf(),
        prop::collection::vec(arb_json(depth - 1), 0..5).prop_map(Json::Array),
        prop::collection::vec((arb_string(), arb_json(depth - 1)), 0..5).prop_map(Json::Object),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn writer_is_a_fixed_point_of_the_parser(doc in arb_json(3)) {
        let text = doc.render();
        let back = Json::parse(&text).expect("our own output parses");
        prop_assert_eq!(&back, &doc);
        prop_assert_eq!(back.render(), text, "render∘parse∘render is stable");
    }

    #[test]
    fn arbitrary_input_never_panics(chars in prop::collection::vec(
        prop_oneof![
            (0usize..PALETTE.len()).prop_map(|i| PALETTE[i]),
            (0u32..0x11_0000).prop_map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')),
        ],
        0..64,
    )) {
        // Any outcome is fine; reaching it without a panic is the test.
        let input: String = chars.into_iter().collect();
        let _ = Json::parse(&input);
    }

    #[test]
    fn truncated_documents_error_without_panic(doc in arb_json(2), cut in any::<usize>()) {
        // Root the document in an array: every proper prefix of a
        // container is incomplete. (A bare number's prefix can be a
        // valid shorter number, so leaves are not truncation-testable.)
        let doc = Json::Array(vec![doc]);
        let text = doc.render();
        let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
        if !boundaries.is_empty() {
            let at = boundaries[cut % boundaries.len()];
            if at > 0 {
                prop_assert!(
                    Json::parse(&text[..at]).is_err(),
                    "truncation at byte {} of {:?} must not parse",
                    at,
                    text
                );
            }
        }
    }
}

#[test]
fn malformed_corpus_is_rejected_without_panic() {
    let corpus: &[&str] = &[
        "",
        "   ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "{\"a\":1,}",
        "[1,,2]",
        "{\"a\" 1}",
        "{\"a\":1 \"b\":2}",
        "\"\\u{41}\"",
        "\"\\uZZZZ\"",
        "truefalse",
        "nullnull",
        "--1",
        "1-",
        "{\"\\",
        "\"\\uD834\"",
        "\u{FEFF}{}",
        "{\"k\": 1e5}",
        "NaN",
        "Infinity",
        "'single'",
        "-",
        "-9223372036854775809",
        "18446744073709551616",
    ];
    for c in corpus {
        assert!(Json::parse(c).is_err(), "{c:?} must be rejected");
    }
    // Pathological nesting: an Err, not a recursion-driven stack overflow.
    assert!(Json::parse(&"[".repeat(100_000)).is_err());
    assert!(Json::parse(&"{\"k\":".repeat(100_000)).is_err());
}
