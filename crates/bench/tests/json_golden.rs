//! Golden-path checks for the machine-readable experiment output: the
//! `--json` documents must parse with our own reader and be
//! byte-identical whatever `PERSPECTIVE_THREADS` says.
//!
//! The children get their kernel/thread configuration through their own
//! environment (set on the spawned `Command`); this test never touches
//! the parent process environment.

use persp_bench::report::Json;
use std::process::Command;

fn fig_9_2_json(threads: &str) -> String {
    fig_9_2_json_env(threads, &[])
}

fn fig_9_2_json_env(threads: &str, extra_env: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig_9_2"));
    cmd.arg("--json")
        .env("PERSPECTIVE_KERNEL", "small")
        .env("PERSPECTIVE_THREADS", threads);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn fig_9_2");
    assert!(
        out.status.success(),
        "fig_9_2 --json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("JSON output is UTF-8")
}

#[test]
fn fig_9_2_json_parses_and_is_identical_across_thread_widths() {
    let serial = fig_9_2_json("1");
    let parallel = fig_9_2_json("4");
    assert_eq!(
        serial, parallel,
        "--json output must be byte-identical across PERSPECTIVE_THREADS widths"
    );

    let doc = Json::parse(serial.trim()).expect("fig_9_2 emits valid JSON");
    assert_eq!(
        doc.get("experiment").and_then(Json::as_str),
        Some("fig_9_2")
    );
    assert_eq!(doc.get("kernel").and_then(Json::as_str), Some("small"));

    // The document carries the full measurement rows (scheme × workload)
    // plus the derived normalized numbers the transcript prints.
    let schemes = doc.get("schemes").and_then(Json::items).expect("schemes");
    let rows = doc.get("rows").and_then(Json::items).expect("rows");
    assert!(!schemes.is_empty());
    assert_eq!(rows.len() % schemes.len(), 0, "rows form a full matrix");
    for row in rows {
        assert!(row.get("scheme").and_then(Json::as_str).is_some());
        assert!(row.get("workload").and_then(Json::as_str).is_some());
        let metrics = row.get("metrics").expect("attribution metrics");
        let stall_total = metrics
            .get("sim.stall_cycles")
            .and_then(Json::as_u64)
            .expect("sim.stall_cycles");
        // The stall attribution partitions the stall cycles exactly.
        let parts: u64 = [
            "isv_fence",
            "dsv_fence",
            "isv_miss",
            "dsvmt_miss",
            "squash",
            "vp_wait",
            "frontend",
            "backend",
        ]
        .iter()
        .map(|k| {
            metrics
                .get(&format!("sim.stall.{k}"))
                .and_then(Json::as_u64)
                .expect("stall class")
        })
        .sum();
        assert_eq!(parts, stall_total, "stall classes partition stall cycles");
    }

    // Our writer is a fixed point of our parser.
    assert_eq!(doc.render(), serial.trim());
}

#[test]
fn fig_9_2_json_is_identical_with_the_fast_forward_disabled() {
    // The idle-cycle fast-forward is a pure simulation-speed
    // optimization: forcing the cycle-by-cycle slow path through
    // PERSPECTIVE_NO_FASTFWD=1 must reproduce the exact same document,
    // byte for byte — every cycle count, stall bucket, and cache
    // counter included.
    let fast = fig_9_2_json("4");
    let slow = fig_9_2_json_env("4", &[("PERSPECTIVE_NO_FASTFWD", "1")]);
    assert_eq!(
        fast, slow,
        "--json output must be byte-identical with the fast-forward on and off"
    );
}
