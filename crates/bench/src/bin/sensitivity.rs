//! Experiment E14 — §9.2 sensitivity analyses: hardware-structure hit
//! rates, the cost of blocking unknown allocations, secure-slab memory
//! fragmentation, and domain-reassignment frequency.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_image, pct};
use persp_kernel::context::CgroupId;
use persp_kernel::kernel::KernelImage;
use persp_kernel::mm::{BuddyAllocator, SlabAllocator, SlabStats};
use persp_kernel::sink::NullSink;
use persp_workloads::runner::Measurement;
use persp_workloads::{apps, lebench, runner};
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const HIT_RATE_NAMES: [&str; 5] = ["getpid", "select", "small-read", "big-write", "poll"];
const UNKNOWN_NAMES: [&str; 4] = ["getpid", "small-read", "poll", "page-fault"];

fn hit_rates(image: &KernelImage) -> Vec<(f64, f64)> {
    runner::run_parallel(HIT_RATE_NAMES.to_vec(), |name| {
        let w = lebench::by_name(name).unwrap();
        let m = runner::measure_image(Scheme::Perspective, image, &w);
        (
            m.isv_cache.unwrap().hit_rate(),
            m.dsvmt_cache.unwrap().hit_rate(),
        )
    })
}

fn print_hit_rates(rates: &[(f64, f64)]) {
    println!("--- Hardware structures (ISV cache / DSVMT cache hit rates) ---");
    let mut isv_sum = 0.0;
    let mut dsv_sum = 0.0;
    for (name, (i, d)) in HIT_RATE_NAMES.iter().zip(rates) {
        isv_sum += i;
        dsv_sum += d;
        println!(
            "  {name:<12} ISV cache {:>6}   DSVMT cache {:>6}",
            pct(*i),
            pct(*d)
        );
    }
    let n = rates.len() as f64;
    println!(
        "  average      ISV cache {:>6}   DSVMT cache {:>6}",
        pct(isv_sum / n),
        pct(dsv_sum / n)
    );
    println!("  paper: both close to 99%");
    println!();
}

/// Two cells per workload — blocking on, blocking off — run as one
/// parallel batch; chunked pairwise by the consumers.
fn unknown_allocations(image: &KernelImage) -> Vec<Measurement> {
    let jobs: Vec<(usize, bool)> = (0..UNKNOWN_NAMES.len())
        .flat_map(|w| [(w, true), (w, false)])
        .collect();
    runner::run_parallel(jobs, |(w, block)| {
        let workload = lebench::by_name(UNKNOWN_NAMES[w]).unwrap();
        let cfg = PerspectiveConfig {
            block_unknown: block,
            ..Default::default()
        };
        runner::measure_image_cfg(Scheme::Perspective, image, &workload, cfg)
    })
}

fn print_unknown_allocations(cells: &[Measurement]) {
    println!("--- Unknown allocations (block vs. allow, §9.2) ---");
    let mut deltas = Vec::new();
    for (name, pair) in UNKNOWN_NAMES.iter().zip(cells.chunks(2)) {
        let (blocked, allowed) = (&pair[0], &pair[1]);
        let delta = blocked.stats.cycles as f64 / allowed.stats.cycles.max(1) as f64 - 1.0;
        deltas.push(delta);
        println!(
            "  {name:<12} blocking unknown costs {:>6}  (unknown fences: {})",
            pct(delta),
            blocked.fences.as_ref().unwrap().unknown
        );
    }
    let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!(
        "  average overhead attributable to unknown allocations: {}",
        pct(avg)
    );
    println!("  paper: ~1.5% of Perspective's overhead on LEBench, marginal on apps");
    println!();
}

/// Slab traffic shaped like the datacenter workloads: transient metadata
/// allocations from four mutually distrusting cgroups, measured with
/// `slabtop`-style utilization on the baseline vs. the secure allocator.
/// Returns `[(active, total, page_op_ratio); 2]` for baseline, secure.
fn fragmentation() -> Vec<(u64, u64, f64)> {
    let run = |secure: bool| -> (u64, u64, f64) {
        // Per-run rng so the two configurations see identical traffic
        // (and so both can run concurrently).
        let mut rng = SmallRng::seed_from_u64(42);
        let mut buddy = BuddyAllocator::new(1 << 16);
        let mut slab = SlabAllocator::new(secure);
        let mut sink = NullSink;
        let mut live: Vec<(u64, CgroupId)> = Vec::new();
        for i in 0..120_000u64 {
            let cg: CgroupId = 1 + (i % 4) as CgroupId;
            let sizes = [64, 128, 256, 1024];
            let size = sizes[rng.gen_range(0..sizes.len())];
            if let Some(va) = slab.kmalloc(size, cg, &mut buddy, &mut sink) {
                live.push((va, cg));
            }
            // Free with redis-like churn over a sizeable resident set
            // (slabtop-scale: tens of thousands of live objects).
            while live.len() > 24_000 {
                let idx = rng.gen_range(0..live.len());
                let (va, _) = live.swap_remove(idx);
                slab.kfree(va, &mut buddy, &mut sink);
            }
        }
        let (active, total) = slab.utilization();
        (active, total, slab.stats().page_op_ratio())
    };
    runner::run_parallel(vec![false, true], run)
}

/// Derived fragmentation figures: baseline/secure utilization, memory
/// overhead of isolation, secure page-op ratio.
fn fragmentation_figures(runs: &[(u64, u64, f64)]) -> (f64, f64, f64, f64) {
    let (abase, tbase, _) = runs[0];
    let (asec, tsec, ratio) = runs[1];
    let util_base = abase as f64 / tbase.max(1) as f64;
    let util_sec = asec as f64 / tsec.max(1) as f64;
    let overhead = tsec as f64 / tbase.max(1) as f64 - 1.0;
    (util_base, util_sec, overhead, ratio)
}

fn print_fragmentation(runs: &[(u64, u64, f64)]) {
    println!("--- Memory fragmentation of the secure slab allocator (§9.2) ---");
    let (util_base, util_sec, overhead, ratio) = fragmentation_figures(runs);
    println!("  baseline slab utilization: {}", pct(util_base));
    println!("  secure   slab utilization: {}", pct(util_sec));
    println!("  memory usage overhead of isolation: {}", pct(overhead));
    println!("  page-level ops per object free (secure): {}", pct(ratio));
    println!("  paper: 0.91% memory overhead; page-op ratios 0.003%-0.23%");
    println!();
}

fn domain_reassignment(image: &KernelImage) -> Vec<(&'static str, SlabStats)> {
    runner::run_parallel(apps::apps(), |app| {
        let mut inst = persp_workloads::SimInstance::from_image(Scheme::Perspective, image);
        let text = inst.text_base();
        let data = inst.data_base();
        // A longer serving window than the throughput runs, so the free
        // counter is statistically meaningful.
        let mut workload = app.workload.clone();
        workload.iters *= 4;
        inst.core.machine.load_text(workload.compile(text, data));
        inst.core.run(text, 800_000_000).expect("app run");
        let stats = inst.kernel.borrow().slab.stats();
        (app.workload.name, stats)
    })
}

fn print_domain_reassignment(rows: &[(&'static str, SlabStats)]) {
    println!("--- Domain reassignment during app runs (§9.2) ---");
    for (name, stats) in rows {
        println!(
            "  {:<10} object frees {:>6}, page-level ops {:>4} ({} of frees)",
            name,
            stats.object_frees,
            stats.page_frees,
            pct(stats.page_op_ratio()),
        );
    }
    println!("  paper: 0.003%-0.23% of frees cause a page-level domain reassignment");
    println!();
}

fn json_doc(
    rates: &[(f64, f64)],
    cells: &[Measurement],
    runs: &[(u64, u64, f64)],
    reassign: &[(&'static str, SlabStats)],
) -> Json {
    let hit_rows = HIT_RATE_NAMES
        .iter()
        .zip(rates)
        .map(|(name, (i, d))| {
            Json::obj(vec![
                ("workload", Json::str(*name)),
                ("isv_cache_hit_rate", Json::str(pct(*i))),
                ("dsvmt_cache_hit_rate", Json::str(pct(*d))),
            ])
        })
        .collect();
    let unknown_rows = UNKNOWN_NAMES
        .iter()
        .zip(cells.chunks(2))
        .map(|(name, pair)| {
            let (blocked, allowed) = (&pair[0], &pair[1]);
            let delta = blocked.stats.cycles as f64 / allowed.stats.cycles.max(1) as f64 - 1.0;
            Json::obj(vec![
                ("workload", Json::str(*name)),
                ("blocking_cost", Json::str(pct(delta))),
                (
                    "unknown_fences",
                    Json::UInt(blocked.fences.as_ref().unwrap().unknown),
                ),
            ])
        })
        .collect();
    let (util_base, util_sec, overhead, ratio) = fragmentation_figures(runs);
    let frag = Json::obj(vec![
        ("baseline_utilization", Json::str(pct(util_base))),
        ("secure_utilization", Json::str(pct(util_sec))),
        ("memory_overhead", Json::str(pct(overhead))),
        ("page_op_ratio", Json::str(pct(ratio))),
    ]);
    let reassign_rows = reassign
        .iter()
        .map(|(name, stats)| {
            Json::obj(vec![
                ("app", Json::str(*name)),
                ("object_frees", Json::UInt(stats.object_frees)),
                ("page_frees", Json::UInt(stats.page_frees)),
                ("page_op_ratio", Json::str(pct(stats.page_op_ratio()))),
            ])
        })
        .collect();
    report::experiment_json(
        "sensitivity",
        vec![
            ("hit_rates", Json::Array(hit_rows)),
            ("unknown_allocations", Json::Array(unknown_rows)),
            ("fragmentation", frag),
            ("domain_reassignment", Json::Array(reassign_rows)),
        ],
    )
}

fn main() {
    let json = report::json_mode();
    if !json {
        header("Sensitivity analyses", "paper §9.2");
    }
    let image = kernel_image();
    let rates = hit_rates(&image);
    if !json {
        print_hit_rates(&rates);
    }
    let cells = unknown_allocations(&image);
    if !json {
        print_unknown_allocations(&cells);
    }
    let runs = fragmentation();
    if !json {
        print_fragmentation(&runs);
    }
    let reassign = domain_reassignment(&image);
    if json {
        report::emit(&json_doc(&rates, &cells, &runs, &reassign));
    } else {
        print_domain_reassignment(&reassign);
    }
}
