//! Experiment E14 — §9.2 sensitivity analyses: hardware-structure hit
//! rates, the cost of blocking unknown allocations, secure-slab memory
//! fragmentation, and domain-reassignment frequency.

use persp_bench::{header, kernel_config, pct};
use persp_kernel::context::CgroupId;
use persp_kernel::mm::{BuddyAllocator, SlabAllocator};
use persp_kernel::sink::NullSink;
use persp_workloads::{apps, lebench, runner};
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn hit_rates() {
    println!("--- Hardware structures (ISV cache / DSVMT cache hit rates) ---");
    let kcfg = kernel_config();
    let mut isv_sum = 0.0;
    let mut dsv_sum = 0.0;
    let mut n = 0.0;
    for name in ["getpid", "select", "small-read", "big-write", "poll"] {
        let w = lebench::by_name(name).unwrap();
        let m = runner::measure(Scheme::Perspective, kcfg, &w);
        let i = m.isv_cache.unwrap().hit_rate();
        let d = m.dsvmt_cache.unwrap().hit_rate();
        isv_sum += i;
        dsv_sum += d;
        n += 1.0;
        println!(
            "  {name:<12} ISV cache {:>6}   DSVMT cache {:>6}",
            pct(i),
            pct(d)
        );
    }
    println!(
        "  average      ISV cache {:>6}   DSVMT cache {:>6}",
        pct(isv_sum / n),
        pct(dsv_sum / n)
    );
    println!("  paper: both close to 99%");
    println!();
}

fn unknown_allocations() {
    println!("--- Unknown allocations (block vs. allow, §9.2) ---");
    let kcfg = kernel_config();
    let mut deltas = Vec::new();
    for name in ["getpid", "small-read", "poll", "page-fault"] {
        let w = lebench::by_name(name).unwrap();
        let blocked =
            runner::measure_cfg(Scheme::Perspective, kcfg, &w, PerspectiveConfig::default());
        let allowed = runner::measure_cfg(
            Scheme::Perspective,
            kcfg,
            &w,
            PerspectiveConfig {
                block_unknown: false,
                ..Default::default()
            },
        );
        let delta = blocked.stats.cycles as f64 / allowed.stats.cycles.max(1) as f64 - 1.0;
        deltas.push(delta);
        println!(
            "  {name:<12} blocking unknown costs {:>6}  (unknown fences: {})",
            pct(delta),
            blocked.fences.unwrap().unknown
        );
    }
    let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!(
        "  average overhead attributable to unknown allocations: {}",
        pct(avg)
    );
    println!("  paper: ~1.5% of Perspective's overhead on LEBench, marginal on apps");
    println!();
}

/// Slab traffic shaped like the datacenter workloads: transient metadata
/// allocations from four mutually distrusting cgroups, measured with
/// `slabtop`-style utilization on the baseline vs. the secure allocator.
fn fragmentation() {
    println!("--- Memory fragmentation of the secure slab allocator (§9.2) ---");
    let mut rng = SmallRng::seed_from_u64(42);
    let mut run = |secure: bool| -> (u64, u64, f64) {
        let mut buddy = BuddyAllocator::new(1 << 16);
        let mut slab = SlabAllocator::new(secure);
        let mut sink = NullSink;
        let mut live: Vec<(u64, CgroupId)> = Vec::new();
        for i in 0..120_000u64 {
            let cg: CgroupId = 1 + (i % 4) as CgroupId;
            let sizes = [64, 128, 256, 1024];
            let size = sizes[rng.gen_range(0..sizes.len())];
            if let Some(va) = slab.kmalloc(size, cg, &mut buddy, &mut sink) {
                live.push((va, cg));
            }
            // Free with redis-like churn over a sizeable resident set
            // (slabtop-scale: tens of thousands of live objects).
            while live.len() > 24_000 {
                let idx = rng.gen_range(0..live.len());
                let (va, _) = live.swap_remove(idx);
                slab.kfree(va, &mut buddy, &mut sink);
            }
        }
        let (active, total) = slab.utilization();
        (active, total, slab.stats().page_op_ratio())
    };
    let (abase, tbase, _) = run(false);
    let (asec, tsec, ratio) = run(true);
    let util_base = abase as f64 / tbase.max(1) as f64;
    let util_sec = asec as f64 / tsec.max(1) as f64;
    let overhead = tsec as f64 / tbase.max(1) as f64 - 1.0;
    println!("  baseline slab utilization: {}", pct(util_base));
    println!("  secure   slab utilization: {}", pct(util_sec));
    println!("  memory usage overhead of isolation: {}", pct(overhead));
    println!("  page-level ops per object free (secure): {}", pct(ratio));
    println!("  paper: 0.91% memory overhead; page-op ratios 0.003%-0.23%");
    println!();
}

fn domain_reassignment() {
    println!("--- Domain reassignment during app runs (§9.2) ---");
    let kcfg = kernel_config();
    for app in apps::apps() {
        let mut inst = persp_workloads::SimInstance::new(Scheme::Perspective, kcfg);
        let text = inst.text_base();
        let data = inst.data_base();
        // A longer serving window than the throughput runs, so the free
        // counter is statistically meaningful.
        let mut workload = app.workload.clone();
        workload.iters *= 4;
        inst.core.machine.load_text(workload.compile(text, data));
        inst.core.run(text, 800_000_000).expect("app run");
        let stats = inst.kernel.borrow().slab.stats();
        println!(
            "  {:<10} object frees {:>6}, page-level ops {:>4} ({} of frees)",
            app.workload.name,
            stats.object_frees,
            stats.page_frees,
            pct(stats.page_op_ratio()),
        );
    }
    println!("  paper: 0.003%-0.23% of frees cause a page-level domain reassignment");
    println!();
}

fn main() {
    header("Sensitivity analyses", "paper §9.2");
    hit_rates();
    unknown_allocations();
    fragmentation();
    domain_reassignment();
}
