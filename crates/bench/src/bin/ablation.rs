//! Ablation: which view mechanism pays for what — DSV-only, ISV-only,
//! and full Perspective, per workload.
//!
//! The paper's design argument (§5.1) is that the two mechanisms address
//! disjoint attack classes; this ablation shows their costs are largely
//! additive and individually small.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_image, pct};
use persp_workloads::{lebench, runner};
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

fn main() {
    let image = kernel_image();
    let configs: [(&str, PerspectiveConfig); 3] = [
        (
            "DSV only",
            PerspectiveConfig {
                enforce_isv: false,
                ..Default::default()
            },
        ),
        (
            "ISV only",
            PerspectiveConfig {
                enforce_dsv: false,
                ..Default::default()
            },
        ),
        ("DSV + ISV", PerspectiveConfig::default()),
    ];

    let names = [
        "getpid",
        "select",
        "small-read",
        "poll",
        "page-fault",
        "big-fork",
    ];
    // One row per workload: the UNSAFE baseline plus the three ablation
    // configurations, all run as one parallel matrix over the shared image.
    let jobs: Vec<(usize, Option<PerspectiveConfig>)> = (0..names.len())
        .flat_map(|w| {
            std::iter::once((w, None)).chain(configs.iter().map(move |&(_, cfg)| (w, Some(cfg))))
        })
        .collect();
    let cells = runner::run_parallel(jobs, |(w, cfg)| {
        let workload = lebench::by_name(names[w]).unwrap();
        match cfg {
            None => runner::measure_image(Scheme::Unsafe, &image, &workload),
            Some(cfg) => runner::measure_image_cfg(Scheme::Perspective, &image, &workload, cfg),
        }
    });

    if report::json_mode() {
        let json_rows = names
            .iter()
            .zip(cells.chunks(1 + configs.len()))
            .map(|(name, row)| {
                let base = &row[0];
                let mut fields = vec![("workload", Json::str(*name))];
                for ((cfg_name, _), m) in configs.iter().zip(&row[1..]) {
                    let ov = m.stats.cycles as f64 / base.stats.cycles.max(1) as f64 - 1.0;
                    fields.push((*cfg_name, Json::str(pct(ov))));
                }
                Json::obj(fields)
            })
            .collect();
        let doc = report::experiment_json("ablation", vec![("rows", Json::Array(json_rows))]);
        report::emit(&doc);
        return;
    }

    header(
        "Ablation: DSV-only / ISV-only / full Perspective",
        "design analysis (§5.1, §9.2)",
    );
    println!(
        "{:<14} | {:>10} | {:>10} | {:>10}",
        "test", "DSV only", "ISV only", "DSV+ISV"
    );
    println!("{}", "-".repeat(54));
    for (name, row) in names.iter().zip(cells.chunks(1 + configs.len())) {
        let base = &row[0];
        print!("{name:<14}");
        for m in &row[1..] {
            let ov = m.stats.cycles as f64 / base.stats.cycles.max(1) as f64 - 1.0;
            print!(" | {:>10}", pct(ov));
        }
        println!();
    }
    println!();
    println!("DSV-only leaves passive attacks open; ISV-only leaves active attacks");
    println!("open — the full framework is needed for the complete taxonomy (§5.1).");
}
