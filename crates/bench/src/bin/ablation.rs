//! Ablation: which view mechanism pays for what — DSV-only, ISV-only,
//! and full Perspective, per workload.
//!
//! The paper's design argument (§5.1) is that the two mechanisms address
//! disjoint attack classes; this ablation shows their costs are largely
//! additive and individually small.

use persp_bench::{header, kernel_config, pct};
use persp_workloads::{lebench, runner};
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

fn main() {
    let kcfg = kernel_config();
    header(
        "Ablation: DSV-only / ISV-only / full Perspective",
        "design analysis (§5.1, §9.2)",
    );

    let configs: [(&str, PerspectiveConfig); 3] = [
        (
            "DSV only",
            PerspectiveConfig {
                enforce_isv: false,
                ..Default::default()
            },
        ),
        (
            "ISV only",
            PerspectiveConfig {
                enforce_dsv: false,
                ..Default::default()
            },
        ),
        ("DSV + ISV", PerspectiveConfig::default()),
    ];

    println!(
        "{:<14} | {:>10} | {:>10} | {:>10}",
        "test", "DSV only", "ISV only", "DSV+ISV"
    );
    println!("{}", "-".repeat(54));
    for name in [
        "getpid",
        "select",
        "small-read",
        "poll",
        "page-fault",
        "big-fork",
    ] {
        let w = lebench::by_name(name).unwrap();
        let base = runner::measure(Scheme::Unsafe, kcfg, &w);
        print!("{name:<14}");
        for (_, cfg) in &configs {
            let m = runner::measure_cfg(Scheme::Perspective, kcfg, &w, *cfg);
            let ov = m.stats.cycles as f64 / base.stats.cycles.max(1) as f64 - 1.0;
            print!(" | {:>10}", pct(ov));
        }
        println!();
    }
    println!();
    println!("DSV-only leaves passive attacks open; ISV-only leaves active attacks");
    println!("open — the full framework is needed for the complete taxonomy (§5.1).");
}
