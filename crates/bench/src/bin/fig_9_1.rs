//! Experiment E5 — Figure 9.1: speedup of Kasper's gadget discovery rate
//! (gadgets/hour) when the search is bounded to each workload's ISV.
//!
//! Per workload, two fuzz-and-scan campaigns run on the live simulator:
//! the whole-interface baseline and the ISV-bounded campaign. The rate
//! counts discoveries of the gadgets that remain speculatively reachable
//! under the deployed ISV (the audit targets, §8.2); work is simulated
//! execution cycles plus taint-analysis instructions.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_image, lebench_union_workload, trace_workload};
use persp_scanner::fuzzer::compare_bounded;
use persp_workloads::{apps, SimInstance};
use perspective::isv::Isv;
use perspective::scheme::Scheme;

/// One workload's campaign pair: ISV size, baseline and bounded
/// discovery rates, and the resulting speedup.
struct Row {
    name: &'static str,
    n_funcs: usize,
    baseline_rate: f64,
    bounded_rate: f64,
    speedup: f64,
}

fn main() {
    let image = kernel_image();
    let mut workloads = vec![lebench_union_workload()];
    workloads.extend(apps::apps().into_iter().map(|a| a.workload));

    let mut rows = Vec::new();
    for w in &workloads {
        // Derive the workload's dynamic ISV from a real trace.
        let trace = trace_workload(&image, w);
        let mut inst = SimInstance::from_image(Scheme::Unsafe, &image);
        let (isv_funcs, n_funcs) = {
            let isv = Isv::dynamic_from_funcs(&image.graph, trace);
            (isv.funcs().clone(), isv.num_funcs())
        };
        let asid = inst.asid;
        let kernel_handle = inst.kernel.clone();
        let (baseline, bounded) = compare_bounded(
            &mut inst.core,
            kernel_handle,
            asid,
            &w.syscall_profile(),
            &isv_funcs,
            16,
        );
        let b = baseline.relevant_rate(&isv_funcs);
        let r = bounded.relevant_rate(&isv_funcs);
        let speedup = if b > 0.0 { r / b } else { f64::INFINITY };
        rows.push(Row {
            name: w.name,
            n_funcs,
            baseline_rate: b,
            bounded_rate: r,
            speedup,
        });
    }
    let avg = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;

    if report::json_mode() {
        let json_rows = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("workload", Json::str(r.name)),
                    ("isv_funcs", Json::UInt(r.n_funcs as u64)),
                    (
                        "baseline_rate",
                        Json::str(format!("{:.1}", r.baseline_rate)),
                    ),
                    ("bounded_rate", Json::str(format!("{:.1}", r.bounded_rate))),
                    ("speedup", Json::str(format!("{:.2}", r.speedup))),
                ])
            })
            .collect();
        let doc = report::experiment_json(
            "fig_9_1",
            vec![
                ("rows", Json::Array(json_rows)),
                ("avg_speedup", Json::str(format!("{avg:.2}"))),
            ],
        );
        report::emit(&doc);
        return;
    }

    header(
        "Figure 9.1: Speedup of Kasper's gadget discovery rate",
        "paper §8.2, Figure 9.1",
    );
    println!(
        "{:<10} | {:>12} | {:>14} | {:>14} | {:>8}",
        "workload", "ISV funcs", "baseline rate", "bounded rate", "speedup"
    );
    println!("{}", "-".repeat(72));
    for r in &rows {
        println!(
            "{:<10} | {:>12} | {:>14.1} | {:>14.1} | {:>7.2}x",
            r.name, r.n_funcs, r.baseline_rate, r.bounded_rate, r.speedup
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "{:<10} | {:>12} | {:>14} | {:>14} | {:>7.2}x",
        "average", "", "", "", avg
    );
    println!();
    println!("paper: speedups 1.14x-2.23x across workloads, 1.57x on average;");
    println!("       search space reduced from 28K kernel functions to ~1.4K.");
}
