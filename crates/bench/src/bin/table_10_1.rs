//! Experiment E9 — Table 10.1: percentage of fenced instructions due to
//! ISV vs. DSV, plus the fences-per-kilo-instruction rates of §9.2.

use persp_bench::{header, kernel_image, lebench_union_workload, pct};
use persp_workloads::runner::Measurement;
use persp_workloads::{apps, runner, Workload};
use perspective::scheme::Scheme;

const SCHEMES: [Scheme; 3] = [
    Scheme::PerspectiveStatic,
    Scheme::Perspective,
    Scheme::PerspectivePlusPlus,
];

fn row(w: &Workload, ms: &[Measurement]) {
    print!("{:<10}", w.name);
    for m in ms {
        let f = m.fences.as_ref().expect("perspective scheme");
        let isv_share = f.isv_fraction();
        print!(" | {:>5} / {:>5}", pct(isv_share), pct(1.0 - isv_share));
    }
    // The dynamic-ISV cell doubles as the fence-rate column (measurement
    // is deterministic, so re-running Perspective would reproduce it).
    let m = &ms[1];
    let f = m.fences.as_ref().expect("perspective scheme");
    let ki = m.stats.committed_insts.max(1) as f64 / 1000.0;
    println!(
        "   [{:>5.1} ISV f/ki, {:>5.1} DSV f/ki]",
        f.isv as f64 / ki,
        (f.dsv + f.unknown) as f64 / ki
    );
}

fn main() {
    let image = kernel_image();
    header(
        "Table 10.1: Percentage of fenced instructions due to ISV and DSV",
        "paper §9.2, Table 10.1",
    );
    println!(
        "{:<10} | {:^13} | {:^13} | {:^13}",
        "workload", "ISV-S/DSV", "ISV/DSV", "ISV++/DSV"
    );
    println!("{}", "-".repeat(60));
    let mut workloads = vec![lebench_union_workload()];
    workloads.extend(apps::apps().into_iter().map(|a| a.workload));
    let matrix = runner::run_matrix(&image, &SCHEMES, &workloads);
    for (w, ms) in workloads.iter().zip(matrix.chunks(SCHEMES.len())) {
        row(w, ms);
    }
    println!();
    println!("paper: ISV share 13-27% (static), 12-23% (dynamic); DSV 73-88%;");
    println!("       fence rates ~9 (ISV) and ~37 (DSV) fences per kilo-instruction.");
}
