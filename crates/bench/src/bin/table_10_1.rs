//! Experiment E9 — Table 10.1: percentage of fenced instructions due to
//! ISV vs. DSV, plus the fences-per-kilo-instruction rates of §9.2.

use persp_bench::{header, kernel_config, lebench_union_workload, pct};
use persp_kernel::callgraph::KernelConfig;
use persp_workloads::{apps, runner, Workload};
use perspective::scheme::Scheme;

fn row(kcfg: KernelConfig, w: &Workload) {
    print!("{:<10}", w.name);
    for scheme in [
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
        Scheme::PerspectivePlusPlus,
    ] {
        let m = runner::measure(scheme, kcfg, w);
        let f = m.fences.expect("perspective scheme");
        let isv_share = f.isv_fraction();
        print!(" | {:>5} / {:>5}", pct(isv_share), pct(1.0 - isv_share));
    }
    let m = runner::measure(Scheme::Perspective, kcfg, w);
    let f = m.fences.expect("perspective scheme");
    let ki = m.stats.committed_insts.max(1) as f64 / 1000.0;
    println!(
        "   [{:>5.1} ISV f/ki, {:>5.1} DSV f/ki]",
        f.isv as f64 / ki,
        (f.dsv + f.unknown) as f64 / ki
    );
}

fn main() {
    let kcfg = kernel_config();
    header(
        "Table 10.1: Percentage of fenced instructions due to ISV and DSV",
        "paper §9.2, Table 10.1",
    );
    println!(
        "{:<10} | {:^13} | {:^13} | {:^13}",
        "workload", "ISV-S/DSV", "ISV/DSV", "ISV++/DSV"
    );
    println!("{}", "-".repeat(60));
    row(kcfg, &lebench_union_workload());
    for app in apps::apps() {
        row(kcfg, &app.workload);
    }
    println!();
    println!("paper: ISV share 13-27% (static), 12-23% (dynamic); DSV 73-88%;");
    println!("       fence rates ~9 (ISV) and ~37 (DSV) fences per kilo-instruction.");
}
