//! Experiment E9 — Table 10.1: percentage of fenced instructions due to
//! ISV vs. DSV, plus the fences-per-kilo-instruction rates of §9.2.
//!
//! `--json` emits the measurement rows and the derived shares/rates as a
//! single machine-readable document instead of the transcript.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_image, lebench_union_workload, pct};
use persp_workloads::runner::Measurement;
use persp_workloads::{apps, runner, Workload};
use perspective::scheme::Scheme;

const SCHEMES: [Scheme; 3] = [
    Scheme::PerspectiveStatic,
    Scheme::Perspective,
    Scheme::PerspectivePlusPlus,
];

fn row(w: &Workload, ms: &[Measurement]) {
    print!("{:<10}", w.name);
    for m in ms {
        let f = m.fences.as_ref().expect("perspective scheme");
        let isv_share = f.isv_fraction();
        print!(" | {:>5} / {:>5}", pct(isv_share), pct(1.0 - isv_share));
    }
    // The dynamic-ISV cell doubles as the fence-rate column (measurement
    // is deterministic, so re-running Perspective would reproduce it).
    let m = &ms[1];
    let f = m.fences.as_ref().expect("perspective scheme");
    let ki = m.stats.committed_insts.max(1) as f64 / 1000.0;
    println!(
        "   [{:>5.1} ISV f/ki, {:>5.1} DSV f/ki]",
        f.isv as f64 / ki,
        (f.dsv + f.unknown) as f64 / ki
    );
}

fn main() {
    let image = kernel_image();
    let mut workloads = vec![lebench_union_workload()];
    workloads.extend(apps::apps().into_iter().map(|a| a.workload));
    let matrix = runner::run_matrix(&image, &SCHEMES, &workloads);

    if report::json_mode() {
        let mut shares = Vec::new();
        for (w, ms) in workloads.iter().zip(matrix.chunks(SCHEMES.len())) {
            for m in ms {
                let f = m.fences.as_ref().expect("perspective scheme");
                let ki = m.stats.committed_insts.max(1) as f64 / 1000.0;
                shares.push(Json::obj(vec![
                    ("workload", Json::str(w.name)),
                    ("scheme", Json::str(m.scheme.name())),
                    ("isv_share", Json::str(pct(f.isv_fraction()))),
                    ("dsv_share", Json::str(pct(1.0 - f.isv_fraction()))),
                    (
                        "isv_fences_per_ki",
                        Json::str(format!("{:.1}", f.isv as f64 / ki)),
                    ),
                    (
                        "dsv_fences_per_ki",
                        Json::str(format!("{:.1}", (f.dsv + f.unknown) as f64 / ki)),
                    ),
                ]));
            }
        }
        let doc = report::experiment_json(
            "table_10_1",
            vec![
                (
                    "schemes",
                    Json::Array(SCHEMES.iter().map(|s| Json::str(s.name())).collect()),
                ),
                ("rows", report::measurements_json(&matrix)),
                ("fence_shares", Json::Array(shares)),
            ],
        );
        report::emit(&doc);
        return;
    }

    header(
        "Table 10.1: Percentage of fenced instructions due to ISV and DSV",
        "paper §9.2, Table 10.1",
    );
    println!(
        "{:<10} | {:^13} | {:^13} | {:^13}",
        "workload", "ISV-S/DSV", "ISV/DSV", "ISV++/DSV"
    );
    println!("{}", "-".repeat(60));
    for (w, ms) in workloads.iter().zip(matrix.chunks(SCHEMES.len())) {
        row(w, ms);
    }
    println!();
    println!("paper: ISV share 13-27% (static), 12-23% (dynamic); DSV 73-88%;");
    println!("       fence rates ~9 (ISV) and ~37 (DSV) fences per kilo-instruction.");
}
