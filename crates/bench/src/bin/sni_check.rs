//! Speculative non-interference checker — the dynamic verification
//! counterpart to the performance experiments.
//!
//! Three sections, one verdict:
//!
//! 1. **Clean runs** — every LEBench workload under the UNSAFE baseline
//!    and under full-enforcement Perspective, with the shadow oracle and
//!    leakage monitor attached. Perspective must report **zero** SNI
//!    violations; the unprotected baseline must be flagged (it issues
//!    speculative loads the pristine metadata forbids).
//! 2. **Attack scenario** — the active Spectre v1 PoC with the monitor
//!    attached: under UNSAFE the stolen byte is visible as tainted
//!    transmits *at the microarchitectural level*; under Perspective all
//!    counters are zero and the byte stays secret.
//! 3. **Fault injection** — seeded `FaultPlan`s deterministically flip
//!    policy decisions, evict metadata-cache entries, and corrupt DSV
//!    ownership responses mid-run; the checker must independently flag
//!    100% of the injected violations (a caught fault is the test
//!    passing), and faulted runs degrade gracefully instead of
//!    panicking.
//!
//! `--json` emits one machine-readable document (byte-identical at any
//! `PERSPECTIVE_THREADS` width); the exit status is nonzero if any
//! property fails, so the CI smoke run is a real check.

use persp_attacks::active::run_active_attack_sni;
use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_config, kernel_image};
use persp_workloads::sni::{run_sni_workload, SniReport, DEFAULT_SHADOW_BUDGET};
use persp_workloads::{lebench, runner};
use perspective::fault::FaultPlan;
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

/// Fixed seed base for the canned fault plans (one per faulted run).
const FAULT_SEED_BASE: u64 = 0x5EED_0001;
/// Workloads the fault-injection section runs (kept small for CI).
const FAULT_WORKLOADS: &[&str] = &["getpid", "small-read", "mmap", "select"];

fn clean_json(r: &SniReport) -> Json {
    let mut pairs = vec![
        ("workload", Json::str(r.workload)),
        ("scheme", Json::str(r.scheme.name())),
        ("cycles", Json::UInt(r.cycles)),
        ("violations", Json::UInt(r.violations())),
        ("unsafe_issues", Json::UInt(r.sni.unsafe_issues)),
        ("tainted_transmits", Json::UInt(r.sni.tainted_transmits)),
        ("secret_spec_loads", Json::UInt(r.sni.secret_spec_loads)),
        (
            "committed_secret_roots",
            Json::UInt(r.sni.committed_secret_roots),
        ),
        ("shadow_checked", Json::UInt(r.sni.shadow_checked)),
        ("shadow_mismatches", Json::UInt(r.sni.shadow_mismatches)),
        ("taint_roots_overflow", Json::UInt(r.taint_roots_overflow)),
    ];
    match &r.degraded {
        Some(reason) => pairs.push(("degraded", Json::str(reason.clone()))),
        None => pairs.push(("degraded", Json::Null)),
    }
    Json::obj(pairs)
}

fn fault_json(r: &SniReport, seed: u64) -> Json {
    let f = r.faults.expect("fault section always has a plan");
    Json::obj(vec![
        ("workload", Json::str(r.workload)),
        ("seed", Json::UInt(seed)),
        ("decisions_seen", Json::UInt(f.decisions_seen)),
        (
            "blocks_flipped_to_allow",
            Json::UInt(f.blocks_flipped_to_allow),
        ),
        (
            "allows_flipped_to_block",
            Json::UInt(f.allows_flipped_to_block),
        ),
        (
            "dsv_responses_corrupted",
            Json::UInt(f.dsv_responses_corrupted),
        ),
        ("metadata_evictions", Json::UInt(f.metadata_evictions)),
        ("injected_violations", Json::UInt(f.injected_violations)),
        ("detected_unsafe_issues", Json::UInt(r.sni.unsafe_issues)),
        (
            "detected_all",
            Json::Bool(r.sni.unsafe_issues == f.injected_violations),
        ),
        (
            "degraded",
            match &r.degraded {
                Some(reason) => Json::str(reason.clone()),
                None => Json::Null,
            },
        ),
    ])
}

fn main() {
    let image = kernel_image();
    let suite = lebench::suite();
    let pcfg = PerspectiveConfig::default();

    // Section 1: clean runs, UNSAFE vs full-enforcement Perspective.
    let clean_jobs: Vec<(usize, Scheme)> = (0..suite.len())
        .flat_map(|w| [(w, Scheme::Unsafe), (w, Scheme::Perspective)])
        .collect();
    let clean: Vec<SniReport> = runner::run_parallel(clean_jobs, |(w, scheme)| {
        run_sni_workload(scheme, &image, &suite[w], pcfg, None, DEFAULT_SHADOW_BUDGET)
    });

    // Section 3 (computed before output): deterministic fault injection
    // against full-enforcement Perspective.
    let fault_jobs: Vec<(usize, u64)> = FAULT_WORKLOADS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let w = suite
                .iter()
                .position(|x| x.name == *name)
                .expect("fault workload exists in the suite");
            (w, FAULT_SEED_BASE + i as u64)
        })
        .collect();
    let faulted: Vec<(SniReport, u64)> = runner::run_parallel(fault_jobs, |(w, seed)| {
        (
            run_sni_workload(
                Scheme::Perspective,
                &image,
                &suite[w],
                pcfg,
                Some(FaultPlan::canned(seed)),
                DEFAULT_SHADOW_BUDGET,
            ),
            seed,
        )
    });

    // Section 2: the active-attack scenario (serial; builds its own labs).
    let attack_unsafe = run_active_attack_sni(
        Scheme::Unsafe,
        kernel_config(),
        0x2A,
        pcfg,
        pcfg,
        DEFAULT_SHADOW_BUDGET,
    );
    let attack_persp = run_active_attack_sni(
        Scheme::Perspective,
        kernel_config(),
        0x2A,
        pcfg,
        pcfg,
        DEFAULT_SHADOW_BUDGET,
    );

    // Verdicts.
    let persp_clean: Vec<&SniReport> = clean
        .iter()
        .filter(|r| r.scheme == Scheme::Perspective)
        .collect();
    let unsafe_clean: Vec<&SniReport> = clean
        .iter()
        .filter(|r| r.scheme == Scheme::Unsafe)
        .collect();
    let clean_violations: u64 = persp_clean.iter().map(|r| r.violations()).sum();
    let clean_ok = clean_violations == 0 && persp_clean.iter().all(|r| r.degraded.is_none());
    let baseline_flagged = unsafe_clean
        .iter()
        .filter(|r| r.sni.unsafe_issues > 0)
        .count();
    let baseline_ok = baseline_flagged > 0;
    let injected_total: u64 = faulted
        .iter()
        .filter_map(|(r, _)| r.faults)
        .map(|f| f.injected_violations)
        .sum();
    let detected_total: u64 = faulted.iter().map(|(r, _)| r.sni.unsafe_issues).sum();
    let faults_ok = injected_total > 0
        && faulted.iter().all(|(r, _)| {
            r.faults
                .is_some_and(|f| r.sni.unsafe_issues == f.injected_violations)
        });
    let attack_ok = match (&attack_unsafe, &attack_persp) {
        (Ok(u), Ok(p)) => {
            u.sni.tainted_transmits > 0 && u.sni.secret_spec_loads > 0 && p.sni.violations() == 0
        }
        _ => false,
    };
    let pass = clean_ok && baseline_ok && faults_ok && attack_ok;

    if report::json_mode() {
        let attack_row =
            |label: &str, res: &Result<persp_attacks::active::SniAttackReport, String>| match res {
                Ok(r) => Json::obj(vec![
                    ("scheme", Json::str(label)),
                    ("leaked", Json::Bool(r.attack.hot_lines.contains(&0x2A))),
                    ("secret_spec_loads", Json::UInt(r.sni.secret_spec_loads)),
                    ("tainted_transmits", Json::UInt(r.sni.tainted_transmits)),
                    ("unsafe_issues", Json::UInt(r.sni.unsafe_issues)),
                    ("shadow_mismatches", Json::UInt(r.sni.shadow_mismatches)),
                    ("degraded", Json::Null),
                ]),
                Err(e) => Json::obj(vec![
                    ("scheme", Json::str(label)),
                    ("degraded", Json::str(e.clone())),
                ]),
            };
        let doc = report::experiment_json(
            "sni_check",
            vec![
                ("shadow_budget", Json::UInt(DEFAULT_SHADOW_BUDGET)),
                ("clean", Json::Array(clean.iter().map(clean_json).collect())),
                (
                    "attack",
                    Json::Array(vec![
                        attack_row("UNSAFE", &attack_unsafe),
                        attack_row("PERSPECTIVE", &attack_persp),
                    ]),
                ),
                (
                    "faults",
                    Json::Array(faulted.iter().map(|(r, s)| fault_json(r, *s)).collect()),
                ),
                (
                    "summary",
                    Json::obj(vec![
                        ("clean_perspective_violations", Json::UInt(clean_violations)),
                        ("baseline_flagged_runs", Json::UInt(baseline_flagged as u64)),
                        ("injected_total", Json::UInt(injected_total)),
                        ("detected_total", Json::UInt(detected_total)),
                        ("pass", Json::Bool(pass)),
                    ]),
                ),
            ],
        );
        report::emit(&doc);
    } else {
        header(
            "SNI check: shadow oracle, leakage monitor, fault injection",
            "the paper's security claims (§8), verified dynamically",
        );
        println!(
            "{:<16} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "workload", "scheme", "violations", "secrets", "transmits", "shadow"
        );
        println!("{}", "-".repeat(74));
        for r in &clean {
            println!(
                "{:<16} {:>12} {:>10} {:>10} {:>10} {:>10}{}",
                r.workload,
                r.scheme.name(),
                r.violations(),
                r.sni.secret_spec_loads,
                r.sni.tainted_transmits,
                r.sni.shadow_checked,
                r.degraded
                    .as_deref()
                    .map(|d| format!("  DEGRADED: {d}"))
                    .unwrap_or_default(),
            );
        }
        println!();
        for (label, res) in [("UNSAFE", &attack_unsafe), ("PERSPECTIVE", &attack_persp)] {
            match res {
                Ok(r) => println!(
                    "attack under {label:<12}: secrets={} transmits={} unsafe={} leaked={}",
                    r.sni.secret_spec_loads,
                    r.sni.tainted_transmits,
                    r.sni.unsafe_issues,
                    r.attack.hot_lines.contains(&0x2A),
                ),
                Err(e) => println!("attack under {label:<12}: DEGRADED: {e}"),
            }
        }
        println!();
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10}",
            "fault workload", "decisions", "injected", "detected", "evictions"
        );
        println!("{}", "-".repeat(62));
        for (r, _) in &faulted {
            let f = r.faults.expect("plan active");
            println!(
                "{:<16} {:>10} {:>10} {:>10} {:>10}{}",
                r.workload,
                f.decisions_seen,
                f.injected_violations,
                r.sni.unsafe_issues,
                f.metadata_evictions,
                r.degraded
                    .as_deref()
                    .map(|d| format!("  DEGRADED: {d}"))
                    .unwrap_or_default(),
            );
        }
        println!();
        println!(
            "clean Perspective violations: {clean_violations} (want 0) — {}",
            if clean_ok { "ok" } else { "FAIL" }
        );
        println!(
            "UNSAFE workload runs flagged: {baseline_flagged}/{} (want >0) — {}",
            unsafe_clean.len(),
            if baseline_ok { "ok" } else { "FAIL" }
        );
        println!(
            "injected faults detected: {detected_total}/{injected_total} — {}",
            if faults_ok { "ok" } else { "FAIL" }
        );
        println!("attack scenario: {}", if attack_ok { "ok" } else { "FAIL" });
        println!("verdict: {}", if pass { "PASS" } else { "FAIL" });
    }

    if !pass {
        std::process::exit(1);
    }
}
