//! Experiment E4 — Table 8.2: Perspective's MDS / Port / Cache gadget
//! reduction under ISV-S, ISV, and ISV++.
//!
//! The kernel hosts 1533 planted gadgets with Kasper's category split
//! (805 MDS / 509 Port / 219 Cache). A gadget is *blocked* when its host
//! function is outside the view (its transmitters cannot execute
//! speculatively).

use persp_bench::report::{self, Json};
use persp_bench::{header, isv_trio, kernel_image, lebench_union_workload, pct};
use persp_kernel::callgraph::GadgetKind;
use persp_workloads::{apps, runner};
use perspective::isv::Isv;

fn blocked_by_kind(graph: &persp_kernel::callgraph::CallGraph, isv: &Isv) -> (f64, f64, f64) {
    let mut total = [0usize; 3];
    let mut inside = [0usize; 3];
    for (host, site) in &graph.gadgets {
        let k = match site.kind {
            GadgetKind::Mds => 0,
            GadgetKind::Port => 1,
            GadgetKind::Cache => 2,
        };
        total[k] += 1;
        if isv.contains_func(*host) {
            inside[k] += 1;
        }
    }
    let f = |k: usize| 1.0 - inside[k] as f64 / total[k].max(1) as f64;
    (f(0), f(1), f(2))
}

fn main() {
    let image = kernel_image();
    let mut workloads = vec![lebench_union_workload()];
    workloads.extend(apps::apps().into_iter().map(|a| a.workload));

    let rows = runner::run_parallel(workloads.clone(), |w| {
        let profile = w.syscall_profile();
        let (isv_s, isv_d, isv_pp, _inst) = isv_trio(&image, &w, &profile);
        let g = &image.graph;
        (
            blocked_by_kind(g, &isv_s),
            blocked_by_kind(g, &isv_d),
            blocked_by_kind(g, &isv_pp),
        )
    });

    if report::json_mode() {
        let kind_obj = |t: &(f64, f64, f64)| {
            Json::obj(vec![
                ("mds", Json::str(pct(t.0))),
                ("port", Json::str(pct(t.1))),
                ("cache", Json::str(pct(t.2))),
            ])
        };
        let json_rows = workloads
            .iter()
            .zip(&rows)
            .map(|(w, (s, d, p))| {
                Json::obj(vec![
                    ("workload", Json::str(w.name)),
                    ("isv_static", kind_obj(s)),
                    ("isv_dynamic", kind_obj(d)),
                    ("isv_plus_plus", kind_obj(p)),
                ])
            })
            .collect();
        let doc = report::experiment_json("table_8_2", vec![("rows", Json::Array(json_rows))]);
        report::emit(&doc);
        return;
    }

    header(
        "Table 8.2: Perspective's MDS/Port/Cache gadget reduction",
        "paper §8.2, Table 8.2",
    );
    println!(
        "{:<10} | {:^23} | {:^23} | {:^23}",
        "Benchmark", "ISV-S (MDS/Port/Cache)", "ISV (MDS/Port/Cache)", "ISV++ (MDS/Port/Cache)"
    );
    println!("{}", "-".repeat(92));
    for (w, (s, d, p)) in workloads.iter().zip(rows) {
        println!(
            "{:<10} | {:>6} {:>6} {:>6}  | {:>6} {:>6} {:>6}  | {:>6} {:>6} {:>6}",
            w.name,
            pct(s.0),
            pct(s.1),
            pct(s.2),
            pct(d.0),
            pct(d.1),
            pct(d.2),
            pct(p.0),
            pct(p.1),
            pct(p.2),
        );
    }
    println!();
    println!("paper: ISV-S 78-87%, ISV 91-93%, ISV++ 100% / 100% / 100% across all workloads");
}
