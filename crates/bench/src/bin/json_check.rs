//! CI helper: validates that stdin is a JSON document our `report`
//! reader accepts (`ci.sh` pipes each experiment's `--json` output
//! through this before diffing it against the checked-in baseline).

use persp_bench::report::Json;
use std::io::Read;

fn main() {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("json_check: failed to read stdin: {e}");
        std::process::exit(1);
    }
    match Json::parse(text.trim()) {
        Ok(doc) => {
            let name = doc
                .get("experiment")
                .and_then(Json::as_str)
                .unwrap_or("unnamed");
            eprintln!("json_check: ok ({name})");
        }
        Err(e) => {
            eprintln!("json_check: invalid JSON: {e}");
            std::process::exit(1);
        }
    }
}
