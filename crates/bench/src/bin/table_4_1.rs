//! Experiment E1 — Table 4.1: the study of transient execution
//! vulnerabilities targeting the Linux kernel.

use persp_bench::header;
use persp_workloads::cve_study::table_4_1;

fn main() {
    header(
        "Table 4.1: Speculative-execution vulnerabilities targeting the Linux kernel",
        "paper §4.2, Table 4.1",
    );
    println!(
        "{:>3} | {:<28} | {:<10} | {:<46} | {:<26} | Origin",
        "#", "Attack primitive", "Mitigation", "CVEs and papers", "Description"
    );
    println!("{}", "-".repeat(150));
    for row in table_4_1() {
        let mut primitive = row.primitive.label().to_string();
        primitive.truncate(28);
        println!(
            "{:>3} | {:<28} | {:<10} | {:<46} | {:<26} | {}",
            row.row,
            primitive,
            row.gap.label(),
            row.references.join(", "),
            row.description,
            row.origin,
        );
    }
    println!();
    println!("Taxonomy mapping: data-access primitives enable ACTIVE attacks (mitigated by DSVs);");
    println!("control-flow-hijack primitives enable PASSIVE attacks (mitigated by ISVs) — §4.1.");
}
