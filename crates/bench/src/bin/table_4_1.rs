//! Experiment E1 — Table 4.1: the study of transient execution
//! vulnerabilities targeting the Linux kernel.

use persp_bench::header;
use persp_bench::report::{self, Json};
use persp_workloads::cve_study::table_4_1;

fn main() {
    if report::json_mode() {
        let rows = table_4_1()
            .iter()
            .map(|row| {
                Json::obj(vec![
                    ("row", Json::UInt(row.row as u64)),
                    ("primitive", Json::str(row.primitive.label())),
                    ("mitigation", Json::str(row.gap.label())),
                    (
                        "references",
                        Json::Array(row.references.iter().map(|r| Json::str(*r)).collect()),
                    ),
                    ("description", Json::str(row.description)),
                    ("origin", Json::str(row.origin)),
                ])
            })
            .collect();
        let doc = report::experiment_json("table_4_1", vec![("rows", Json::Array(rows))]);
        report::emit(&doc);
        return;
    }
    header(
        "Table 4.1: Speculative-execution vulnerabilities targeting the Linux kernel",
        "paper §4.2, Table 4.1",
    );
    println!(
        "{:>3} | {:<28} | {:<10} | {:<46} | {:<26} | Origin",
        "#", "Attack primitive", "Mitigation", "CVEs and papers", "Description"
    );
    println!("{}", "-".repeat(150));
    for row in table_4_1() {
        let mut primitive = row.primitive.label().to_string();
        primitive.truncate(28);
        println!(
            "{:>3} | {:<28} | {:<10} | {:<46} | {:<26} | {}",
            row.row,
            primitive,
            row.gap.label(),
            row.references.join(", "),
            row.description,
            row.origin,
        );
    }
    println!();
    println!("Taxonomy mapping: data-access primitives enable ACTIVE attacks (mitigated by DSVs);");
    println!("control-flow-hijack primitives enable PASSIVE attacks (mitigated by ISVs) — §4.1.");
}
