//! Runs every experiment binary — the one-command regeneration of all
//! the paper's tables and figures.
//!
//! Each experiment is also available as its own binary (`table_8_1`,
//! `fig_9_2`, ...); see DESIGN.md §4 for the index. Set
//! `PERSPECTIVE_KERNEL=small` for a quick smoke run.
//!
//! Children run concurrently with captured stdout, and every transcript
//! is printed in the fixed experiment order once its run completes — the
//! combined output is byte-identical whatever `PERSPECTIVE_THREADS` says
//! (each child also runs its own cells on the parallel matrix, so the
//! worker budget is split between the two levels). Anything a child
//! wrote to stderr is forwarded to our stderr right after its
//! transcript. If any child fails, its stderr tail is reported and the
//! run exits nonzero after all transcripts have been printed.
//!
//! `--json` is forwarded to every child; the children's documents are
//! parsed (a child emitting unparseable output is a failure) and
//! aggregated into one combined document on stdout.

use persp_bench::report::{self, Json};
use persp_workloads::runner;
use std::process::Command;

const EXPERIMENTS: [&str; 14] = [
    "table_4_1",
    "table_7_1",
    "table_8_1",
    "table_8_2",
    "security_poc",
    "fig_9_1",
    "fig_9_2",
    "fig_9_3",
    "table_9_1",
    "table_10_1",
    "sensitivity",
    "ablation",
    "per_syscall_views",
    "cache_sweep",
];

/// One child run: success flag, captured stdout, captured stderr.
struct ChildRun {
    ok: bool,
    stdout: Vec<u8>,
    stderr: String,
}

/// The last `n` lines of a child's stderr (the part worth echoing into
/// a failure report).
fn tail(stderr: &str, n: usize) -> String {
    let lines: Vec<&str> = stderr.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

fn main() {
    let json = report::json_mode();
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("run_all: cannot locate own executable (needed to find sibling experiment binaries): {e}");
            std::process::exit(1);
        }
    };
    let Some(dir) = exe.parent().map(|p| p.to_path_buf()) else {
        eprintln!("run_all: executable path {exe:?} has no parent directory");
        std::process::exit(1);
    };
    let started = std::time::Instant::now();
    // Split the worker budget: up to four children at a time, each given
    // an equal share of the configured thread count for its own matrix.
    let total = runner::num_threads();
    let outer = total.clamp(1, 4);
    let inner = (total / outer).max(1);
    let runs = runner::run_parallel_with(outer, EXPERIMENTS.to_vec(), |bin| {
        let mut cmd = Command::new(dir.join(bin));
        cmd.env("PERSPECTIVE_THREADS", inner.to_string());
        if json {
            cmd.arg("--json");
        }
        match cmd.output() {
            Ok(out) => ChildRun {
                ok: out.status.success(),
                stdout: out.stdout,
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            },
            Err(e) => ChildRun {
                ok: false,
                stdout: Vec::new(),
                stderr: format!("failed to spawn {bin}: {e}"),
            },
        }
    });

    let mut failures: Vec<(&str, String)> = Vec::new();

    if json {
        let mut children = Vec::new();
        for (bin, run) in EXPERIMENTS.iter().zip(&runs) {
            if !run.ok {
                failures.push((bin, tail(&run.stderr, 20)));
                continue;
            }
            let text = String::from_utf8_lossy(&run.stdout);
            match Json::parse(text.trim()) {
                Ok(doc) => children.push((bin.to_string(), doc)),
                Err(e) => failures.push((bin, format!("unparseable JSON output: {e}"))),
            }
        }
        if failures.is_empty() {
            let doc =
                report::experiment_json("run_all", vec![("experiments", Json::Object(children))]);
            report::emit(&doc);
        }
    } else {
        for (bin, run) in EXPERIMENTS.iter().zip(&runs) {
            println!("\n################ {bin} ################");
            print!("{}", String::from_utf8_lossy(&run.stdout));
            if !run.stderr.is_empty() {
                eprintln!("---- {bin} stderr ----");
                eprintln!("{}", run.stderr.trim_end());
            }
            if !run.ok {
                failures.push((bin, tail(&run.stderr, 20)));
            }
        }
        if failures.is_empty() {
            // Transcript-only timing note — never in --json, whose
            // documents must stay byte-identical run to run.
            let ff = std::env::var("PERSPECTIVE_NO_FASTFWD").map_or(true, |v| v.trim() != "1");
            println!(
                "\nAll experiments completed in {:.1} s wall-clock \
                 (idle-cycle fast-forward: {}).",
                started.elapsed().as_secs_f64(),
                if ff {
                    "on; PERSPECTIVE_NO_FASTFWD=1 selects the cycle-by-cycle slow path"
                } else {
                    "off"
                }
            );
        }
    }

    if !failures.is_empty() {
        for (bin, stderr_tail) in &failures {
            eprintln!("error: {bin} failed; stderr tail:");
            for line in stderr_tail.lines() {
                eprintln!("    {line}");
            }
        }
        eprintln!(
            "error: {}/{} experiments failed",
            failures.len(),
            EXPERIMENTS.len()
        );
        std::process::exit(1);
    }
}
