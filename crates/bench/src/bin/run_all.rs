//! Runs every experiment binary's logic in sequence — the one-command
//! regeneration of all the paper's tables and figures.
//!
//! Each experiment is also available as its own binary (`table_8_1`,
//! `fig_9_2`, ...); see DESIGN.md §4 for the index. Set
//! `PERSPECTIVE_KERNEL=small` for a quick smoke run.

use std::process::Command;

fn run(bin: &str, args: &[&str]) {
    println!(
        "\n################ {bin} {} ################",
        args.join(" ")
    );
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    let status = Command::new(dir.join(bin))
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(status.success(), "{bin} failed");
}

fn main() {
    for bin in [
        "table_4_1",
        "table_7_1",
        "table_8_1",
        "table_8_2",
        "security_poc",
        "fig_9_1",
        "fig_9_2",
        "fig_9_3",
        "table_9_1",
        "table_10_1",
        "sensitivity",
        "ablation",
        "per_syscall_views",
        "cache_sweep",
    ] {
        run(bin, &[]);
    }
    println!("\nAll experiments completed.");
}
