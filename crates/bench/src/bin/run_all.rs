//! Runs every experiment binary — the one-command regeneration of all
//! the paper's tables and figures.
//!
//! Each experiment is also available as its own binary (`table_8_1`,
//! `fig_9_2`, ...); see DESIGN.md §4 for the index. Set
//! `PERSPECTIVE_KERNEL=small` for a quick smoke run, and
//! `--only <bin,...>` to re-run a subset without editing anything.
//!
//! Children run concurrently with captured stdout, and every transcript
//! is printed in the fixed experiment order once its run completes — the
//! combined output is byte-identical whatever `PERSPECTIVE_THREADS` says
//! (each child also runs its own cells on the parallel matrix, so the
//! worker budget is split between the two levels). Anything a child
//! wrote to stderr is forwarded to our stderr right after its
//! transcript. If any child fails, its stderr tail is reported and the
//! run exits nonzero after all transcripts have been printed.
//!
//! `--json` is forwarded to every child; the children's documents are
//! parsed (a child emitting unparseable output is a failure) and
//! aggregated into one combined document on stdout.
//!
//! When the cell cache is active (`PERSPECTIVE_CACHE=on|verify`), each
//! child reports its hit/miss counters through a private stats file and
//! a per-experiment summary table — wall clock plus cache counters — is
//! printed at the end of the run (to stderr under `--json`, so the
//! document stays byte-identical with and without a warm cache; the
//! same rule as wall clock).

use persp_bench::report::{self, Json};
use persp_workloads::runner;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: [&str; 14] = [
    "table_4_1",
    "table_7_1",
    "table_8_1",
    "table_8_2",
    "security_poc",
    "fig_9_1",
    "fig_9_2",
    "fig_9_3",
    "table_9_1",
    "table_10_1",
    "sensitivity",
    "ablation",
    "per_syscall_views",
    "cache_sweep",
];

/// One child run: success flag, captured output, wall clock, and the
/// cache counters the child published (when the cache was active).
struct ChildRun {
    ok: bool,
    stdout: Vec<u8>,
    stderr: String,
    wall_secs: f64,
    cache: Option<(u64, u64)>,
}

/// The last `n` lines of a child's stderr (the part worth echoing into
/// a failure report).
fn tail(stderr: &str, n: usize) -> String {
    let lines: Vec<&str> = stderr.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

/// Parse `--only a,b,c` / `--only=a,b,c` into a validated subset of
/// [`EXPERIMENTS`] (original order preserved). `None` when the flag is
/// absent; `Err` names the unknown binary and the valid choices.
fn parse_only(args: &[String]) -> Result<Option<Vec<&'static str>>, String> {
    let mut list: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--only=") {
            list = Some(v.to_string());
        } else if args[i] == "--only" {
            let v = args
                .get(i + 1)
                .ok_or("--only requires a comma-separated list of experiment binaries")?;
            list = Some(v.clone());
            i += 1;
        }
        i += 1;
    }
    let Some(list) = list else { return Ok(None) };
    let mut wanted = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match EXPERIMENTS.iter().find(|&&e| e == name) {
            Some(&e) => {
                if !wanted.contains(&e) {
                    wanted.push(e);
                }
            }
            None => {
                return Err(format!(
                    "unknown experiment {name:?}; valid: {}",
                    EXPERIMENTS.join(", ")
                ))
            }
        }
    }
    if wanted.is_empty() {
        return Err("--only selected no experiments".into());
    }
    // Keep the canonical transcript order regardless of how the user
    // ordered the list.
    let ordered: Vec<&'static str> = EXPERIMENTS
        .iter()
        .copied()
        .filter(|e| wanted.contains(e))
        .collect();
    Ok(Some(ordered))
}

/// Read `hits=H misses=M ...` from a child's stats file, if it wrote one.
fn read_cache_stats(path: &PathBuf) -> Option<(u64, u64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let field = |name: &str| -> Option<u64> {
        text.split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
    };
    Some((field("hits")?, field("misses")?))
}

/// Is the cell cache active in this environment?
fn cache_active() -> bool {
    matches!(
        std::env::var("PERSPECTIVE_CACHE").as_deref().map(str::trim),
        Ok("1") | Ok("on") | Ok("verify")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = report::json_mode();
    let selected: Vec<&'static str> = match parse_only(&args) {
        Ok(Some(subset)) => subset,
        Ok(None) => EXPERIMENTS.to_vec(),
        Err(e) => {
            eprintln!("run_all: {e}");
            std::process::exit(1);
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("run_all: cannot locate own executable (needed to find sibling experiment binaries): {e}");
            std::process::exit(1);
        }
    };
    let Some(dir) = exe.parent().map(|p| p.to_path_buf()) else {
        eprintln!("run_all: executable path {exe:?} has no parent directory");
        std::process::exit(1);
    };
    let started = std::time::Instant::now();
    let stats_dir = std::env::temp_dir();
    let pid = std::process::id();
    // Split the worker budget: up to four children at a time, each given
    // an equal share of the configured thread count for its own matrix.
    let total = runner::num_threads();
    let outer = total.clamp(1, 4);
    let inner = (total / outer).max(1);
    let runs = runner::run_parallel_with(outer, selected.clone(), |bin| {
        let stats_file = stats_dir.join(format!("persp-cache-stats-{pid}-{bin}.txt"));
        let _ = std::fs::remove_file(&stats_file);
        let mut cmd = Command::new(dir.join(bin));
        cmd.env("PERSPECTIVE_THREADS", inner.to_string());
        cmd.env("PERSPECTIVE_CACHE_STATS_FILE", &stats_file);
        if json {
            cmd.arg("--json");
        }
        let t0 = Instant::now();
        let out = cmd.output();
        let wall_secs = t0.elapsed().as_secs_f64();
        let cache = read_cache_stats(&stats_file);
        let _ = std::fs::remove_file(&stats_file);
        match out {
            Ok(out) => ChildRun {
                ok: out.status.success(),
                stdout: out.stdout,
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
                wall_secs,
                cache,
            },
            Err(e) => ChildRun {
                ok: false,
                stdout: Vec::new(),
                stderr: format!("failed to spawn {bin}: {e}"),
                wall_secs,
                cache,
            },
        }
    });

    let mut failures: Vec<(&str, String)> = Vec::new();

    if json {
        let mut children = Vec::new();
        for (bin, run) in selected.iter().zip(&runs) {
            if !run.ok {
                failures.push((bin, tail(&run.stderr, 20)));
                continue;
            }
            let text = String::from_utf8_lossy(&run.stdout);
            match Json::parse(text.trim()) {
                Ok(doc) => children.push((bin.to_string(), doc)),
                Err(e) => failures.push((bin, format!("unparseable JSON output: {e}"))),
            }
        }
        if failures.is_empty() {
            let doc =
                report::experiment_json("run_all", vec![("experiments", Json::Object(children))]);
            report::emit(&doc);
        }
    } else {
        for (bin, run) in selected.iter().zip(&runs) {
            println!("\n################ {bin} ################");
            print!("{}", String::from_utf8_lossy(&run.stdout));
            if !run.stderr.is_empty() {
                eprintln!("---- {bin} stderr ----");
                eprintln!("{}", run.stderr.trim_end());
            }
            if !run.ok {
                failures.push((bin, tail(&run.stderr, 20)));
            }
        }
        if failures.is_empty() {
            // Transcript-only timing note — never in --json, whose
            // documents must stay byte-identical run to run.
            let ff = std::env::var("PERSPECTIVE_NO_FASTFWD").map_or(true, |v| v.trim() != "1");
            println!(
                "\nAll experiments completed in {:.1} s wall-clock \
                 (idle-cycle fast-forward: {}).",
                started.elapsed().as_secs_f64(),
                if ff {
                    "on; PERSPECTIVE_NO_FASTFWD=1 selects the cycle-by-cycle slow path"
                } else {
                    "off"
                }
            );
        }
    }

    // Per-experiment wall clock + cache summary. Observability only:
    // stderr under --json (the document must not change between cold and
    // warm runs), stdout after the timing note otherwise.
    let summary = {
        let mut t = String::new();
        t.push_str(&format!(
            "{:<20} {:>9} {:>12} {:>12}\n",
            "experiment", "wall(s)", "cache-hits", "cache-misses"
        ));
        let (mut th, mut tm) = (0u64, 0u64);
        for (bin, run) in selected.iter().zip(&runs) {
            let (h, m) = match run.cache {
                Some((h, m)) => {
                    th += h;
                    tm += m;
                    (h.to_string(), m.to_string())
                }
                None => ("-".into(), "-".into()),
            };
            t.push_str(&format!(
                "{:<20} {:>9.1} {:>12} {:>12}\n",
                bin, run.wall_secs, h, m
            ));
        }
        t.push_str(&format!(
            "{:<20} {:>9.1} {:>12} {:>12}\n",
            "total",
            started.elapsed().as_secs_f64(),
            if cache_active() {
                th.to_string()
            } else {
                "-".into()
            },
            if cache_active() {
                tm.to_string()
            } else {
                "-".into()
            },
        ));
        t
    };
    if json {
        eprint!("{summary}");
    } else {
        println!();
        print!("{summary}");
    }

    if !failures.is_empty() {
        for (bin, stderr_tail) in &failures {
            eprintln!("error: {bin} failed; stderr tail:");
            for line in stderr_tail.lines() {
                eprintln!("    {line}");
            }
        }
        eprintln!(
            "error: {}/{} experiments failed",
            failures.len(),
            selected.len()
        );
        std::process::exit(1);
    }
}
