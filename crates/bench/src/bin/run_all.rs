//! Runs every experiment binary — the one-command regeneration of all
//! the paper's tables and figures.
//!
//! Each experiment is also available as its own binary (`table_8_1`,
//! `fig_9_2`, ...); see DESIGN.md §4 for the index. Set
//! `PERSPECTIVE_KERNEL=small` for a quick smoke run.
//!
//! Children run concurrently with captured stdout, and every transcript
//! is printed in the fixed experiment order once its run completes — the
//! combined output is byte-identical whatever `PERSPECTIVE_THREADS` says
//! (each child also runs its own cells on the parallel matrix, so the
//! worker budget is split between the two levels).

use persp_workloads::runner;
use std::process::Command;

const EXPERIMENTS: [&str; 14] = [
    "table_4_1",
    "table_7_1",
    "table_8_1",
    "table_8_2",
    "security_poc",
    "fig_9_1",
    "fig_9_2",
    "fig_9_3",
    "table_9_1",
    "table_10_1",
    "sensitivity",
    "ablation",
    "per_syscall_views",
    "cache_sweep",
];

fn main() {
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir").to_path_buf();
    // Split the worker budget: up to four children at a time, each given
    // an equal share of the configured thread count for its own matrix.
    let total = runner::num_threads();
    let outer = total.clamp(1, 4);
    let inner = (total / outer).max(1);
    let transcripts = runner::run_parallel_with(outer, EXPERIMENTS.to_vec(), |bin| {
        let out = Command::new(dir.join(bin))
            .env("PERSPECTIVE_THREADS", inner.to_string())
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    });
    for (bin, stdout) in EXPERIMENTS.iter().zip(transcripts) {
        println!("\n################ {bin} ################");
        print!("{}", String::from_utf8_lossy(&stdout));
    }
    println!("\nAll experiments completed.");
}
