//! Experiment E3 — Table 8.1: attack surface reduction with Perspective.
//!
//! The surface is the number of kernel functions an execution context can
//! speculatively execute. Static ISVs (ISV-S) come from the workloads'
//! declared syscall profiles; dynamic ISVs (ISV) come from real execution
//! traces on the simulator.

use persp_bench::report::{self, Json};
use persp_bench::{header, isv_trio, kernel_image, lebench_union_workload, pct};
use persp_workloads::{apps, runner};

fn main() {
    let image = kernel_image();
    let mut workloads = vec![lebench_union_workload()];
    workloads.extend(apps::apps().into_iter().map(|a| a.workload));

    // One worker per workload; each derives its views against the shared
    // image and returns the row's numbers (instances stay thread-local).
    let rows = runner::run_parallel(workloads.clone(), |w| {
        let profile = w.syscall_profile();
        let (isv_s, isv_d, _pp, _inst) = isv_trio(&image, &w, &profile);
        (
            isv_s.surface_reduction(&image.graph),
            isv_d.surface_reduction(&image.graph),
            isv_s.num_funcs(),
            isv_d.num_funcs(),
        )
    });

    if report::json_mode() {
        let json_rows = workloads
            .iter()
            .zip(&rows)
            .map(|(w, (rs, rd, n_s, n_d))| {
                Json::obj(vec![
                    ("workload", Json::str(w.name)),
                    ("static_reduction", Json::str(pct(*rs))),
                    ("dynamic_reduction", Json::str(pct(*rd))),
                    ("static_funcs", Json::UInt(*n_s as u64)),
                    ("dynamic_funcs", Json::UInt(*n_d as u64)),
                ])
            })
            .collect();
        let doc = report::experiment_json("table_8_1", vec![("rows", Json::Array(json_rows))]);
        report::emit(&doc);
        return;
    }

    header(
        "Table 8.1: Attack surface reduction with Perspective",
        "paper §8.2, Table 8.1",
    );
    println!(
        "{:<10} | {:>9} | {:>9} | {:>12} | {:>12}",
        "Workload", "ISV-S", "ISV", "|ISV-S|", "|ISV|"
    );
    println!("{}", "-".repeat(64));
    let mut sums = (0.0, 0.0);
    for (w, (rs, rd, n_s, n_d)) in workloads.iter().zip(rows) {
        sums.0 += rs;
        sums.1 += rd;
        println!(
            "{:<10} | {:>9} | {:>9} | {:>12} | {:>12}",
            w.name,
            pct(rs),
            pct(rd),
            format!("{n_s} funcs"),
            format!("{n_d} funcs"),
        );
    }
    let n = workloads.len() as f64;
    println!("{}", "-".repeat(64));
    println!(
        "{:<10} | {:>9} | {:>9} |",
        "average",
        pct(sums.0 / n),
        pct(sums.1 / n)
    );
    println!();
    println!("paper: ISV-S 90-92% reduction, ISV 94-96% reduction (avg 95.1%)");
}
