//! Experiment E3 — Table 8.1: attack surface reduction with Perspective.
//!
//! The surface is the number of kernel functions an execution context can
//! speculatively execute. Static ISVs (ISV-S) come from the workloads'
//! declared syscall profiles; dynamic ISVs (ISV) come from real execution
//! traces on the simulator.

use persp_bench::{header, isv_trio, kernel_config, lebench_union_workload, pct};
use persp_workloads::apps;

fn main() {
    let kcfg = kernel_config();
    header(
        "Table 8.1: Attack surface reduction with Perspective",
        "paper §8.2, Table 8.1",
    );

    let mut workloads = vec![lebench_union_workload()];
    workloads.extend(apps::apps().into_iter().map(|a| a.workload));

    println!(
        "{:<10} | {:>9} | {:>9} | {:>12} | {:>12}",
        "Workload", "ISV-S", "ISV", "|ISV-S|", "|ISV|"
    );
    println!("{}", "-".repeat(64));
    let mut sums = (0.0, 0.0);
    for w in &workloads {
        let profile = w.syscall_profile();
        let (isv_s, isv_d, _pp, inst) = isv_trio(kcfg, w, &profile);
        let kernel = inst.kernel.borrow();
        let rs = isv_s.surface_reduction(&kernel.graph);
        let rd = isv_d.surface_reduction(&kernel.graph);
        sums.0 += rs;
        sums.1 += rd;
        println!(
            "{:<10} | {:>9} | {:>9} | {:>12} | {:>12}",
            w.name,
            pct(rs),
            pct(rd),
            format!("{} funcs", isv_s.num_funcs()),
            format!("{} funcs", isv_d.num_funcs()),
        );
    }
    let n = workloads.len() as f64;
    println!("{}", "-".repeat(64));
    println!(
        "{:<10} | {:>9} | {:>9} |",
        "average",
        pct(sums.0 / n),
        pct(sums.1 / n)
    );
    println!();
    println!("paper: ISV-S 90-92% reduction, ISV 94-96% reduction (avg 95.1%)");
}
