//! Experiment E6/E12/E13 — Figure 9.2: LEBench latency normalized to the
//! UNSAFE baseline under each defense scheme.
//!
//! Default: the paper's five main schemes. `--all` adds the §9.1
//! comparison points (DOM, STT, KPTI+Retpoline, Retpoline-only).
//! `--json` emits the measurement rows and derived normalizations as a
//! single machine-readable document instead of the transcript.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_image, norm};
use persp_workloads::{lebench, runner};
use perspective::scheme::Scheme;

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let image = kernel_image();
    let schemes: Vec<Scheme> = if all {
        Scheme::ALL.to_vec()
    } else {
        Scheme::MAIN.to_vec()
    };
    let suite = lebench::suite();
    let matrix = runner::run_matrix(&image, &schemes, &suite);

    if report::json_mode() {
        let mut normalized = Vec::new();
        let mut sums = vec![0.0f64; schemes.len()];
        for (w, ms) in suite.iter().zip(matrix.chunks(schemes.len())) {
            for (i, m) in ms.iter().enumerate().skip(1) {
                let value = m.stats.cycles as f64 / ms[0].stats.cycles.max(1) as f64;
                sums[i] += value;
                normalized.push(Json::obj(vec![
                    ("workload", Json::str(w.name)),
                    ("scheme", Json::str(schemes[i].name())),
                    ("value", Json::str(norm(value))),
                ]));
            }
        }
        let avg = schemes
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, s)| {
                Json::obj(vec![
                    ("scheme", Json::str(s.name())),
                    ("value", Json::str(norm(sums[i] / suite.len() as f64))),
                ])
            })
            .collect();
        let doc = report::experiment_json(
            "fig_9_2",
            vec![
                (
                    "schemes",
                    Json::Array(schemes.iter().map(|s| Json::str(s.name())).collect()),
                ),
                ("rows", report::measurements_json(&matrix)),
                ("normalized", Json::Array(normalized)),
                ("avg", Json::Array(avg)),
            ],
        );
        report::emit(&doc);
        return;
    }

    header(
        "Figure 9.2: LEBench normalized latency (UNSAFE = 1.000)",
        "paper §9.1, Figure 9.2 (+ §9.1 hardware/software comparisons with --all)",
    );

    print!("{:<16}", "test");
    for s in &schemes[1..] {
        print!(" {:>18}", s.name());
    }
    println!();
    println!("{}", "-".repeat(16 + 19 * (schemes.len() - 1)));

    let mut sums = vec![0.0f64; schemes.len()];
    for (w, ms) in suite.iter().zip(matrix.chunks(schemes.len())) {
        print!("{:<16}", w.name);
        for (i, m) in ms.iter().enumerate().skip(1) {
            let normalized = m.stats.cycles as f64 / ms[0].stats.cycles.max(1) as f64;
            sums[i] += normalized;
            print!(" {:>18}", norm(normalized));
        }
        println!();
    }
    println!("{}", "-".repeat(16 + 19 * (schemes.len() - 1)));
    print!("{:<16}", "geomean-ish avg");
    for (i, _) in schemes.iter().enumerate().skip(1) {
        print!(" {:>18}", norm(sums[i] / suite.len() as f64));
    }
    println!();
    println!();
    println!("paper: FENCE avg 1.475 (select/poll up to 3.28),");
    println!("       PERSPECTIVE-STATIC 1.041, PERSPECTIVE 1.036, PERSPECTIVE++ 1.035;");
    println!("       §9.1 comparisons: DOM 1.231, STT 1.037, KPTI+Retpoline 1.145,");
    println!("       Retpoline-only 1.066.");
}
