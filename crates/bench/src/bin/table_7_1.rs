//! Experiment E2 — Table 7.1: full-system simulation parameters.

use persp_bench::header;
use persp_bench::report::{self, Json};
use persp_mem::hierarchy::HierarchyConfig;
use persp_uarch::config::CoreConfig;
use perspective::hwcache::HwCacheConfig;

fn main() {
    let core = CoreConfig::paper_default();
    let mem = HierarchyConfig::paper_default();
    let isv = HwCacheConfig::isv_paper();
    let dsv = HwCacheConfig::dsvmt_paper();

    let rows: Vec<(&str, String)> = vec![
        (
            "Architecture",
            format!("out-of-order µISA core at {:.1} GHz", core.freq_ghz),
        ),
        (
            "Core",
            format!(
                "{}-issue, out-of-order, {} Load Queue entries, {} Store Queue entries, \
                 {} ROB entries, TAGE-lite branch predictor, {} BTB entries, {} RAS entries",
                core.width,
                core.lq_entries,
                core.sq_entries,
                core.rob_entries,
                core.btb_entries,
                core.rsb_entries
            ),
        ),
        (
            "Private L1-I Cache",
            format!(
                "{} KB, {} B line, {}-way, {} cycle Round Trip (RT) latency",
                mem.l1i.size_bytes / 1024,
                mem.l1i.line_bytes,
                mem.l1i.ways,
                mem.l1i.rt_latency
            ),
        ),
        (
            "Private L1-D Cache",
            format!(
                "{} KB, {} B line, {}-way, {} cycle RT latency",
                mem.l1d.size_bytes / 1024,
                mem.l1d.line_bytes,
                mem.l1d.ways,
                mem.l1d.rt_latency
            ),
        ),
        (
            "Shared L2 Cache",
            format!(
                "Slice: {} MB, {} B line, {}-way, {} cycles RT latency",
                mem.l2.size_bytes / 1024 / 1024,
                mem.l2.line_bytes,
                mem.l2.ways,
                mem.l2.rt_latency
            ),
        ),
        (
            "DRAM",
            format!(
                "{} cycles RT latency after L2 ({} ns at {:.1} GHz)",
                mem.dram_latency,
                mem.dram_latency as f64 / core.freq_ghz,
                core.freq_ghz
            ),
        ),
        (
            "ISV Cache",
            format!(
                "{} entries, {} sets, {}-way",
                isv.entries,
                isv.entries / isv.ways,
                isv.ways
            ),
        ),
        (
            "DSV Cache",
            format!(
                "{} entries, {} sets, {}-way",
                dsv.entries,
                dsv.entries / dsv.ways,
                dsv.ways
            ),
        ),
        (
            "OS Kernel",
            "synthetic mini-OS, 28 000 functions (Linux v5.4-scale)".to_string(),
        ),
    ];
    if report::json_mode() {
        let params = rows
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::Str(v)))
            .collect();
        let doc = report::experiment_json("table_7_1", vec![("parameters", Json::Object(params))]);
        report::emit(&doc);
        return;
    }
    header(
        "Table 7.1: Full-System Simulation Parameters",
        "paper Chapter 7, Table 7.1",
    );
    for (k, v) in rows {
        println!("{k:<22} {v}");
    }
}
