//! Experiment E7 — Figure 9.3: datacenter application throughput
//! (requests per second) normalized to the UNSAFE baseline.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_image, norm};
use persp_uarch::config::CoreConfig;
use persp_workloads::{apps, runner};
use perspective::scheme::Scheme;

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let image = kernel_image();
    let schemes: Vec<Scheme> = if all {
        Scheme::ALL.to_vec()
    } else {
        Scheme::MAIN.to_vec()
    };

    let freq = CoreConfig::paper_default().freq_ghz;
    let the_apps = apps::apps();
    let workloads: Vec<_> = the_apps.iter().map(|a| a.workload.clone()).collect();
    let matrix = runner::run_matrix(&image, &schemes, &workloads);

    if report::json_mode() {
        let mut json_rows = Vec::new();
        let mut sums = vec![0.0f64; schemes.len()];
        for (app, ms) in the_apps.iter().zip(matrix.chunks(schemes.len())) {
            let w = &app.workload;
            let mut fields = vec![
                ("app", Json::str(w.name)),
                (
                    "unsafe_rps",
                    Json::str(format!("{:.0}", ms[0].rps(w.iters, freq))),
                ),
                (
                    "kernel_time_pct",
                    Json::str(format!("{:.0}", 100.0 * ms[0].stats.kernel_time_fraction())),
                ),
            ];
            for (i, m) in ms.iter().enumerate().skip(1) {
                let normalized = ms[0].stats.cycles as f64 / m.stats.cycles.max(1) as f64;
                sums[i] += normalized;
                fields.push((m.scheme.name(), Json::str(norm(normalized))));
            }
            json_rows.push(Json::obj(fields));
        }
        let avgs = schemes
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, s)| {
                Json::obj(vec![
                    ("scheme", Json::str(s.name())),
                    ("value", Json::str(norm(sums[i] / the_apps.len() as f64))),
                ])
            })
            .collect();
        let doc = report::experiment_json(
            "fig_9_3",
            vec![
                (
                    "schemes",
                    Json::Array(schemes.iter().map(|s| Json::str(s.name())).collect()),
                ),
                ("rows", Json::Array(json_rows)),
                ("avg_normalized", Json::Array(avgs)),
            ],
        );
        report::emit(&doc);
        return;
    }

    header(
        "Figure 9.3: Requests/second normalized to UNSAFE",
        "paper §9.1, Figure 9.3",
    );

    print!("{:<12}", "app");
    print!(" {:>12}", "UNSAFE RPS");
    for s in &schemes[1..] {
        print!(" {:>18}", s.name());
    }
    println!();
    println!("{}", "-".repeat(25 + 19 * (schemes.len() - 1)));

    let mut sums = vec![0.0f64; schemes.len()];
    for (app, ms) in the_apps.iter().zip(matrix.chunks(schemes.len())) {
        let w = &app.workload;
        let base_rps = ms[0].rps(w.iters, freq);
        print!("{:<12} {:>12}", w.name, format!("{:.0}", base_rps));
        for (i, m) in ms.iter().enumerate().skip(1) {
            // Throughput normalization = inverse cycle normalization.
            let normalized = ms[0].stats.cycles as f64 / m.stats.cycles.max(1) as f64;
            sums[i] += normalized;
            print!(" {:>18}", norm(normalized));
        }
        println!(
            "   (kernel-time {:.0}%, paper {:.0}%)",
            100.0 * ms[0].stats.kernel_time_fraction(),
            100.0 * app.paper_kernel_frac
        );
    }
    println!("{}", "-".repeat(25 + 19 * (schemes.len() - 1)));
    print!("{:<25}", "average");
    for (i, _) in schemes.iter().enumerate().skip(1) {
        print!(" {:>18}", norm(sums[i] / the_apps.len() as f64));
    }
    println!();
    println!();
    println!("paper: FENCE 0.943 avg; PERSPECTIVE-STATIC 0.987, PERSPECTIVE 0.988,");
    println!("       PERSPECTIVE++ 0.988; DOM 0.983, STT 0.996 (§9.1).");
    println!("note:  absolute RPS differs from the paper's testbed; normalized");
    println!("       throughput is the Figure 9.3 metric.");
}
