//! Calibration tool: structural statistics of the paper-scale kernel
//! (static/live reachability and gadget placement per workload profile).
//! Used to tune the generator toward the Table 8.1/8.2 targets; see
//! DESIGN.md §7.

use persp_bench::report::{self, Json};
use persp_kernel::body::emit_kernel;
use persp_kernel::callgraph::{CallGraph, KernelConfig};
use persp_workloads::{apps, lebench};
use std::time::Instant;

fn main() {
    let json = report::json_mode();
    let t0 = Instant::now();
    let mut g = CallGraph::generate(KernelConfig::paper());
    emit_kernel(&mut g);
    if !json {
        // Wall-clock timings never appear in the JSON document (it must
        // be byte-stable across runs and machines).
        println!("kernel build: {:?}, {} funcs", t0.elapsed(), g.len());
    }

    let mut profiles: Vec<(&str, Vec<persp_kernel::syscalls::Sysno>)> =
        vec![("LEBench", lebench::union_profile())];
    for app in apps::apps() {
        profiles.push((app.workload.name, app.workload.syscall_profile()));
    }
    let mut json_rows = Vec::new();
    for (name, prof) in &profiles {
        let stat = g.static_reachable(prof);
        let live = g.live_reachable(prof);
        let gall = g.gadgets.len();
        let gs = g.gadgets_within(&stat).len();
        let gl = g.gadgets_within(&live).len();
        if json {
            json_rows.push(Json::obj(vec![
                ("profile", Json::str(name.to_string())),
                ("syscalls", Json::UInt(prof.len() as u64)),
                ("static_funcs", Json::UInt(stat.len() as u64)),
                ("live_funcs", Json::UInt(live.len() as u64)),
                (
                    "static_pct",
                    Json::str(format!("{:.1}", 100.0 * stat.len() as f64 / g.len() as f64)),
                ),
                (
                    "live_pct",
                    Json::str(format!("{:.1}", 100.0 * live.len() as f64 / g.len() as f64)),
                ),
                (
                    "gadgets_in_static_pct",
                    Json::str(format!("{:.1}", 100.0 * gs as f64 / gall as f64)),
                ),
                (
                    "gadgets_in_live_pct",
                    Json::str(format!("{:.1}", 100.0 * gl as f64 / gall as f64)),
                ),
            ]));
        } else {
            println!(
                "{name:12} syscalls={:2} static={:5} ({:.1}%) live={:5} ({:.1}%)  gadgets in static {:.1}% live {:.1}%",
                prof.len(),
                stat.len(), 100.0 * stat.len() as f64 / g.len() as f64,
                live.len(), 100.0 * live.len() as f64 / g.len() as f64,
                100.0 * gs as f64 / gall as f64,
                100.0 * gl as f64 / gall as f64,
            );
        }
    }
    if json {
        let doc = report::experiment_json(
            "calibrate",
            vec![
                ("kernel_funcs", Json::UInt(g.len() as u64)),
                ("rows", Json::Array(json_rows)),
            ],
        );
        report::emit(&doc);
    }
}
