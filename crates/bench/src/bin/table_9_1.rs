//! Experiment E8 — Table 9.1: hardware structure characterization of the
//! ISV and DSV caches at 22 nm (CACTI-style analytical model).

use persp_bench::header;
use persp_mem::sram::{characterize_22nm, SramConfig};

fn main() {
    header(
        "Table 9.1: Hardware Structure Characterization (22 nm)",
        "paper §9.2, Table 9.1",
    );
    println!(
        "{:<14} | {:>12} | {:>12} | {:>12} | {:>12}",
        "Configuration", "Area", "Access Time", "Dyn. Energy", "Leak. Power"
    );
    println!("{}", "-".repeat(72));
    for cfg in [SramConfig::dsv_cache_paper(), SramConfig::isv_cache_paper()] {
        let c = characterize_22nm(&cfg);
        println!(
            "{:<14} | {:>9.4} mm2 | {:>9.0} ps | {:>9.2} pJ | {:>9.2} mW",
            cfg.name, c.area_mm2, c.access_ps, c.dynamic_pj, c.leakage_mw
        );
    }
    println!();
    println!("paper: DSV Cache 0.0024 mm2 / 114 ps / 1.21 pJ / 0.78 mW");
    println!("       ISV Cache 0.0025 mm2 / 115 ps / 1.29 pJ / 0.79 mW");
}
