//! Experiment E8 — Table 9.1: hardware structure characterization of the
//! ISV and DSV caches at 22 nm (CACTI-style analytical model).

use persp_bench::header;
use persp_bench::report::{self, Json};
use persp_mem::sram::{characterize_22nm, SramConfig};

fn main() {
    if report::json_mode() {
        let rows = [SramConfig::dsv_cache_paper(), SramConfig::isv_cache_paper()]
            .iter()
            .map(|cfg| {
                let c = characterize_22nm(cfg);
                Json::obj(vec![
                    ("configuration", Json::str(cfg.name)),
                    ("area_mm2", Json::str(format!("{:.4}", c.area_mm2))),
                    ("access_ps", Json::str(format!("{:.0}", c.access_ps))),
                    ("dynamic_pj", Json::str(format!("{:.2}", c.dynamic_pj))),
                    ("leakage_mw", Json::str(format!("{:.2}", c.leakage_mw))),
                ])
            })
            .collect();
        let doc = report::experiment_json("table_9_1", vec![("rows", Json::Array(rows))]);
        report::emit(&doc);
        return;
    }
    header(
        "Table 9.1: Hardware Structure Characterization (22 nm)",
        "paper §9.2, Table 9.1",
    );
    println!(
        "{:<14} | {:>12} | {:>12} | {:>12} | {:>12}",
        "Configuration", "Area", "Access Time", "Dyn. Energy", "Leak. Power"
    );
    println!("{}", "-".repeat(72));
    for cfg in [SramConfig::dsv_cache_paper(), SramConfig::isv_cache_paper()] {
        let c = characterize_22nm(&cfg);
        println!(
            "{:<14} | {:>9.4} mm2 | {:>9.0} ps | {:>9.2} pJ | {:>9.2} mW",
            cfg.name, c.area_mm2, c.access_ps, c.dynamic_pj, c.leakage_mw
        );
    }
    println!();
    println!("paper: DSV Cache 0.0024 mm2 / 114 ps / 1.21 pJ / 0.78 mW");
    println!("       ISV Cache 0.0025 mm2 / 115 ps / 1.29 pJ / 0.79 mW");
}
