//! Extension experiment (paper §11 future work): **per-syscall ISVs**.
//!
//! The paper's ISVs are per-*context*: one view covering every syscall
//! the process may make. Its future-work discussion asks how much
//! tighter views could get. The natural next granularity is switching
//! the view at syscall dispatch, so that while `read` executes the
//! speculation window only spans `read`'s own closure — a process's
//! declared profile no longer inflates every individual window.
//!
//! This binary quantifies the headroom on the synthetic kernel:
//!
//! * `per-sys avg` — mean view size over the workload's syscalls
//!   (unweighted: what the *verifier/loader* must reason about),
//! * `effective` — the frequency-weighted mean view size over the
//!   workload's executed steps (what the *attacker* faces on average),
//! * both compared against the process-wide static view the paper ships.
//!
//! The shared utility layer bounds the gain: every per-syscall view
//! still contains the dispatcher and common helpers, so the reduction
//! saturates near the pool-to-utility ratio rather than approaching
//! zero.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_config, lebench_union_workload, norm, pct};
use persp_kernel::syscalls::Sysno;
use persp_workloads::apps;
use persp_workloads::lebench;
use persp_workloads::spec::Workload;
use persp_workloads::{measure, measure_per_syscall};
use perspective::isv::Isv;
use perspective::scheme::Scheme;
use std::collections::HashMap;

/// One workload's view-surface row: process-wide size, per-syscall
/// average, frequency-weighted effective size, and the tightening ratio.
struct SurfaceRow {
    name: &'static str,
    proc_wide: usize,
    avg: f64,
    effective: f64,
    tighten: f64,
}

/// One enforcement-cost row (all columns pre-formatted).
struct CostRow {
    name: &'static str,
    wide_norm: String,
    narrow_norm: String,
    wide_hit: String,
    narrow_hit: String,
}

fn main() {
    let kcfg = kernel_config();
    let mut workloads = vec![lebench_union_workload()];
    workloads.extend(apps::apps().into_iter().map(|a| a.workload));

    let inst = persp_workloads::SimInstance::new(Scheme::Unsafe, kcfg);
    let kernel = inst.kernel.borrow();
    let graph = &kernel.graph;
    let total = graph.len() as f64;

    // Per-syscall static closures are workload-independent: compute once.
    let mut per_sys: HashMap<Sysno, usize> = HashMap::new();
    for &sys in Sysno::ALL {
        per_sys.insert(sys, Isv::static_for(graph, &[sys]).num_funcs());
    }

    let mut sum_tighten = 0.0;
    let mut surface_rows = Vec::new();
    for w in &workloads {
        let profile = w.syscall_profile();
        let proc_wide = Isv::static_for(graph, &profile).num_funcs();

        let avg: f64 =
            profile.iter().map(|s| per_sys[s] as f64).sum::<f64>() / profile.len() as f64;

        let effective = effective_surface(w, &per_sys);

        // How much smaller the average speculation window's code surface
        // becomes relative to the process-wide view.
        let tighten = 1.0 - effective / proc_wide as f64;
        sum_tighten += tighten;
        surface_rows.push(SurfaceRow {
            name: w.name,
            proc_wide,
            avg,
            effective,
            tighten,
        });
    }
    let avg_tighten = sum_tighten / workloads.len() as f64;

    // Where the floor is: the shared part every view must contain.
    let min_view = Sysno::ALL.iter().map(|s| per_sys[s]).min().unwrap_or(0) as f64;
    let max_view = Sysno::ALL.iter().map(|s| per_sys[s]).max().unwrap_or(0) as f64;
    drop(kernel);
    drop(inst);

    // Enforcement cost: the conservative flush-on-dispatch implementation
    // (`measure_per_syscall`) vs. the paper's process-wide static views.
    let mut mixed = lebench::by_name("small-read").expect("suite test");
    mixed
        .steps
        .extend(lebench::by_name("getpid").expect("suite test").steps);
    mixed
        .steps
        .extend(lebench::by_name("mmap").expect("suite test").steps);
    mixed.name = "read+getpid+mmap";
    let singles = ["getpid", "small-read", "mmap", "select"]
        .into_iter()
        .map(|n| lebench::by_name(n).expect("suite test"));
    let mut cost_rows = Vec::new();
    for w in singles.chain([mixed]) {
        let base = measure(Scheme::Unsafe, kcfg, &w).stats.cycles as f64;
        // (single-syscall tests never switch views mid-run: identical
        // columns there are the sanity check; the mixed row pays for
        // real dispatch switching.)
        let wide = measure(Scheme::PerspectiveStatic, kcfg, &w);
        let narrow = measure_per_syscall(Scheme::Perspective, kcfg, &w);
        cost_rows.push(CostRow {
            name: w.name,
            wide_norm: norm(wide.stats.cycles as f64 / base),
            narrow_norm: norm(narrow.stats.cycles as f64 / base),
            wide_hit: pct(wide.isv_cache.map_or(0.0, |c| c.hit_rate())),
            narrow_hit: pct(narrow.isv_cache.map_or(0.0, |c| c.hit_rate())),
        });
    }

    if report::json_mode() {
        let surfaces = surface_rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("workload", Json::str(r.name)),
                    ("proc_wide_funcs", Json::UInt(r.proc_wide as u64)),
                    ("per_sys_avg", Json::str(format!("{:.0}", r.avg))),
                    ("effective", Json::str(format!("{:.0}", r.effective))),
                    ("tightening", Json::str(pct(r.tighten))),
                ])
            })
            .collect();
        let costs = cost_rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("test", Json::str(r.name)),
                    ("p_static", Json::str(r.wide_norm.clone())),
                    ("per_sys", Json::str(r.narrow_norm.clone())),
                    ("p_static_hit_rate", Json::str(r.wide_hit.clone())),
                    ("per_sys_hit_rate", Json::str(r.narrow_hit.clone())),
                ])
            })
            .collect();
        let doc = report::experiment_json(
            "per_syscall_views",
            vec![
                ("surfaces", Json::Array(surfaces)),
                ("avg_tightening", Json::str(pct(avg_tighten))),
                ("min_view_funcs", Json::str(format!("{min_view:.0}"))),
                ("max_view_funcs", Json::str(format!("{max_view:.0}"))),
                ("enforcement_cost", Json::Array(costs)),
            ],
        );
        report::emit(&doc);
        return;
    }

    header(
        "Extension: per-syscall ISVs (future-work granularity)",
        "paper §11 — not a paper table; extension analysis",
    );
    println!(
        "{:<10} | {:>12} | {:>12} | {:>12} | {:>10}",
        "Workload", "proc-wide", "per-sys avg", "effective", "tightening"
    );
    println!("{}", "-".repeat(70));
    for r in &surface_rows {
        println!(
            "{:<10} | {:>12} | {:>12.0} | {:>12.0} | {:>10}",
            r.name,
            r.proc_wide,
            r.avg,
            r.effective,
            pct(r.tighten)
        );
    }
    println!("{}", "-".repeat(70));
    println!(
        "average tightening over process-wide static views: {}",
        pct(avg_tighten)
    );
    println!();
    println!(
        "per-syscall closures span {:.0}..{:.0} functions ({}..{} of the kernel);",
        min_view,
        max_view,
        pct(min_view / total),
        pct(max_view / total)
    );
    println!("the floor is the dispatcher + shared utility layer that every view keeps.");
    println!();
    println!("enforcement cost (LEBench subset, flush-on-dispatch model):");
    println!(
        "{:<16} | {:>10} | {:>10} | {:>12} | {:>12}",
        "test", "P-STATIC", "per-sys", "hit P-STATIC", "hit per-sys"
    );
    println!("{}", "-".repeat(72));
    for r in &cost_rows {
        println!(
            "{:<16} | {:>10} | {:>10} | {:>12} | {:>12}",
            r.name, r.wide_norm, r.narrow_norm, r.wide_hit, r.narrow_hit,
        );
    }
    println!();
    println!("the enforcement model switches the active view at Syscall commit and");
    println!("flushes the ISV cache per dispatch (an ASID+sysno tag extension would");
    println!("avoid the flushes); the columns above price that conservative variant.");
}

/// Frequency-weighted mean view size over the workload's executed steps.
fn effective_surface(w: &Workload, per_sys: &HashMap<Sysno, usize>) -> f64 {
    let mut counts: HashMap<Sysno, u64> = HashMap::new();
    for s in w.startup_steps.iter().chain(&w.steps) {
        *counts.entry(s.sys).or_insert(0) += 1;
    }
    let total: u64 = counts.values().sum();
    counts
        .iter()
        .map(|(sys, n)| per_sys[sys] as f64 * (*n as f64))
        .sum::<f64>()
        / total as f64
}
