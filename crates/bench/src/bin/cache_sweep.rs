//! Design-point ablation: sweep the ISV / DSVMT cache geometry around
//! the paper's 128-entry choice (Table 9.1, §9.2) and measure where the
//! hit-rate knee sits. The paper reports ~99 % hit rates at 128 entries;
//! this sweep shows how much headroom the design point has in either
//! direction — the justification a hardware architect would ask for.

use persp_bench::report::{self, Json};
use persp_bench::{header, kernel_image, norm, pct};
use persp_workloads::lebench;
use persp_workloads::runner;
use perspective::policy::PerspectiveConfig;
use perspective::scheme::Scheme;

const SIZES: [usize; 5] = [16, 32, 64, 128, 256];

fn main() {
    let image = kernel_image();
    // A syscall-mixing workload stresses the caches hardest: union the
    // pools of three LEBench tests.
    let mut w = lebench::by_name("small-read").expect("suite test");
    w.steps
        .extend(lebench::by_name("mmap").expect("suite test").steps);
    w.steps
        .extend(lebench::by_name("select").expect("suite test").steps);
    w.name = "read+mmap+select";

    // Baseline plus the five sweep points, as one parallel batch over
    // the shared kernel image.
    let jobs: Vec<Option<usize>> = std::iter::once(None)
        .chain(SIZES.into_iter().map(Some))
        .collect();
    let mut cells = runner::run_parallel(jobs, |entries| match entries {
        None => runner::measure_image(Scheme::Unsafe, &image, &w),
        Some(entries) => {
            let cfg = PerspectiveConfig {
                isv_cache_entries: entries,
                dsvmt_cache_entries: entries,
                ..PerspectiveConfig::default()
            };
            runner::measure_image_cfg(Scheme::Perspective, &image, &w, cfg)
        }
    })
    .into_iter();
    let base = cells.next().expect("baseline cell").stats.cycles as f64;

    if report::json_mode() {
        let json_rows = SIZES
            .into_iter()
            .zip(cells)
            .map(|(entries, m)| {
                let fences_per_ki = m.fences.map_or(0.0, |f| {
                    1000.0 * f.isv as f64 / m.stats.committed_insts.max(1) as f64
                });
                Json::obj(vec![
                    ("entries", Json::UInt(entries as u64)),
                    ("latency", Json::str(norm(m.stats.cycles as f64 / base))),
                    (
                        "isv_hit_rate",
                        Json::str(pct(m.isv_cache.map_or(0.0, |c| c.hit_rate()))),
                    ),
                    (
                        "dsvmt_hit_rate",
                        Json::str(pct(m.dsvmt_cache.map_or(0.0, |c| c.hit_rate()))),
                    ),
                    (
                        "isv_fences_per_ki",
                        Json::str(format!("{fences_per_ki:.2}")),
                    ),
                ])
            })
            .collect();
        let doc = report::experiment_json("cache_sweep", vec![("rows", Json::Array(json_rows))]);
        report::emit(&doc);
        return;
    }

    header(
        "Ablation: ISV/DSVMT cache size sweep",
        "paper §9.2 hit rates + Table 9.1 design point",
    );
    println!(
        "{:<8} | {:>10} | {:>12} | {:>12} | {:>14}",
        "entries", "latency", "ISV hit", "DSVMT hit", "ISV fences/ki"
    );
    println!("{}", "-".repeat(68));
    for (entries, m) in SIZES.into_iter().zip(cells) {
        let fences_per_ki = m.fences.map_or(0.0, |f| {
            1000.0 * f.isv as f64 / m.stats.committed_insts.max(1) as f64
        });
        println!(
            "{:<8} | {:>10} | {:>12} | {:>12} | {:>14.2}",
            entries,
            norm(m.stats.cycles as f64 / base),
            pct(m.isv_cache.map_or(0.0, |c| c.hit_rate())),
            pct(m.dsvmt_cache.map_or(0.0, |c| c.hit_rate())),
            fences_per_ki,
        );
    }
    println!();
    println!("the hit-rate knee sits at the paper's 128-entry design point:");
    println!("halving the caches roughly doubles the ISV fence rate, while");
    println!("doubling them buys the last ~1.5 % of overhead — the Table 9.1");
    println!("area/energy numbers price exactly this geometry.");
}
