//! Calibration tool: per-scheme overheads, kernel-time fractions, and
//! hardware-cache hit rates for a representative workload slice. Used to
//! tune the timing model toward the Figure 9.2/9.3 targets; see
//! DESIGN.md §6.

use persp_kernel::callgraph::KernelConfig;
use persp_workloads::{apps, lebench, runner};
use perspective::scheme::Scheme;
use std::time::Instant;

fn main() {
    let kcfg = KernelConfig::paper();
    let schemes = [
        Scheme::Unsafe,
        Scheme::Fence,
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
    ];
    for name in ["getpid", "select", "small-read", "big-fork", "page-fault"] {
        let w = lebench::by_name(name).unwrap();
        let t0 = Instant::now();
        let ms = runner::measure_schemes(&schemes, kcfg, &w);
        print!("{name:12}");
        for m in &ms[1..] {
            print!(" {}={:+.1}%", m.scheme, 100.0 * runner::overhead(m, &ms[0]));
        }
        let m = &ms[3];
        print!(
            "  kfrac={:.2} isv_hit={:.3} dsvmt_hit={:.3} f/ki={:.1}",
            ms[0].stats.kernel_time_fraction(),
            m.isv_cache.unwrap().hit_rate(),
            m.dsvmt_cache.unwrap().hit_rate(),
            m.stats.fences_per_kilo_inst()
        );
        println!("  ({:?})", t0.elapsed());
    }
    for app in apps::apps() {
        let t0 = Instant::now();
        let ms = runner::measure_schemes(&schemes, kcfg, &app.workload);
        print!("{:12}", app.workload.name);
        for m in &ms[1..] {
            print!(" {}={:+.1}%", m.scheme, 100.0 * runner::overhead(m, &ms[0]));
        }
        println!(
            "  kfrac={:.2} (paper {:.2})  ({:?})",
            ms[0].stats.kernel_time_fraction(),
            app.paper_kernel_frac,
            t0.elapsed()
        );
    }
}
