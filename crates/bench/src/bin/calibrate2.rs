//! Calibration tool: per-scheme overheads, kernel-time fractions, and
//! hardware-cache hit rates for a representative workload slice. Used to
//! tune the timing model toward the Figure 9.2/9.3 targets; see
//! DESIGN.md §7.

use persp_bench::report::{self, Json};
use persp_kernel::callgraph::KernelConfig;
use persp_workloads::{apps, lebench, runner};
use perspective::scheme::Scheme;
use std::time::Instant;

fn main() {
    // Wall-clock timings (`t0.elapsed()`) never appear in the JSON
    // document: it must be byte-stable across runs and machines.
    let json = report::json_mode();
    let kcfg = KernelConfig::paper();
    let schemes = [
        Scheme::Unsafe,
        Scheme::Fence,
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
    ];
    let mut json_rows = Vec::new();
    for name in ["getpid", "select", "small-read", "big-fork", "page-fault"] {
        let w = lebench::by_name(name).unwrap();
        let t0 = Instant::now();
        let ms = runner::measure_schemes(&schemes, kcfg, &w);
        let m = &ms[3];
        if json {
            let mut fields = vec![("workload", Json::str(name))];
            for m in &ms[1..] {
                fields.push((
                    m.scheme.name(),
                    Json::str(format!("{:+.1}%", 100.0 * runner::overhead(m, &ms[0]))),
                ));
            }
            fields.push((
                "kfrac",
                Json::str(format!("{:.2}", ms[0].stats.kernel_time_fraction())),
            ));
            fields.push((
                "isv_hit",
                Json::str(format!("{:.3}", m.isv_cache.unwrap().hit_rate())),
            ));
            fields.push((
                "dsvmt_hit",
                Json::str(format!("{:.3}", m.dsvmt_cache.unwrap().hit_rate())),
            ));
            fields.push((
                "fences_per_ki",
                Json::str(format!("{:.1}", m.stats.fences_per_kilo_inst())),
            ));
            json_rows.push(Json::obj(fields));
            continue;
        }
        print!("{name:12}");
        for m in &ms[1..] {
            print!(" {}={:+.1}%", m.scheme, 100.0 * runner::overhead(m, &ms[0]));
        }
        print!(
            "  kfrac={:.2} isv_hit={:.3} dsvmt_hit={:.3} f/ki={:.1}",
            ms[0].stats.kernel_time_fraction(),
            m.isv_cache.unwrap().hit_rate(),
            m.dsvmt_cache.unwrap().hit_rate(),
            m.stats.fences_per_kilo_inst()
        );
        println!("  ({:?})", t0.elapsed());
    }
    for app in apps::apps() {
        let t0 = Instant::now();
        let ms = runner::measure_schemes(&schemes, kcfg, &app.workload);
        if json {
            let mut fields = vec![("workload", Json::str(app.workload.name))];
            for m in &ms[1..] {
                fields.push((
                    m.scheme.name(),
                    Json::str(format!("{:+.1}%", 100.0 * runner::overhead(m, &ms[0]))),
                ));
            }
            fields.push((
                "kfrac",
                Json::str(format!("{:.2}", ms[0].stats.kernel_time_fraction())),
            ));
            fields.push((
                "paper_kfrac",
                Json::str(format!("{:.2}", app.paper_kernel_frac)),
            ));
            json_rows.push(Json::obj(fields));
            continue;
        }
        print!("{:12}", app.workload.name);
        for m in &ms[1..] {
            print!(" {}={:+.1}%", m.scheme, 100.0 * runner::overhead(m, &ms[0]));
        }
        println!(
            "  kfrac={:.2} (paper {:.2})  ({:?})",
            ms[0].stats.kernel_time_fraction(),
            app.paper_kernel_frac,
            t0.elapsed()
        );
    }
    if json {
        let doc = report::experiment_json("calibrate2", vec![("rows", Json::Array(json_rows))]);
        report::emit(&doc);
    }
}
