//! Experiments E10/E11 — Chapter 8's security analysis: proof-of-concept
//! active and passive transient execution attacks against every scheme.
//!
//! Active (Figure 4.1): Spectre v1 from the attacker's own kernel thread,
//! with an in-µISA flush+reload receiver. Passive (Figure 4.2): BTB
//! hijack of the syscall dispatch and Retbleed-style RSB underflow, both
//! coercing the *victim's* kernel thread into a leak gadget.

use persp_attacks::active::run_active_attack;
use persp_attacks::bhi::{plain_v2_fails_under_ibrs, run_bhi};
use persp_attacks::ebpf_attack::run_ebpf_attack;
use persp_attacks::passive::{run_btb_hijack, run_retbleed};
use persp_bench::header;
use persp_bench::report::{self, Json};
use persp_kernel::callgraph::KernelConfig;
use perspective::scheme::Scheme;
use perspective::taxonomy::AttackOutcome;

fn verdict(hot: &[u8], secret: u8) -> &'static str {
    if hot.contains(&secret) {
        "LEAKED"
    } else {
        "blocked"
    }
}

fn outcome_str(o: &AttackOutcome, hot: &[u8], secret: u8) -> String {
    match o {
        AttackOutcome::Leaked { recovered, .. } => format!("LEAKED 0x{recovered:02x}"),
        _ => format!("{} ({} hot lines)", verdict(hot, secret), hot.len()),
    }
}

fn main() {
    // The attack PoCs use the fast kernel; attack feasibility does not
    // depend on kernel scale (the gadget and predictors are what matter).
    let kcfg = KernelConfig::test_small();
    let secret = 0x2A;

    let schemes = [
        Scheme::Unsafe,
        Scheme::Spot,
        Scheme::Fence,
        Scheme::Dom,
        Scheme::Stt,
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
        Scheme::PerspectivePlusPlus,
    ];

    // Per scheme: the five attack-outcome cells, pre-rendered (the same
    // strings feed the transcript and the JSON document).
    let rows: Vec<(&'static str, [String; 5])> = schemes
        .iter()
        .map(|&scheme| {
            let active = run_active_attack(scheme, kcfg, secret);
            let v2 = run_btb_hijack(scheme, kcfg, secret);
            let rb = run_retbleed(scheme, kcfg, secret);
            let bhi = run_bhi(scheme, kcfg, secret);
            let ebpf = run_ebpf_attack(scheme, kcfg, secret);
            let ebpf_str = match &ebpf.outcome {
                perspective::taxonomy::AttackOutcome::Leaked { recovered, .. } => {
                    format!("LEAKED 0x{recovered:02x} (8 bits)")
                }
                perspective::taxonomy::AttackOutcome::Blocked => "blocked".to_string(),
                _ => "inconclusive".to_string(),
            };
            (
                scheme.name(),
                [
                    outcome_str(&active.outcome, &active.hot_lines, secret),
                    outcome_str(&v2.outcome, &v2.hot_lines, secret),
                    outcome_str(&rb.outcome, &rb.hot_lines, secret),
                    outcome_str(&bhi.outcome, &bhi.hot_lines, secret),
                    ebpf_str,
                ],
            )
        })
        .collect();

    if report::json_mode() {
        let json_rows = rows
            .iter()
            .map(|(scheme, cells)| {
                Json::obj(vec![
                    ("scheme", Json::str(*scheme)),
                    ("active_spectre_v1", Json::str(cells[0].clone())),
                    ("passive_v2_dispatch", Json::str(cells[1].clone())),
                    ("passive_retbleed", Json::str(cells[2].clone())),
                    ("active_bhi", Json::str(cells[3].clone())),
                    ("active_ebpf", Json::str(cells[4].clone())),
                ])
            })
            .collect();
        let ibrs_sanity = plain_v2_fails_under_ibrs(kcfg);
        assert!(
            ibrs_sanity,
            "sanity: eIBRS stops the plain v2 injection — BHI is the bypass"
        );
        let doc = report::experiment_json(
            "security_poc",
            vec![
                ("rows", Json::Array(json_rows)),
                ("plain_v2_fails_under_ibrs", Json::Bool(ibrs_sanity)),
            ],
        );
        report::emit(&doc);
        return;
    }

    header(
        "Security PoCs: active & passive transient execution attacks",
        "paper Chapter 8 (§8.1 active, §8.2 passive)",
    );
    println!(
        "{:<20} | {:<20} | {:<20} | {:<20} | {:<21} | {:<20}",
        "scheme",
        "ACTIVE Spectre v1",
        "PASSIVE v2 dispatch",
        "PASSIVE Retbleed",
        "ACTIVE BHI (vs eIBRS)",
        "ACTIVE eBPF inject"
    );
    println!("{}", "-".repeat(138));
    for (scheme, cells) in &rows {
        println!(
            "{:<20} | {:<20} | {:<20} | {:<20} | {:<21} | {:<20}",
            scheme, cells[0], cells[1], cells[2], cells[3], cells[4],
        );
    }
    println!();
    assert!(
        plain_v2_fails_under_ibrs(kcfg),
        "sanity: eIBRS stops the plain v2 injection — BHI is the bypass"
    );
    println!("sanity check: the plain v2 alias injection FAILS under eIBRS-style BTB");
    println!("hardening; BHI bypasses it by steering the branch history (Table 4.1 row 5).");
    println!();
    println!("paper: UNSAFE leaks in all scenarios; spot mitigations miss Spectre v1;");
    println!("       Perspective's DSVs eliminate active attacks (v1, BHI-assisted) and");
    println!("       ISVs block the passive PoCs (the gadget is outside every victim ISV).");
}
