//! Experiment harness for the Perspective reproduction: shared helpers
//! for the per-table/per-figure binaries (see DESIGN.md §4 for the
//! experiment index) and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use persp_kernel::callgraph::{FuncId, KernelConfig};
use persp_kernel::kernel::KernelImage;
use persp_kernel::syscalls::Sysno;
use persp_workloads::{lebench, runner, Workload};
use perspective::isv::Isv;
use perspective::scheme::Scheme;
use std::collections::HashSet;

/// The kernel configuration experiments run against. Honors
/// `PERSPECTIVE_KERNEL=small` for quick smoke runs; defaults to the
/// paper-scale 28 K-function kernel.
pub fn kernel_config() -> KernelConfig {
    match std::env::var("PERSPECTIVE_KERNEL").as_deref() {
        Ok("small") => KernelConfig::test_small(),
        Ok("paper") | Ok("") | Err(_) => KernelConfig::paper(),
        Ok(v) => {
            eprintln!(
                "warning: ignoring invalid PERSPECTIVE_KERNEL={v:?} \
                 (expected \"small\" or \"paper\"); using the paper-scale kernel"
            );
            KernelConfig::paper()
        }
    }
}

/// Generate the experiment kernel image once; see [`kernel_config`].
/// Every (scheme, workload) cell of an experiment shares this image
/// instead of regenerating the call graph.
///
/// The image is deliberately **rebuilt per bin process rather than
/// cached on disk** like the simulation cells are: generation is a
/// single-digit fraction of any bin's runtime (measured in
/// EXPERIMENTS.md — ~1.2 s at paper scale against multi-second to
/// minute-scale bins), while a lossless on-disk codec would have to
/// round-trip the full call graph and emitted text (tens of MB of
/// instructions and per-function metadata) and would plausibly parse
/// slower than the generator runs. Set `PERSPECTIVE_IMAGE_TIMING=1` to
/// print the measured build time on stderr (observability only — never
/// on stdout, so transcripts stay byte-identical).
pub fn kernel_image() -> KernelImage {
    let t0 = std::time::Instant::now();
    let image = KernelImage::build(kernel_config());
    if std::env::var("PERSPECTIVE_IMAGE_TIMING").is_ok_and(|v| v.trim() == "1") {
        eprintln!(
            "kernel image: {} functions, {} text instructions, built in {:.3} s",
            image.graph.len(),
            image.text.len(),
            t0.elapsed().as_secs_f64()
        );
    }
    image
}

/// Print an experiment header.
pub fn header(title: &str, source: &str) {
    println!();
    println!("=== {title} ===");
    println!("    (reproduces {source})");
    println!();
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a normalized value (e.g. latency vs. baseline).
pub fn norm(x: f64) -> String {
    format!("{x:.3}")
}

/// A pseudo-workload exercising every LEBench syscall per iteration —
/// its trace approximates the union of the suite's traces, for the
/// per-suite columns of Tables 8.1/8.2/10.1.
pub fn lebench_union_workload() -> Workload {
    let mut steps = Vec::new();
    for w in lebench::suite() {
        steps.extend(w.steps.iter().copied());
    }
    Workload {
        name: "LEBench",
        startup_steps: Vec::new(),
        steps,
        iters: 3,
        user_work: 0,
    }
}

/// Collect a dynamic-ISV trace for a workload by running it once on an
/// UNSAFE instance (tracing is scheme-independent). The raw call-target
/// VAs are resolved to function ids against the image's graph before
/// returning, so callers never handle addresses.
pub fn trace_workload(image: &KernelImage, workload: &Workload) -> HashSet<FuncId> {
    let mut inst = persp_workloads::SimInstance::from_image(Scheme::Unsafe, image);
    let text = inst.text_base();
    let data = inst.data_base();
    inst.core.machine.load_text(workload.compile(text, data));
    inst.core.enable_call_trace();
    inst.core
        .run(text, 400_000_000)
        .expect("trace run completes");
    let raw = inst.core.take_call_trace();
    runner::trace_to_funcs(&image.graph, &raw)
}

/// Build the three ISV flavors for a workload — `(ISV-S, ISV, ISV++)` —
/// plus the instance whose kernel they were derived from.
pub fn isv_trio(
    image: &KernelImage,
    workload: &Workload,
    profile: &[Sysno],
) -> (Isv, Isv, Isv, persp_workloads::SimInstance) {
    let inst = persp_workloads::SimInstance::from_image(Scheme::Unsafe, image);
    let trace = trace_workload(image, workload);
    let (isv_s, isv_d, isv_pp) = {
        let graph = &image.graph;
        let isv_s = Isv::static_for(graph, profile);
        let isv_d = Isv::dynamic_from_funcs(graph, trace);
        let report =
            persp_scanner::scan_bounded(graph, isv_d.funcs(), |pc| inst.core.machine.inst_at(pc));
        let isv_pp = isv_d
            .clone()
            .hardened_with_audit(graph, report.flagged_functions());
        (isv_s, isv_d, isv_pp)
    };
    (isv_s, isv_d, isv_pp, inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.951), "95.1%");
        assert_eq!(norm(1.0349), "1.035");
    }

    #[test]
    fn union_workload_covers_the_suite() {
        let u = lebench_union_workload();
        assert!(u.syscall_profile().len() >= 12);
        assert_eq!(u.name, "LEBench");
    }

    #[test]
    fn small_kernel_trace_produces_dynamic_isv() {
        let image = KernelImage::build(KernelConfig::test_small());
        let w = persp_workloads::lebench::by_name("getpid").unwrap();
        let trace = trace_workload(&image, &w);
        assert!(!trace.is_empty());
    }

    #[test]
    fn isv_trio_orders_by_size() {
        let image = KernelImage::build(KernelConfig::test_small());
        let w = persp_workloads::lebench::by_name("small-read").unwrap();
        let (s, d, pp, _inst) = isv_trio(&image, &w, &w.syscall_profile());
        assert!(d.num_funcs() <= s.num_funcs(), "dynamic ⊆ static footprint");
        assert!(pp.num_funcs() <= d.num_funcs(), "++ removes flagged hosts");
    }
}
