//! Machine-readable experiment output — re-exported from
//! [`persp_workloads::report`].
//!
//! The JSON value type, writer/parser, and the `Measurement` codecs
//! moved into `persp-workloads` so the simulation cell cache
//! (`persp_workloads::memo`) can serialize full measurements without a
//! `persp-bench → persp-workloads` dependency cycle. Every experiment
//! binary keeps importing `persp_bench::report::{...}` unchanged.

pub use persp_workloads::report::*;
