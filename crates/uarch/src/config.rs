//! Core configuration (Table 7.1).

use crate::predictor::BtbMode;

/// Parameters of the simulated out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Issue/commit width.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// BTB entries (power of two).
    pub btb_entries: usize,
    /// BTB hardening mode (Legacy, or eIBRS-style privilege tagging with
    /// history-mixed indexing).
    pub btb_mode: BtbMode,
    /// Return-stack entries.
    pub rsb_entries: usize,
    /// Front-end depth: cycles from fetch to earliest execute.
    pub frontend_latency: u64,
    /// Extra redirect bubble after a squash.
    pub mispredict_penalty: u64,
    /// Cycles from operand readiness to conditional-branch resolution
    /// (issue + execute through the branch unit of a deep pipeline).
    pub branch_resolve_latency: u64,
    /// Cycles to resolve a `ret`'s actual target (return-address load).
    pub ret_resolve_latency: u64,
    /// Extra front-end cost of a retpoline-protected indirect branch.
    pub retpoline_cost: u64,
    /// Core frequency in GHz (Table 7.1: 2.0) — used to convert cycles to
    /// wall-clock for requests-per-second reporting.
    pub freq_ghz: f64,
    /// Skip runs of cycles in which no pipeline stage makes progress by
    /// jumping straight to the next wake-up event (memory completion,
    /// fence release, front-end refill). Provably cycle-exact — every
    /// counter, including the stall-attribution breakdown, is advanced by
    /// the skipped delta — so this is purely a simulator wall-clock
    /// optimization. Default on; set `PERSPECTIVE_NO_FASTFWD=1` (honored
    /// by the workload runner) to force the slow path.
    pub idle_fastforward: bool,
}

impl CoreConfig {
    /// The paper's configuration: 8-issue OoO, 192 ROB, 62 LQ, 32 SQ,
    /// 4096-entry BTB, 16-entry RAS, 2.0 GHz.
    pub fn paper_default() -> Self {
        CoreConfig {
            width: 8,
            rob_entries: 192,
            lq_entries: 62,
            sq_entries: 32,
            btb_entries: 4096,
            btb_mode: BtbMode::Legacy,
            rsb_entries: 16,
            frontend_latency: 5,
            mispredict_penalty: 5,
            branch_resolve_latency: 4,
            ret_resolve_latency: 8,
            retpoline_cost: 30,
            freq_ghz: 2.0,
            idle_fastforward: true,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_7_1() {
        let c = CoreConfig::paper_default();
        assert_eq!(c.width, 8);
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.lq_entries, 62);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.btb_entries, 4096);
        assert_eq!(c.rsb_entries, 16);
        assert!((c.freq_ghz - 2.0).abs() < f64::EPSILON);
        assert!(c.idle_fastforward, "fast-forward defaults on");
    }
}
