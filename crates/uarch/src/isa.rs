//! The µISA executed by the simulated out-of-order core.
//!
//! Transient-execution semantics live in the *pipeline*, not the instruction
//! set, so a compact RISC-style ISA is sufficient to express every code
//! pattern the paper needs: Spectre v1 bounds-check gadgets, indirect-jump
//! dispatch tables (Spectre v2), deep call chains (Spectre RSB / Retbleed),
//! flush+reload probe loops, and synthetic kernel function bodies.
//!
//! Conventions:
//!
//! * 32 general-purpose 64-bit registers; `r0` reads as zero and ignores
//!   writes.
//! * Every instruction occupies 4 bytes of the text address space.
//! * Calls/returns use a precise shadow call stack maintained by the core
//!   (the *prediction* of returns goes through the RSB, which is what the
//!   attacks poison).
//! * `Syscall` traps to the kernel entry point registered in the
//!   [`Machine`](crate::machine::Machine); `Sysret` returns to userspace.
//! * `KHook` invokes a host-level kernel semantic hook at commit time
//!   (allocators, scheduling, fd bookkeeping) — it is serializing, so it
//!   never executes transiently.

use std::fmt;

/// A register index, `0..=31`. `REG_ZERO` is hardwired to zero.
pub type Reg = u8;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;
/// The hardwired zero register.
pub const REG_ZERO: Reg = 0;
/// Return-value register (ABI convention).
pub const REG_RET: Reg = 1;
/// First syscall-argument register; args are `r10..=r15`.
pub const REG_ARG0: Reg = 10;
/// Second syscall-argument register.
pub const REG_ARG1: Reg = 11;
/// Third syscall-argument register.
pub const REG_ARG2: Reg = 12;
/// Syscall-number register.
pub const REG_SYSNO: Reg = 17;

/// Size of one encoded instruction in bytes.
pub const INST_BYTES: u64 = 4;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `b & 63`).
    Shl,
    /// Logical shift right (by `b & 63`).
    Shr,
    /// Wrapping multiplication (3-cycle latency).
    Mul,
    /// Set-if-less-than, unsigned (`a < b ? 1 : 0`) — used by bounds checks.
    SltU,
}

impl AluOp {
    /// Apply the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::SltU => u64::from(a < b),
        }
    }

    /// Execution latency in cycles.
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            _ => 1,
        }
    }
}

/// Branch comparison conditions (unsigned and signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` unsigned
    Ltu,
    /// `a >= b` unsigned
    Geu,
    /// `a < b` signed
    Lt,
    /// `a >= b` signed
    Ge,
}

impl Cond {
    /// Evaluate the condition.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    B,
    /// Eight bytes (little-endian).
    Q,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B => 1,
            Width::Q => 8,
        }
    }
}

/// One µISA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `dst = op(a, b)`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `dst = op(a, imm)`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        a: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = imm`
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = mem[base + offset]` — the canonical *transmitter* instruction.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// `mem[base + offset] = src`
    Store {
        /// Source (data) register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Conditional direct branch: if `cond(a, b)` jump to `target`.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// First comparison register.
        a: Reg,
        /// Second comparison register.
        b: Reg,
        /// Taken-path target address.
        target: u64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target address.
        target: u64,
    },
    /// Indirect jump through a register — the Spectre v2 hijack point.
    JumpInd {
        /// Register holding the target address.
        base: Reg,
    },
    /// Direct call; pushes `pc + 4` on the shadow call stack and the RSB.
    Call {
        /// Callee address.
        target: u64,
    },
    /// Indirect call through a register (function-pointer dispatch).
    CallInd {
        /// Register holding the callee address.
        base: Reg,
    },
    /// Return; *predicted* via the RSB (BTB fallback on underflow),
    /// *resolved* via the shadow call stack.
    Ret,
    /// Trap into the kernel. Serializing.
    Syscall,
    /// Return from kernel to userspace. Serializing.
    Sysret,
    /// Host-level kernel semantic hook, dispatched at commit. Serializing.
    KHook {
        /// Hook identifier interpreted by the registered handler.
        id: u16,
    },
    /// Speculation barrier (lfence): younger instructions do not execute
    /// until the fence retires.
    Fence,
    /// Evict the line containing `base + offset` from the whole hierarchy.
    CacheFlush {
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `dst = current cycle`. Executes at the ROB head (serialized read),
    /// modelling `lfence; rdtsc`.
    RdTsc {
        /// Destination register.
        dst: Reg,
    },
    /// No operation.
    Nop,
    /// Stop the simulation when committed.
    Halt,
}

impl Inst {
    /// Destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Inst::Alu { dst, .. }
            | Inst::AluImm { dst, .. }
            | Inst::MovImm { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::RdTsc { dst } => {
                if dst == REG_ZERO {
                    None
                } else {
                    Some(dst)
                }
            }
            _ => None,
        }
    }

    /// Source registers read by this instruction. `r0` appears here like
    /// any other register (it always reads zero and never has a producer).
    pub fn srcs(&self) -> Vec<Reg> {
        match *self {
            Inst::Alu { a, b, .. } => vec![a, b],
            Inst::AluImm { a, .. } => vec![a],
            Inst::Load { base, .. } => vec![base],
            Inst::Store { src, base, .. } => vec![src, base],
            Inst::Branch { a, b, .. } => vec![a, b],
            Inst::JumpInd { base } | Inst::CallInd { base } => vec![base],
            Inst::CacheFlush { base, .. } => vec![base],
            _ => vec![],
        }
    }

    /// Is this a control-flow instruction that can redirect fetch?
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::JumpInd { .. }
                | Inst::Call { .. }
                | Inst::CallInd { .. }
                | Inst::Ret
        )
    }

    /// Is this instruction serializing (fetch stops behind it; it executes
    /// only at the ROB head)?
    pub fn is_serializing(&self) -> bool {
        matches!(
            self,
            Inst::Syscall | Inst::Sysret | Inst::KHook { .. } | Inst::RdTsc { .. } | Inst::Halt
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, dst, a, b } => write!(f, "{op:?} r{dst}, r{a}, r{b}"),
            Inst::AluImm { op, dst, a, imm } => write!(f, "{op:?}i r{dst}, r{a}, {imm:#x}"),
            Inst::MovImm { dst, imm } => write!(f, "mov r{dst}, {imm:#x}"),
            Inst::Load {
                dst,
                base,
                offset,
                width,
            } => {
                write!(f, "ld.{:?} r{dst}, [r{base}{offset:+}]", width)
            }
            Inst::Store {
                src,
                base,
                offset,
                width,
            } => {
                write!(f, "st.{:?} r{src}, [r{base}{offset:+}]", width)
            }
            Inst::Branch { cond, a, b, target } => {
                write!(f, "b.{cond:?} r{a}, r{b}, {target:#x}")
            }
            Inst::Jump { target } => write!(f, "j {target:#x}"),
            Inst::JumpInd { base } => write!(f, "jr r{base}"),
            Inst::Call { target } => write!(f, "call {target:#x}"),
            Inst::CallInd { base } => write!(f, "callr r{base}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Syscall => write!(f, "syscall"),
            Inst::Sysret => write!(f, "sysret"),
            Inst::KHook { id } => write!(f, "khook {id}"),
            Inst::Fence => write!(f, "fence"),
            Inst::CacheFlush { base, offset } => write!(f, "clflush [r{base}{offset:+}]"),
            Inst::RdTsc { dst } => write!(f, "rdtsc r{dst}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

/// A forward-patched label used by the [`Assembler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// A tiny sequential assembler producing `(address, Inst)` pairs.
///
/// Forward branches are expressed through [`Label`]s:
///
/// ```
/// use persp_uarch::isa::{Assembler, Cond, Inst};
///
/// let mut asm = Assembler::new(0x1000);
/// let done = asm.new_label();
/// asm.branch(Cond::Eq, 1, 0, done);
/// asm.movi(2, 42);
/// asm.bind(done);
/// asm.push(Inst::Halt);
/// let text = asm.finish();
/// assert_eq!(text.len(), 3);
/// assert_eq!(text[0].0, 0x1000);
/// ```
#[derive(Debug)]
pub struct Assembler {
    base: u64,
    insts: Vec<Inst>,
    labels: Vec<Option<u64>>,
    patches: Vec<(usize, Label)>,
}

impl Assembler {
    /// Start assembling at `base`.
    pub fn new(base: u64) -> Self {
        Assembler {
            base,
            insts: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Address of the *next* instruction to be pushed.
    pub fn here(&self) -> u64 {
        self.base + self.insts.len() as u64 * INST_BYTES
    }

    /// Append an instruction, returning its address.
    pub fn push(&mut self, inst: Inst) -> u64 {
        let addr = self.here();
        self.insts.push(inst);
        addr
    }

    /// Allocate an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// `mov dst, imm`
    pub fn movi(&mut self, dst: Reg, imm: u64) -> u64 {
        self.push(Inst::MovImm { dst, imm })
    }

    /// `dst = op(a, imm)`
    pub fn alui(&mut self, op: AluOp, dst: Reg, a: Reg, imm: u64) -> u64 {
        self.push(Inst::AluImm { op, dst, a, imm })
    }

    /// `dst = op(a, b)`
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> u64 {
        self.push(Inst::Alu { op, dst, a, b })
    }

    /// 8-byte load.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) -> u64 {
        self.push(Inst::Load {
            dst,
            base,
            offset,
            width: Width::Q,
        })
    }

    /// 1-byte load.
    pub fn load_b(&mut self, dst: Reg, base: Reg, offset: i64) -> u64 {
        self.push(Inst::Load {
            dst,
            base,
            offset,
            width: Width::B,
        })
    }

    /// 8-byte store.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> u64 {
        self.push(Inst::Store {
            src,
            base,
            offset,
            width: Width::Q,
        })
    }

    /// Conditional branch to a label (patched at `finish`).
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) -> u64 {
        let idx = self.insts.len();
        self.patches.push((idx, label));
        self.push(Inst::Branch {
            cond,
            a,
            b,
            target: 0,
        })
    }

    /// Conditional branch to an absolute address.
    pub fn branch_to(&mut self, cond: Cond, a: Reg, b: Reg, target: u64) -> u64 {
        self.push(Inst::Branch { cond, a, b, target })
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, label: Label) -> u64 {
        let idx = self.insts.len();
        self.patches.push((idx, label));
        self.push(Inst::Jump { target: 0 })
    }

    /// Finish: patch labels, return `(address, instruction)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn finish(mut self) -> Vec<(u64, Inst)> {
        for (idx, label) in std::mem::take(&mut self.patches) {
            let target = self.labels[label.0].expect("label referenced but never bound");
            match &mut self.insts[idx] {
                Inst::Branch { target: t, .. } | Inst::Jump { target: t } => *t = target,
                other => panic!("patched instruction is not a branch: {other}"),
            }
        }
        self.insts
            .into_iter()
            .enumerate()
            .map(|(i, inst)| (self.base + i as u64 * INST_BYTES, inst))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_compute() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::SltU.apply(2, 3), 1);
        assert_eq!(AluOp::SltU.apply(3, 2), 0);
        assert_eq!(AluOp::Shl.apply(1, 12), 4096);
        assert_eq!(AluOp::Shr.apply(4096, 12), 1);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Xor.apply(0xff, 0x0f), 0xf0);
    }

    #[test]
    fn conds_evaluate_signedness() {
        assert!(Cond::Lt.eval(u64::MAX, 0), "-1 < 0 signed");
        assert!(!Cond::Ltu.eval(u64::MAX, 0), "max !< 0 unsigned");
        assert!(Cond::Geu.eval(5, 5));
        assert!(Cond::Ne.eval(1, 2));
    }

    #[test]
    fn zero_register_is_filtered() {
        let i = Inst::Alu {
            op: AluOp::Add,
            dst: REG_ZERO,
            a: REG_ZERO,
            b: 2,
        };
        assert_eq!(i.dst(), None, "r0 destination is discarded");
        assert_eq!(i.srcs(), vec![REG_ZERO, 2], "r0 sources still listed");
    }

    #[test]
    fn serializing_classification() {
        assert!(Inst::Syscall.is_serializing());
        assert!(Inst::KHook { id: 3 }.is_serializing());
        assert!(!Inst::Fence.is_serializing(), "fence lets fetch continue");
        assert!(!Inst::Load {
            dst: 1,
            base: 2,
            offset: 0,
            width: Width::Q
        }
        .is_serializing());
    }

    #[test]
    fn assembler_patches_forward_labels() {
        let mut a = Assembler::new(0x400);
        let skip = a.new_label();
        a.branch(Cond::Eq, 1, 2, skip);
        a.movi(3, 7);
        a.bind(skip);
        a.push(Inst::Halt);
        let text = a.finish();
        match text[0].1 {
            Inst::Branch { target, .. } => assert_eq!(target, 0x408),
            ref other => panic!("unexpected inst {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.jump(l);
        let _ = a.finish();
    }

    #[test]
    fn addresses_advance_by_inst_bytes() {
        let mut a = Assembler::new(0x1000);
        a.movi(1, 1);
        a.movi(2, 2);
        let text = a.finish();
        assert_eq!(text[0].0, 0x1000);
        assert_eq!(text[1].0, 0x1004);
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Ret.is_control());
        assert!(Inst::CallInd { base: 4 }.is_control());
        assert!(!Inst::Nop.is_control());
    }
}
