//! Simulation statistics collected by the core.

/// Counters accumulated while the pipeline runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles spent while the committed mode was kernel.
    pub kernel_cycles: u64,
    /// Cycles spent while the committed mode was user.
    pub user_cycles: u64,
    /// Instructions retired.
    pub committed_insts: u64,
    /// Loads retired.
    pub committed_loads: u64,
    /// Stores retired.
    pub committed_stores: u64,
    /// Conditional branches retired.
    pub committed_branches: u64,
    /// Control-flow squashes (branch, indirect, or return mispredictions).
    pub squashes: u64,
    /// Instructions discarded by squashes.
    pub squashed_insts: u64,
    /// Loads that issued a memory access speculatively and were later
    /// squashed — the transient accesses that leave covert-channel state.
    pub transient_loads_issued: u64,
    /// Syscall instructions retired.
    pub syscalls: u64,
    /// Loads that were blocked at least once by the speculation policy.
    pub loads_fenced: u64,
}

impl SimStats {
    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles spent in the kernel.
    pub fn kernel_time_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.kernel_cycles as f64 / self.cycles as f64
        }
    }

    /// Policy-blocked loads per thousand committed instructions
    /// (the "fences per kilo instruction" metric of §9.2).
    pub fn fences_per_kilo_inst(&self) -> f64 {
        if self.committed_insts == 0 {
            0.0
        } else {
            self.loads_fenced as f64 * 1000.0 / self.committed_insts as f64
        }
    }

    /// Difference of two snapshots (for region-of-interest measurement).
    pub fn delta_since(&self, earlier: &SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles - earlier.cycles,
            kernel_cycles: self.kernel_cycles - earlier.kernel_cycles,
            user_cycles: self.user_cycles - earlier.user_cycles,
            committed_insts: self.committed_insts - earlier.committed_insts,
            committed_loads: self.committed_loads - earlier.committed_loads,
            committed_stores: self.committed_stores - earlier.committed_stores,
            committed_branches: self.committed_branches - earlier.committed_branches,
            squashes: self.squashes - earlier.squashes,
            squashed_insts: self.squashed_insts - earlier.squashed_insts,
            transient_loads_issued: self.transient_loads_issued - earlier.transient_loads_issued,
            syscalls: self.syscalls - earlier.syscalls,
            loads_fenced: self.loads_fenced - earlier.loads_fenced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_fractions() {
        let s = SimStats {
            cycles: 100,
            kernel_cycles: 60,
            user_cycles: 40,
            committed_insts: 250,
            loads_fenced: 5,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.kernel_time_fraction() - 0.6).abs() < 1e-12);
        assert!((s.fences_per_kilo_inst() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.kernel_time_fraction(), 0.0);
        assert_eq!(s.fences_per_kilo_inst(), 0.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = SimStats {
            cycles: 10,
            committed_insts: 20,
            ..Default::default()
        };
        let b = SimStats {
            cycles: 25,
            committed_insts: 70,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 15);
        assert_eq!(d.committed_insts, 50);
    }
}
