//! Simulation statistics collected by the core.

use crate::metrics::{MetricsRegistry, MetricsSource};

/// Attribution of stall cycles (cycles in which nothing committed) to
/// the mechanism holding the ROB head back — the cycle-level counterpart
/// of the fence counts in Table 10.1. The classes partition the stall
/// cycles exactly: [`StallBreakdown::total`] always equals
/// [`SimStats::stall_cycles`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Head load fenced by the ISV mechanism (outside the view).
    pub isv_fence: u64,
    /// Head load fenced by the DSV mechanism (foreign/unknown data).
    pub dsv_fence: u64,
    /// Head load blocked conservatively on an ISV-cache miss.
    pub isv_miss: u64,
    /// Head load blocked conservatively on a DSVMT-cache miss.
    pub dsvmt_miss: u64,
    /// Pipeline refilling after a squash (mispredict redirect penalty).
    pub squash: u64,
    /// Head load waiting for its visibility point under a baseline
    /// policy (FENCE / DOM / STT).
    pub vp_wait: u64,
    /// Front end starved the ROB (fetch latency, serializing restart,
    /// I-cache miss) — no blocked load at fault.
    pub frontend: u64,
    /// Back end: head waiting on operands or execution latency.
    pub backend: u64,
}

impl StallBreakdown {
    /// Total attributed stall cycles (sums the partition).
    pub fn total(&self) -> u64 {
        self.isv_fence
            + self.dsv_fence
            + self.isv_miss
            + self.dsvmt_miss
            + self.squash
            + self.vp_wait
            + self.frontend
            + self.backend
    }

    /// Fieldwise difference (for region-of-interest measurement).
    pub fn delta_since(&self, earlier: &StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            isv_fence: self.isv_fence - earlier.isv_fence,
            dsv_fence: self.dsv_fence - earlier.dsv_fence,
            isv_miss: self.isv_miss - earlier.isv_miss,
            dsvmt_miss: self.dsvmt_miss - earlier.dsvmt_miss,
            squash: self.squash - earlier.squash,
            vp_wait: self.vp_wait - earlier.vp_wait,
            frontend: self.frontend - earlier.frontend,
            backend: self.backend - earlier.backend,
        }
    }
}

impl MetricsSource for StallBreakdown {
    fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.set(format!("{prefix}.isv_fence"), self.isv_fence);
        reg.set(format!("{prefix}.dsv_fence"), self.dsv_fence);
        reg.set(format!("{prefix}.isv_miss"), self.isv_miss);
        reg.set(format!("{prefix}.dsvmt_miss"), self.dsvmt_miss);
        reg.set(format!("{prefix}.squash"), self.squash);
        reg.set(format!("{prefix}.vp_wait"), self.vp_wait);
        reg.set(format!("{prefix}.frontend"), self.frontend);
        reg.set(format!("{prefix}.backend"), self.backend);
    }
}

/// Counters maintained by the speculative non-interference checker
/// (shadow oracle + leakage monitor, [`crate::sni`]). All zero when the
/// checker is not attached. Exported under `{prefix}.sni.*` — distinct
/// from the `{prefix}.stall.*` namespace so the stall-partition
/// invariant is untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SniCounters {
    /// Retired instructions replayed by the in-order shadow oracle.
    pub shadow_checked: u64,
    /// Architectural-state divergences between the shadow replay and the
    /// out-of-order pipeline. Any nonzero value is a simulator bug.
    pub shadow_mismatches: u64,
    /// Speculative kernel loads the policy allowed but the pristine
    /// ground-truth metadata says must block — SNI violations at issue.
    pub unsafe_issues: u64,
    /// Speculative loads that read data outside the current context's
    /// DSV (secret taint roots created).
    pub secret_spec_loads: u64,
    /// Transient (later-squashed) cache-state transmissions whose address
    /// carried secret taint — observable leaks under the covert-channel
    /// observation model.
    pub tainted_transmits: u64,
    /// Secret taint roots that retired architecturally (not transient);
    /// dropped from leak attribution, counted for visibility.
    pub committed_secret_roots: u64,
}

impl SniCounters {
    /// Fieldwise difference (for region-of-interest measurement).
    pub fn delta_since(&self, earlier: &SniCounters) -> SniCounters {
        SniCounters {
            shadow_checked: self.shadow_checked - earlier.shadow_checked,
            shadow_mismatches: self.shadow_mismatches - earlier.shadow_mismatches,
            unsafe_issues: self.unsafe_issues - earlier.unsafe_issues,
            secret_spec_loads: self.secret_spec_loads - earlier.secret_spec_loads,
            tainted_transmits: self.tainted_transmits - earlier.tainted_transmits,
            committed_secret_roots: self.committed_secret_roots - earlier.committed_secret_roots,
        }
    }

    /// Total SNI violations: ground-truth-unsafe issues plus tainted
    /// transient transmissions (the two event classes the checker treats
    /// as non-interference failures).
    pub fn violations(&self) -> u64 {
        self.unsafe_issues + self.tainted_transmits
    }
}

impl MetricsSource for SniCounters {
    fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.set(format!("{prefix}.shadow_checked"), self.shadow_checked);
        reg.set(
            format!("{prefix}.shadow_mismatches"),
            self.shadow_mismatches,
        );
        reg.set(format!("{prefix}.unsafe_issues"), self.unsafe_issues);
        reg.set(
            format!("{prefix}.secret_spec_loads"),
            self.secret_spec_loads,
        );
        reg.set(
            format!("{prefix}.tainted_transmits"),
            self.tainted_transmits,
        );
        reg.set(
            format!("{prefix}.committed_secret_roots"),
            self.committed_secret_roots,
        );
    }
}

/// Counters accumulated while the pipeline runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles spent while the committed mode was kernel.
    pub kernel_cycles: u64,
    /// Cycles spent while the committed mode was user.
    pub user_cycles: u64,
    /// Instructions retired.
    pub committed_insts: u64,
    /// Loads retired.
    pub committed_loads: u64,
    /// Stores retired.
    pub committed_stores: u64,
    /// Conditional branches retired.
    pub committed_branches: u64,
    /// Control-flow squashes (branch, indirect, or return mispredictions).
    pub squashes: u64,
    /// Instructions discarded by squashes.
    pub squashed_insts: u64,
    /// Loads that issued a memory access speculatively and were later
    /// squashed — the transient accesses that leave covert-channel state.
    pub transient_loads_issued: u64,
    /// Syscall instructions retired.
    pub syscalls: u64,
    /// Loads that were blocked at least once by the speculation policy.
    pub loads_fenced: u64,
    /// Cycles in which no instruction committed.
    pub stall_cycles: u64,
    /// Events where a taint set's fixed root array filled and a new root
    /// had to saturate the set (conservative over-taint, never dropped
    /// attribution — but worth surfacing).
    pub taint_roots_overflow: u64,
    /// Speculative non-interference checker counters (zero when the
    /// checker is not attached).
    pub sni: SniCounters,
    /// Attribution of the stall cycles to their blocking mechanism.
    pub stalls: StallBreakdown,
}

impl SimStats {
    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles spent in the kernel.
    pub fn kernel_time_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.kernel_cycles as f64 / self.cycles as f64
        }
    }

    /// Policy-blocked loads per thousand committed instructions
    /// (the "fences per kilo instruction" metric of §9.2).
    pub fn fences_per_kilo_inst(&self) -> f64 {
        if self.committed_insts == 0 {
            0.0
        } else {
            self.loads_fenced as f64 * 1000.0 / self.committed_insts as f64
        }
    }

    /// Difference of two snapshots (for region-of-interest measurement).
    pub fn delta_since(&self, earlier: &SimStats) -> SimStats {
        SimStats {
            cycles: self.cycles - earlier.cycles,
            kernel_cycles: self.kernel_cycles - earlier.kernel_cycles,
            user_cycles: self.user_cycles - earlier.user_cycles,
            committed_insts: self.committed_insts - earlier.committed_insts,
            committed_loads: self.committed_loads - earlier.committed_loads,
            committed_stores: self.committed_stores - earlier.committed_stores,
            committed_branches: self.committed_branches - earlier.committed_branches,
            squashes: self.squashes - earlier.squashes,
            squashed_insts: self.squashed_insts - earlier.squashed_insts,
            transient_loads_issued: self.transient_loads_issued - earlier.transient_loads_issued,
            syscalls: self.syscalls - earlier.syscalls,
            loads_fenced: self.loads_fenced - earlier.loads_fenced,
            stall_cycles: self.stall_cycles - earlier.stall_cycles,
            taint_roots_overflow: self.taint_roots_overflow - earlier.taint_roots_overflow,
            sni: self.sni.delta_since(&earlier.sni),
            stalls: self.stalls.delta_since(&earlier.stalls),
        }
    }
}

impl MetricsSource for SimStats {
    fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.set(format!("{prefix}.cycles"), self.cycles);
        reg.set(format!("{prefix}.kernel_cycles"), self.kernel_cycles);
        reg.set(format!("{prefix}.user_cycles"), self.user_cycles);
        reg.set(format!("{prefix}.committed_insts"), self.committed_insts);
        reg.set(format!("{prefix}.committed_loads"), self.committed_loads);
        reg.set(format!("{prefix}.committed_stores"), self.committed_stores);
        reg.set(
            format!("{prefix}.committed_branches"),
            self.committed_branches,
        );
        reg.set(format!("{prefix}.squashes"), self.squashes);
        reg.set(format!("{prefix}.squashed_insts"), self.squashed_insts);
        reg.set(
            format!("{prefix}.transient_loads_issued"),
            self.transient_loads_issued,
        );
        reg.set(format!("{prefix}.syscalls"), self.syscalls);
        reg.set(format!("{prefix}.loads_fenced"), self.loads_fenced);
        reg.set(format!("{prefix}.stall_cycles"), self.stall_cycles);
        reg.set(
            format!("{prefix}.taint_roots_overflow"),
            self.taint_roots_overflow,
        );
        self.sni.export_metrics(&format!("{prefix}.sni"), reg);
        self.stalls.export_metrics(&format!("{prefix}.stall"), reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_fractions() {
        let s = SimStats {
            cycles: 100,
            kernel_cycles: 60,
            user_cycles: 40,
            committed_insts: 250,
            loads_fenced: 5,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.kernel_time_fraction() - 0.6).abs() < 1e-12);
        assert!((s.fences_per_kilo_inst() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.kernel_time_fraction(), 0.0);
        assert_eq!(s.fences_per_kilo_inst(), 0.0);
    }

    #[test]
    fn stall_breakdown_total_and_delta() {
        let a = StallBreakdown {
            isv_fence: 1,
            dsv_fence: 2,
            isv_miss: 3,
            dsvmt_miss: 4,
            squash: 5,
            vp_wait: 6,
            frontend: 7,
            backend: 8,
        };
        assert_eq!(a.total(), 36);
        let b = StallBreakdown {
            isv_fence: 10,
            dsv_fence: 12,
            isv_miss: 13,
            dsvmt_miss: 14,
            squash: 15,
            vp_wait: 16,
            frontend: 17,
            backend: 18,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.total(), b.total() - a.total());
        assert_eq!(d.isv_fence, 9);
        assert_eq!(d.backend, 10);
    }

    #[test]
    fn metrics_export_covers_the_stall_partition() {
        let mut s = SimStats {
            cycles: 10,
            stall_cycles: 3,
            ..Default::default()
        };
        s.stalls.vp_wait = 2;
        s.stalls.frontend = 1;
        let mut reg = MetricsRegistry::new();
        s.export_metrics("sim", &mut reg);
        assert_eq!(reg.get("sim.cycles"), Some(10));
        assert_eq!(reg.get("sim.stall.vp_wait"), Some(2));
        let stall_sum: u64 = reg
            .iter()
            .filter(|(k, _)| k.starts_with("sim.stall."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(stall_sum, reg.get("sim.stall_cycles").unwrap());
    }

    #[test]
    fn sni_and_overflow_counters_export_and_delta() {
        let mut s = SimStats {
            taint_roots_overflow: 4,
            ..Default::default()
        };
        s.sni.shadow_checked = 100;
        s.sni.unsafe_issues = 2;
        s.sni.tainted_transmits = 3;
        let mut reg = MetricsRegistry::new();
        s.export_metrics("sim", &mut reg);
        assert_eq!(reg.get("sim.taint_roots_overflow"), Some(4));
        assert_eq!(reg.get("sim.sni.shadow_checked"), Some(100));
        assert_eq!(reg.get("sim.sni.unsafe_issues"), Some(2));
        assert_eq!(reg.get("sim.sni.tainted_transmits"), Some(3));
        assert_eq!(s.sni.violations(), 5);
        // The sni.* namespace must never pollute the stall partition.
        assert!(reg
            .iter()
            .filter(|(k, _)| k.starts_with("sim.stall."))
            .all(|(_, v)| v == 0));
        let d = s.delta_since(&SimStats::default());
        assert_eq!(d.taint_roots_overflow, 4);
        assert_eq!(d.sni.shadow_checked, 100);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = SimStats {
            cycles: 10,
            committed_insts: 20,
            ..Default::default()
        };
        let b = SimStats {
            cycles: 25,
            committed_insts: 70,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 15);
        assert_eq!(d.committed_insts, 50);
    }
}
