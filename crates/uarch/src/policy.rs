//! Speculation-control policies.
//!
//! A [`SpecPolicy`] decides, per speculative *transmitter* (load), whether
//! it may issue or must wait for its visibility point (VP). This is the
//! pliable interface of the paper: the hardware mechanism is always "block
//! until VP", and the policy decides *which* instructions need it.
//!
//! This crate ships the evaluation baselines of Chapter 7 and §9.1:
//!
//! * [`UnsafePolicy`] — no protection (the UNSAFE baseline).
//! * [`FencePolicy`] — delay every speculative load until all prior
//!   branches resolve (the FENCE baseline).
//! * [`DomPolicy`] — Delay-on-Miss: speculative loads that hit in the L1
//!   proceed; misses wait for the VP.
//! * [`SttPolicy`] — Speculative Taint Tracking: only loads whose *address*
//!   depends on speculatively-accessed data are delayed.
//! * [`SpotMitigations`] — deployed software spot mitigations
//!   (KPTI + Retpoline): per-syscall page-table switch cost and
//!   no speculation across indirect branches.
//!
//! Perspective's own policy lives in the `perspective` crate and implements
//! this same trait.

use crate::machine::{Asid, Mode};

/// Everything a policy may inspect when a speculative load wants to issue.
#[derive(Debug, Clone, Copy)]
pub struct LoadCtx {
    /// Program counter of the load instruction.
    pub pc: u64,
    /// Effective data address.
    pub addr: u64,
    /// Privilege mode at issue.
    pub mode: Mode,
    /// Current context.
    pub asid: Asid,
    /// Is there an older unresolved branch (i.e. is the load speculative)?
    pub speculative: bool,
    /// Does the address derive from a speculatively loaded value (STT)?
    pub tainted_addr: bool,
    /// Would the access hit in the L1 data cache (DOM)?
    pub l1_hit: bool,
    /// Syscall currently being serviced, if any (per-syscall ISVs).
    pub cur_sysno: Option<u16>,
}

/// Which mechanism blocked a load (for Table 10.1-style accounting).
///
/// The `*Miss` variants distinguish conservative blocks caused by a
/// metadata-cache miss from definitive out-of-view answers; they fold
/// into the same ISV/DSV totals in [`PolicyCounters`] and the fence
/// breakdown, but drive separate stall-cycle attribution classes
/// (see `persp_uarch::stats::StallBreakdown`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockSource {
    /// The FENCE baseline.
    Fence,
    /// Delay-on-Miss.
    Dom,
    /// Speculative taint tracking.
    Stt,
    /// Outside the instruction speculation view (ISV-cache hit, bit clear).
    Isv,
    /// ISV-cache miss: blocked conservatively while the refill runs.
    IsvMiss,
    /// Outside the data speculation view (DSVMT-cache hit, bit clear).
    Dsv,
    /// DSVMT-cache miss: blocked conservatively while the refill runs.
    DsvmtMiss,
    /// Access to memory with unknown ownership.
    UnknownAlloc,
}

/// Policy verdict for one load issue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadDecision {
    /// The load may issue speculatively now.
    Allow,
    /// The load must wait until it reaches its visibility point.
    BlockUntilVp(BlockSource),
}

/// Counters every policy maintains, reported in the evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyCounters {
    /// Loads checked.
    pub loads_checked: u64,
    /// Loads allowed to issue speculatively.
    pub allowed: u64,
    /// Loads blocked, keyed by source.
    pub blocked_fence: u64,
    /// Loads blocked by DOM.
    pub blocked_dom: u64,
    /// Loads blocked by STT.
    pub blocked_stt: u64,
    /// Loads blocked by the ISV mechanism.
    pub blocked_isv: u64,
    /// Loads blocked by the DSV mechanism.
    pub blocked_dsv: u64,
    /// Loads blocked because ownership was unknown.
    pub blocked_unknown: u64,
}

impl PolicyCounters {
    /// Record a decision.
    pub fn record(&mut self, d: LoadDecision) {
        self.loads_checked += 1;
        match d {
            LoadDecision::Allow => self.allowed += 1,
            LoadDecision::BlockUntilVp(src) => match src {
                BlockSource::Fence => self.blocked_fence += 1,
                BlockSource::Dom => self.blocked_dom += 1,
                BlockSource::Stt => self.blocked_stt += 1,
                BlockSource::Isv | BlockSource::IsvMiss => self.blocked_isv += 1,
                BlockSource::Dsv | BlockSource::DsvmtMiss => self.blocked_dsv += 1,
                BlockSource::UnknownAlloc => self.blocked_unknown += 1,
            },
        }
    }

    /// Total blocked loads.
    pub fn total_blocked(&self) -> u64 {
        self.blocked_fence
            + self.blocked_dom
            + self.blocked_stt
            + self.blocked_isv
            + self.blocked_dsv
            + self.blocked_unknown
    }
}

impl crate::metrics::MetricsSource for PolicyCounters {
    fn export_metrics(&self, prefix: &str, reg: &mut crate::metrics::MetricsRegistry) {
        reg.set(format!("{prefix}.loads_checked"), self.loads_checked);
        reg.set(format!("{prefix}.allowed"), self.allowed);
        reg.set(format!("{prefix}.blocked_fence"), self.blocked_fence);
        reg.set(format!("{prefix}.blocked_dom"), self.blocked_dom);
        reg.set(format!("{prefix}.blocked_stt"), self.blocked_stt);
        reg.set(format!("{prefix}.blocked_isv"), self.blocked_isv);
        reg.set(format!("{prefix}.blocked_dsv"), self.blocked_dsv);
        reg.set(format!("{prefix}.blocked_unknown"), self.blocked_unknown);
    }
}

/// A speculation-control policy plugged into the core.
pub trait SpecPolicy {
    /// Human-readable scheme name ("UNSAFE", "FENCE", "PERSPECTIVE", ...).
    fn name(&self) -> &'static str;

    /// Decide whether a speculative load may issue.
    fn check_load(&mut self, ctx: &LoadCtx) -> LoadDecision;

    /// Called when a load that was previously *allowed* reaches its
    /// visibility point — Perspective uses this for deferred LRU updates.
    fn on_load_vp(&mut self, _ctx: &LoadCtx) {}

    /// Extra cycles charged at syscall entry (KPTI-style page-table switch).
    fn syscall_entry_cost(&self) -> u64 {
        0
    }

    /// Extra cycles charged at syscall exit.
    fn syscall_exit_cost(&self) -> u64 {
        0
    }

    /// May the front-end *predict through* indirect jumps/calls? Retpolines
    /// return `false`: fetch stalls until the target resolves.
    fn predict_indirect(&self) -> bool {
        true
    }

    /// Accumulated counters.
    fn counters(&self) -> PolicyCounters;

    /// Reset counters between measurement regions.
    fn reset_counters(&mut self);

    /// Downcast support for policies exposing richer statistics (e.g.
    /// Perspective's fence breakdown); `None` for plain baselines.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

macro_rules! counters_boilerplate {
    () => {
        fn counters(&self) -> PolicyCounters {
            self.counters.clone()
        }
        fn reset_counters(&mut self) {
            self.counters = PolicyCounters::default();
        }
    };
}

/// The UNSAFE baseline: every speculative load issues immediately.
#[derive(Debug, Default)]
pub struct UnsafePolicy {
    counters: PolicyCounters,
}

impl UnsafePolicy {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpecPolicy for UnsafePolicy {
    fn name(&self) -> &'static str {
        "UNSAFE"
    }
    fn check_load(&mut self, _ctx: &LoadCtx) -> LoadDecision {
        let d = LoadDecision::Allow;
        self.counters.record(d);
        d
    }
    counters_boilerplate!();
}

/// The FENCE baseline: "delays all speculative loads until all prior
/// branches are resolved" (Chapter 7).
#[derive(Debug, Default)]
pub struct FencePolicy {
    counters: PolicyCounters,
}

impl FencePolicy {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpecPolicy for FencePolicy {
    fn name(&self) -> &'static str {
        "FENCE"
    }
    fn check_load(&mut self, ctx: &LoadCtx) -> LoadDecision {
        let d = if ctx.speculative {
            LoadDecision::BlockUntilVp(BlockSource::Fence)
        } else {
            LoadDecision::Allow
        };
        self.counters.record(d);
        d
    }
    counters_boilerplate!();
}

/// Delay-on-Miss [Sakalis et al., ISCA'19]: speculative loads that hit in
/// the L1 proceed (their timing is already observable), misses are delayed
/// until non-speculative.
#[derive(Debug, Default)]
pub struct DomPolicy {
    counters: PolicyCounters,
}

impl DomPolicy {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpecPolicy for DomPolicy {
    fn name(&self) -> &'static str {
        "DOM"
    }
    fn check_load(&mut self, ctx: &LoadCtx) -> LoadDecision {
        let d = if ctx.speculative && !ctx.l1_hit {
            LoadDecision::BlockUntilVp(BlockSource::Dom)
        } else {
            LoadDecision::Allow
        };
        self.counters.record(d);
        d
    }
    counters_boilerplate!();
}

/// Speculative Taint Tracking [Yu et al., MICRO'19]: loads whose address
/// depends on speculatively accessed data are delayed until the source data
/// becomes non-speculative; everything else proceeds.
#[derive(Debug, Default)]
pub struct SttPolicy {
    counters: PolicyCounters,
}

impl SttPolicy {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpecPolicy for SttPolicy {
    fn name(&self) -> &'static str {
        "STT"
    }
    fn check_load(&mut self, ctx: &LoadCtx) -> LoadDecision {
        let d = if ctx.speculative && ctx.tainted_addr {
            LoadDecision::BlockUntilVp(BlockSource::Stt)
        } else {
            LoadDecision::Allow
        };
        self.counters.record(d);
        d
    }
    counters_boilerplate!();
}

/// Deployed software spot mitigations (§9.1's comparison point): KPTI page
/// table isolation (a fixed cost on each kernel entry/exit) plus Retpoline
/// (no speculation across indirect branches). Note these are *spot*
/// mitigations: they do not block Spectre v1 gadgets at all.
#[derive(Debug)]
pub struct SpotMitigations {
    counters: PolicyCounters,
    kpti: bool,
    entry_cost: u64,
    exit_cost: u64,
}

impl SpotMitigations {
    /// KPTI + Retpoline with typical costs (~200 cycles per kernel
    /// crossing for the page-table switch and TLB effects).
    pub fn kpti_retpoline() -> Self {
        SpotMitigations {
            counters: PolicyCounters::default(),
            kpti: true,
            entry_cost: 200,
            exit_cost: 200,
        }
    }

    /// Retpoline only (the "without KPTI" variant of §9.1).
    pub fn retpoline_only() -> Self {
        SpotMitigations {
            counters: PolicyCounters::default(),
            kpti: false,
            entry_cost: 0,
            exit_cost: 0,
        }
    }
}

impl SpecPolicy for SpotMitigations {
    fn name(&self) -> &'static str {
        if self.kpti {
            "KPTI+RETPOLINE"
        } else {
            "RETPOLINE"
        }
    }
    fn check_load(&mut self, ctx: &LoadCtx) -> LoadDecision {
        // Spot mitigations leave Spectre v1 loads unprotected.
        let _ = ctx;
        let d = LoadDecision::Allow;
        self.counters.record(d);
        d
    }
    fn syscall_entry_cost(&self) -> u64 {
        self.entry_cost
    }
    fn syscall_exit_cost(&self) -> u64 {
        self.exit_cost
    }
    fn predict_indirect(&self) -> bool {
        false // retpoline: stall until the target resolves
    }
    counters_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(speculative: bool, tainted: bool, l1_hit: bool) -> LoadCtx {
        LoadCtx {
            pc: 0x1000,
            addr: 0x2000,
            mode: Mode::Kernel,
            asid: 1,
            speculative,
            tainted_addr: tainted,
            l1_hit,
            cur_sysno: None,
        }
    }

    #[test]
    fn unsafe_always_allows() {
        let mut p = UnsafePolicy::new();
        assert_eq!(p.check_load(&ctx(true, true, false)), LoadDecision::Allow);
        assert_eq!(p.counters().allowed, 1);
    }

    #[test]
    fn fence_blocks_only_speculative() {
        let mut p = FencePolicy::new();
        assert_eq!(
            p.check_load(&ctx(true, false, true)),
            LoadDecision::BlockUntilVp(BlockSource::Fence)
        );
        assert_eq!(p.check_load(&ctx(false, false, false)), LoadDecision::Allow);
        assert_eq!(p.counters().blocked_fence, 1);
        assert_eq!(p.counters().allowed, 1);
    }

    #[test]
    fn dom_allows_l1_hits() {
        let mut p = DomPolicy::new();
        assert_eq!(p.check_load(&ctx(true, false, true)), LoadDecision::Allow);
        assert_eq!(
            p.check_load(&ctx(true, false, false)),
            LoadDecision::BlockUntilVp(BlockSource::Dom)
        );
    }

    #[test]
    fn stt_blocks_only_tainted_addresses() {
        let mut p = SttPolicy::new();
        assert_eq!(p.check_load(&ctx(true, false, false)), LoadDecision::Allow);
        assert_eq!(
            p.check_load(&ctx(true, true, false)),
            LoadDecision::BlockUntilVp(BlockSource::Stt)
        );
        assert_eq!(p.check_load(&ctx(false, true, false)), LoadDecision::Allow);
    }

    #[test]
    fn spot_mitigations_shape() {
        let p = SpotMitigations::kpti_retpoline();
        assert_eq!(p.syscall_entry_cost(), 200);
        assert!(!p.predict_indirect());
        let p2 = SpotMitigations::retpoline_only();
        assert_eq!(p2.syscall_entry_cost(), 0);
        assert!(!p2.predict_indirect());
    }

    #[test]
    fn counters_reset() {
        let mut p = FencePolicy::new();
        p.check_load(&ctx(true, false, false));
        p.reset_counters();
        assert_eq!(p.counters(), PolicyCounters::default());
    }

    #[test]
    fn counters_total_blocked_sums_sources() {
        let mut c = PolicyCounters::default();
        c.record(LoadDecision::BlockUntilVp(BlockSource::Isv));
        c.record(LoadDecision::BlockUntilVp(BlockSource::Dsv));
        c.record(LoadDecision::Allow);
        assert_eq!(c.total_blocked(), 2);
        assert_eq!(c.loads_checked, 3);
    }
}
