//! Branch prediction: a TAGE-inspired direction predictor, a partially
//! tagged BTB, and a return stack buffer (RSB).
//!
//! Two properties matter for the security experiments and are modelled
//! faithfully:
//!
//! 1. **Predictor state is shared across contexts and privilege levels**
//!    (no flush on syscall or context switch), so an attacker can mistrain
//!    a victim branch (Spectre v1) or inject targets (Spectre v2 / BHI).
//! 2. **The BTB uses partial tags**, so two branches at different addresses
//!    can alias; and **the RSB falls back to the BTB on underflow**, which
//!    is the Retbleed/Spectre-RSB hijack mechanism.
//!
//! The direction predictor is a 3-component TAGE-lite (bimodal base +
//! two tagged tables with 8- and 16-bit global history folds), standing in
//! for the paper's L-TAGE (Table 7.1).

/// Global branch-history register (newest outcome in bit 0).
pub type History = u64;

const BIMODAL_BITS: usize = 12;
const TAGGED_BITS: usize = 10;
const TAG_BITS: u32 = 9;

#[derive(Debug, Clone, Copy)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // -4..=3, taken if >= 0
    useful: u8,
}

/// TAGE-lite conditional branch direction predictor.
#[derive(Debug)]
pub struct DirectionPredictor {
    bimodal: Vec<i8>, // 2-bit counters, taken if >= 0, range -2..=1
    tagged: [Vec<TaggedEntry>; 2],
    hist_len: [u32; 2],
}

fn fold(hist: History, len: u32, bits: u32) -> u64 {
    let mut h = hist & ((1u64 << len.min(63)) - 1);
    let mut out = 0u64;
    while h != 0 {
        out ^= h & ((1 << bits) - 1);
        h >>= bits;
    }
    out
}

impl DirectionPredictor {
    /// A predictor with paper-scale tables.
    pub fn new() -> Self {
        DirectionPredictor {
            bimodal: vec![0; 1 << BIMODAL_BITS],
            tagged: [
                vec![
                    TaggedEntry {
                        tag: 0,
                        ctr: 0,
                        useful: 0
                    };
                    1 << TAGGED_BITS
                ],
                vec![
                    TaggedEntry {
                        tag: 0,
                        ctr: 0,
                        useful: 0
                    };
                    1 << TAGGED_BITS
                ],
            ],
            hist_len: [8, 16],
        }
    }

    fn tagged_index(&self, pc: u64, hist: History, comp: usize) -> (usize, u16) {
        let folded = fold(hist, self.hist_len[comp], TAGGED_BITS as u32);
        let idx = ((pc >> 2) ^ folded ^ (folded << 1)) as usize & ((1 << TAGGED_BITS) - 1);
        let tag = (((pc >> 2) ^ fold(hist, self.hist_len[comp], TAG_BITS)) & ((1 << TAG_BITS) - 1))
            as u16;
        (idx, tag)
    }

    /// Predict the direction of the conditional branch at `pc` under global
    /// history `hist`.
    pub fn predict(&self, pc: u64, hist: History) -> bool {
        // Longest matching tagged component wins.
        for comp in (0..2).rev() {
            let (idx, tag) = self.tagged_index(pc, hist, comp);
            let e = &self.tagged[comp][idx];
            if e.tag == tag && e.useful > 0 {
                return e.ctr >= 0;
            }
        }
        self.bimodal[(pc >> 2) as usize & ((1 << BIMODAL_BITS) - 1)] >= 0
    }

    /// Train with the resolved outcome.
    pub fn update(&mut self, pc: u64, hist: History, taken: bool) {
        let predicted = self.predict(pc, hist);
        // Update the provider component (or bimodal).
        let mut provided = false;
        for comp in (0..2).rev() {
            let (idx, tag) = self.tagged_index(pc, hist, comp);
            let e = &mut self.tagged[comp][idx];
            if e.tag == tag && e.useful > 0 {
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if predicted == taken {
                    e.useful = e.useful.saturating_add(1).min(3);
                }
                provided = true;
                break;
            }
        }
        if !provided {
            let b = &mut self.bimodal[(pc >> 2) as usize & ((1 << BIMODAL_BITS) - 1)];
            *b = (*b + if taken { 1 } else { -1 }).clamp(-2, 1);
        }
        // On a misprediction, allocate in a tagged component.
        if predicted != taken {
            for comp in 0..2 {
                let (idx, tag) = self.tagged_index(pc, hist, comp);
                let e = &mut self.tagged[comp][idx];
                if e.useful == 0 {
                    *e = TaggedEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        useful: 1,
                    };
                    break;
                }
                e.useful -= 1; // age out
            }
        }
    }
}

impl Default for DirectionPredictor {
    fn default() -> Self {
        Self::new()
    }
}

/// Branch-target-buffer hardening mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbMode {
    /// Partial PC tags, no privilege isolation, no history mixing —
    /// directly injectable across privilege levels (classic Spectre v2).
    Legacy,
    /// eIBRS-style: entries are privilege-tagged (user-installed entries
    /// never serve kernel-mode predictions) and both index and tag mix in
    /// the global branch history. Blocks cross-privilege target
    /// injection — but the history register itself is attacker-
    /// controlled across the user→kernel transition, which is exactly
    /// the Branch History Injection hole (Table 4.1, row 5).
    Ibrs,
}

/// Branch target buffer with partial tags (aliasable — deliberately).
#[derive(Debug)]
pub struct Btb {
    entries: Vec<Option<BtbEntry>>,
    index_mask: u64,
    mode: BtbMode,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    partial_tag: u16,
    target: u64,
    from_kernel: bool,
}

impl Btb {
    /// A BTB with `entries` slots (must be a power of two). Table 7.1 uses
    /// 4096. Legacy mode.
    pub fn new(entries: usize) -> Self {
        Self::with_mode(entries, BtbMode::Legacy)
    }

    /// A BTB with an explicit hardening mode.
    pub fn with_mode(entries: usize, mode: BtbMode) -> Self {
        assert!(entries.is_power_of_two());
        Btb {
            entries: vec![None; entries],
            index_mask: (entries - 1) as u64,
            mode,
        }
    }

    /// The hardening mode.
    pub fn mode(&self) -> BtbMode {
        self.mode
    }

    fn hist_fold(&self, hist: History) -> u64 {
        match self.mode {
            BtbMode::Legacy => 0,
            // Fold 44 bits of history into 22 bits: the low 12 feed the
            // index, the next 8 the tag (disjoint, as in real BHB
            // hashing where different history bits reach different
            // structure bits).
            BtbMode::Ibrs => {
                let h = hist & 0xFFF_FFFF_FFFF;
                (h & 0x3F_FFFF) ^ (h >> 22)
            }
        }
    }

    fn index(&self, pc: u64, hist: History) -> usize {
        (((pc >> 2) ^ self.hist_fold(hist)) & self.index_mask) as usize
    }

    fn partial_tag(&self, pc: u64, hist: History) -> u16 {
        // Only 8 tag bits: addresses that agree in index and these bits
        // alias — the Spectre v2 / BHI injection primitive. The tag mixes
        // history bits disjoint from the index's.
        ((((pc >> 2) >> self.index_mask.count_ones()) ^ (self.hist_fold(hist) >> 12)) & 0xff) as u16
    }

    /// Predicted target for the control transfer at `pc` under history
    /// `hist`, predicted in kernel (`true`) or user (`false`) mode.
    pub fn predict(&self, pc: u64, hist: History, in_kernel: bool) -> Option<u64> {
        let e = self.entries[self.index(pc, hist)]?;
        if self.mode == BtbMode::Ibrs && e.from_kernel != in_kernel {
            return None; // privilege-tagged: no cross-privilege service
        }
        (e.partial_tag == self.partial_tag(pc, hist)).then_some(e.target)
    }

    /// Install / update the mapping `pc -> target`.
    pub fn install(&mut self, pc: u64, hist: History, target: u64, in_kernel: bool) {
        let idx = self.index(pc, hist);
        self.entries[idx] = Some(BtbEntry {
            partial_tag: self.partial_tag(pc, hist),
            target,
            from_kernel: in_kernel,
        });
    }

    /// Compute a *different* address that aliases with `pc` in this BTB
    /// under the same history (same index and partial tag). Used by attack
    /// builders (Legacy-mode injection).
    pub fn aliasing_pc(&self, pc: u64) -> u64 {
        let stride = (self.index_mask + 1) << (2 + 8); // skip index+tag bits
        pc.wrapping_add(stride)
    }

    /// Number of live entries mapping to `target` (diagnostics).
    pub fn entries_with_target(&self, target: u64) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| e.target == target)
            .count()
    }

    /// Brute-force a user-controllable history value that makes a lookup
    /// of `pc` (in kernel mode) hit a currently installed kernel entry
    /// with target `wanted` — the offline Branch-History-Buffer search of
    /// the BHI PoCs. Returns `None` if no collision exists in the
    /// searched space.
    pub fn find_colliding_history(&self, pc: u64, wanted: u64) -> Option<History> {
        (0..(1u64 << 22)).find(|&h| self.predict(pc, h, true) == Some(wanted))
    }
}

/// Return stack buffer: a small circular stack of predicted return targets.
///
/// On underflow the predictor falls back to the BTB entry for the `ret`'s
/// own address — the behavior Retbleed exploits.
#[derive(Debug, Clone)]
pub struct Rsb {
    slots: Vec<u64>,
    top: usize,
    count: usize,
}

impl Rsb {
    /// An RSB with `entries` slots (Table 7.1: 16).
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        Rsb {
            slots: vec![0; entries],
            top: 0,
            count: 0,
        }
    }

    /// Push a return address (on `call` fetch). Overflow silently overwrites
    /// the oldest entry.
    pub fn push(&mut self, ret_addr: u64) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = ret_addr;
        if self.count < self.slots.len() {
            self.count += 1;
        }
    }

    /// Pop a predicted return target (on `ret` fetch). `None` on underflow.
    pub fn pop(&mut self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let v = self.slots[self.top];
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.count -= 1;
        Some(v)
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Is the RSB empty (underflowed)?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Aggregate prediction machinery shared by the core. Shared across
/// contexts — deliberately not flushed on syscalls or context switches.
#[derive(Debug)]
pub struct Predictors {
    /// Conditional branch direction predictor.
    pub dir: DirectionPredictor,
    /// Branch target buffer.
    pub btb: Btb,
    /// Return stack buffer.
    pub rsb: Rsb,
    /// Speculative global history (maintained along the fetch path).
    pub hist: History,
}

impl Predictors {
    /// Build with the Table 7.1 sizes: 4096 BTB entries, 16 RAS entries.
    pub fn paper_default() -> Self {
        Predictors {
            dir: DirectionPredictor::new(),
            btb: Btb::new(4096),
            rsb: Rsb::new(16),
            hist: 0,
        }
    }

    /// Build with custom sizes.
    pub fn new(btb_entries: usize, rsb_entries: usize) -> Self {
        Self::with_btb_mode(btb_entries, rsb_entries, BtbMode::Legacy)
    }

    /// Build with custom sizes and an explicit BTB hardening mode.
    pub fn with_btb_mode(btb_entries: usize, rsb_entries: usize, mode: BtbMode) -> Self {
        Predictors {
            dir: DirectionPredictor::new(),
            btb: Btb::with_mode(btb_entries, mode),
            rsb: Rsb::new(rsb_entries),
            hist: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_predictor_learns_bias() {
        let mut p = DirectionPredictor::new();
        for _ in 0..8 {
            p.update(0x1000, 0, true);
        }
        assert!(p.predict(0x1000, 0), "trained taken");
        for _ in 0..8 {
            p.update(0x1000, 0, false);
        }
        assert!(!p.predict(0x1000, 0), "retrained not-taken");
    }

    #[test]
    fn direction_predictor_uses_history() {
        let mut p = DirectionPredictor::new();
        // Alternating pattern correlated with last outcome.
        for i in 0..64u64 {
            let hist = i & 1;
            p.update(0x2000, hist, hist == 1);
        }
        assert!(p.predict(0x2000, 1));
        assert!(!p.predict(0x2000, 0));
    }

    #[test]
    fn mistraining_then_misprediction() {
        // The Spectre v1 primitive: train taken, then the actual outcome is
        // not-taken — prediction still says taken.
        let mut p = DirectionPredictor::new();
        for _ in 0..16 {
            p.update(0x3000, 0, true);
        }
        assert!(p.predict(0x3000, 0), "attacker-visible stale prediction");
    }

    #[test]
    fn btb_install_and_predict() {
        let mut b = Btb::new(4096);
        assert_eq!(b.predict(0x4000, 0, true), None);
        b.install(0x4000, 0, 0x9000, true);
        assert_eq!(b.predict(0x4000, 0, true), Some(0x9000));
        // Legacy mode: history and privilege are ignored.
        assert_eq!(b.predict(0x4000, 0xDEAD, false), Some(0x9000));
    }

    #[test]
    fn btb_aliasing_enables_injection() {
        let mut b = Btb::new(4096);
        let victim_pc = 0x7000;
        let attacker_pc = b.aliasing_pc(victim_pc);
        assert_ne!(attacker_pc, victim_pc);
        // Attacker installs from USER mode; the victim predicts in KERNEL
        // mode — Legacy parts serve it anyway.
        b.install(attacker_pc, 0, 0xbad0, false);
        assert_eq!(b.predict(victim_pc, 0, true), Some(0xbad0));
    }

    #[test]
    fn ibrs_blocks_cross_privilege_injection() {
        let mut b = Btb::with_mode(4096, BtbMode::Ibrs);
        let victim_pc = 0x7000;
        let attacker_pc = b.aliasing_pc(victim_pc);
        b.install(attacker_pc, 0, 0xbad0, false); // user-mode install
        assert_eq!(
            b.predict(victim_pc, 0, true),
            None,
            "privilege tags stop the classic v2 injection"
        );
    }

    #[test]
    fn ibrs_history_mixing_separates_histories() {
        let mut b = Btb::with_mode(4096, BtbMode::Ibrs);
        b.install(0x7000, 0b1010, 0x9000, true);
        assert_eq!(b.predict(0x7000, 0b1010, true), Some(0x9000));
        assert_eq!(
            b.predict(0x7000, 0b1111, true),
            None,
            "other history misses"
        );
    }

    #[test]
    fn bhi_history_search_finds_a_collision() {
        // The BHI primitive: a kernel-installed entry for one branch can
        // be reached from a *different* kernel branch under an
        // attacker-chosen history.
        let mut b = Btb::with_mode(4096, BtbMode::Ibrs);
        let legit_callsite = 0xFFFF_8000_0000_4444u64;
        let gadget = 0xFFFF_8000_0001_2340u64;
        b.install(legit_callsite, 0x5A5A, gadget, true);
        let dispatch = 0xFFFF_8000_0000_0010u64;
        let h = b
            .find_colliding_history(dispatch, gadget)
            .expect("a colliding history exists in the searched space");
        assert_eq!(b.predict(dispatch, h, true), Some(gadget));
    }

    #[test]
    fn rsb_push_pop_lifo() {
        let mut r = Rsb::new(4);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None, "underflow");
    }

    #[test]
    fn rsb_overflow_loses_oldest() {
        let mut r = Rsb::new(2);
        r.push(0x1);
        r.push(0x2);
        r.push(0x3); // overwrites 0x1
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(0x3));
        assert_eq!(r.pop(), Some(0x2));
        assert_eq!(r.pop(), None, "0x1 was lost to overflow");
    }

    #[test]
    fn deep_call_chain_underflows_rsb() {
        // Retbleed precondition: call depth beyond RSB capacity means the
        // outermost returns have no RSB prediction.
        let mut r = Rsb::new(16);
        for i in 0..20u64 {
            r.push(0x1000 + i * 4);
        }
        for _ in 0..16 {
            assert!(r.pop().is_some());
        }
        assert!(r.pop().is_none(), "returns past capacity fall back to BTB");
    }
}
