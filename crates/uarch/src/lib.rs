//! An out-of-order, speculative core simulator for the Perspective
//! reproduction.
//!
//! This crate stands in for gem5 (see DESIGN.md §2): it models exactly the
//! mechanisms that transient-execution attacks and defenses are defined in
//! terms of —
//!
//! * a fetch front-end driven by a TAGE-lite direction predictor, a
//!   partially-tagged BTB and a return stack buffer ([`predictor`]),
//! * wrong-path (transient) execution whose speculative loads fill the
//!   caches before being squashed ([`pipeline`]),
//! * visibility-point semantics for blocked instructions, and
//! * a pluggable [`policy::SpecPolicy`] that decides which speculative
//!   loads may issue — the pliable interface the paper builds on.
//!
//! The evaluation baselines (UNSAFE, FENCE, DOM, STT, KPTI+Retpoline) live
//! in [`policy`]; Perspective's own policy is in the `perspective` crate.
//!
//! # Example
//!
//! ```
//! use persp_uarch::isa::{Assembler, AluOp, Inst};
//! use persp_uarch::machine::Machine;
//! use persp_uarch::pipeline::Core;
//! use persp_uarch::config::CoreConfig;
//! use persp_uarch::policy::UnsafePolicy;
//! use persp_uarch::hooks::NullHooks;
//! use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut asm = Assembler::new(0x1000);
//! asm.movi(1, 40);
//! asm.alui(AluOp::Add, 2, 1, 2);
//! asm.push(Inst::Halt);
//!
//! let mut machine = Machine::new();
//! machine.load_text(asm.finish());
//! let mut core = Core::new(
//!     CoreConfig::paper_default(),
//!     machine,
//!     MemoryHierarchy::new(HierarchyConfig::paper_default()),
//!     Box::new(UnsafePolicy::new()),
//!     Box::new(NullHooks),
//! );
//! core.run(0x1000, 10_000)?;
//! assert_eq!(core.machine.reg(2), 42);
//! # Ok::<(), persp_uarch::pipeline::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hooks;
pub mod isa;
pub mod machine;
pub mod metrics;
pub mod pipeline;
pub mod policy;
pub mod predictor;
pub mod sni;
pub mod stats;
pub mod testkit;

pub use config::CoreConfig;
pub use machine::{Asid, Machine, Mode};
pub use metrics::{MetricsRegistry, MetricsSource};
pub use pipeline::{Core, RunSummary, SimError};
pub use policy::{BlockSource, LoadCtx, LoadDecision, PolicyCounters, SpecPolicy};
pub use sni::{RetiredInst, SniChecker, SniOracle};
pub use stats::{SimStats, SniCounters};
