//! Host-level kernel semantic hooks.
//!
//! Bookkeeping-heavy kernel semantics (allocators, file descriptors,
//! scheduling) are implemented in Rust rather than µISA code. A `KHook`
//! instruction dispatches to the registered [`HookHandler`] at commit time —
//! hooks are serializing, so they can never execute transiently and never
//! need speculation protection (mirroring how the paper abstracts such code
//! behind its allocator instrumentation).

use crate::machine::Machine;

/// Control-flow effect a hook may request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Continue at the next instruction.
    Continue,
    /// Redirect fetch to an absolute address (e.g. a fault handler or a
    /// scheduler-selected entry point).
    Redirect(u64),
}

/// Result of executing one hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookResult {
    /// Extra stall cycles charged to the front-end, modelling the work the
    /// hook abstracts (e.g. an allocation fast path).
    pub extra_cycles: u64,
    /// Requested control-flow effect.
    pub action: HookAction,
}

impl HookResult {
    /// A free, fall-through hook result.
    pub fn nop() -> Self {
        HookResult {
            extra_cycles: 0,
            action: HookAction::Continue,
        }
    }

    /// Fall through after charging `cycles`.
    pub fn cost(cycles: u64) -> Self {
        HookResult {
            extra_cycles: cycles,
            action: HookAction::Continue,
        }
    }
}

/// Receiver of `KHook` dispatches. Implemented by the mini-OS kernel.
pub trait HookHandler {
    /// Execute hook `id`; may freely mutate registers and memory.
    fn on_hook(&mut self, id: u16, machine: &mut Machine) -> HookResult;
}

/// A handler that treats every hook as a free no-op (useful for tests and
/// bare-metal microkernels of the test suite).
#[derive(Debug, Default)]
pub struct NullHooks;

impl HookHandler for NullHooks {
    fn on_hook(&mut self, _id: u16, _machine: &mut Machine) -> HookResult {
        HookResult::nop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hooks_are_free() {
        let mut h = NullHooks;
        let mut m = Machine::new();
        let r = h.on_hook(7, &mut m);
        assert_eq!(r, HookResult::nop());
        assert_eq!(r.extra_cycles, 0);
    }

    #[test]
    fn cost_constructor() {
        let r = HookResult::cost(12);
        assert_eq!(r.extra_cycles, 12);
        assert_eq!(r.action, HookAction::Continue);
    }
}
