//! The out-of-order, speculative core.
//!
//! The pipeline is the piece of the reproduction that makes transient
//! execution *real*: fetch follows branch predictions, wrong-path
//! instructions execute (and speculative loads fill the caches) until the
//! mispredicted branch resolves and squashes them. What a speculative load
//! may do is delegated to the plugged-in [`SpecPolicy`]; everything else —
//! visibility-point tracking, squash/recovery, RSB/BTB interaction, store
//! forwarding, serializing kernel traps — is shared by every scheme, so
//! measured overheads differ only because of the policy, exactly as in the
//! paper's gem5 setup.
//!
//! ## Timing model
//!
//! Each in-flight instruction lives in the ROB. An instruction computes its
//! result when all producers have computed *and* their `ready_at` times have
//! passed; its own `ready_at` is then `now + latency`. Commit retires up to
//! `width` computed instructions per cycle in order. This is a standard
//! dependency-DAG timing model: absolute IPC is approximate, relative
//! overheads between schemes are meaningful.

use crate::config::CoreConfig;
use crate::hooks::{HookAction, HookHandler};
use crate::isa::{Inst, Width, INST_BYTES, NUM_REGS, REG_SYSNO};
use crate::machine::{Machine, Mode};
use crate::policy::{BlockSource, LoadCtx, LoadDecision, SpecPolicy};
use crate::predictor::{History, Predictors, Rsb};
use crate::sni::{RetiredInst, SniChecker};
use crate::stats::SimStats;
use persp_mem::MemoryHierarchy;
use std::collections::VecDeque;

/// Errors terminating a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Committed-path fetch from an unmapped address.
    UnmappedFetch {
        /// The faulting address.
        pc: u64,
    },
    /// A `ret` committed with an empty call stack.
    CallStackUnderflow {
        /// The `ret`'s address.
        pc: u64,
    },
    /// No instruction committed for an implausibly long time.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Program counter of the stuck ROB head, if any.
        head_pc: Option<u64>,
    },
    /// The cycle budget given to [`Core::run`] was exhausted.
    CycleBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnmappedFetch { pc } => write!(f, "fetch from unmapped address {pc:#x}"),
            SimError::CallStackUnderflow { pc } => {
                write!(f, "return with empty call stack at {pc:#x}")
            }
            SimError::Deadlock { cycle, head_pc } => {
                write!(
                    f,
                    "pipeline deadlock at cycle {cycle} (head pc {head_pc:?})"
                )
            }
            SimError::CycleBudgetExhausted { budget } => {
                write!(f, "cycle budget of {budget} exhausted")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed [`Core::run`].
#[derive(Debug, Clone, Copy)]
pub struct RunSummary {
    /// Statistics accumulated during this run only.
    pub stats: SimStats,
}

/// Bounded set of speculative-load "taint roots" for STT-style tracking.
///
/// A value is tainted while any of its root loads is still speculative.
/// The set saturates at four roots; a saturated set is conservatively
/// treated as tainted whenever the consumer is speculative.
#[derive(Debug, Clone, Copy, Default)]
struct TaintSet {
    roots: [u64; 4],
    len: u8,
    saturated: bool,
}

impl TaintSet {
    /// Add a root; returns `true` when the set *newly* saturated (the
    /// root could not be recorded individually), so the caller can count
    /// the overflow instead of dropping attribution silently.
    fn add_root(&mut self, seq: u64) -> bool {
        if self.roots[..self.len as usize].contains(&seq) {
            return false;
        }
        if (self.len as usize) < self.roots.len() {
            self.roots[self.len as usize] = seq;
            self.len += 1;
            false
        } else if self.saturated {
            false
        } else {
            self.saturated = true;
            true
        }
    }

    /// Merge another set in; returns `true` when the merge *newly*
    /// saturated this set (saturation itself always propagates).
    fn merge(&mut self, other: &TaintSet) -> bool {
        let mut newly = false;
        for &r in &other.roots[..other.len as usize] {
            newly |= self.add_root(r);
        }
        if other.saturated && !self.saturated {
            self.saturated = true;
            newly = true;
        }
        newly
    }
}

#[derive(Debug, Clone, Copy)]
struct SrcDep {
    reg: u8,
    /// Sequence number of the in-flight producer at decode, or `None` if
    /// the value was architectural at decode time.
    producer: Option<u64>,
    /// Snapshot used when `producer` is `None`.
    snapshot: u64,
}

/// The source operands of one instruction, inline (no instruction has
/// more than two register sources — see [`Inst::srcs`]). `Copy` keeps
/// the execute stage's per-cycle operand gather allocation-free; a
/// heap `Vec` here was the single hottest allocation in the simulator.
#[derive(Debug, Clone, Copy)]
struct SrcList {
    deps: [SrcDep; 2],
    len: u8,
}

impl SrcList {
    fn new(regs: &[u8], mut resolve: impl FnMut(u8) -> SrcDep) -> Self {
        assert!(regs.len() <= 2, "at most two register sources");
        let empty = SrcDep {
            reg: 0,
            producer: None,
            snapshot: 0,
        };
        let mut deps = [empty; 2];
        for (slot, &reg) in deps.iter_mut().zip(regs) {
            *slot = resolve(reg);
        }
        SrcList {
            deps,
            len: regs.len() as u8,
        }
    }

    fn as_slice(&self) -> &[SrcDep] {
        &self.deps[..self.len as usize]
    }
}

#[derive(Debug)]
struct RobEntry {
    seq: u64,
    pc: u64,
    inst: Inst,
    srcs: SrcList,
    /// Earliest cycle this instruction can begin executing (front-end).
    fetch_ready: u64,
    computed: bool,
    value: u64,
    ready_at: u64,
    /// Host-side retry hint: the earliest cycle a failed operand gather
    /// can turn out differently (the failing producer's `ready_at`; or
    /// `u64::MAX` while sleeping in that producer's `waiters` list until
    /// it computes; or `now + 1` when no sound bound exists).
    /// `try_compute` is provably a side-effect-free no-op before this
    /// cycle, so the execute stage skips the attempt. Never influences
    /// simulated behavior.
    retry_at: u64,
    /// Host-side wakeup list: seqs of consumers whose operand gather is
    /// asleep until this entry computes (`wake_waiters` resets their
    /// `retry_at`). Capacity-bounded — consumers that don't fit keep
    /// polling every cycle instead, so this is purely an acceleration.
    waiters: [u64; 4],
    n_waiters: u8,
    /// Branch-like bookkeeping (conditional, indirect, return).
    can_mispredict: bool,
    pred_target: u64,
    actual_target: u64,
    mispred: bool,
    squash_done: bool,
    hist_snapshot: History,
    rsb_snapshot: Option<Rsb>,
    stack_snapshot: Option<Vec<u64>>,
    pred_taken: bool,
    actual_taken: bool,
    /// Memory bookkeeping.
    addr: u64,
    width: Width,
    store_val: u64,
    issued_mem: bool,
    blocked: Option<BlockSource>,
    /// First blocking source, kept after the VP re-issue clears `blocked`
    /// so the post-fence memory latency is still attributed to the fence.
    block_memo: Option<BlockSource>,
    was_blocked: bool,
    spec_at_issue: bool,
    taint: TaintSet,
    vp_notified: bool,
    /// Privilege the instruction was fetched in (for BTB privilege tags).
    in_kernel: bool,
}

impl RobEntry {
    fn is_load(&self) -> bool {
        matches!(self.inst, Inst::Load { .. })
    }
    fn is_store(&self) -> bool {
        matches!(self.inst, Inst::Store { .. })
    }
    /// Unresolved = could still redirect/squash younger instructions.
    fn unresolved_at(&self, now: u64) -> bool {
        self.can_mispredict && !(self.computed && self.ready_at <= now)
    }
}

const DEADLOCK_WINDOW: u64 = 50_000;

/// One stall-attribution class (mirrors the fields of
/// [`crate::stats::StallBreakdown`]); the classification half of stall
/// accounting, factored out so the idle fast-forward can attribute a
/// whole run of identical stall cycles in a single bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallClass {
    IsvFence,
    IsvMiss,
    DsvFence,
    DsvmtMiss,
    VpWait,
    Squash,
    Frontend,
    Backend,
}

/// The simulated out-of-order core.
pub struct Core {
    /// Configuration (Table 7.1).
    pub cfg: CoreConfig,
    /// Cache hierarchy.
    pub mem: MemoryHierarchy,
    /// Committed architectural state.
    pub machine: Machine,
    /// Prediction structures — shared across contexts, never flushed.
    pub pred: Predictors,
    policy: Box<dyn SpecPolicy>,
    hooks: Box<dyn HookHandler>,

    rob: VecDeque<RobEntry>,
    /// Sequence numbers (ascending) of ROB entries the execute stage
    /// still has to look at. Entries leave the list once *settled* —
    /// computed with their result ready and unable to affect any
    /// younger instruction — so the per-cycle execute scan touches only
    /// the in-flight frontier instead of the whole ROB. Committed and
    /// squashed entries are dropped lazily (their seq no longer
    /// resolves). Purely a host-side acceleration: membership never
    /// influences simulated behavior.
    exec_active: VecDeque<u64>,
    /// Mirror of `rob`'s sequence numbers, maintained at every ROB
    /// push/pop. `index_of_seq` binary-searches this dense array instead
    /// of probing the wide `RobEntry`s — seq lookup is the single
    /// hottest operation in the simulator, and 8-byte keys keep the
    /// whole search window inside a few cache lines.
    rob_seqs: VecDeque<u64>,
    next_seq: u64,
    now: u64,
    last_commit_cycle: u64,
    halted: bool,

    fetch_pc: u64,
    fetch_stall_until: u64,
    /// End of the most recent mispredict-redirect penalty window — lets
    /// stall attribution tell squash recovery apart from other front-end
    /// stalls.
    squash_redirect_until: u64,
    fetch_halted: bool,
    fetch_wait_indirect: Option<u64>,
    last_fetch_line: u64,

    rename: [Option<u64>; NUM_REGS],
    spec_stack: Vec<u64>,
    lq_used: usize,
    sq_used: usize,

    /// Did the last `step` mutate anything beyond the per-cycle clocks
    /// and stall accounting? Set at every mutation site; a cycle that
    /// leaves it false is provably idempotent until the next time
    /// threshold, which is what licenses the idle fast-forward.
    made_progress: bool,
    /// Cycles skipped by the idle fast-forward. Deliberately *not* part
    /// of [`SimStats`]: it is a property of the simulator, not of the
    /// simulated machine, and must never reach serialized output (which
    /// is required to be byte-identical with fast-forward on and off).
    ff_skipped: u64,

    call_trace: Option<std::collections::HashSet<u64>>,
    sni: Option<SniChecker>,
    stats: SimStats,
}

impl Core {
    /// Build a core around a machine image, memory hierarchy, speculation
    /// policy and kernel hook handler.
    pub fn new(
        cfg: CoreConfig,
        machine: Machine,
        mem: MemoryHierarchy,
        policy: Box<dyn SpecPolicy>,
        hooks: Box<dyn HookHandler>,
    ) -> Self {
        let pred = Predictors::with_btb_mode(cfg.btb_entries, cfg.rsb_entries, cfg.btb_mode);
        Core {
            cfg,
            mem,
            machine,
            pred,
            policy,
            hooks,
            rob: VecDeque::new(),
            exec_active: VecDeque::new(),
            rob_seqs: VecDeque::new(),
            next_seq: 0,
            now: 0,
            last_commit_cycle: 0,
            halted: false,
            fetch_pc: 0,
            fetch_stall_until: 0,
            squash_redirect_until: 0,
            fetch_halted: false,
            fetch_wait_indirect: None,
            last_fetch_line: u64::MAX,
            rename: [None; NUM_REGS],
            spec_stack: Vec::new(),
            lq_used: 0,
            sq_used: 0,
            made_progress: false,
            ff_skipped: 0,
            call_trace: None,
            sni: None,
            stats: SimStats::default(),
        }
    }

    /// Attach a speculative non-interference checker; its counters
    /// accumulate into this core's [`SimStats::sni`] and export as
    /// `sim.sni.*` metrics.
    pub fn attach_sni(&mut self, checker: SniChecker) {
        self.sni = Some(checker);
    }

    /// Is an SNI checker attached?
    pub fn sni_attached(&self) -> bool {
        self.sni.is_some()
    }

    /// Start recording the *committed* control-transfer targets (calls,
    /// indirect calls, indirect jumps) — the substrate of dynamic ISV
    /// generation, analogous to kernel-level tracing (ftrace).
    pub fn enable_call_trace(&mut self) {
        self.call_trace = Some(std::collections::HashSet::new());
    }

    /// Stop tracing and return the recorded target set.
    pub fn take_call_trace(&mut self) -> std::collections::HashSet<u64> {
        self.call_trace.take().unwrap_or_default()
    }

    /// Cumulative statistics across all runs.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The plugged-in policy (for counter inspection).
    pub fn policy(&self) -> &dyn SpecPolicy {
        self.policy.as_ref()
    }

    /// Mutable access to the policy (e.g. to reconfigure ISVs at runtime).
    pub fn policy_mut(&mut self) -> &mut dyn SpecPolicy {
        self.policy.as_mut()
    }

    /// Mutable access to the hook handler (the kernel).
    pub fn hooks_mut(&mut self) -> &mut dyn HookHandler {
        self.hooks.as_mut()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cycles the idle fast-forward has skipped so far (0 when disabled).
    /// A simulator-side diagnostic — intentionally outside [`SimStats`]
    /// so serialized experiment output stays byte-identical with the
    /// fast-forward on and off.
    pub fn ff_skipped_cycles(&self) -> u64 {
        self.ff_skipped
    }

    /// Run the program at `entry` until a `Halt` commits or `max_cycles`
    /// elapse. Pipeline state is reset; architectural and
    /// microarchitectural (cache, predictor) state persists across runs —
    /// which is exactly what cross-context attacks rely on.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on unmapped committed-path fetches, call
    /// stack underflow, deadlock, or budget exhaustion.
    pub fn run(&mut self, entry: u64, max_cycles: u64) -> Result<RunSummary, SimError> {
        let start_stats = self.stats;
        let start_cycle = self.now;
        self.rob.clear();
        self.rob_seqs.clear();
        self.exec_active.clear();
        self.halted = false;
        self.fetch_pc = entry;
        self.fetch_stall_until = self.now;
        self.squash_redirect_until = self.now;
        self.fetch_halted = false;
        self.fetch_wait_indirect = None;
        self.last_fetch_line = u64::MAX;
        self.rename = [None; NUM_REGS];
        self.spec_stack = self.machine.call_stack.clone();
        self.lq_used = 0;
        self.sq_used = 0;
        self.last_commit_cycle = self.now;
        if let Some(sni) = self.sni.as_mut() {
            sni.on_run_start(entry);
        }

        while !self.halted {
            if self.now - start_cycle > max_cycles {
                return Err(SimError::CycleBudgetExhausted { budget: max_cycles });
            }
            if self.now - self.last_commit_cycle > DEADLOCK_WINDOW {
                return Err(SimError::Deadlock {
                    cycle: self.now,
                    head_pc: self.rob.front().map(|e| e.pc),
                });
            }
            self.made_progress = false;
            self.step()?;
            if self.cfg.idle_fastforward && !self.made_progress {
                self.fast_forward(start_cycle, max_cycles);
            }
        }
        Ok(RunSummary {
            stats: self.stats.delta_since(&start_stats),
        })
    }

    fn step(&mut self) -> Result<(), SimError> {
        self.exec_stage();
        self.squash_stage();
        self.vp_stage();
        let committed = self.commit_stage()?;
        if committed == 0 {
            // Classify before fetch refills the ROB: the state that
            // produced the empty commit slot is what gets the blame.
            self.record_stall();
        } else {
            self.made_progress = true;
        }
        self.fetch_stage()?;
        if self.machine.mode == Mode::Kernel {
            self.stats.kernel_cycles += 1;
        } else {
            self.stats.user_cycles += 1;
        }
        self.stats.cycles += 1;
        self.now += 1;
        Ok(())
    }

    // ----- helpers ------------------------------------------------------

    /// Index of the in-flight entry with sequence number `seq`, if it is
    /// still in the ROB. Sequence numbers are monotonically increasing but
    /// *not* contiguous after squashes, so this is a binary search.
    fn index_of_seq(&self, seq: u64) -> Option<usize> {
        debug_assert_eq!(self.rob_seqs.len(), self.rob.len());
        let idx = self.rob_seqs.partition_point(|&s| s < seq);
        (idx < self.rob_seqs.len() && self.rob_seqs[idx] == seq).then_some(idx)
    }

    /// Is the source value available at cycle `now`? Returns
    /// `(ready, value, ready_at, taint)`.
    fn src_status(&self, dep: &SrcDep) -> Option<(u64, u64, TaintSet)> {
        match dep.producer {
            None => Some((dep.snapshot, 0, TaintSet::default())),
            Some(seq) => match self.index_of_seq(seq) {
                None => Some((self.machine.reg(dep.reg), 0, TaintSet::default())),
                Some(idx) => {
                    let p = &self.rob[idx];
                    if p.computed && p.ready_at <= self.now {
                        Some((p.value, p.ready_at, p.taint))
                    } else {
                        None
                    }
                }
            },
        }
    }

    /// Does the taint set contain a root load that is still speculative
    /// (in flight and not at its VP)?
    fn taint_active(&self, taint: &TaintSet, any_older_unresolved: bool) -> bool {
        if taint.saturated {
            return any_older_unresolved;
        }
        taint.roots[..taint.len as usize]
            .iter()
            .any(|&seq| self.index_of_seq(seq).is_some())
    }

    // ----- execute ------------------------------------------------------

    /// Walks the in-flight frontier (see `exec_active`) in program
    /// order, oldest first. Behaviorally identical to scanning the whole
    /// ROB: a *settled* entry — computed, result ready, not a fence —
    /// can never recompute (`computed` is sticky and `ready_at` is only
    /// written on the not-computed → computed transition) and
    /// contributes nothing to any of the three rolling ordering flags,
    /// so dropping it from the scan is invisible to the simulation.
    fn exec_stage(&mut self) {
        let mut older_unresolved_branch = false;
        let mut older_uncommitted_fence = false;
        let mut older_store_addr_unknown = false;

        let mut active = std::mem::take(&mut self.exec_active);
        let mut keep = 0;
        for k in 0..active.len() {
            let seq = active[k];
            // Committed and squashed entries fall off the list here.
            let Some(i) = self.index_of_seq(seq) else {
                continue;
            };
            {
                let e = &self.rob[i];
                if e.computed && e.ready_at <= self.now && !matches!(e.inst, Inst::Fence) {
                    continue; // settled — permanently inert to this stage
                }
            }
            let (computed, fetch_ready, retry_at, inst) = {
                let e = &self.rob[i];
                (e.computed, e.fetch_ready, e.retry_at, e.inst)
            };

            if !computed
                && !inst.is_serializing()
                && !older_uncommitted_fence
                && fetch_ready <= self.now
                && retry_at <= self.now
            {
                self.try_compute(i, older_unresolved_branch, older_store_addr_unknown);
            }

            let e = &self.rob[i];
            if e.unresolved_at(self.now) {
                older_unresolved_branch = true;
            }
            if matches!(e.inst, Inst::Fence) {
                older_uncommitted_fence = true;
            }
            if e.is_store() && !e.computed {
                older_store_addr_unknown = true;
            }
            active[keep] = seq;
            keep += 1;
        }
        active.truncate(keep);
        self.exec_active = active;
    }

    fn try_compute(&mut self, i: usize, speculative: bool, older_store_addr_unknown: bool) {
        // Gather sources (SrcList is Copy — no per-attempt allocation).
        let deps = self.rob[i].srcs;
        let mut vals = [0u64; 2];
        let mut nvals = 0;
        let mut src_ready = 0u64;
        let mut taint = TaintSet::default();
        let mut bumped = false;
        for dep in deps.as_slice() {
            match self.src_status(dep) {
                Some((v, r, t)) => {
                    vals[nvals] = v;
                    nvals += 1;
                    src_ready = src_ready.max(r);
                    if taint.merge(&t) {
                        // Counted even if a later operand turns out not
                        // ready, so the bump can repeat across cycles:
                        // a counter mutation the fast-forward must not
                        // skip over.
                        self.stats.taint_roots_overflow += 1;
                        self.made_progress = true;
                        bumped = true;
                    }
                }
                None => {
                    // Operands not ready. Leave a retry hint so the
                    // execute stage stops re-running this gather every
                    // cycle: until the failing producer's result is
                    // ready nothing observable can change — the deps
                    // ahead of it are ready (their values, and whether
                    // their merge bumps the overflow counter, are fixed
                    // for the whole wait), and this attempt bumped
                    // nothing. When it *did* bump (a saturated source
                    // taint), the bump must repeat every cycle, so no
                    // skip is allowed; same when the producer itself is
                    // not yet computed (its finish time is unknown).
                    let my_seq = self.rob[i].seq;
                    self.rob[i].retry_at = if bumped {
                        self.now + 1
                    } else {
                        match dep.producer.and_then(|s| self.index_of_seq(s)) {
                            Some(p) if self.rob[p].computed => self.rob[p].ready_at,
                            Some(p) => {
                                // The producer hasn't even computed, so no
                                // finish time exists yet: sleep in its
                                // waiter list until its compute site wakes
                                // us (fall back to polling if the list is
                                // full). The producer is strictly older,
                                // so any squash that kills it kills this
                                // entry too — a sleeper can't be stranded.
                                let q = &mut self.rob[p];
                                if (q.n_waiters as usize) < q.waiters.len() {
                                    q.waiters[q.n_waiters as usize] = my_seq;
                                    q.n_waiters += 1;
                                    u64::MAX
                                } else {
                                    self.now + 1
                                }
                            }
                            None => self.now + 1,
                        }
                    };
                    return;
                }
            }
        }

        let inst = self.rob[i].inst;
        let pc = self.rob[i].pc;
        let seq = self.rob[i].seq;
        match inst {
            Inst::Alu { op, .. } => {
                let e = &mut self.rob[i];
                e.value = op.apply(vals[0], vals[1]);
                e.ready_at = self.now + op.latency();
                e.taint = taint;
                e.computed = true;
            }
            Inst::AluImm { op, imm, .. } => {
                let e = &mut self.rob[i];
                e.value = op.apply(vals[0], imm);
                e.ready_at = self.now + op.latency();
                e.taint = taint;
                e.computed = true;
            }
            Inst::Branch { cond, target, .. } => {
                let taken = cond.eval(vals[0], vals[1]);
                let lat = self.cfg.branch_resolve_latency.max(1);
                let e = &mut self.rob[i];
                e.actual_taken = taken;
                e.actual_target = if taken { target } else { pc + INST_BYTES };
                e.mispred = e.actual_target != e.pred_target;
                e.ready_at = self.now + lat;
                e.computed = true;
            }
            Inst::JumpInd { .. } | Inst::CallInd { .. } => {
                let target = vals[0];
                let e = &mut self.rob[i];
                e.actual_target = target;
                e.mispred = e.pred_target != target;
                e.ready_at = self.now + 1;
                e.computed = true;
                let ready_at = e.ready_at;
                // Resume a front-end stalled on this unpredicted indirect.
                if self.fetch_wait_indirect == Some(seq) {
                    self.fetch_wait_indirect = None;
                    self.fetch_pc = target;
                    let extra = if self.policy.predict_indirect() {
                        0
                    } else {
                        self.cfg.retpoline_cost
                    };
                    self.fetch_stall_until = self.fetch_stall_until.max(ready_at + extra);
                    self.rob[i].mispred = false;
                    self.rob[i].pred_target = target;
                }
            }
            Inst::Store { width, .. } => {
                if older_store_addr_unknown {
                    // In-order address computation for stores keeps
                    // forwarding precise; nothing to do this cycle.
                }
                let e = &mut self.rob[i];
                e.store_val = vals[0];
                e.addr = vals[1].wrapping_add(store_offset(&inst) as u64);
                e.width = width;
                e.taint = taint;
                e.ready_at = self.now + 1;
                e.computed = true;
            }
            Inst::Load { offset, width, .. } => {
                let addr = vals[0].wrapping_add(offset as u64);
                // Memory disambiguation: conservative — wait while any older
                // store address is unknown.
                if older_store_addr_unknown {
                    return;
                }
                // Store-to-load forwarding from the youngest matching older
                // store; overlap without exact match stalls until it drains.
                let mut forward: Option<(u64, TaintSet)> = None;
                let mut must_wait = false;
                for j in (0..i).rev() {
                    let s = &self.rob[j];
                    if !s.is_store() {
                        continue;
                    }
                    let (sa, sw) = (s.addr, s.width.bytes());
                    let (la, lw) = (addr, width.bytes());
                    if sa == la && sw == lw {
                        forward = Some((s.store_val, s.taint));
                        break;
                    }
                    if sa < la + lw && la < sa + sw {
                        must_wait = true;
                        break;
                    }
                }
                if must_wait {
                    return;
                }
                if let Some((v, t)) = forward {
                    let e = &mut self.rob[i];
                    e.value = mask_width(v, width);
                    e.addr = addr;
                    e.width = width;
                    e.ready_at = self.now + 1;
                    e.taint = t;
                    e.computed = true;
                    e.issued_mem = false;
                    self.made_progress = true;
                    self.wake_waiters(i);
                    return;
                }
                // Policy gate.
                let tainted_addr = self.taint_active(&taint, speculative) && speculative;
                let ctx = LoadCtx {
                    pc,
                    addr,
                    mode: self.machine.mode,
                    asid: self.machine.asid,
                    speculative,
                    tainted_addr,
                    l1_hit: self.mem.probe_l1d(addr),
                    cur_sysno: self.machine.cur_sysno,
                };
                if self.rob[i].blocked.is_none() {
                    match self.policy.check_load(&ctx) {
                        LoadDecision::Allow => {
                            if speculative {
                                if let Some(sni) = self.sni.as_mut() {
                                    sni.on_spec_issue(
                                        &ctx,
                                        seq,
                                        &taint.roots[..taint.len as usize],
                                        taint.saturated,
                                        &mut self.stats.sni,
                                    );
                                }
                            }
                            self.issue_load(i, addr, width, taint, speculative, src_ready);
                        }
                        LoadDecision::BlockUntilVp(src) => {
                            let e = &mut self.rob[i];
                            e.blocked = Some(src);
                            e.block_memo = Some(src);
                            e.was_blocked = true;
                            e.addr = addr;
                            e.width = width;
                            e.taint = taint;
                            self.stats.loads_fenced += 1;
                            self.made_progress = true;
                        }
                    }
                }
                // Blocked loads are re-issued by `vp_stage` once safe.
            }
            Inst::CacheFlush { offset, .. } => {
                let addr = vals[0].wrapping_add(offset as u64);
                if speculative {
                    if let Some(sni) = self.sni.as_mut() {
                        sni.on_spec_flush(
                            &taint.roots[..taint.len as usize],
                            taint.saturated,
                            &mut self.stats.sni,
                        );
                    }
                }
                // Flushes are not policy-gated; they perform at execute.
                self.mem.flush(addr);
                let e = &mut self.rob[i];
                e.addr = addr;
                e.ready_at = self.now + 1;
                e.computed = true;
            }
            Inst::Fence | Inst::Nop => {
                let e = &mut self.rob[i];
                e.ready_at = self.now + 1;
                e.computed = true;
            }
            // MovImm / Jump / Call / Ret are computed at decode.
            // Serializing instructions are computed at the ROB head.
            _ => {}
        }
        // Every arm that fired set `computed` (directly or via
        // `issue_load`, which flags progress itself); the blocked-load
        // arm flagged it explicitly above.
        if self.rob[i].computed {
            self.made_progress = true;
            self.wake_waiters(i);
        }
    }

    /// Wake consumers sleeping on entry `i`'s result (see
    /// `RobEntry::waiters`): reset their gather-retry hint to this
    /// entry's `ready_at`, the first cycle the operand can be read.
    /// Must be called at every `computed` transition; entries that have
    /// since left the ROB (squashed — a sleeper is always younger than
    /// its producer) no longer resolve and are skipped.
    fn wake_waiters(&mut self, i: usize) {
        let n = self.rob[i].n_waiters as usize;
        if n == 0 {
            return;
        }
        let ready_at = self.rob[i].ready_at;
        let ws = self.rob[i].waiters;
        self.rob[i].n_waiters = 0;
        for &w in &ws[..n] {
            if let Some(j) = self.index_of_seq(w) {
                self.rob[j].retry_at = ready_at;
            }
        }
    }

    fn issue_load(
        &mut self,
        i: usize,
        addr: u64,
        width: Width,
        mut taint: TaintSet,
        speculative: bool,
        _src_ready: u64,
    ) {
        let (lat, _level) = self.mem.read_classified(addr);
        let value = self.machine.mem.read(addr, width);
        if speculative {
            let seq = self.rob[i].seq;
            if taint.add_root(seq) {
                self.stats.taint_roots_overflow += 1;
            }
        }
        let e = &mut self.rob[i];
        e.value = value;
        e.addr = addr;
        e.width = width;
        e.ready_at = self.now + lat;
        e.taint = taint;
        e.computed = true;
        e.issued_mem = true;
        e.spec_at_issue = speculative;
        e.blocked = None;
        self.made_progress = true;
        self.wake_waiters(i);
    }

    // ----- squash -------------------------------------------------------

    fn squash_stage(&mut self) {
        let Some(i) = (0..self.rob.len()).find(|&i| {
            let e = &self.rob[i];
            e.computed && e.ready_at <= self.now && e.mispred && !e.squash_done
        }) else {
            return;
        };
        self.made_progress = true;

        // Restore front-end state from the mispredicting entry's snapshots.
        let (actual_target, hist_snapshot, actual_taken, is_cond) = {
            let e = &mut self.rob[i];
            e.squash_done = true;
            (
                e.actual_target,
                e.hist_snapshot,
                e.actual_taken,
                matches!(e.inst, Inst::Branch { .. }),
            )
        };
        if let Some(rsb) = self.rob[i].rsb_snapshot.clone() {
            self.pred.rsb = rsb;
        }
        if let Some(stack) = self.rob[i].stack_snapshot.clone() {
            self.spec_stack = stack;
        }
        if is_cond {
            self.pred.hist = (hist_snapshot << 1) | u64::from(actual_taken);
        } else {
            self.pred.hist = hist_snapshot;
        }

        // Drop younger entries.
        while self.rob.len() > i + 1 {
            let dropped = self.rob.pop_back().expect("len checked");
            self.rob_seqs.pop_back();
            self.stats.squashed_insts += 1;
            if let Some(sni) = self.sni.as_mut() {
                sni.on_squash(dropped.seq);
            }
            if dropped.is_load() {
                self.lq_used -= 1;
                if dropped.issued_mem && dropped.spec_at_issue {
                    self.stats.transient_loads_issued += 1;
                }
            }
            if dropped.is_store() {
                self.sq_used -= 1;
            }
        }
        self.stats.squashes += 1;

        // Rebuild the rename table from surviving entries.
        self.rename = [None; NUM_REGS];
        for e in &self.rob {
            if let Some(dst) = e.inst.dst() {
                self.rename[dst as usize] = Some(e.seq);
            }
        }

        self.fetch_pc = actual_target;
        self.fetch_stall_until = self.now + self.cfg.mispredict_penalty;
        self.squash_redirect_until = self.fetch_stall_until;
        self.fetch_halted = false;
        self.fetch_wait_indirect = None;
        self.last_fetch_line = u64::MAX;
    }

    // ----- visibility points ---------------------------------------------

    fn vp_stage(&mut self) {
        let mut older_can_squash = false;
        for i in 0..self.rob.len() {
            let at_vp = !older_can_squash;
            if at_vp {
                let needs_issue = {
                    let e = &self.rob[i];
                    e.is_load() && e.blocked.is_some()
                };
                if needs_issue {
                    let (addr, width, taint) = {
                        let e = &self.rob[i];
                        (e.addr, e.width, e.taint)
                    };
                    self.issue_load(i, addr, width, taint, false, 0);
                }
                let notify = {
                    let e = &self.rob[i];
                    e.is_load() && e.computed && e.issued_mem && !e.vp_notified
                };
                if notify {
                    let e = &self.rob[i];
                    let ctx = LoadCtx {
                        pc: e.pc,
                        addr: e.addr,
                        mode: self.machine.mode,
                        asid: self.machine.asid,
                        speculative: false,
                        tainted_addr: false,
                        l1_hit: true,
                        cur_sysno: self.machine.cur_sysno,
                    };
                    self.policy.on_load_vp(&ctx);
                    self.rob[i].vp_notified = true;
                    // The VP notification mutates policy-side state
                    // (metadata-cache LRU commits, fence counters).
                    self.made_progress = true;
                }
            }
            if self.rob[i].unresolved_at(self.now) {
                older_can_squash = true;
            }
        }
    }

    // ----- stall attribution --------------------------------------------

    /// Classify the mechanism holding the ROB head back at `self.now`.
    /// Pure: shared by the per-cycle `record_stall` and by the idle
    /// fast-forward, which accounts a whole run of identical stall cycles
    /// in one step.
    fn classify_stall(&self) -> StallClass {
        let Some(head) = self.rob.front() else {
            // Empty ROB: the front end is the bottleneck — either a
            // squash-redirect penalty or an ordinary fetch stall.
            return if self.now < self.squash_redirect_until {
                StallClass::Squash
            } else {
                StallClass::Frontend
            };
        };
        // A policy-blocked head load — or one still paying the memory
        // latency of its delayed (post-VP) issue — blames the policy.
        let policy_src = head.blocked.or((head.computed
            && head.ready_at > self.now
            && head.was_blocked)
            .then_some(head.block_memo)
            .flatten());
        if let Some(src) = policy_src {
            return match src {
                BlockSource::Isv => StallClass::IsvFence,
                BlockSource::IsvMiss => StallClass::IsvMiss,
                BlockSource::Dsv | BlockSource::UnknownAlloc => StallClass::DsvFence,
                BlockSource::DsvmtMiss => StallClass::DsvmtMiss,
                BlockSource::Fence | BlockSource::Dom | BlockSource::Stt => StallClass::VpWait,
            };
        }
        if !head.computed && head.fetch_ready > self.now {
            StallClass::Frontend
        } else {
            StallClass::Backend
        }
    }

    /// Account `n` stall cycles to `class`, keeping the invariant that
    /// the breakdown sums to `stats.stall_cycles` exactly.
    fn account_stalls(&mut self, class: StallClass, n: u64) {
        self.stats.stall_cycles += n;
        let b = &mut self.stats.stalls;
        match class {
            StallClass::IsvFence => b.isv_fence += n,
            StallClass::IsvMiss => b.isv_miss += n,
            StallClass::DsvFence => b.dsv_fence += n,
            StallClass::DsvmtMiss => b.dsvmt_miss += n,
            StallClass::VpWait => b.vp_wait += n,
            StallClass::Squash => b.squash += n,
            StallClass::Frontend => b.frontend += n,
            StallClass::Backend => b.backend += n,
        }
    }

    /// Account one stall cycle (nothing committed this cycle) to the
    /// mechanism holding the ROB head back. Exactly one breakdown class
    /// is bumped per call, so the breakdown always sums to
    /// `stats.stall_cycles`.
    fn record_stall(&mut self) {
        self.account_stalls(self.classify_stall(), 1);
    }

    // ----- idle fast-forward --------------------------------------------

    /// Earliest future cycle at which any time-threshold comparison in
    /// `step` can change its outcome: an in-flight instruction leaving
    /// the front end (`fetch_ready`) or finishing execution/memory
    /// (`ready_at`), the front end coming out of a redirect/refill/
    /// retpoline stall (`fetch_stall_until`), or the squash-attribution
    /// window closing (`squash_redirect_until` — a pure classification
    /// boundary, but `record_stall` reads it). `u64::MAX` when no future
    /// event exists (a genuine deadlock; the watchdog deadline caps it).
    fn next_wake(&self) -> u64 {
        // The idle step just ran at `now - 1`; the next step runs at
        // `now`. A threshold at exactly `now` can already flip a
        // comparison for that step, so `t >= now` (not `t > now`) —
        // thresholds strictly in the past are settled by monotonicity.
        let now = self.now;
        let mut wake = u64::MAX;
        let mut consider = |t: u64| {
            if t >= now && t < wake {
                wake = t;
            }
        };
        for e in &self.rob {
            if e.computed {
                consider(e.ready_at);
            } else {
                consider(e.fetch_ready);
            }
        }
        consider(self.fetch_stall_until);
        consider(self.squash_redirect_until);
        wake
    }

    /// Bulk-advance the clock over a run of idle cycles.
    ///
    /// Called right after a `step` that made no progress: such a step is
    /// a pure function of `(state, now)` whose only effects are the
    /// per-cycle clocks and one stall-attribution bump, and every time
    /// comparison it performs is a monotone threshold check — so it stays
    /// a no-op until [`Core::next_wake`]. Each skipped cycle is accounted
    /// exactly as the slow path would have: `stall_cycles` and the (one,
    /// constant over the interval) matching breakdown class, the
    /// kernel/user cycle for the current (unchanging) privilege mode, and
    /// `cycles`/`now`. The jump is capped at the cycle-budget and
    /// deadlock-watchdog deadlines so both errors fire at the identical
    /// cycle with identical counters as the slow path.
    fn fast_forward(&mut self, start_cycle: u64, max_cycles: u64) {
        let budget_deadline = start_cycle.saturating_add(max_cycles).saturating_add(1);
        let deadlock_deadline = self.last_commit_cycle + DEADLOCK_WINDOW + 1;
        let wake = self.next_wake().min(budget_deadline).min(deadlock_deadline);
        let delta = wake.saturating_sub(self.now);
        if delta == 0 {
            return;
        }
        self.account_stalls(self.classify_stall(), delta);
        if self.machine.mode == Mode::Kernel {
            self.stats.kernel_cycles += delta;
        } else {
            self.stats.user_cycles += delta;
        }
        self.stats.cycles += delta;
        self.now += delta;
        self.ff_skipped += delta;
    }

    // ----- commit -------------------------------------------------------

    fn commit_stage(&mut self) -> Result<u32, SimError> {
        let mut committed = 0u32;
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.front() else { break };

            // Serializing instructions execute at the head.
            if head.inst.is_serializing() && !head.computed {
                let inst = head.inst;
                let e = self.rob.front_mut().expect("nonempty");
                if let Inst::RdTsc { .. } = inst {
                    e.value = self.now
                }
                e.ready_at = self.now;
                e.computed = true;
                // Serializing instructions commit in this same loop pass:
                // release any sleeping consumers before the entry leaves
                // the ROB.
                self.wake_waiters(0);
            }

            let head = self.rob.front().expect("nonempty");
            if !head.computed || head.ready_at > self.now {
                break;
            }
            debug_assert!(
                !head.mispred || head.squash_done,
                "mispredicted control must squash before commit"
            );

            let entry = self.rob.pop_front().expect("nonempty");
            self.rob_seqs.pop_front();
            self.last_commit_cycle = self.now;
            self.stats.committed_insts += 1;
            committed += 1;

            // Differential shadow replay: check the retired instruction
            // against architectural state *before* its commit effects.
            if let Some(sni) = self.sni.as_mut() {
                sni.on_commit(
                    &RetiredInst {
                        seq: entry.seq,
                        pc: entry.pc,
                        inst: entry.inst,
                        value: entry.value,
                        addr: entry.addr,
                        width: entry.width,
                        store_val: entry.store_val,
                        taken: entry.actual_taken,
                        target: entry.actual_target,
                    },
                    &self.machine,
                    &mut self.stats.sni,
                );
            }

            // Free the rename slot if this entry is still the last writer.
            if let Some(dst) = entry.inst.dst() {
                if self.rename[dst as usize] == Some(entry.seq) {
                    self.rename[dst as usize] = None;
                }
                self.machine.set_reg(dst, entry.value);
            }

            match entry.inst {
                Inst::Store { width, .. } => {
                    self.machine.mem.write(entry.addr, entry.store_val, width);
                    self.mem.write(entry.addr);
                    self.sq_used -= 1;
                    self.stats.committed_stores += 1;
                }
                Inst::Load { .. } => {
                    self.lq_used -= 1;
                    self.stats.committed_loads += 1;
                }
                Inst::Branch { .. } => {
                    self.stats.committed_branches += 1;
                    self.pred
                        .dir
                        .update(entry.pc, entry.hist_snapshot, entry.actual_taken);
                }
                Inst::JumpInd { .. } | Inst::CallInd { .. } => {
                    self.pred.btb.install(
                        entry.pc,
                        entry.hist_snapshot,
                        entry.actual_target,
                        entry.in_kernel,
                    );
                    if matches!(entry.inst, Inst::CallInd { .. }) {
                        self.machine.call_stack.push(entry.pc + INST_BYTES);
                    }
                    if let Some(trace) = &mut self.call_trace {
                        trace.insert(entry.actual_target);
                    }
                }
                Inst::Call { target } => {
                    self.machine.call_stack.push(entry.pc + INST_BYTES);
                    if let Some(trace) = &mut self.call_trace {
                        trace.insert(target);
                    }
                }
                Inst::Ret if self.machine.call_stack.pop().is_none() => {
                    return Err(SimError::CallStackUnderflow { pc: entry.pc });
                }
                Inst::Syscall => {
                    self.stats.syscalls += 1;
                    if let Some(trace) = &mut self.call_trace {
                        trace.insert(self.machine.kernel_entry);
                    }
                    self.machine.mode = Mode::Kernel;
                    self.machine.cur_sysno = Some(self.machine.reg(REG_SYSNO) as u16);
                    self.machine.sysret_target = entry.pc + INST_BYTES;
                    self.fetch_pc = self.machine.kernel_entry;
                    self.fetch_halted = false;
                    self.fetch_stall_until = self.now + 1 + self.policy.syscall_entry_cost();
                }
                Inst::Sysret => {
                    self.machine.mode = Mode::User;
                    self.machine.cur_sysno = None;
                    self.fetch_pc = self.machine.sysret_target;
                    self.fetch_halted = false;
                    self.fetch_stall_until = self.now + 1 + self.policy.syscall_exit_cost();
                }
                Inst::KHook { id } => {
                    let result = self.hooks.on_hook(id, &mut self.machine);
                    self.fetch_pc = match result.action {
                        HookAction::Continue => entry.pc + INST_BYTES,
                        HookAction::Redirect(target) => target,
                    };
                    self.fetch_halted = false;
                    self.fetch_stall_until = self.now + 1 + result.extra_cycles;
                    // Hooks may rewrite registers/memory wholesale; the
                    // pipe behind a serializing op is empty, so the spec
                    // view simply restarts from architectural state.
                    debug_assert!(self.rob.is_empty());
                    self.rename = [None; NUM_REGS];
                    self.spec_stack = self.machine.call_stack.clone();
                }
                Inst::RdTsc { .. } => {
                    self.fetch_pc = entry.pc + INST_BYTES;
                    self.fetch_halted = false;
                    self.fetch_stall_until = self.now + 1;
                }
                Inst::Halt => {
                    self.halted = true;
                    return Ok(committed);
                }
                _ => {}
            }
            self.machine.pc = entry.pc;
        }
        Ok(committed)
    }

    // ----- fetch / decode --------------------------------------------------

    fn fetch_stage(&mut self) -> Result<(), SimError> {
        if self.halted
            || self.fetch_halted
            || self.fetch_wait_indirect.is_some()
            || self.now < self.fetch_stall_until
        {
            return Ok(());
        }
        for _ in 0..self.cfg.width {
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let pc = self.fetch_pc;
            let Some(inst) = self.machine.inst_at(pc) else {
                // Wrong-path fetch into unmapped memory simply stalls the
                // front-end until the squash redirects it. On the committed
                // path this is a real fault.
                // Wrong-path fetches stall until the squash redirects;
                // an empty ROB means the committed path itself is bad.
                if !self.rob.is_empty() {
                    return Ok(());
                }
                return Err(SimError::UnmappedFetch { pc });
            };

            // Instruction-cache timing: one lookup per new line.
            let line = pc & !63;
            if line != self.last_fetch_line {
                // The lookup itself mutates i-cache LRU/stats, even when
                // it ends up stalling fetch instead of decoding.
                self.made_progress = true;
                let lat = self.mem.fetch(pc);
                self.last_fetch_line = line;
                if lat > self.mem.config().l1i.rt_latency {
                    self.fetch_stall_until = self.now + lat;
                    return Ok(());
                }
            }

            // Capacity checks.
            if matches!(inst, Inst::Load { .. }) && self.lq_used >= self.cfg.lq_entries {
                break;
            }
            if matches!(inst, Inst::Store { .. }) && self.sq_used >= self.cfg.sq_entries {
                break;
            }

            self.decode_one(pc, inst);

            if inst.is_serializing() {
                self.fetch_halted = true;
                break;
            }
            if self.fetch_wait_indirect.is_some() {
                break;
            }
        }
        Ok(())
    }

    fn decode_one(&mut self, pc: u64, inst: Inst) {
        self.made_progress = true;
        let seq = self.next_seq;
        self.next_seq += 1;

        let srcs = SrcList::new(&inst.srcs(), |reg| {
            let producer = self.rename[reg as usize];
            let snapshot = if producer.is_none() {
                self.machine.reg(reg)
            } else {
                0
            };
            SrcDep {
                reg,
                producer,
                snapshot,
            }
        });

        let fetch_ready = self.now + self.cfg.frontend_latency;
        let mut entry = RobEntry {
            seq,
            pc,
            inst,
            srcs,
            fetch_ready,
            computed: false,
            value: 0,
            ready_at: u64::MAX,
            retry_at: 0,
            waiters: [0; 4],
            n_waiters: 0,
            can_mispredict: false,
            pred_target: 0,
            actual_target: 0,
            mispred: false,
            squash_done: false,
            hist_snapshot: self.pred.hist,
            rsb_snapshot: None,
            stack_snapshot: None,
            pred_taken: false,
            actual_taken: false,
            addr: 0,
            width: Width::Q,
            store_val: 0,
            issued_mem: false,
            blocked: None,
            block_memo: None,
            was_blocked: false,
            spec_at_issue: false,
            taint: TaintSet::default(),
            vp_notified: false,
            in_kernel: self.machine.mode == Mode::Kernel,
        };

        match inst {
            Inst::MovImm { imm, .. } => {
                entry.value = imm;
                entry.ready_at = fetch_ready + 1;
                entry.computed = true;
                self.fetch_pc = pc + INST_BYTES;
            }
            Inst::Branch { .. } => {
                let taken = self.pred.dir.predict(pc, self.pred.hist);
                let target = match inst {
                    Inst::Branch { target, .. } => target,
                    _ => unreachable!(),
                };
                entry.pred_taken = taken;
                entry.pred_target = if taken { target } else { pc + INST_BYTES };
                entry.can_mispredict = true;
                entry.rsb_snapshot = Some(self.pred.rsb.clone());
                entry.stack_snapshot = Some(self.spec_stack.clone());
                self.pred.hist = (self.pred.hist << 1) | u64::from(taken);
                self.fetch_pc = entry.pred_target;
            }
            Inst::Jump { target } => {
                entry.ready_at = fetch_ready + 1;
                entry.computed = true;
                self.fetch_pc = target;
            }
            Inst::Call { target } => {
                self.spec_stack.push(pc + INST_BYTES);
                self.pred.rsb.push(pc + INST_BYTES);
                entry.ready_at = fetch_ready + 1;
                entry.computed = true;
                self.fetch_pc = target;
            }
            Inst::CallInd { .. } | Inst::JumpInd { .. } => {
                if matches!(inst, Inst::CallInd { .. }) {
                    self.spec_stack.push(pc + INST_BYTES);
                    self.pred.rsb.push(pc + INST_BYTES);
                }
                entry.can_mispredict = true;
                entry.rsb_snapshot = Some(self.pred.rsb.clone());
                entry.stack_snapshot = Some(self.spec_stack.clone());
                let in_kernel = self.machine.mode == Mode::Kernel;
                let prediction = if self.policy.predict_indirect() {
                    self.pred.btb.predict(pc, self.pred.hist, in_kernel)
                } else {
                    None
                };
                match prediction {
                    Some(t) => {
                        entry.pred_target = t;
                        self.fetch_pc = t;
                    }
                    None => {
                        // No prediction: stall fetch until the target
                        // resolves (also the retpoline path).
                        self.fetch_wait_indirect = Some(seq);
                        entry.pred_target = u64::MAX; // placeholder, fixed on resolve
                    }
                }
            }
            Inst::Ret => {
                let actual = self.spec_stack.pop().unwrap_or(u64::MAX);
                let in_kernel = self.machine.mode == Mode::Kernel;
                let predicted = self
                    .pred
                    .rsb
                    .pop()
                    .or_else(|| self.pred.btb.predict(pc, self.pred.hist, in_kernel))
                    .unwrap_or(pc + INST_BYTES);
                entry.can_mispredict = true;
                entry.actual_target = actual;
                entry.pred_target = predicted;
                entry.actual_taken = true;
                entry.mispred = predicted != actual;
                entry.ready_at = fetch_ready + self.cfg.ret_resolve_latency;
                entry.computed = true;
                entry.rsb_snapshot = Some(self.pred.rsb.clone());
                entry.stack_snapshot = Some(self.spec_stack.clone());
                self.fetch_pc = predicted;
            }
            Inst::Load { .. } => {
                self.lq_used += 1;
                self.fetch_pc = pc + INST_BYTES;
            }
            Inst::Store { .. } => {
                self.sq_used += 1;
                self.fetch_pc = pc + INST_BYTES;
            }
            _ => {
                self.fetch_pc = pc + INST_BYTES;
            }
        }

        if let Some(dst) = inst.dst() {
            self.rename[dst as usize] = Some(seq);
        }
        self.rob.push_back(entry);
        self.rob_seqs.push_back(seq);
        self.exec_active.push_back(seq);
    }
}

fn store_offset(inst: &Inst) -> i64 {
    match *inst {
        Inst::Store { offset, .. } => offset,
        _ => 0,
    }
}

fn mask_width(v: u64, w: Width) -> u64 {
    match w {
        Width::B => v & 0xff,
        Width::Q => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHooks;
    use crate::isa::AluOp;
    use crate::isa::{Assembler, Cond};
    use crate::policy::UnsafePolicy;
    use persp_mem::hierarchy::HierarchyConfig;

    fn core_with(text: Vec<(u64, Inst)>) -> Core {
        let mut machine = Machine::new();
        machine.load_text(text);
        Core::new(
            CoreConfig::paper_default(),
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            Box::new(UnsafePolicy::new()),
            Box::new(NullHooks),
        )
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Assembler::new(0x1000);
        a.movi(1, 20);
        a.movi(2, 22);
        a.alu(AluOp::Add, 3, 1, 2);
        a.push(Inst::Halt);
        let mut core = core_with(a.finish());
        core.run(0x1000, 10_000).expect("runs");
        assert_eq!(core.machine.reg(3), 42);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut a = Assembler::new(0x1000);
        a.movi(1, 0x8000);
        a.movi(2, 1234);
        a.store(2, 1, 0);
        a.load(3, 1, 0);
        a.push(Inst::Halt);
        let mut core = core_with(a.finish());
        core.run(0x1000, 10_000).expect("runs");
        assert_eq!(core.machine.reg(3), 1234, "store-to-load forwarding");
        assert_eq!(core.machine.mem.read_u64(0x8000), 1234);
    }

    #[test]
    fn loop_with_branch() {
        // r1 = 0; while (r1 != 10) r1 += 1;
        let mut a = Assembler::new(0x2000);
        a.movi(1, 0);
        a.movi(2, 10);
        let top = a.here();
        a.alui(AluOp::Add, 1, 1, 1);
        a.branch_to(Cond::Ne, 1, 2, top);
        a.push(Inst::Halt);
        let mut core = core_with(a.finish());
        let summary = core.run(0x2000, 100_000).expect("runs");
        assert_eq!(core.machine.reg(1), 10);
        assert!(summary.stats.committed_branches >= 10);
    }

    #[test]
    fn call_and_ret() {
        let mut a = Assembler::new(0x3000);
        let f = 0x4000u64;
        a.push(Inst::Call { target: f });
        a.push(Inst::Halt);
        let mut main_text = a.finish();
        let mut fa = Assembler::new(f);
        fa.movi(5, 99);
        fa.push(Inst::Ret);
        main_text.extend(fa.finish());
        let mut core = core_with(main_text);
        core.run(0x3000, 10_000).expect("runs");
        assert_eq!(core.machine.reg(5), 99);
        assert!(core.machine.call_stack.is_empty());
    }

    #[test]
    fn indirect_jump_resolves_without_prediction() {
        let mut a = Assembler::new(0x5000);
        a.movi(1, 0x5010);
        a.push(Inst::JumpInd { base: 1 });
        a.movi(2, 1); // skipped
        a.push(Inst::Nop); // 0x500c (skipped)
        let landing = a.here();
        assert_eq!(landing, 0x5010);
        a.movi(3, 7);
        a.push(Inst::Halt);
        let mut core = core_with(a.finish());
        core.run(0x5000, 10_000).expect("runs");
        assert_eq!(core.machine.reg(3), 7);
        assert_eq!(
            core.machine.reg(2),
            0,
            "skipped instruction must not commit"
        );
    }

    #[test]
    fn transient_wrong_path_load_fills_cache_but_does_not_commit() {
        // Spectre-style skeleton: train a branch taken, then flip the
        // condition; the wrong-path load touches memory, gets squashed,
        // and its line stays resident.
        let secret_addr = 0x9000u64;
        let bound_ptr = 0xA000u64;

        // Loop: r4 = i; bound = *(*bound_ptr); if (r4 < bound) { r6 = load secret }.
        let mut a = Assembler::new(0x6000);
        a.movi(1, bound_ptr);
        let skip = a.new_label();
        a.load(2, 1, 0); // r2 = *bound_ptr (pointer)
        a.load(3, 2, 0); // r3 = bound (two dependent loads = long window)
        a.branch(Cond::Geu, 10, 3, skip); // if i >= bound skip
        a.movi(5, secret_addr);
        a.load(6, 5, 0); // the "transient" load when mispredicted
        a.bind(skip);
        a.push(Inst::Halt);
        let text = a.finish();
        let branch_pc = text
            .iter()
            .find(|(_, i)| matches!(i, Inst::Branch { .. }))
            .map(|(a, _)| *a)
            .unwrap();

        let mut core = core_with(text);
        core.machine.mem.write_u64(bound_ptr, bound_ptr + 0x100);
        core.machine.mem.write_u64(bound_ptr + 0x100, 100); // bound = 100
        core.machine.mem.write_u64(secret_addr, 0x5ec7e7);

        // Train: i = 0 (< 100) → branch not taken, body executes.
        for _ in 0..6 {
            core.machine.set_reg(10, 0);
            core.run(0x6000, 100_000).expect("training run");
            assert_eq!(core.machine.reg(6), 0x5ec7e7);
        }

        // Attack run: i = 200 (>= 100) → branch *should* skip, but it is
        // predicted not-taken; make the bound loads slow so the window is
        // long enough for the wrong-path load to issue.
        core.mem.flush(bound_ptr);
        core.mem.flush(bound_ptr + 0x100);
        core.mem.flush(secret_addr);
        core.machine.set_reg(10, 200);
        core.machine.set_reg(6, 0);
        let before = core.stats();
        core.run(0x6000, 100_000).expect("attack run");
        let delta = core.stats().delta_since(&before);

        assert_eq!(core.machine.reg(6), 0, "transient load must not commit");
        assert!(delta.squashes >= 1, "the branch mispredicted: {delta:?}");
        assert!(
            delta.transient_loads_issued >= 1,
            "the wrong-path load issued transiently: {delta:?}"
        );
        assert!(
            core.mem.probe_any(secret_addr),
            "microarchitectural state persists"
        );
        let _ = branch_pc;
    }

    #[test]
    fn rdtsc_measures_load_latency() {
        let mut a = Assembler::new(0x7000);
        a.movi(1, 0xC000);
        a.push(Inst::RdTsc { dst: 2 });
        a.load(3, 1, 0);
        a.push(Inst::RdTsc { dst: 4 });
        a.alu(AluOp::Sub, 5, 4, 2);
        a.push(Inst::Halt);
        let text = a.finish();

        let mut core = core_with(text);
        // Cold: ~110 cycles; warm: ~2.
        core.run(0x7000, 10_000).expect("cold run");
        let cold = core.machine.reg(5);
        core.run(0x7000, 10_000).expect("warm run");
        let warm = core.machine.reg(5);
        assert!(cold > warm + 50, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn syscall_traps_to_kernel_and_back() {
        let mut a = Assembler::new(0x100);
        a.movi(17, 3);
        a.push(Inst::Syscall);
        a.movi(9, 77); // runs after sysret
        a.push(Inst::Halt);
        let mut text = a.finish();

        let mut k = Assembler::new(0xFFFF_0000);
        k.movi(8, 1); // kernel work
        k.push(Inst::Sysret);
        text.extend(k.finish());

        let mut core = core_with(text);
        core.machine.kernel_entry = 0xFFFF_0000;
        let summary = core.run(0x100, 10_000).expect("runs");
        assert_eq!(core.machine.reg(8), 1);
        assert_eq!(core.machine.reg(9), 77);
        assert_eq!(core.machine.mode, Mode::User);
        assert_eq!(summary.stats.syscalls, 1);
        assert!(summary.stats.kernel_cycles > 0);
    }

    #[test]
    fn unmapped_fetch_is_an_error() {
        let mut core = core_with(vec![(
            0x0,
            Inst::Jump {
                target: 0xdead_0000,
            },
        )]);
        let err = core.run(0x0, 10_000).unwrap_err();
        assert!(matches!(err, SimError::UnmappedFetch { .. }));
    }

    #[test]
    fn cycle_budget_is_enforced() {
        // Infinite loop.
        let mut a = Assembler::new(0x0);
        let top = a.here();
        a.branch_to(Cond::Eq, 0, 0, top);
        let mut core = core_with(a.finish());
        let err = core.run(0x0, 500).unwrap_err();
        assert!(matches!(err, SimError::CycleBudgetExhausted { .. }));
    }

    #[test]
    fn fence_orders_execution() {
        let mut a = Assembler::new(0x0);
        a.movi(1, 0x8000);
        a.push(Inst::Fence);
        a.load(2, 1, 0);
        a.push(Inst::Halt);
        let mut core = core_with(a.finish());
        core.machine.mem.write_u64(0x8000, 5);
        core.run(0x0, 10_000).expect("runs");
        assert_eq!(core.machine.reg(2), 5);
    }

    #[test]
    fn clflush_evicts() {
        let mut a = Assembler::new(0x0);
        a.movi(1, 0x8000);
        a.load(2, 1, 0); // fill
        a.push(Inst::CacheFlush { base: 1, offset: 0 });
        a.push(Inst::Halt);
        let mut core = core_with(a.finish());
        core.run(0x0, 10_000).expect("runs");
        assert!(!core.mem.probe_any(0x8000));
    }

    #[test]
    fn khook_redirect_is_followed() {
        struct Redirector;
        impl HookHandler for Redirector {
            fn on_hook(&mut self, id: u16, m: &mut Machine) -> crate::hooks::HookResult {
                m.set_reg(20, u64::from(id));
                crate::hooks::HookResult {
                    extra_cycles: 3,
                    action: HookAction::Redirect(0x9000),
                }
            }
        }
        let mut a = Assembler::new(0x0);
        a.push(Inst::KHook { id: 42 });
        a.movi(21, 1); // skipped by redirect
        let mut text = a.finish();
        let mut b = Assembler::new(0x9000);
        b.movi(22, 2);
        b.push(Inst::Halt);
        text.extend(b.finish());

        let mut machine = Machine::new();
        machine.load_text(text);
        let mut core = Core::new(
            CoreConfig::paper_default(),
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            Box::new(UnsafePolicy::new()),
            Box::new(Redirector),
        );
        core.run(0x0, 10_000).expect("runs");
        assert_eq!(core.machine.reg(20), 42);
        assert_eq!(core.machine.reg(21), 0);
        assert_eq!(core.machine.reg(22), 2);
    }

    #[test]
    fn stall_attribution_partitions_stall_cycles() {
        // A loop with dependent loads + branches exercises frontend,
        // backend, and squash stall classes.
        let mut a = Assembler::new(0x2000);
        a.movi(1, 0);
        a.movi(2, 40);
        a.movi(4, 0x8000);
        let top = a.here();
        a.load(5, 4, 0);
        a.load(6, 5, 0);
        a.alui(AluOp::Add, 1, 1, 1);
        a.branch_to(Cond::Ne, 1, 2, top);
        a.push(Inst::Halt);
        let mut core = core_with(a.finish());
        core.machine.mem.write_u64(0x8000, 0x9000);
        core.machine.mem.write_u64(0x9000, 7);
        let summary = core.run(0x2000, 1_000_000).expect("runs");
        let s = summary.stats;
        assert!(s.stall_cycles > 0, "dependent loads must stall: {s:?}");
        assert_eq!(
            s.stalls.total(),
            s.stall_cycles,
            "breakdown must partition the stall cycles exactly: {s:?}"
        );
        assert!(s.stall_cycles < s.cycles, "some cycles committed");
    }

    #[test]
    fn fence_stalls_are_attributed_to_vp_wait() {
        use crate::policy::FencePolicy;
        // Speculative loads under FENCE wait for their VP; those waits
        // must land in the vp_wait class, and the partition must hold.
        // The branch condition depends on the loaded value, so each
        // iteration's load computes under the previous iteration's
        // still-unresolved branch — a real speculation window.
        let mut a = Assembler::new(0x2000);
        a.movi(1, 0);
        a.movi(2, 20);
        a.movi(4, 0x8000);
        let top = a.here();
        a.load(3, 4, 0); // r3 = 1
        a.alu(AluOp::Add, 1, 1, 3); // r1 += r3
        a.branch_to(Cond::Ne, 1, 2, top);
        a.push(Inst::Halt);
        let mut machine = Machine::new();
        machine.load_text(a.finish());
        machine.mem.write_u64(0x8000, 1);
        let mut core = Core::new(
            CoreConfig::paper_default(),
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            Box::new(FencePolicy::new()),
            Box::new(NullHooks),
        );
        let summary = core.run(0x2000, 1_000_000).expect("runs");
        let s = summary.stats;
        assert_eq!(s.stalls.total(), s.stall_cycles, "{s:?}");
        assert!(s.loads_fenced > 0, "FENCE blocked loads: {s:?}");
        assert!(s.stalls.vp_wait > 0, "fence waits attributed: {s:?}");
        assert_eq!(s.stalls.isv_fence, 0, "no ISV mechanism here");
    }

    #[test]
    fn fence_policy_blocks_transient_side_effects() {
        use crate::policy::FencePolicy;
        // Same gadget as the transient test, but under FENCE the secret
        // line must stay cold.
        let secret_addr = 0x9000u64;
        let bound_ptr = 0xA000u64;
        let mut a = Assembler::new(0x6000);
        a.movi(1, bound_ptr);
        let skip = a.new_label();
        a.load(2, 1, 0);
        a.load(3, 2, 0);
        a.branch(Cond::Geu, 10, 3, skip);
        a.movi(5, secret_addr);
        a.load(6, 5, 0);
        a.bind(skip);
        a.push(Inst::Halt);

        let mut machine = Machine::new();
        machine.load_text(a.finish());
        machine.mem.write_u64(bound_ptr, bound_ptr + 0x100);
        machine.mem.write_u64(bound_ptr + 0x100, 100);
        machine.mem.write_u64(secret_addr, 0x5ec7e7);
        let mut core = Core::new(
            CoreConfig::paper_default(),
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            Box::new(FencePolicy::new()),
            Box::new(NullHooks),
        );

        for _ in 0..6 {
            core.machine.set_reg(10, 0);
            core.run(0x6000, 100_000).expect("training run");
        }
        core.mem.flush(bound_ptr);
        core.mem.flush(bound_ptr + 0x100);
        core.mem.flush(secret_addr);
        core.machine.set_reg(10, 200);
        core.run(0x6000, 100_000).expect("attack run");

        assert!(
            !core.mem.probe_any(secret_addr),
            "FENCE must prevent the transient fill"
        );
        assert!(core.policy().counters().blocked_fence > 0);
    }
}
