//! Differential-testing toolkit: a random-program generator and a
//! trivial in-order architectural interpreter, shared by the pipeline's
//! own differential proptests and by downstream crates checking that
//! their speculation policies are architecturally transparent.
//!
//! The property every policy must satisfy: speculation policies and
//! transient execution may change *timing* and *microarchitectural*
//! state, never architectural results. Random programs are run through
//! the out-of-order pipeline and through [`interpret`]; registers and
//! the data pool must match exactly.

use crate::config::CoreConfig;
use crate::hooks::NullHooks;
use crate::isa::{AluOp, Cond, Inst, Width, INST_BYTES, NUM_REGS};
use crate::machine::Machine;
use crate::pipeline::{Core, SimError};
use crate::policy::SpecPolicy;
use crate::stats::SimStats;
use persp_mem::{CacheStats, HierarchyConfig, MemoryHierarchy};
use std::collections::HashMap;

/// Base address of the small data pool programs read and write (small,
/// to provoke store-to-load forwarding and aliasing).
pub const POOL_BASE: u64 = 0x10_0000;
/// Number of 8-byte slots in the pool.
pub const POOL_SLOTS: u64 = 8;

/// Instruction templates; branch targets are resolved at program build
/// time as short forward skips (always well-formed, loop-free).
#[derive(Debug, Clone)]
pub enum Template {
    /// `dst = imm`
    MovImm {
        /// Destination register.
        dst: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = a ⊕ b`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// First operand register.
        a: u8,
        /// Second operand register.
        b: u8,
    },
    /// `dst = a ⊕ imm`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// Operand register.
        a: u8,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = pool[slot]`
    Load {
        /// Destination register.
        dst: u8,
        /// Pool slot index.
        slot: u64,
        /// Access width.
        width: Width,
    },
    /// `pool[slot] = src`
    Store {
        /// Source register.
        src: u8,
        /// Pool slot index.
        slot: u64,
        /// Access width.
        width: Width,
    },
    /// Conditional forward skip of up to `skip` following instructions.
    SkipIf {
        /// Branch condition.
        cond: Cond,
        /// First compared register.
        a: u8,
        /// Second compared register.
        b: u8,
        /// Instructions to skip when taken (clamped to program end).
        skip: u8,
    },
}

/// Materialize templates into a program at `base`, terminated by `Halt`.
/// Register 31 is the pool base pointer by convention.
pub fn build_program(templates: &[Template], base: u64) -> Vec<(u64, Inst)> {
    let mut out = Vec::with_capacity(templates.len() + 1);
    for (i, t) in templates.iter().enumerate() {
        let pc = base + i as u64 * INST_BYTES;
        let inst = match *t {
            Template::MovImm { dst, imm } => Inst::MovImm { dst, imm },
            Template::Alu { op, dst, a, b } => Inst::Alu { op, dst, a, b },
            Template::AluImm { op, dst, a, imm } => Inst::AluImm { op, dst, a, imm },
            Template::Load { dst, slot, width } => Inst::Load {
                dst,
                base: 31,
                offset: (slot * 8) as i64,
                width,
            },
            Template::Store { src, slot, width } => Inst::Store {
                src,
                base: 31,
                offset: (slot * 8) as i64,
                width,
            },
            Template::SkipIf { cond, a, b, skip } => {
                let remaining = (templates.len() - i - 1) as u64;
                let dist = u64::from(skip).min(remaining);
                Inst::Branch {
                    cond,
                    a,
                    b,
                    target: pc + (1 + dist) * INST_BYTES,
                }
            }
        };
        out.push((pc, inst));
    }
    out.push((base + templates.len() as u64 * INST_BYTES, Inst::Halt));
    out
}

/// The trivial in-order architectural oracle.
///
/// # Panics
///
/// Panics on instructions outside the template subset or runaway
/// programs (>10 000 steps) — both indicate harness bugs, not pipeline
/// bugs.
pub fn interpret(
    text: &HashMap<u64, Inst>,
    entry: u64,
    regs: &mut [u64; 32],
    mem: &mut HashMap<u64, u8>,
) {
    let mut pc = entry;
    let read = |mem: &HashMap<u64, u8>, addr: u64, w: Width| -> u64 {
        match w {
            Width::B => u64::from(*mem.get(&addr).unwrap_or(&0)),
            Width::Q => {
                let mut v = 0u64;
                for i in 0..8 {
                    v |= u64::from(*mem.get(&(addr + i)).unwrap_or(&0)) << (8 * i);
                }
                v
            }
        }
    };
    let reg = |regs: &[u64; 32], r: u8| if r == 0 { 0 } else { regs[r as usize] };
    for _ in 0..10_000 {
        let inst = *text.get(&pc).expect("oracle fetch");
        match inst {
            Inst::MovImm { dst, imm } => regs[dst as usize] = imm,
            Inst::Alu { op, dst, a, b } => {
                regs[dst as usize] = op.apply(reg(regs, a), reg(regs, b))
            }
            Inst::AluImm { op, dst, a, imm } => regs[dst as usize] = op.apply(reg(regs, a), imm),
            Inst::Load {
                dst,
                base,
                offset,
                width,
            } => {
                let addr = reg(regs, base).wrapping_add(offset as u64);
                regs[dst as usize] = read(mem, addr, width);
            }
            Inst::Store {
                src,
                base,
                offset,
                width,
            } => {
                let addr = reg(regs, base).wrapping_add(offset as u64);
                let v = reg(regs, src);
                let n = match width {
                    Width::B => 1,
                    Width::Q => 8,
                };
                for i in 0..n {
                    mem.insert(addr + i, (v >> (8 * i)) as u8);
                }
            }
            Inst::Branch { cond, a, b, target } => {
                if cond.eval(reg(regs, a), reg(regs, b)) {
                    pc = target;
                    continue;
                }
            }
            Inst::Halt => return,
            other => panic!("oracle does not model {other}"),
        }
        pc += INST_BYTES;
        regs[0] = 0;
    }
    panic!("oracle ran away");
}

/// Everything the idle fast-forward is required to preserve bit-for-bit,
/// collected after a run so the fast and slow paths can be compared with
/// one `assert_eq!`: the run result (per-run stats delta or the exact
/// [`SimError`]), the final cycle, architectural state (registers and the
/// shared data pool), and the microarchitectural cache statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FastfwdOutcome {
    /// `Core::run` result, reduced to its `PartialEq` payload.
    pub result: Result<SimStats, SimError>,
    /// `Core::now()` after the run — fast-forward must land on the same
    /// cycle, not merely the same counters.
    pub final_cycle: u64,
    /// Cumulative core statistics — compared even when the run errors
    /// out (budget exhaustion, deadlock), where `result` carries no
    /// counters.
    pub cumulative: SimStats,
    /// Final architectural register file.
    pub regs: [u64; NUM_REGS],
    /// Final contents of the shared data pool.
    pub pool: [u64; POOL_SLOTS as usize],
    /// L1-D statistics (fast-forward skips only no-op cycles, so cache
    /// traffic must be identical, not just architectural results).
    pub l1d: CacheStats,
    /// L1-I statistics.
    pub l1i: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Prefetches issued by the hierarchy.
    pub prefetches: u64,
}

/// Run `text` from `entry` on a fresh core with `idle_fastforward` set to
/// `fastfwd`, and collect the [`FastfwdOutcome`]. `prepare` runs after
/// construction (seed registers/memory, pre-warm caches); register 31 is
/// pre-pointed at [`POOL_BASE`] per the testkit convention.
pub fn fastfwd_outcome(
    text: &[(u64, Inst)],
    entry: u64,
    budget: u64,
    fastfwd: bool,
    policy: Box<dyn SpecPolicy>,
    prepare: &dyn Fn(&mut Core),
) -> FastfwdOutcome {
    let cfg = CoreConfig {
        idle_fastforward: fastfwd,
        ..CoreConfig::paper_default()
    };
    let mut machine = Machine::new();
    machine.load_text(text.to_vec());
    machine.set_reg(31, POOL_BASE);
    let mut core = Core::new(
        cfg,
        machine,
        MemoryHierarchy::new(HierarchyConfig::paper_default()),
        policy,
        Box::new(NullHooks),
    );
    prepare(&mut core);
    let result = core.run(entry, budget).map(|s| s.stats);
    let mut pool = [0u64; POOL_SLOTS as usize];
    for (i, slot) in pool.iter_mut().enumerate() {
        *slot = core.machine.mem.read_u64(POOL_BASE + 8 * i as u64);
    }
    FastfwdOutcome {
        result,
        final_cycle: core.now(),
        cumulative: core.stats(),
        regs: core.machine.regs(),
        pool,
        l1d: core.mem.l1d_stats(),
        l1i: core.mem.l1i_stats(),
        l2: core.mem.l2_stats(),
        prefetches: core.mem.prefetch_count(),
    }
}

/// The fast-vs-slow differential oracle: run the program under both the
/// idle fast-forward and the slow per-cycle path and assert the two
/// [`FastfwdOutcome`]s are identical. `mk_policy` is called once per
/// path so each run gets fresh policy state.
///
/// # Panics
///
/// Panics when any run outcome component (stats, error, final cycle,
/// registers, pool, cache statistics) differs between the two paths.
pub fn assert_fastfwd_equivalent(
    text: &[(u64, Inst)],
    entry: u64,
    budget: u64,
    mk_policy: &dyn Fn() -> Box<dyn SpecPolicy>,
    prepare: &dyn Fn(&mut Core),
) {
    let fast = fastfwd_outcome(text, entry, budget, true, mk_policy(), prepare);
    let slow = fastfwd_outcome(text, entry, budget, false, mk_policy(), prepare);
    assert_eq!(
        fast, slow,
        "idle fast-forward must be cycle-exact against the slow path"
    );
    let stats = &fast.cumulative;
    assert_eq!(
        stats.stalls.total(),
        stats.stall_cycles,
        "stall breakdown must still partition stall cycles: {stats:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_clamps_branches_into_the_program() {
        let prog = build_program(
            &[
                Template::SkipIf {
                    cond: Cond::Eq,
                    a: 0,
                    b: 0,
                    skip: 200,
                },
                Template::MovImm { dst: 1, imm: 7 },
            ],
            0x1000,
        );
        let Inst::Branch { target, .. } = prog[0].1 else {
            panic!("first inst is the branch");
        };
        assert_eq!(target, 0x1000 + 2 * INST_BYTES, "lands on Halt");
    }

    #[test]
    fn oracle_executes_the_template_subset() {
        let prog = build_program(
            &[
                Template::MovImm { dst: 1, imm: 5 },
                Template::Store {
                    src: 1,
                    slot: 2,
                    width: Width::Q,
                },
                Template::Load {
                    dst: 3,
                    slot: 2,
                    width: Width::B,
                },
            ],
            0x1000,
        );
        let text: HashMap<u64, Inst> = prog.into_iter().collect();
        let mut regs = [0u64; 32];
        regs[31] = POOL_BASE;
        let mut mem = HashMap::new();
        interpret(&text, 0x1000, &mut regs, &mut mem);
        assert_eq!(regs[3], 5);
    }
}
