//! Architectural machine state: registers, sparse byte-addressed memory,
//! text image, privilege mode and address-space identity.
//!
//! The [`Machine`] holds the *committed* state of the simulated machine.
//! The pipeline maintains its own speculative view on top and only writes
//! back here at retirement, so a squash can never corrupt architectural
//! state.

use crate::isa::{Inst, Width, NUM_REGS, REG_ZERO};
use std::collections::HashMap;

/// Privilege mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Userspace.
    User,
    /// Kernel.
    Kernel,
}

/// Address-space identifier; identifies the execution context (process /
/// container) for tagged microarchitectural structures and for Perspective's
/// speculation views.
pub type Asid = u16;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable memory backed by 4 KiB pages.
#[derive(Debug, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Fresh zeroed memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Read one byte (unmapped memory reads as zero).
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Read a little-endian u64 (may straddle pages).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Read with an explicit access width.
    pub fn read(&self, addr: u64, width: Width) -> u64 {
        match width {
            Width::B => u64::from(self.read_u8(addr)),
            Width::Q => self.read_u64(addr),
        }
    }

    /// Write with an explicit access width.
    pub fn write(&mut self, addr: u64, value: u64, width: Width) {
        match width {
            Width::B => self.write_u8(addr, value as u8),
            Width::Q => self.write_u64(addr, value),
        }
    }

    /// Number of populated 4 KiB pages.
    pub fn populated_pages(&self) -> usize {
        self.pages.len()
    }
}

/// The committed architectural state.
#[derive(Debug)]
pub struct Machine {
    regs: [u64; NUM_REGS],
    /// Data memory.
    pub mem: SparseMemory,
    text: HashMap<u64, Inst>,
    /// Current privilege mode.
    pub mode: Mode,
    /// Current address-space / context identifier.
    pub asid: Asid,
    /// Program counter of the next instruction to commit.
    pub pc: u64,
    /// Kernel entry point used by `Syscall`.
    pub kernel_entry: u64,
    /// Userspace return address captured by the last committed `Syscall`.
    pub sysret_target: u64,
    /// Committed shadow call stack (precise resolution of `Ret`).
    pub call_stack: Vec<u64>,
    /// Syscall currently being serviced (set at `Syscall` commit, cleared
    /// at `Sysret` commit) — the dispatch-granularity context per-syscall
    /// ISVs switch on.
    pub cur_sysno: Option<u16>,
}

impl Machine {
    /// A machine with empty memory, user mode, ASID 0.
    pub fn new() -> Self {
        Machine {
            regs: [0; NUM_REGS],
            mem: SparseMemory::new(),
            text: HashMap::new(),
            mode: Mode::User,
            asid: 0,
            pc: 0,
            kernel_entry: 0,
            sysret_target: 0,
            call_stack: Vec::new(),
            cur_sysno: None,
        }
    }

    /// Read a register (`r0` reads zero).
    pub fn reg(&self, r: u8) -> u64 {
        if r == REG_ZERO {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Write a register (`r0` writes are discarded).
    pub fn set_reg(&mut self, r: u8, value: u64) {
        if r != REG_ZERO {
            self.regs[r as usize] = value;
        }
    }

    /// Snapshot of the whole register file (index 0 is always zero).
    pub fn regs(&self) -> [u64; NUM_REGS] {
        let mut r = self.regs;
        r[0] = 0;
        r
    }

    /// Install instructions into the text image.
    ///
    /// # Panics
    ///
    /// Panics if an address is already occupied by a *different*
    /// instruction (overlapping identical installs are permitted so that
    /// shared stubs can be loaded twice).
    pub fn load_text(&mut self, insts: impl IntoIterator<Item = (u64, Inst)>) {
        for (addr, inst) in insts {
            if let Some(prev) = self.text.insert(addr, inst) {
                assert_eq!(prev, inst, "conflicting instruction at {addr:#x}");
            }
        }
    }

    /// Fetch the instruction at `addr`, if mapped.
    pub fn inst_at(&self, addr: u64) -> Option<Inst> {
        self.text.get(&addr).copied()
    }

    /// Number of instructions in the text image.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Inst;

    #[test]
    fn zero_register_semantics() {
        let mut m = Machine::new();
        m.set_reg(0, 99);
        assert_eq!(m.reg(0), 0);
        m.set_reg(5, 7);
        assert_eq!(m.reg(5), 7);
        assert_eq!(m.regs()[0], 0);
    }

    #[test]
    fn memory_round_trips() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u8(0x1000), 0x0d, "little endian low byte");
        // Straddles a page boundary.
        m.write_u64(0x1ffc, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x1ffc), 0x1122_3344_5566_7788);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u64(0xdead_0000), 0);
        assert_eq!(m.populated_pages(), 0);
    }

    #[test]
    fn width_dispatch() {
        let mut m = SparseMemory::new();
        m.write(0x10, 0x1ff, Width::B);
        assert_eq!(m.read(0x10, Width::B), 0xff, "byte write truncates");
        m.write(0x20, 0x1ff, Width::Q);
        assert_eq!(m.read(0x20, Width::Q), 0x1ff);
    }

    #[test]
    fn text_conflicts_are_detected() {
        let mut m = Machine::new();
        m.load_text([(0x0, Inst::Nop)]);
        m.load_text([(0x0, Inst::Nop)]); // identical re-install OK
        assert_eq!(m.text_len(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.load_text([(0x0, Inst::Halt)]);
        }));
        assert!(result.is_err(), "conflicting install must panic");
    }
}
