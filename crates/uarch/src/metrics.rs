//! A lightweight named-counter registry.
//!
//! Every layer of the stack (pipeline, speculation policy, hardware
//! metadata caches, kernel allocators) exports its counters into one
//! [`MetricsRegistry`] under dotted names (`"isv_cache.hits"`,
//! `"slab.page_frees"`, ...). The registry is an ordered map, so
//! iteration — and therefore every serialized form — is deterministic:
//! two runs that count the same things render byte-identically whatever
//! the thread count or insertion order.

use std::collections::BTreeMap;

/// An ordered collection of named `u64` counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `name` to `value` (overwrites).
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Add `value` to `name` (starting from zero).
    pub fn add(&mut self, name: impl Into<String>, value: u64) {
        *self.counters.entry(name.into()).or_insert(0) += value;
    }

    /// The value of `name`, if set.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterate counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merge another registry in (other's values overwrite on collision).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in other.iter() {
            self.counters.insert(k.to_string(), v);
        }
    }
}

/// Implemented by components that can export their counters under a
/// name prefix (`"<prefix>.<counter>"`).
pub trait MetricsSource {
    /// Write this component's counters into `reg` under `prefix`.
    fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_get() {
        let mut r = MetricsRegistry::new();
        r.set("a.x", 3);
        r.add("a.x", 2);
        r.add("a.y", 1);
        assert_eq!(r.get("a.x"), Some(5));
        assert_eq!(r.get("a.y"), Some(1));
        assert_eq!(r.get("a.z"), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn iteration_is_name_ordered_regardless_of_insertion() {
        let mut r1 = MetricsRegistry::new();
        r1.set("b", 2);
        r1.set("a", 1);
        r1.set("c", 3);
        let mut r2 = MetricsRegistry::new();
        r2.set("c", 3);
        r2.set("a", 1);
        r2.set("b", 2);
        let k1: Vec<_> = r1.iter().collect();
        let k2: Vec<_> = r2.iter().collect();
        assert_eq!(k1, k2);
        assert_eq!(k1[0].0, "a");
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn merge_overwrites_on_collision() {
        let mut r1 = MetricsRegistry::new();
        r1.set("x", 1);
        r1.set("y", 2);
        let mut r2 = MetricsRegistry::new();
        r2.set("y", 20);
        r2.set("z", 30);
        r1.merge(&r2);
        assert_eq!(r1.get("x"), Some(1));
        assert_eq!(r1.get("y"), Some(20));
        assert_eq!(r1.get("z"), Some(30));
    }
}
