//! Speculative non-interference (SNI) checker: a shadow commit-order
//! oracle plus a transient-leakage monitor, attachable to a [`Core`].
//!
//! The checker has two independent halves:
//!
//! * **Shadow oracle** — replays every retired instruction *in program
//!   order with speculation disabled* against an independent
//!   architectural register file, and asserts equivalence with what the
//!   out-of-order pipeline actually committed (values, addresses,
//!   branch directions, return targets, and the committed PC chain).
//!   Any divergence is a pipeline bug, counted in
//!   [`SniCounters::shadow_mismatches`]. The replay is bounded by a
//!   per-checker commit budget so a CI smoke run stays cheap.
//!
//! * **Leakage monitor** — tracks, per speculative load issue, whether
//!   the load (a) should have been blocked according to *pristine*
//!   ground-truth metadata (an [`SniOracle`] implemented over the
//!   framework's DSV/ISV tables, bypassing the policy's hardware
//!   metadata caches), and (b) reads data outside the current context's
//!   DSV — a *secret*. Secret-rooted taint is then followed through the
//!   pipeline's existing STT taint sets: any further speculative memory
//!   access whose **address** depends on a live secret root is a
//!   cache-state-observable transmitter, counted in
//!   [`SniCounters::tainted_transmits`]. With full Perspective
//!   enforcement no secret ever issues speculatively, so both counters
//!   must stay zero; an unprotected baseline running a Spectre-style
//!   gadget provably drives them nonzero.
//!
//! Non-interference, operationally: *the microarchitectural observer
//! (cache state) learns nothing from speculation that the architectural
//! (in-order, speculation-free) execution would not also reveal.*
//!
//! [`Core`]: crate::pipeline::Core

use crate::isa::{Inst, Width, INST_BYTES, NUM_REGS, REG_ZERO};
use crate::machine::Machine;
use crate::policy::LoadCtx;
use crate::stats::SniCounters;
use std::collections::HashSet;
use std::rc::Rc;

/// Ground-truth speculation metadata, evaluated against *pristine*
/// state (the framework's DSV/ISV tables directly — never the policy's
/// hardware metadata caches, whose staleness is part of what the
/// checker audits).
///
/// Implementations must be read-only: the checker may query at any
/// pipeline stage and must not perturb measurement counters.
pub trait SniOracle {
    /// Must a speculative load with this context be blocked until its
    /// visibility point? Only *unsafe allows* (the policy permitting a
    /// load the pristine metadata forbids) are violations; conservative
    /// extra blocks are always legal.
    fn should_block(&self, ctx: &LoadCtx) -> bool;

    /// Does this load read data outside the current context's data
    /// speculation view (a secret, for leak-tracking purposes)?
    fn is_secret(&self, ctx: &LoadCtx) -> bool;
}

/// A retired instruction, as seen by the shadow oracle at commit: the
/// pipeline's view of what the instruction did.
#[derive(Debug, Clone, Copy)]
pub struct RetiredInst {
    /// ROB sequence number.
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Result value (register writeback).
    pub value: u64,
    /// Effective memory address (loads, stores, flushes).
    pub addr: u64,
    /// Memory access width.
    pub width: Width,
    /// Value stored (stores only).
    pub store_val: u64,
    /// Resolved branch direction (conditional branches).
    pub taken: bool,
    /// Resolved control-transfer target (branches, indirects, returns).
    pub target: u64,
}

/// In-order architectural replay state for the shadow oracle.
#[derive(Debug, Clone)]
struct Shadow {
    regs: [u64; NUM_REGS],
    /// PC the next retired instruction must have; `None` right after a
    /// redirect the shadow cannot predict (kernel hook).
    expected_pc: Option<u64>,
    /// Registers must be re-seeded from architectural state before the
    /// next check (set after kernel hooks, mismatches, and run starts).
    needs_resync: bool,
}

impl Shadow {
    fn new() -> Self {
        Shadow {
            regs: [0; NUM_REGS],
            expected_pc: None,
            needs_resync: true,
        }
    }

    fn set(&mut self, reg: u8, val: u64) {
        if reg != REG_ZERO {
            self.regs[reg as usize] = val;
        }
    }
}

/// The attached checker. Construct with [`SniChecker::new`] (full
/// checking) or [`SniChecker::shadow_only`] (differential replay
/// without ground-truth metadata), then hand to
/// [`Core::attach_sni`](crate::pipeline::Core::attach_sni). Counters
/// accumulate into [`SniCounters`] inside the core's
/// [`SimStats`](crate::stats::SimStats) and export as `sim.sni.*`.
pub struct SniChecker {
    oracle: Option<Rc<dyn SniOracle>>,
    shadow: Shadow,
    /// Remaining retired instructions the shadow oracle will replay.
    shadow_budget: u64,
    /// Sequence numbers of in-flight speculative loads that read secret
    /// (out-of-DSV) data.
    secret_roots: HashSet<u64>,
}

impl SniChecker {
    /// Full checker: shadow replay plus ground-truth leakage monitor.
    pub fn new(oracle: Rc<dyn SniOracle>, shadow_budget: u64) -> Self {
        SniChecker {
            oracle: Some(oracle),
            shadow: Shadow::new(),
            shadow_budget,
            secret_roots: HashSet::new(),
        }
    }

    /// Differential shadow replay only (no DSV/ISV ground truth).
    pub fn shadow_only(shadow_budget: u64) -> Self {
        SniChecker {
            oracle: None,
            shadow: Shadow::new(),
            shadow_budget,
            secret_roots: HashSet::new(),
        }
    }

    /// Called by the core at the start of every `run`: the pipeline
    /// state was reset, so no speculative root is live and the next
    /// commit is the entry instruction.
    pub(crate) fn on_run_start(&mut self, entry: u64) {
        self.secret_roots.clear();
        self.shadow.expected_pc = Some(entry);
        self.shadow.needs_resync = true;
    }

    /// A speculative load was allowed and is issuing its memory access.
    /// `roots`/`saturated` describe the taint of its **address**
    /// operands before the load adds itself as a root.
    pub(crate) fn on_spec_issue(
        &mut self,
        ctx: &LoadCtx,
        seq: u64,
        roots: &[u64],
        saturated: bool,
        c: &mut SniCounters,
    ) {
        self.note_transmit(roots, saturated, c);
        if let Some(oracle) = &self.oracle {
            if oracle.should_block(ctx) {
                c.unsafe_issues += 1;
            }
            if oracle.is_secret(ctx) {
                self.secret_roots.insert(seq);
                c.secret_spec_loads += 1;
            }
        }
    }

    /// A speculative cache flush executed; its address taint is
    /// `roots`/`saturated`. Flushes mutate cache state, so a
    /// secret-dependent flush address is a transmitter too.
    pub(crate) fn on_spec_flush(&mut self, roots: &[u64], saturated: bool, c: &mut SniCounters) {
        self.note_transmit(roots, saturated, c);
    }

    fn note_transmit(&mut self, roots: &[u64], saturated: bool, c: &mut SniCounters) {
        if self.secret_roots.is_empty() {
            return;
        }
        if saturated || roots.iter().any(|r| self.secret_roots.contains(r)) {
            c.tainted_transmits += 1;
        }
    }

    /// An in-flight instruction was squashed.
    pub(crate) fn on_squash(&mut self, seq: u64) {
        self.secret_roots.remove(&seq);
    }

    /// One instruction retired. `machine` is the architectural state
    /// *before* this instruction's own commit effects.
    pub(crate) fn on_commit(&mut self, r: &RetiredInst, machine: &Machine, c: &mut SniCounters) {
        if self.secret_roots.remove(&r.seq) {
            c.committed_secret_roots += 1;
        }
        if self.shadow_budget == 0 {
            return;
        }
        self.shadow_budget -= 1;
        c.shadow_checked += 1;

        if self.shadow.needs_resync {
            self.shadow.regs = machine.regs();
            self.shadow.needs_resync = false;
            if self.shadow.expected_pc.is_none() {
                self.shadow.expected_pc = Some(r.pc);
            }
        }
        let mut ok = true;
        if let Some(pc) = self.shadow.expected_pc {
            ok &= pc == r.pc;
        }
        let sh = &mut self.shadow;
        let next = match r.inst {
            Inst::MovImm { dst, imm } => {
                ok &= r.value == imm;
                sh.set(dst, imm);
                Some(r.pc + INST_BYTES)
            }
            Inst::Alu { op, dst, a, b } => {
                let v = op.apply(sh.regs[a as usize], sh.regs[b as usize]);
                ok &= r.value == v;
                sh.set(dst, v);
                Some(r.pc + INST_BYTES)
            }
            Inst::AluImm { op, dst, a, imm } => {
                let v = op.apply(sh.regs[a as usize], imm);
                ok &= r.value == v;
                sh.set(dst, v);
                Some(r.pc + INST_BYTES)
            }
            Inst::Load {
                dst, base, offset, ..
            } => {
                let addr = sh.regs[base as usize].wrapping_add(offset as u64);
                ok &= addr == r.addr;
                // In-order commit: every older store has already written
                // architectural memory, so a commit-time read is the
                // speculation-free load result.
                let v = machine.mem.read(addr, r.width);
                ok &= v == r.value;
                sh.set(dst, v);
                Some(r.pc + INST_BYTES)
            }
            Inst::Store {
                src, base, offset, ..
            } => {
                let addr = sh.regs[base as usize].wrapping_add(offset as u64);
                ok &= addr == r.addr;
                ok &= sh.regs[src as usize] == r.store_val;
                Some(r.pc + INST_BYTES)
            }
            Inst::Branch { cond, a, b, target } => {
                let taken = cond.eval(sh.regs[a as usize], sh.regs[b as usize]);
                ok &= taken == r.taken;
                Some(if taken { target } else { r.pc + INST_BYTES })
            }
            Inst::Jump { target } | Inst::Call { target } => Some(target),
            Inst::JumpInd { base } | Inst::CallInd { base } => {
                let t = sh.regs[base as usize];
                ok &= t == r.target;
                Some(t)
            }
            Inst::Ret => {
                // The architectural return target is still on the call
                // stack (the commit arm pops it after this check).
                match machine.call_stack.last() {
                    Some(&t) => {
                        ok &= t == r.target;
                        Some(t)
                    }
                    None => None, // the run is about to error out
                }
            }
            Inst::CacheFlush { base, offset } => {
                ok &= sh.regs[base as usize].wrapping_add(offset as u64) == r.addr;
                Some(r.pc + INST_BYTES)
            }
            Inst::Syscall => Some(machine.kernel_entry),
            Inst::Sysret => Some(machine.sysret_target),
            Inst::KHook { .. } => {
                // Hooks rewrite registers and redirect fetch wholesale;
                // re-seed from architectural state at the next commit.
                sh.needs_resync = true;
                None
            }
            Inst::RdTsc { dst } => {
                // Timing reads are architecturally nondeterministic in
                // the replay; adopt the pipeline's value.
                sh.set(dst, r.value);
                Some(r.pc + INST_BYTES)
            }
            Inst::Fence | Inst::Nop => Some(r.pc + INST_BYTES),
            Inst::Halt => None,
        };
        self.shadow.expected_pc = next;
        if !ok {
            c.shadow_mismatches += 1;
            // Re-seed to stop one divergence cascading into many.
            self.shadow.needs_resync = true;
            self.shadow.expected_pc = None;
        }
    }
}

impl std::fmt::Debug for SniChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SniChecker")
            .field("oracle", &self.oracle.is_some())
            .field("shadow_budget", &self.shadow_budget)
            .field("secret_roots", &self.secret_roots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::hooks::NullHooks;
    use crate::isa::{AluOp, Assembler, Cond};
    use crate::pipeline::Core;
    use crate::policy::{FencePolicy, SpecPolicy, UnsafePolicy};
    use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};

    fn core_with(text: Vec<(u64, Inst)>, policy: Box<dyn SpecPolicy>) -> Core {
        let mut machine = Machine::new();
        machine.load_text(text);
        Core::new(
            CoreConfig::paper_default(),
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            policy,
            Box::new(NullHooks),
        )
    }

    /// Out-of-DSV window the mock ground truth treats as secret.
    struct MarkSecret {
        lo: u64,
        hi: u64,
    }

    impl SniOracle for MarkSecret {
        fn should_block(&self, ctx: &LoadCtx) -> bool {
            self.is_secret(ctx)
        }
        fn is_secret(&self, ctx: &LoadCtx) -> bool {
            ctx.addr >= self.lo && ctx.addr < self.hi
        }
    }

    fn arithmetic_program() -> Vec<(u64, Inst)> {
        // A loop with loads, stores, branches and a function call: every
        // shadow-checked instruction class except traps.
        let mut a = Assembler::new(0x1000);
        let f = a.new_label();
        a.movi(1, 0); // sum
        a.movi(2, 0); // i
        a.movi(3, 16); // bound
        a.movi(4, 0x8000); // buffer
        let top = a.here();
        a.store(2, 4, 0);
        a.load(5, 4, 0);
        a.alu(AluOp::Add, 1, 1, 5);
        a.push(Inst::Call { target: 0 }); // patched below via label
        a.alui(AluOp::Add, 2, 2, 1_u64);
        a.branch_to(Cond::Ltu, 2, 3, top);
        a.push(Inst::Halt);
        a.bind(f);
        a.alui(AluOp::Add, 9, 9, 3_u64);
        a.push(Inst::Ret);
        let mut text = a.finish();
        // Point the call at the bound label's address.
        let f_addr = text.last().map(|(pc, _)| *pc).unwrap() - INST_BYTES;
        for (_, inst) in text.iter_mut() {
            if let Inst::Call { target } = inst {
                *target = f_addr;
            }
        }
        text
    }

    #[test]
    fn shadow_replay_matches_a_clean_pipeline() {
        let mut core = core_with(arithmetic_program(), Box::new(UnsafePolicy::new()));
        core.attach_sni(SniChecker::shadow_only(1_000_000));
        core.run(0x1000, 100_000).expect("runs");
        let s = core.stats();
        assert!(s.sni.shadow_checked > 50, "replayed the stream: {s:?}");
        assert_eq!(s.sni.shadow_mismatches, 0, "pipeline is equivalent");
        assert_eq!(core.machine.reg(1), (0..16).sum::<u64>());
    }

    #[test]
    fn shadow_budget_bounds_the_replay() {
        let mut core = core_with(arithmetic_program(), Box::new(UnsafePolicy::new()));
        core.attach_sni(SniChecker::shadow_only(10));
        core.run(0x1000, 100_000).expect("runs");
        assert_eq!(core.stats().sni.shadow_checked, 10);
        assert_eq!(core.stats().sni.shadow_mismatches, 0);
    }

    fn spectre_program(bound_ptr: u64, secret_addr: u64, probe_base: u64) -> Vec<(u64, Inst)> {
        // if (i < bound) { r6 = *secret; r9 = probe[r6]; }
        let mut a = Assembler::new(0x6000);
        a.movi(1, bound_ptr);
        let skip = a.new_label();
        a.load(2, 1, 0); // r2 = *bound_ptr (pointer)
        a.load(3, 2, 0); // r3 = bound (dependent loads = long window)
        a.branch(Cond::Geu, 10, 3, skip);
        a.movi(5, secret_addr);
        a.load(6, 5, 0); // secret access (taint root)
        a.movi(7, probe_base);
        a.alu(AluOp::Add, 8, 7, 6);
        a.load_b(9, 8, 0); // transmitter: address depends on the secret
        a.bind(skip);
        a.push(Inst::Halt);
        a.finish()
    }

    fn plant(core: &mut Core, bound_ptr: u64, secret_addr: u64) {
        core.machine.mem.write_u64(bound_ptr, bound_ptr + 0x100);
        core.machine.mem.write_u64(bound_ptr + 0x100, 100);
        core.machine.mem.write_u64(secret_addr, 0x42);
    }

    #[test]
    fn unsafe_baseline_leaks_and_the_monitor_sees_it() {
        let (bound_ptr, secret_addr, probe_base) = (0xA000u64, 0x9000u64, 0x2_0000u64);
        let oracle = Rc::new(MarkSecret {
            lo: secret_addr,
            hi: secret_addr + 8,
        });
        let mut core = core_with(
            spectre_program(bound_ptr, secret_addr, probe_base),
            Box::new(UnsafePolicy::new()),
        );
        core.attach_sni(SniChecker::new(oracle, 1_000_000));
        plant(&mut core, bound_ptr, secret_addr);

        // Train the branch not-taken (the body architecturally executes).
        for _ in 0..6 {
            core.machine.set_reg(10, 0);
            core.run(0x6000, 100_000).expect("training");
        }
        // Attack run: out-of-bounds index; the body runs transiently.
        core.mem.flush(bound_ptr);
        core.mem.flush(bound_ptr + 0x100);
        core.mem.flush(secret_addr);
        core.machine.set_reg(10, 200);
        core.machine.set_reg(6, 0);
        let before = core.stats();
        core.run(0x6000, 100_000).expect("attack");
        let d = core.stats().delta_since(&before);

        assert_eq!(core.machine.reg(6), 0, "secret never commits");
        assert!(d.squashes >= 1);
        assert!(d.sni.secret_spec_loads >= 1, "secret root recorded: {d:?}");
        assert!(d.sni.unsafe_issues >= 1, "ground truth flags it: {d:?}");
        assert!(
            d.sni.tainted_transmits >= 1,
            "secret-dependent transmit seen: {d:?}"
        );
        assert_eq!(d.sni.shadow_mismatches, 0);
    }

    #[test]
    fn fence_baseline_is_non_interferent() {
        let (bound_ptr, secret_addr, probe_base) = (0xA000u64, 0x9000u64, 0x2_0000u64);
        let oracle = Rc::new(MarkSecret {
            lo: secret_addr,
            hi: secret_addr + 8,
        });
        let mut core = core_with(
            spectre_program(bound_ptr, secret_addr, probe_base),
            Box::new(FencePolicy::new()),
        );
        core.attach_sni(SniChecker::new(oracle, 1_000_000));
        plant(&mut core, bound_ptr, secret_addr);
        for i in 0..7 {
            core.machine.set_reg(10, if i < 6 { 0 } else { 200 });
            core.run(0x6000, 100_000).expect("runs");
        }
        let s = core.stats();
        assert_eq!(s.sni.secret_spec_loads, 0, "no speculative secret load");
        assert_eq!(s.sni.tainted_transmits, 0, "nothing to transmit");
        assert_eq!(s.sni.unsafe_issues, 0, "every block was honored");
        assert_eq!(s.sni.shadow_mismatches, 0);
    }

    #[test]
    fn committed_secret_roots_are_dropped_from_leak_attribution() {
        // Same gadget, in-bounds index: the body commits architecturally,
        // so the "secret" root retires and no transient leak is charged
        // for the committed dataflow.
        let (bound_ptr, secret_addr, probe_base) = (0xA000u64, 0x9000u64, 0x2_0000u64);
        let oracle = Rc::new(MarkSecret {
            lo: secret_addr,
            hi: secret_addr + 8,
        });
        let mut core = core_with(
            spectre_program(bound_ptr, secret_addr, probe_base),
            Box::new(UnsafePolicy::new()),
        );
        core.attach_sni(SniChecker::new(oracle, 1_000_000));
        plant(&mut core, bound_ptr, secret_addr);
        core.machine.set_reg(10, 0);
        core.run(0x6000, 100_000).expect("runs");
        let s = core.stats();
        assert_eq!(core.machine.reg(6), 0x42, "the load committed");
        assert!(
            s.sni.secret_spec_loads == 0 || s.sni.committed_secret_roots > 0,
            "a speculatively-issued root that commits is accounted: {s:?}"
        );
        assert_eq!(s.sni.shadow_mismatches, 0);
    }
}
