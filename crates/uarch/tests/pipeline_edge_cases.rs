//! Edge-case integration tests for the out-of-order pipeline: nested
//! mispredictions, store-forwarding widths, RSB recovery after squashes,
//! and policy interaction corners.

use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::hooks::NullHooks;
use persp_uarch::isa::{AluOp, Assembler, Cond, Inst, Width};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::{Core, SimError};
use persp_uarch::policy::{FencePolicy, SpecPolicy, UnsafePolicy};

fn core_with(text: Vec<(u64, Inst)>, policy: Box<dyn SpecPolicy>) -> Core {
    let mut machine = Machine::new();
    machine.load_text(text);
    Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::no_prefetch()),
        policy,
        Box::new(NullHooks),
    )
}

#[test]
fn nested_mispredictions_recover_in_order() {
    // Two data-dependent branches that both mispredict: the older squash
    // must win, and the final architectural state must be exact.
    let mut a = Assembler::new(0x1000);
    a.movi(1, 0x8000);
    a.load(2, 1, 0); // slow condition source (cold)
    let l1 = a.new_label();
    let l2 = a.new_label();
    a.branch(Cond::Eq, 2, 0, l1); // actually taken (mem is 0)
    a.movi(10, 1); // wrong path A
    a.branch(Cond::Ne, 2, 0, l2); // would also mispredict
    a.movi(11, 1); // wrong path B
    a.bind(l1);
    a.movi(12, 7);
    a.bind(l2);
    a.push(Inst::Halt);

    let mut core = core_with(a.finish(), Box::new(UnsafePolicy::new()));
    core.run(0x1000, 100_000).expect("runs");
    assert_eq!(core.machine.reg(10), 0, "wrong path A discarded");
    assert_eq!(core.machine.reg(11), 0, "wrong path B discarded");
    assert_eq!(core.machine.reg(12), 7, "correct path committed");
}

#[test]
fn byte_store_forwards_to_byte_load() {
    let mut a = Assembler::new(0x1000);
    a.movi(1, 0x9000);
    a.movi(2, 0x1AB); // truncates to 0xAB on a byte store
    a.push(Inst::Store {
        src: 2,
        base: 1,
        offset: 0,
        width: Width::B,
    });
    a.push(Inst::Load {
        dst: 3,
        base: 1,
        offset: 0,
        width: Width::B,
    });
    a.push(Inst::Halt);
    let mut core = core_with(a.finish(), Box::new(UnsafePolicy::new()));
    core.run(0x1000, 10_000).expect("runs");
    assert_eq!(core.machine.reg(3), 0xAB);
}

#[test]
fn overlapping_mixed_width_access_is_correct() {
    // A quad store followed by a byte load at the same address: the load
    // must observe the store's low byte (the conservative path waits for
    // the store to drain rather than forwarding a partial value).
    let mut a = Assembler::new(0x1000);
    a.movi(1, 0xA000);
    a.movi(2, 0x1122_3344_5566_7788);
    a.store(2, 1, 0);
    a.push(Inst::Load {
        dst: 3,
        base: 1,
        offset: 0,
        width: Width::B,
    });
    a.push(Inst::Load {
        dst: 4,
        base: 1,
        offset: 0,
        width: Width::Q,
    });
    a.push(Inst::Halt);
    let mut core = core_with(a.finish(), Box::new(UnsafePolicy::new()));
    core.run(0x1000, 10_000).expect("runs");
    assert_eq!(core.machine.reg(3), 0x88, "little-endian low byte");
    assert_eq!(core.machine.reg(4), 0x1122_3344_5566_7788);
}

#[test]
fn rsb_state_recovers_after_wrong_path_calls() {
    // A mispredicted branch whose wrong path contains a call: the RSB push
    // from the wrong-path call must be undone, so the later (correct)
    // return still predicts correctly.
    let f1 = 0x5000u64;
    let mut a = Assembler::new(0x1000);
    a.movi(1, 0x8000);
    a.load(2, 1, 0); // cold: 0
    let skip = a.new_label();
    a.branch(Cond::Eq, 2, 0, skip); // actually taken; mistrain below makes it predict not-taken
    a.push(Inst::Call { target: f1 }); // wrong-path call
    a.bind(skip);
    a.push(Inst::Call { target: f1 }); // correct-path call
    a.push(Inst::Halt);
    let mut text = a.finish();
    let mut fa = Assembler::new(f1);
    fa.alui(AluOp::Add, 5, 5, 1);
    fa.push(Inst::Ret);
    text.extend(fa.finish());

    let mut core = core_with(text, Box::new(UnsafePolicy::new()));
    // Mistrain: several runs with mem = 1 (branch not taken).
    core.machine.mem.write_u64(0x8000, 1);
    for _ in 0..4 {
        core.run(0x1000, 100_000).expect("training");
    }
    // Attack-shaped run: mem = 0 → branch taken → wrong path had a call.
    core.machine.mem.write_u64(0x8000, 0);
    core.mem.flush(0x8000);
    core.machine.set_reg(5, 0);
    let before = core.stats();
    core.run(0x1000, 100_000).expect("final run");
    let delta = core.stats().delta_since(&before);
    assert_eq!(core.machine.reg(5), 1, "exactly one committed call");
    assert!(core.machine.call_stack.is_empty());
    // The correct-path return shouldn't have been desynced by the
    // squashed wrong-path call: at most the one branch squash occurred.
    assert!(delta.squashes <= 2, "squashes: {}", delta.squashes);
}

#[test]
fn deep_recursion_like_call_chains_commit() {
    // 40-deep call chain (beyond the 16-entry RSB): all returns resolve
    // correctly even when predictions fall back or miss.
    let base = 0x4000u64;
    let mut text = Vec::new();
    for i in 0..40u64 {
        let addr = base + i * 0x40;
        let mut fa = Assembler::new(addr);
        fa.alui(AluOp::Add, 6, 6, 1);
        if i < 39 {
            fa.push(Inst::Call {
                target: base + (i + 1) * 0x40,
            });
        }
        fa.alui(AluOp::Add, 7, 7, 1);
        fa.push(Inst::Ret);
        text.extend(fa.finish());
    }
    let mut a = Assembler::new(0x1000);
    a.push(Inst::Call { target: base });
    a.push(Inst::Halt);
    text.extend(a.finish());

    let mut core = core_with(text, Box::new(UnsafePolicy::new()));
    core.run(0x1000, 1_000_000).expect("runs");
    assert_eq!(core.machine.reg(6), 40, "every level entered");
    assert_eq!(core.machine.reg(7), 40, "every level unwound");
    assert!(core.machine.call_stack.is_empty());
}

#[test]
fn fence_policy_does_not_change_architectural_results() {
    // Same branchy, loady program under UNSAFE and FENCE: identical
    // architectural outputs, different cycle counts.
    let build = || {
        let mut a = Assembler::new(0x1000);
        a.movi(1, 0xB000);
        a.movi(6, 0);
        a.movi(7, 0);
        let top = a.here();
        a.alui(AluOp::And, 2, 6, 7);
        a.load(3, 1, 0);
        a.alu(AluOp::Add, 7, 7, 3);
        a.alui(AluOp::Add, 6, 6, 1);
        a.movi(4, 20);
        a.branch_to(Cond::Ltu, 6, 4, top);
        a.push(Inst::Halt);
        a.finish()
    };
    let mut unsafe_core = core_with(build(), Box::new(UnsafePolicy::new()));
    unsafe_core.machine.mem.write_u64(0xB000, 3);
    unsafe_core.run(0x1000, 100_000).expect("unsafe");
    let mut fence_core = core_with(build(), Box::new(FencePolicy::new()));
    fence_core.machine.mem.write_u64(0xB000, 3);
    fence_core.run(0x1000, 100_000).expect("fence");

    assert_eq!(unsafe_core.machine.reg(7), 60);
    assert_eq!(
        unsafe_core.machine.regs(),
        fence_core.machine.regs(),
        "policies never change architectural state"
    );
    assert!(fence_core.stats().cycles >= unsafe_core.stats().cycles);
}

#[test]
fn deadlock_watchdog_reports_head() {
    // A load depending on itself can't be built; instead starve commit
    // with an unmapped committed-path fetch loop... which is an error,
    // so exercise the watchdog through a self-jump with a full ROB of
    // unresolvable work: simplest is a branch on a register that a hook
    // never produces — not constructible either. The watchdog is instead
    // covered by the budget test; here assert budget error shape.
    let mut a = Assembler::new(0x1000);
    let top = a.here();
    a.branch_to(Cond::Eq, 0, 0, top);
    let mut core = core_with(a.finish(), Box::new(UnsafePolicy::new()));
    match core.run(0x1000, 1_000) {
        Err(SimError::CycleBudgetExhausted { budget }) => assert_eq!(budget, 1_000),
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

#[test]
fn wrong_path_stores_never_reach_memory() {
    // The store target lives in r4, set by the harness per phase: during
    // (not-taken) training the store commits to a scratch page; in the
    // final run the branch is taken, so the store to 0xC000 is wrong-path
    // only and must never reach memory.
    let mut a = Assembler::new(0x1000);
    a.movi(1, 0x8000);
    a.load(2, 1, 0); // condition source
    let skip = a.new_label();
    a.branch(Cond::Eq, 2, 0, skip);
    a.movi(3, 0xDEAD);
    a.store(3, 4, 0); // r4 = harness-chosen target
    a.bind(skip);
    a.push(Inst::Halt);
    let mut core = core_with(a.finish(), Box::new(UnsafePolicy::new()));
    // Train toward not-taken (the store path commits, to scratch).
    core.machine.mem.write_u64(0x8000, 1);
    for _ in 0..4 {
        core.machine.set_reg(4, 0xD000);
        core.run(0x1000, 100_000).expect("training");
    }
    assert_eq!(
        core.machine.mem.read_u64(0xD000),
        0xDEAD,
        "training stores commit"
    );
    // Final run: branch taken; the store only executes transiently.
    core.machine.mem.write_u64(0x8000, 0);
    core.mem.flush(0x8000);
    core.machine.set_reg(4, 0xC000);
    let before = core.stats();
    core.run(0x1000, 100_000).expect("final");
    let delta = core.stats().delta_since(&before);
    assert!(delta.squashes >= 1, "the final branch mispredicted");
    assert_eq!(
        core.machine.mem.read_u64(0xC000),
        0,
        "squashed stores must never write memory"
    );
}
