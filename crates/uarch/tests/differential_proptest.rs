//! Differential property testing: random programs executed by the
//! out-of-order, speculative pipeline must produce exactly the same
//! architectural state as a trivial in-order interpreter.
//!
//! This is the core soundness property behind every performance number in
//! the evaluation: speculation policies and transient execution may change
//! *timing* and *microarchitectural* state, never architectural results.

use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::hooks::NullHooks;
use persp_uarch::isa::{AluOp, Cond, Inst, Width};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::Core;
use persp_uarch::policy::{DomPolicy, FencePolicy, SpecPolicy, SttPolicy, UnsafePolicy};
use proptest::prelude::*;
use std::collections::HashMap;

use persp_uarch::testkit::{build_program, interpret, Template, POOL_BASE, POOL_SLOTS};

fn arb_reg() -> impl Strategy<Value = u8> {
    1u8..16
}

fn arb_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
        Just(AluOp::SltU),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Ltu),
        Just(Cond::Geu),
        Just(Cond::Lt),
        Just(Cond::Ge),
    ]
}

fn arb_template() -> impl Strategy<Value = Template> {
    prop_oneof![
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Template::MovImm { dst, imm }),
        (arb_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, dst, a, b)| Template::Alu {
            op,
            dst,
            a,
            b
        }),
        (arb_op(), arb_reg(), arb_reg(), 0u64..1024)
            .prop_map(|(op, dst, a, imm)| Template::AluImm { op, dst, a, imm }),
        (arb_reg(), 0..POOL_SLOTS, any::<bool>()).prop_map(|(dst, slot, byte)| {
            Template::Load {
                dst,
                slot,
                width: if byte { Width::B } else { Width::Q },
            }
        }),
        (arb_reg(), 0..POOL_SLOTS, any::<bool>()).prop_map(|(src, slot, byte)| {
            Template::Store {
                src,
                slot,
                width: if byte { Width::B } else { Width::Q },
            }
        }),
        (arb_cond(), arb_reg(), arb_reg(), 1u8..5)
            .prop_map(|(cond, a, b, skip)| Template::SkipIf { cond, a, b, skip }),
    ]
}

fn run_differential(templates: Vec<Template>, seeds: [u64; 4], policy: Box<dyn SpecPolicy>) {
    let base = 0x1000u64;
    let text_vec = build_program(&templates, base);
    let text_map: HashMap<u64, Inst> = text_vec.iter().copied().collect();

    // Oracle.
    let mut oracle_regs = [0u64; 32];
    oracle_regs[1] = seeds[0];
    oracle_regs[2] = seeds[1];
    oracle_regs[3] = seeds[2];
    oracle_regs[4] = seeds[3];
    oracle_regs[31] = POOL_BASE;
    let mut oracle_mem: HashMap<u64, u8> = HashMap::new();
    interpret(&text_map, base, &mut oracle_regs, &mut oracle_mem);

    // Pipeline.
    let mut machine = Machine::new();
    machine.load_text(text_vec);
    machine.set_reg(1, seeds[0]);
    machine.set_reg(2, seeds[1]);
    machine.set_reg(3, seeds[2]);
    machine.set_reg(4, seeds[3]);
    machine.set_reg(31, POOL_BASE);
    let mut core = Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::paper_default()),
        policy,
        Box::new(NullHooks),
    );
    core.run(base, 2_000_000).expect("pipeline completes");

    // Compare registers and the data pool.
    let got = core.machine.regs();
    for r in 0..32 {
        assert_eq!(
            got[r], oracle_regs[r],
            "r{r} diverged (pipeline {:#x} vs oracle {:#x})",
            got[r], oracle_regs[r]
        );
    }
    for slot in 0..POOL_SLOTS {
        for i in 0..8 {
            let addr = POOL_BASE + slot * 8 + i;
            let oracle_byte = *oracle_mem.get(&addr).unwrap_or(&0);
            assert_eq!(
                core.machine.mem.read_u8(addr),
                oracle_byte,
                "memory at {addr:#x} diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn pipeline_matches_oracle_under_unsafe(
        templates in prop::collection::vec(arb_template(), 1..60),
        seeds in any::<[u64; 4]>(),
    ) {
        run_differential(templates, seeds, Box::new(UnsafePolicy::new()));
    }

    #[test]
    fn pipeline_matches_oracle_under_fence(
        templates in prop::collection::vec(arb_template(), 1..40),
        seeds in any::<[u64; 4]>(),
    ) {
        run_differential(templates, seeds, Box::new(FencePolicy::new()));
    }

    #[test]
    fn pipeline_matches_oracle_under_dom(
        templates in prop::collection::vec(arb_template(), 1..40),
        seeds in any::<[u64; 4]>(),
    ) {
        run_differential(templates, seeds, Box::new(DomPolicy::new()));
    }

    #[test]
    fn pipeline_matches_oracle_under_stt(
        templates in prop::collection::vec(arb_template(), 1..40),
        seeds in any::<[u64; 4]>(),
    ) {
        run_differential(templates, seeds, Box::new(SttPolicy::new()));
    }
}
