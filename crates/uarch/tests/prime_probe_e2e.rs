//! Prime+probe through the real pipeline: a Spectre-v1 transient load is
//! detected by cache-set contention alone — no `Clflush` instruction and
//! no flush calls between mistraining and the probe, i.e. the receiver
//! that survives kernels which forbid flush instructions. Complements
//! the flush+reload receivers the attack PoCs use.
//!
//! Layout discipline: probe lines are 4096 bytes apart, so with a
//! 32 KB / 64 B / 8-way L1-D (64 sets × 64 B = 4096 B way stride) every
//! probe line maps to set 0 — the signal set. The bound lives in set 1,
//! the secret in set 2, the benign array base in set 3, keeping the
//! architectural activity of the attack run out of the signal set.

use persp_mem::covert::EvictionSet;
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::hooks::NullHooks;
use persp_uarch::isa::{AluOp, Assembler, Cond, Inst, Width};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::Core;
use persp_uarch::policy::{FencePolicy, SpecPolicy, UnsafePolicy};

const BOUND_VA: u64 = 0x40_0040; // set 1: the bounds-check limit
const SECRET_VA: u64 = 0x41_0080; // set 2: the victim's secret byte
const ARR_BASE: u64 = 0x42_00C0; // set 3: the benign array the gadget indexes
const PROBE_BASE: u64 = 0x50_0000; // probe lines (all alias into set 0)
const SIGNAL_REGION: u64 = 0x80_0000; // attacker memory, way-stride aligned
const EVICT_REGION: u64 = 0x81_0000; // second region, for evicting the bound

/// The classic v1 victim: `if (idx < bound) leak(probe[arr[idx] * 4096])`.
/// `idx` arrives in r20.
fn victim_program() -> Vec<(u64, Inst)> {
    let mut a = Assembler::new(0x1000);
    a.movi(1, BOUND_VA);
    a.load(2, 1, 0); // bound
    let skip = a.new_label();
    a.branch(Cond::Geu, 20, 2, skip); // architecturally skips when OOB
                                      // In-bounds path — speculative on the attack run.
    a.movi(3, ARR_BASE);
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: 4,
        a: 3,
        b: 20,
    });
    a.push(Inst::Load {
        dst: 5,
        base: 4,
        offset: 0,
        width: Width::B,
    });
    a.movi(6, 12); // log2(4096)
    a.push(Inst::Alu {
        op: AluOp::Shl,
        dst: 7,
        a: 5,
        b: 6,
    });
    a.movi(8, PROBE_BASE);
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: 9,
        a: 8,
        b: 7,
    });
    a.push(Inst::Load {
        dst: 10,
        base: 9,
        offset: 0,
        width: Width::Q,
    });
    a.bind(skip);
    a.push(Inst::Halt);
    a.finish()
}

fn fresh_core(policy: Box<dyn SpecPolicy>, secret: u8) -> Core {
    let mut machine = Machine::new();
    machine.load_text(victim_program());
    machine.mem.write_u64(BOUND_VA, 8);
    machine.mem.write_u64(SECRET_VA, u64::from(secret));
    machine.mem.write_u64(ARR_BASE, 0x30); // benign training byte
    Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::no_prefetch()),
        policy,
        Box::new(NullHooks),
    )
}

/// Mistrain (in-bounds runs teach the predictor "taken is rare"), prime,
/// fire the out-of-bounds run, and return whether the signal set saw a
/// fill. Everything between prime and probe is plain loads.
fn attack_signals(policy: Box<dyn SpecPolicy>, secret: u8) -> bool {
    let mut core = fresh_core(policy, secret);

    // Phase 1: train with an in-bounds index (architectural gadget runs
    // touch set 0 benignly — that's fine, priming happens after).
    for _ in 0..4 {
        core.machine.set_reg(20, 0);
        core.run(0x1000, 100_000).expect("training run");
    }

    // Phase 2: attacker primes the signal set and evicts the bound line
    // from L1 with a second eviction set (no flush instructions).
    let signal = EvictionSet::for_l1d(&core.mem, SIGNAL_REGION, PROBE_BASE);
    let bound_evict = EvictionSet::for_l1d(&core.mem, EVICT_REGION, BOUND_VA);
    bound_evict.prime(&mut core.mem);
    signal.prime(&mut core.mem);
    // The secret line is warm (set 2, untouched by either eviction set) —
    // models the victim's own recent use of its data.
    core.mem.read(SECRET_VA);
    assert!(!signal.probe_evicted(&core.mem), "clean before the attack");

    // Phase 3: out-of-bounds run. Architecturally the branch skips the
    // gadget; speculatively the trained predictor falls through into it.
    core.machine.set_reg(20, SECRET_VA.wrapping_sub(ARR_BASE)); // negative index, Add wraps
    core.run(0x1000, 100_000).expect("attack run");
    assert_eq!(core.machine.reg(10), 0, "the gadget never commits");

    signal.probe_evicted(&core.mem)
}

#[test]
fn transient_gadget_signals_through_prime_probe() {
    assert!(
        attack_signals(Box::new(UnsafePolicy::new()), 0x2B),
        "unprotected: the transient probe touch evicts an attacker way"
    );
}

#[test]
fn fence_starves_the_prime_probe_receiver() {
    assert!(
        !attack_signals(Box::new(FencePolicy::new()), 0x2B),
        "FENCE: the speculative probe load never issues, the set survives"
    );
}

#[test]
fn no_mistraining_means_no_signal() {
    // Same machinery, but skip phase 1: the predictor has no history, so
    // the first (and only) encounter resolves before the wrong path can
    // run far — and the architectural path skips the gadget.
    let mut core = fresh_core(Box::new(UnsafePolicy::new()), 0x2B);
    let signal = EvictionSet::for_l1d(&core.mem, SIGNAL_REGION, PROBE_BASE);
    let bound_evict = EvictionSet::for_l1d(&core.mem, EVICT_REGION, BOUND_VA);
    bound_evict.prime(&mut core.mem);
    signal.prime(&mut core.mem);
    core.mem.read(SECRET_VA);
    core.machine.set_reg(20, SECRET_VA.wrapping_sub(ARR_BASE)); // negative index, Add wraps
    core.run(0x1000, 100_000).expect("runs");
    assert!(
        !signal.probe_evicted(&core.mem),
        "untrained branch: no transient window into the gadget"
    );
}
