//! Fast-vs-slow differential harness for the idle-cycle fast-forward.
//!
//! The fast-forward claims to be *cycle-exact*: with it on, every
//! counter — including the stall-attribution partition, the kernel/user
//! cycle split, cache statistics, and the exact cycle at which budget
//! exhaustion fires — must be bit-for-bit identical to the slow
//! per-cycle path. These tests pin that claim with directed scenarios
//! (DRAM pointer chases, fenced speculation, syscalls, Spectre-style
//! training + attack, budget exhaustion) and a random-program property
//! over all four baseline policies.

use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::hooks::NullHooks;
use persp_uarch::isa::{AluOp, Assembler, Cond, Inst};
use persp_uarch::machine::Machine;
use persp_uarch::pipeline::{Core, SimError};
use persp_uarch::policy::{DomPolicy, FencePolicy, SpecPolicy, SttPolicy, UnsafePolicy};
use persp_uarch::testkit::{
    assert_fastfwd_equivalent, build_program, fastfwd_outcome, Template, POOL_SLOTS,
};
use proptest::prelude::*;

fn unsafe_policy() -> Box<dyn SpecPolicy> {
    Box::new(UnsafePolicy::new())
}

fn fence_policy() -> Box<dyn SpecPolicy> {
    Box::new(FencePolicy::new())
}

/// Pointer-chase through cold DRAM lines: almost every cycle is an idle
/// memory-wait, the fast-forward's bread and butter.
fn pointer_chase() -> Vec<(u64, Inst)> {
    let mut a = Assembler::new(0x1000);
    a.movi(1, 0x8000);
    a.load(2, 1, 0);
    a.load(3, 2, 0);
    a.load(4, 3, 0);
    a.push(Inst::Halt);
    a.finish()
}

fn seed_chain(core: &mut Core) {
    core.machine.mem.write_u64(0x8000, 0x9000);
    core.machine.mem.write_u64(0x9000, 0xA000);
    core.machine.mem.write_u64(0xA000, 42);
}

#[test]
fn pointer_chase_is_cycle_exact() {
    assert_fastfwd_equivalent(
        &pointer_chase(),
        0x1000,
        100_000,
        &unsafe_policy,
        &seed_chain,
    );
}

#[test]
fn fast_forward_actually_engages_on_idle_memory_waits() {
    // The differential tests would pass trivially if the fast-forward
    // never fired; pin that it skips the bulk of a DRAM-bound run.
    let run = |fastfwd: bool| {
        let mut machine = Machine::new();
        machine.load_text(pointer_chase());
        let mut core = Core::new(
            CoreConfig {
                idle_fastforward: fastfwd,
                ..CoreConfig::paper_default()
            },
            machine,
            MemoryHierarchy::new(HierarchyConfig::paper_default()),
            Box::new(UnsafePolicy::new()),
            Box::new(NullHooks),
        );
        seed_chain(&mut core);
        let summary = core.run(0x1000, 100_000).expect("runs");
        (summary.stats, core.ff_skipped_cycles())
    };
    let (fast_stats, skipped) = run(true);
    let (slow_stats, none_skipped) = run(false);
    assert_eq!(fast_stats, slow_stats);
    assert_eq!(none_skipped, 0, "slow path never fast-forwards");
    assert!(
        skipped * 2 > fast_stats.cycles,
        "a DRAM pointer chase is mostly idle: skipped {skipped} of {} cycles",
        fast_stats.cycles
    );
}

#[test]
fn fenced_speculation_vp_waits_are_cycle_exact() {
    // Speculative loads under FENCE wait for their visibility point;
    // those vp_wait runs are exactly the idle windows the fast-forward
    // skips, and the attribution must land in the same bucket.
    let mut a = Assembler::new(0x2000);
    a.movi(1, 0);
    a.movi(2, 20);
    a.movi(4, 0x8000);
    let top = a.here();
    a.load(3, 4, 0);
    a.alu(AluOp::Add, 1, 1, 3);
    a.branch_to(Cond::Ne, 1, 2, top);
    a.push(Inst::Halt);
    let text = a.finish();
    assert_fastfwd_equivalent(&text, 0x2000, 1_000_000, &fence_policy, &|core| {
        core.machine.mem.write_u64(0x8000, 1);
    });
}

#[test]
fn spectre_training_and_attack_are_cycle_exact() {
    // The transient-execution skeleton from the pipeline tests: train a
    // bounds-check branch, then run the out-of-bounds attack iteration.
    // Training happens inside `prepare`, so both paths replay the whole
    // train-then-attack history under their own stepping mode.
    let secret_addr = 0x9000u64;
    let bound_ptr = 0xA000u64;
    let mut a = Assembler::new(0x6000);
    a.movi(1, bound_ptr);
    let skip = a.new_label();
    a.load(2, 1, 0);
    a.load(3, 2, 0);
    a.branch(Cond::Geu, 10, 3, skip);
    a.movi(5, secret_addr);
    a.load(6, 5, 0);
    a.bind(skip);
    a.push(Inst::Halt);
    let text = a.finish();

    let prepare = move |core: &mut Core| {
        core.machine.mem.write_u64(bound_ptr, bound_ptr + 0x100);
        core.machine.mem.write_u64(bound_ptr + 0x100, 100);
        core.machine.mem.write_u64(secret_addr, 0x5ec7e7);
        for _ in 0..6 {
            core.machine.set_reg(10, 0);
            core.run(0x6000, 100_000).expect("training run");
        }
        core.mem.flush(bound_ptr);
        core.mem.flush(bound_ptr + 0x100);
        core.mem.flush(secret_addr);
        core.machine.set_reg(10, 200);
        core.machine.set_reg(6, 0);
    };
    assert_fastfwd_equivalent(&text, 0x6000, 100_000, &unsafe_policy, &prepare);
    assert_fastfwd_equivalent(&text, 0x6000, 100_000, &fence_policy, &prepare);
}

#[test]
fn syscall_kernel_user_cycle_split_is_cycle_exact() {
    let mut a = Assembler::new(0x100);
    a.movi(17, 3);
    a.push(Inst::Syscall);
    a.movi(9, 77);
    a.push(Inst::Halt);
    let mut text = a.finish();
    let mut k = Assembler::new(0xFFFF_0000);
    k.movi(8, 1);
    k.movi(7, 0x8000);
    k.load(6, 7, 0); // cold kernel load: idle cycles in kernel mode
    k.push(Inst::Sysret);
    text.extend(k.finish());
    assert_fastfwd_equivalent(&text, 0x100, 100_000, &unsafe_policy, &|core| {
        core.machine.kernel_entry = 0xFFFF_0000;
    });
}

#[test]
fn budget_exhaustion_fires_at_the_identical_cycle() {
    // Infinite loop: the fast-forward must cap its jump at the budget
    // deadline so `CycleBudgetExhausted` fires at the same cycle with
    // the same counters as the slow path.
    let mut a = Assembler::new(0x0);
    let top = a.here();
    a.branch_to(Cond::Eq, 0, 0, top);
    let text = a.finish();
    assert_fastfwd_equivalent(&text, 0x0, 500, &unsafe_policy, &|_| {});
    let fast = fastfwd_outcome(&text, 0x0, 500, true, unsafe_policy(), &|_| {});
    assert_eq!(
        fast.result,
        Err(SimError::CycleBudgetExhausted { budget: 500 }),
        "the directed scenario must actually exhaust its budget"
    );
}

// ----- random-program property over all four baseline policies ---------

fn arb_reg() -> impl Strategy<Value = u8> {
    1u8..16
}

fn arb_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
        Just(AluOp::SltU),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Ltu),
        Just(Cond::Geu),
        Just(Cond::Lt),
        Just(Cond::Ge),
    ]
}

fn arb_template() -> impl Strategy<Value = Template> {
    use persp_uarch::isa::Width;
    prop_oneof![
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Template::MovImm { dst, imm }),
        (arb_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, dst, a, b)| Template::Alu {
            op,
            dst,
            a,
            b
        }),
        (arb_op(), arb_reg(), arb_reg(), 0u64..1024)
            .prop_map(|(op, dst, a, imm)| Template::AluImm { op, dst, a, imm }),
        (arb_reg(), 0..POOL_SLOTS, any::<bool>()).prop_map(|(dst, slot, byte)| Template::Load {
            dst,
            slot,
            width: if byte { Width::B } else { Width::Q },
        }),
        (arb_reg(), 0..POOL_SLOTS, any::<bool>()).prop_map(|(src, slot, byte)| Template::Store {
            src,
            slot,
            width: if byte { Width::B } else { Width::Q },
        }),
        (arb_cond(), arb_reg(), arb_reg(), 1u8..5)
            .prop_map(|(cond, a, b, skip)| Template::SkipIf { cond, a, b, skip }),
    ]
}

fn mk_policy(idx: usize) -> Box<dyn SpecPolicy> {
    match idx {
        0 => Box::new(UnsafePolicy::new()),
        1 => Box::new(FencePolicy::new()),
        2 => Box::new(DomPolicy::new()),
        _ => Box::new(SttPolicy::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_are_cycle_exact_under_every_policy(
        templates in prop::collection::vec(arb_template(), 1..50),
        seeds in any::<[u64; 4]>(),
        policy_idx in 0usize..4,
    ) {
        let text = build_program(&templates, 0x1000);
        let prepare = move |core: &mut Core| {
            core.machine.set_reg(1, seeds[0]);
            core.machine.set_reg(2, seeds[1]);
            core.machine.set_reg(3, seeds[2]);
            core.machine.set_reg(4, seeds[3]);
        };
        assert_fastfwd_equivalent(&text, 0x1000, 2_000_000, &|| mk_policy(policy_idx), &prepare);
    }
}
