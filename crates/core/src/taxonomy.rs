//! The paper's taxonomy of transient execution attacks in the OS (§4.1).
//!
//! Attacks are classified by *scenario* — who speculatively executes the
//! gadget — rather than by microarchitectural variant, which is what makes
//! the defense design variant-agnostic:
//!
//! * **Active**: the attacker's own kernel thread speculatively accesses
//!   and transmits data owned by someone else. Mitigated by DSVs.
//! * **Passive**: the *victim's* kernel thread is coerced (speculative
//!   control-flow hijacking) into a gadget that accesses and transmits the
//!   victim's own data. Mitigated by ISVs.

/// Microarchitectural attack variants (the rows of the paper's threat
/// model). The taxonomy — and Perspective — is agnostic to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Conditional-branch misprediction (bounds-check bypass).
    SpectreV1,
    /// Branch-target injection via the BTB.
    SpectreV2,
    /// Return-stack-buffer poisoning / underflow.
    SpectreRsb,
    /// Retbleed: returns falling back to attacker-controlled BTB entries.
    Retbleed,
    /// Branch History Injection across privilege levels.
    Bhi,
}

impl Variant {
    /// All modelled variants.
    pub const ALL: &'static [Variant] = &[
        Variant::SpectreV1,
        Variant::SpectreV2,
        Variant::SpectreRsb,
        Variant::Retbleed,
        Variant::Bhi,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::SpectreV1 => "Spectre v1",
            Variant::SpectreV2 => "Spectre v2",
            Variant::SpectreRsb => "Spectre RSB",
            Variant::Retbleed => "Retbleed",
            Variant::Bhi => "BHI",
        }
    }

    /// Does this variant rely on hijacking the victim's speculative
    /// control flow (the passive-attack enabler)?
    pub fn is_control_flow_hijack(self) -> bool {
        !matches!(self, Variant::SpectreV1)
    }
}

/// The two attack scenarios of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// The attacker's kernel thread runs the gadget (Figure 4.1).
    Active,
    /// The victim's kernel thread is coerced into the gadget (Figure 4.2).
    Passive,
}

impl Scenario {
    /// The speculation view that mitigates this scenario.
    pub fn mitigated_by(self) -> &'static str {
        match self {
            Scenario::Active => "DSV",
            Scenario::Passive => "ISV",
        }
    }
}

/// Verdict of an attack proof-of-concept run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The secret byte was recovered through the covert channel.
    Leaked {
        /// The recovered value.
        recovered: u8,
        /// The true secret, for verification.
        expected: u8,
    },
    /// No signal crossed the covert channel.
    Blocked,
    /// The channel was noisy/ambiguous (counted as not leaked).
    Inconclusive,
}

impl AttackOutcome {
    /// Did the attack succeed (recover the correct secret)?
    pub fn succeeded(&self) -> bool {
        matches!(self, AttackOutcome::Leaked { recovered, expected } if recovered == expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_classification() {
        assert!(!Variant::SpectreV1.is_control_flow_hijack());
        assert!(Variant::SpectreV2.is_control_flow_hijack());
        assert!(Variant::Retbleed.is_control_flow_hijack());
        assert_eq!(Variant::ALL.len(), 5);
    }

    #[test]
    fn scenario_mitigations_match_the_paper() {
        assert_eq!(Scenario::Active.mitigated_by(), "DSV");
        assert_eq!(Scenario::Passive.mitigated_by(), "ISV");
    }

    #[test]
    fn outcome_success_requires_correct_secret() {
        assert!(AttackOutcome::Leaked {
            recovered: 7,
            expected: 7
        }
        .succeeded());
        assert!(!AttackOutcome::Leaked {
            recovered: 7,
            expected: 9
        }
        .succeeded());
        assert!(!AttackOutcome::Blocked.succeeded());
        assert!(!AttackOutcome::Inconclusive.succeeded());
    }
}
