//! The defense schemes evaluated in the paper (Chapter 7), shared by the
//! attack PoCs, the workload runner, and the benchmark harness.

use crate::policy::PerspectiveConfig;
use persp_uarch::policy::{
    DomPolicy, FencePolicy, SpecPolicy, SpotMitigations, SttPolicy, UnsafePolicy,
};

/// A defense scheme under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Unprotected baseline architecture.
    Unsafe,
    /// Hardware-only: delay all speculative loads until prior branches
    /// resolve.
    Fence,
    /// Hardware-only: Delay-on-Miss [Sakalis et al.].
    Dom,
    /// Hardware-only: Speculative Taint Tracking [Yu et al.].
    Stt,
    /// Deployed software spot mitigations (KPTI + Retpoline).
    Spot,
    /// Retpoline without KPTI (§9.1's "without KPTI" variant).
    SpotNoKpti,
    /// FENCE + Perspective hardware with *static* ISVs.
    PerspectiveStatic,
    /// FENCE + Perspective hardware with *dynamic* ISVs.
    Perspective,
    /// Perspective with audit-hardened ISV++ views.
    PerspectivePlusPlus,
}

impl Scheme {
    /// The five schemes of the main evaluation (Figures 9.2/9.3).
    pub const MAIN: &'static [Scheme] = &[
        Scheme::Unsafe,
        Scheme::Fence,
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
        Scheme::PerspectivePlusPlus,
    ];

    /// Every scheme, including the comparison points of §9.1.
    pub const ALL: &'static [Scheme] = &[
        Scheme::Unsafe,
        Scheme::Fence,
        Scheme::Dom,
        Scheme::Stt,
        Scheme::Spot,
        Scheme::SpotNoKpti,
        Scheme::PerspectiveStatic,
        Scheme::Perspective,
        Scheme::PerspectivePlusPlus,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Unsafe => "UNSAFE",
            Scheme::Fence => "FENCE",
            Scheme::Dom => "DOM",
            Scheme::Stt => "STT",
            Scheme::Spot => "KPTI+RETPOLINE",
            Scheme::SpotNoKpti => "RETPOLINE",
            Scheme::PerspectiveStatic => "PERSPECTIVE-STATIC",
            Scheme::Perspective => "PERSPECTIVE",
            Scheme::PerspectivePlusPlus => "PERSPECTIVE++",
        }
    }

    /// Is this one of the Perspective variants (requires the framework)?
    pub fn is_perspective(self) -> bool {
        matches!(
            self,
            Scheme::PerspectiveStatic | Scheme::Perspective | Scheme::PerspectivePlusPlus
        )
    }

    /// Construct the policy for a non-Perspective scheme; Perspective
    /// schemes need a [`Perspective`](crate::framework::Perspective)
    /// framework (use [`Scheme::build_policy`]).
    pub fn build_baseline_policy(self) -> Option<Box<dyn SpecPolicy>> {
        Some(match self {
            Scheme::Unsafe => Box::new(UnsafePolicy::new()),
            Scheme::Fence => Box::new(FencePolicy::new()),
            Scheme::Dom => Box::new(DomPolicy::new()),
            Scheme::Stt => Box::new(SttPolicy::new()),
            Scheme::Spot => Box::new(SpotMitigations::kpti_retpoline()),
            Scheme::SpotNoKpti => Box::new(SpotMitigations::retpoline_only()),
            _ => return None,
        })
    }

    /// Construct the policy for any scheme, given an optional framework
    /// (required iff [`Scheme::is_perspective`]).
    ///
    /// # Panics
    ///
    /// Panics if a Perspective scheme is requested without a framework.
    pub fn build_policy(
        self,
        framework: Option<&crate::framework::Perspective>,
    ) -> Box<dyn SpecPolicy> {
        if self.is_perspective() {
            let f = framework.expect("Perspective schemes need the framework");
            f.boxed_policy(PerspectiveConfig::default())
        } else {
            self.build_baseline_policy()
                .expect("non-Perspective scheme")
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Perspective;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn baseline_policies_build() {
        for &s in Scheme::ALL {
            if !s.is_perspective() {
                let p = s.build_baseline_policy().expect("builds");
                assert!(!p.name().is_empty());
            } else {
                assert!(s.build_baseline_policy().is_none());
            }
        }
    }

    #[test]
    fn perspective_policies_need_a_framework() {
        let f = Perspective::new();
        let p = Scheme::Perspective.build_policy(Some(&f));
        assert_eq!(p.name(), "PERSPECTIVE");
    }

    #[test]
    #[should_panic(expected = "need the framework")]
    fn perspective_without_framework_panics() {
        let _ = Scheme::Perspective.build_policy(None);
    }
}
