//! Deterministic fault injection for the SNI checker.
//!
//! [`FaultInjector`] wraps any [`SpecPolicy`] and, driven by a seeded
//! [`FaultPlan`], deterministically perturbs its behaviour mid-run:
//!
//! * **flip block → allow** — the wrapped policy said `BlockUntilVp`
//!   but the injector forces `Allow`, modelling a broken enforcement
//!   path (a dropped fence, a mis-set permission bit);
//! * **flip allow → block** — the benign direction: forcing a fence
//!   where none was needed must never be flagged as a violation;
//! * **corrupt DSV response** — a DSV-sourced block is answered as if
//!   the data were in-view, modelling a corrupted ownership response
//!   from the DSVMT walk;
//! * **evict metadata** — the policy's ISV-cache/DSVMT entries for the
//!   current context are invalidated, modelling capacity pressure.
//!
//! Every forced `Allow` is checked against the pristine ground-truth
//! oracle at injection time: if the oracle says the load should have
//! been blocked, `injected_violations` is bumped. The SNI checker's
//! acceptance criterion is that the pipeline-side monitor independently
//! flags **exactly** these loads (`sim.sni.unsafe_issues` delta equals
//! `injected_violations`) — a caught injected fault is the test
//! *passing*.
//!
//! Determinism: the only entropy source is a [`XorShift64`] seeded from
//! the plan, and every enabled knob draws on every decision (no
//! short-circuiting), so the draw sequence — and therefore the whole
//! run — is a pure function of the seed and the instruction stream.

use crate::sni_oracle::GroundTruth;
use persp_uarch::policy::{BlockSource, LoadCtx, LoadDecision, PolicyCounters, SpecPolicy};
use persp_uarch::sni::SniOracle;
use std::cell::RefCell;
use std::rc::Rc;

/// A tiny xorshift64 PRNG — deterministic, dependency-free, and good
/// enough for fault scheduling (we need reproducibility, not quality).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator (a zero seed is mapped to 1; xorshift has a
    /// fixed point at zero).
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Bernoulli draw with probability 1-in-`n`. `n == 0` disables the
    /// knob and — crucially for determinism across plans — does **not**
    /// consume a draw.
    pub fn one_in(&mut self, n: u32) -> bool {
        n > 0 && self.next_u64().is_multiple_of(u64::from(n))
    }
}

/// A deterministic fault schedule. Each knob is a 1-in-`n` probability
/// per policy decision; `0` disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed; the entire schedule is a pure function of this.
    pub seed: u64,
    /// 1-in-N chance of forcing a blocked speculative load to issue.
    pub flip_block_to_allow: u32,
    /// 1-in-N chance of forcing an allowed load to block (benign).
    pub flip_allow_to_block: u32,
    /// 1-in-N chance of evicting the context's ISV-cache/DSVMT entries.
    pub evict_metadata: u32,
    /// 1-in-N chance of corrupting a DSV ownership response (a
    /// DSV/DSVMT-miss/unknown-alloc block answered as in-view).
    pub corrupt_dsv: u32,
}

impl FaultPlan {
    /// The no-fault plan: wrapping a policy with this is an identity.
    pub fn none() -> Self {
        FaultPlan {
            seed: 1,
            flip_block_to_allow: 0,
            flip_allow_to_block: 0,
            evict_metadata: 0,
            corrupt_dsv: 0,
        }
    }

    /// The canned plan used by `sni_check` and the CI smoke run: every
    /// fault class enabled at moderate rates.
    pub fn canned(seed: u64) -> Self {
        FaultPlan {
            seed,
            flip_block_to_allow: 7,
            flip_allow_to_block: 11,
            evict_metadata: 13,
            corrupt_dsv: 17,
        }
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.flip_block_to_allow != 0
            || self.flip_allow_to_block != 0
            || self.evict_metadata != 0
            || self.corrupt_dsv != 0
    }
}

/// What the injector did, shared with the harness via `Rc<RefCell<..>>`
/// (the injector itself is moved into the core).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Policy decisions observed.
    pub decisions_seen: u64,
    /// Blocks forced to allows.
    pub blocks_flipped_to_allow: u64,
    /// Allows forced to blocks (benign direction).
    pub allows_flipped_to_block: u64,
    /// DSV ownership responses corrupted to "in view".
    pub dsv_responses_corrupted: u64,
    /// Metadata-cache evictions injected.
    pub metadata_evictions: u64,
    /// Forced allows the ground-truth oracle says were unsafe — the
    /// number the SNI monitor must independently rediscover.
    pub injected_violations: u64,
}

/// A [`SpecPolicy`] wrapper that injects faults per a [`FaultPlan`].
pub struct FaultInjector {
    inner: Box<dyn SpecPolicy>,
    oracle: Rc<GroundTruth>,
    plan: FaultPlan,
    rng: XorShift64,
    counters: Rc<RefCell<FaultCounters>>,
}

impl FaultInjector {
    /// Wrap `inner`, scheduling faults per `plan` and grading every
    /// forced allow against `oracle`.
    pub fn new(inner: Box<dyn SpecPolicy>, oracle: Rc<GroundTruth>, plan: FaultPlan) -> Self {
        FaultInjector {
            inner,
            oracle,
            rng: XorShift64::new(plan.seed),
            plan,
            counters: Rc::new(RefCell::new(FaultCounters::default())),
        }
    }

    /// A shared handle to the injection counters; clone it before the
    /// injector is moved into the core.
    pub fn counters_handle(&self) -> Rc<RefCell<FaultCounters>> {
        Rc::clone(&self.counters)
    }

    fn force_allow(&mut self, ctx: &LoadCtx) -> LoadDecision {
        if self.oracle.should_block(ctx) {
            self.counters.borrow_mut().injected_violations += 1;
        }
        LoadDecision::Allow
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("inner", &self.inner.name())
            .field("plan", &self.plan)
            .finish()
    }
}

impl SpecPolicy for FaultInjector {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn check_load(&mut self, ctx: &LoadCtx) -> LoadDecision {
        self.counters.borrow_mut().decisions_seen += 1;

        // Metadata eviction is independent of the decision outcome and
        // drawn first so its schedule does not depend on policy state.
        if self.rng.one_in(self.plan.evict_metadata) {
            if let Some(any) = self.inner.as_any_mut() {
                if let Some(p) = any.downcast_mut::<crate::policy::PerspectivePolicy>() {
                    p.fault_invalidate_metadata(ctx.asid);
                    self.counters.borrow_mut().metadata_evictions += 1;
                }
            }
        }

        match self.inner.check_load(ctx) {
            LoadDecision::Allow => {
                if self.rng.one_in(self.plan.flip_allow_to_block) {
                    self.counters.borrow_mut().allows_flipped_to_block += 1;
                    // Benign: the load re-issues at its visibility point.
                    LoadDecision::BlockUntilVp(BlockSource::Fence)
                } else {
                    LoadDecision::Allow
                }
            }
            LoadDecision::BlockUntilVp(src) => {
                // Both knobs draw unconditionally (no `||` short-circuit)
                // to keep the draw sequence plan-independent.
                let dsv_sourced = matches!(
                    src,
                    BlockSource::Dsv | BlockSource::DsvmtMiss | BlockSource::UnknownAlloc
                );
                let corrupt = self.rng.one_in(self.plan.corrupt_dsv) && dsv_sourced;
                let flip = self.rng.one_in(self.plan.flip_block_to_allow);
                if corrupt {
                    self.counters.borrow_mut().dsv_responses_corrupted += 1;
                    self.force_allow(ctx)
                } else if flip {
                    self.counters.borrow_mut().blocks_flipped_to_allow += 1;
                    self.force_allow(ctx)
                } else {
                    LoadDecision::BlockUntilVp(src)
                }
            }
        }
    }

    fn on_load_vp(&mut self, ctx: &LoadCtx) {
        self.inner.on_load_vp(ctx);
    }

    fn syscall_entry_cost(&self) -> u64 {
        self.inner.syscall_entry_cost()
    }

    fn syscall_exit_cost(&self) -> u64 {
        self.inner.syscall_exit_cost()
    }

    fn predict_indirect(&self) -> bool {
        self.inner.predict_indirect()
    }

    fn counters(&self) -> PolicyCounters {
        self.inner.counters()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }

    // Delegate downcasts so harness code that looks for PerspectivePolicy
    // (fence breakdowns, cache stats) keeps working through the wrapper.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        self.inner.as_any_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsv::DsvTable;
    use crate::policy::{IsvRegistry, PerspectiveConfig, PerspectivePolicy};
    use persp_kernel::sink::{AllocSink, Owner};
    use persp_uarch::policy::UnsafePolicy;
    use persp_uarch::Mode;

    fn metadata() -> (Rc<RefCell<DsvTable>>, Rc<RefCell<IsvRegistry>>) {
        let dsv = Rc::new(RefCell::new(DsvTable::default()));
        let isvs = Rc::new(RefCell::new(IsvRegistry::default()));
        {
            let mut t = dsv.borrow_mut();
            t.register_context(1, 10);
            t.assign_va_range(0x5000, 0x1000, Owner::Cgroup(10));
            t.assign_va_range(0x7000, 0x1000, Owner::Cgroup(20));
        }
        (dsv, isvs)
    }

    fn kctx(addr: u64) -> LoadCtx {
        LoadCtx {
            pc: 0x100,
            addr,
            mode: Mode::Kernel,
            asid: 1,
            speculative: true,
            tainted_addr: false,
            l1_hit: true,
            cur_sysno: None,
        }
    }

    #[test]
    fn no_fault_plan_is_identity() {
        let (dsv, isvs) = metadata();
        let oracle = Rc::new(GroundTruth::new(
            PerspectiveConfig::default(),
            Rc::clone(&dsv),
            Rc::clone(&isvs),
        ));
        let inner = Box::new(PerspectivePolicy::new(
            PerspectiveConfig::default(),
            Rc::clone(&dsv),
            isvs,
        ));
        let mut inj = FaultInjector::new(inner, oracle, FaultPlan::none());
        let handle = inj.counters_handle();
        let mut reference = {
            let (dsv, isvs) = metadata();
            PerspectivePolicy::new(PerspectiveConfig::default(), dsv, isvs)
        };
        for i in 0..64 {
            let ctx = kctx(0x5000 + i * 8);
            assert_eq!(inj.check_load(&ctx), reference.check_load(&ctx));
        }
        let c = handle.borrow();
        assert_eq!(c.decisions_seen, 64);
        assert_eq!(c.blocks_flipped_to_allow, 0);
        assert_eq!(c.allows_flipped_to_block, 0);
        assert_eq!(c.dsv_responses_corrupted, 0);
        assert_eq!(c.metadata_evictions, 0);
        assert_eq!(c.injected_violations, 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let (dsv, isvs) = metadata();
            let oracle = Rc::new(GroundTruth::new(
                PerspectiveConfig::default(),
                Rc::clone(&dsv),
                Rc::clone(&isvs),
            ));
            let inner = Box::new(PerspectivePolicy::new(
                PerspectiveConfig::default(),
                dsv,
                isvs,
            ));
            let mut inj = FaultInjector::new(inner, oracle, FaultPlan::canned(seed));
            let handle = inj.counters_handle();
            let verdicts: Vec<LoadDecision> = (0..256)
                .map(|i| inj.check_load(&kctx(0x7000 + (i % 0x200) * 8)))
                .collect();
            let counters = *handle.borrow();
            (verdicts, counters)
        };
        let (v1, c1) = run(42);
        let (v2, c2) = run(42);
        assert_eq!(v1, v2, "same seed must replay identically");
        assert_eq!(c1, c2);
        let (v3, c3) = run(43);
        assert!(
            v1 != v3 || c1 != c3,
            "a different seed should perturb the schedule"
        );
    }

    #[test]
    fn forced_allows_on_foreign_data_are_violations() {
        let (dsv, isvs) = metadata();
        let oracle = Rc::new(GroundTruth::new(
            PerspectiveConfig::default(),
            Rc::clone(&dsv),
            Rc::clone(&isvs),
        ));
        let inner = Box::new(PerspectivePolicy::new(
            PerspectiveConfig::default(),
            dsv,
            isvs,
        ));
        let plan = FaultPlan {
            seed: 7,
            flip_block_to_allow: 1, // every block flips
            flip_allow_to_block: 0,
            evict_metadata: 0,
            corrupt_dsv: 0,
        };
        let mut inj = FaultInjector::new(inner, oracle, plan);
        let handle = inj.counters_handle();
        // Foreign data: the real policy blocks, every block is flipped,
        // and every flip is a genuine violation.
        for i in 0..32 {
            let d = inj.check_load(&kctx(0x7000 + i * 8));
            assert_eq!(d, LoadDecision::Allow);
        }
        let c = handle.borrow();
        assert_eq!(c.blocks_flipped_to_allow, 32);
        assert_eq!(c.injected_violations, 32);
    }

    #[test]
    fn benign_flips_are_not_violations() {
        let (dsv, isvs) = metadata();
        let oracle = Rc::new(GroundTruth::new(
            PerspectiveConfig::default(),
            Rc::clone(&dsv),
            Rc::clone(&isvs),
        ));
        let inner = Box::new(PerspectivePolicy::new(
            PerspectiveConfig::default(),
            dsv,
            isvs,
        ));
        let plan = FaultPlan {
            seed: 7,
            flip_block_to_allow: 0,
            flip_allow_to_block: 1, // every allow blocks
            evict_metadata: 0,
            corrupt_dsv: 0,
        };
        let mut inj = FaultInjector::new(inner, oracle, plan);
        let handle = inj.counters_handle();
        for i in 0..32 {
            let _ = inj.check_load(&kctx(0x5000 + i * 8));
        }
        let c = handle.borrow();
        assert!(
            c.allows_flipped_to_block > 0,
            "some allows must have flipped"
        );
        assert_eq!(c.injected_violations, 0, "extra blocks are always legal");
    }

    #[test]
    fn injector_preserves_downcast_and_evicts_metadata() {
        let (dsv, isvs) = metadata();
        let oracle = Rc::new(GroundTruth::new(
            PerspectiveConfig::default(),
            Rc::clone(&dsv),
            Rc::clone(&isvs),
        ));
        let inner = Box::new(PerspectivePolicy::new(
            PerspectiveConfig::default(),
            dsv,
            isvs,
        ));
        let plan = FaultPlan {
            seed: 9,
            flip_block_to_allow: 0,
            flip_allow_to_block: 0,
            evict_metadata: 1, // evict on every decision
            corrupt_dsv: 0,
        };
        let mut inj = FaultInjector::new(inner, oracle, plan);
        let handle = inj.counters_handle();
        for i in 0..16 {
            let _ = inj.check_load(&kctx(0x5000 + i * 8));
        }
        assert_eq!(handle.borrow().metadata_evictions, 16);
        // With every decision evicting, the DSVMT never retains entries:
        // each lookup is a miss (conservative), never an unsafe allow.
        assert_eq!(handle.borrow().injected_violations, 0);
        let any = inj.as_any().expect("downcast must pass through");
        assert!(any.downcast_ref::<PerspectivePolicy>().is_some());
    }

    #[test]
    fn unsafe_inner_is_never_evicted_but_still_flips() {
        let (dsv, isvs) = metadata();
        let oracle = Rc::new(GroundTruth::new(PerspectiveConfig::default(), dsv, isvs));
        let plan = FaultPlan {
            seed: 5,
            flip_block_to_allow: 0,
            flip_allow_to_block: 0,
            evict_metadata: 1,
            corrupt_dsv: 0,
        };
        let mut inj = FaultInjector::new(Box::new(UnsafePolicy::new()), oracle, plan);
        let handle = inj.counters_handle();
        for i in 0..8 {
            assert_eq!(inj.check_load(&kctx(0x7000 + i * 8)), LoadDecision::Allow);
        }
        let c = handle.borrow();
        assert_eq!(c.metadata_evictions, 0, "UNSAFE has no metadata caches");
        assert_eq!(
            c.injected_violations, 0,
            "UNSAFE's own allows are not *injected* violations"
        );
    }
}
