//! Hardware cache models for Perspective's two new structures: the ISV
//! cache and the DSVMT cache (§6.2).
//!
//! Both are small ASID-tagged set-associative caches sitting next to the
//! pipeline. On a hit they answer "may this instruction/data speculate?"
//! in a fraction of a cycle; on a miss Perspective *conservatively blocks*
//! speculation and refills in the background (via the TLB for ISV pages).
//! Per §6.2, LRU bits are only updated when the consuming instruction
//! reaches its visibility point, so wrong-path lookups cannot perturb
//! replacement state (that would itself be a side channel).

use persp_mem::tlb::{Tlb, TlbConfig};
use persp_uarch::Asid;

/// Geometry of one Perspective hardware cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwCacheConfig {
    /// Total entries (paper: 128).
    pub entries: usize,
    /// Associativity (paper: 4).
    pub ways: usize,
    /// Bytes of the address space one entry covers (tag granularity).
    pub span_bytes: u64,
}

impl HwCacheConfig {
    /// The paper's ISV cache: 128 entries, 32 sets, 4-way. Each entry
    /// covers a 256-byte code window (64 instructions × 1 bit, plus tag
    /// and ASID) — sized so the small kernel working set reaches the
    /// paper's ~99 % hit rate.
    pub fn isv_paper() -> Self {
        HwCacheConfig {
            entries: 128,
            ways: 4,
            span_bytes: 256,
        }
    }

    /// The paper's DSVMT cache: 128 entries, 32 sets, 4-way; each entry
    /// covers one 4 KiB page (1 bit + tag + ASID ≈ 53 bits).
    pub fn dsvmt_paper() -> Self {
        HwCacheConfig {
            entries: 128,
            ways: 4,
            span_bytes: 4096,
        }
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (speculation blocked, refill started).
    pub misses: u64,
}

impl HwCacheStats {
    /// Hit rate in `[0, 1]`; `1.0` when no lookups were made.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            1.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

impl persp_uarch::MetricsSource for HwCacheStats {
    fn export_metrics(&self, prefix: &str, reg: &mut persp_uarch::MetricsRegistry) {
        reg.set(format!("{prefix}.hits"), self.hits);
        reg.set(format!("{prefix}.misses"), self.misses);
    }
}

impl persp_uarch::MetricsSource for TaggedMetadataCache {
    fn export_metrics(&self, prefix: &str, reg: &mut persp_uarch::MetricsRegistry) {
        persp_uarch::MetricsSource::export_metrics(&self.stats, prefix, reg);
        let t = self.tlb.stats();
        reg.set(format!("{prefix}.tlb.hits"), t.hits);
        reg.set(format!("{prefix}.tlb.misses"), t.misses);
        reg.set(format!("{prefix}.tlb.evictions"), t.evictions);
        reg.set(format!("{prefix}.tlb.flushes"), t.flushes);
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    asid: Asid,
    /// Allow-bits for the covered span (bit per instruction slot for the
    /// ISV cache; a single meaningful bit for the DSVMT cache).
    bits: u64,
    valid: bool,
    lru: u64,
}

/// Result of a tagged lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwLookup {
    /// Hit: the requested allow-bit.
    Hit(bool),
    /// Miss: speculation must be blocked; a refill was scheduled.
    Miss,
}

/// An ASID-tagged set-associative metadata cache with deferred LRU.
#[derive(Debug)]
pub struct TaggedMetadataCache {
    cfg: HwCacheConfig,
    sets: Vec<Vec<Entry>>,
    clock: u64,
    stats: HwCacheStats,
    set_mask: u64,
    span_shift: u32,
    /// The refill path's TLB (ISV pages are located through the TLB,
    /// §6.2); shared geometry works for the DSVMT walk too.
    pub tlb: Tlb,
}

impl TaggedMetadataCache {
    /// Build an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn new(cfg: HwCacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways));
        let sets = cfg.entries / cfg.ways;
        assert!(sets.is_power_of_two());
        assert!(cfg.span_bytes.is_power_of_two());
        TaggedMetadataCache {
            cfg,
            sets: vec![
                vec![
                    Entry {
                        tag: 0,
                        asid: 0,
                        bits: 0,
                        valid: false,
                        lru: 0
                    };
                    cfg.ways
                ];
                sets
            ],
            clock: 0,
            stats: HwCacheStats::default(),
            set_mask: (sets - 1) as u64,
            span_shift: cfg.span_bytes.trailing_zeros(),
            tlb: Tlb::new(TlbConfig::default_dtlb()),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HwCacheStats {
        self.stats
    }

    /// Bytes covered by one entry.
    pub fn span_bytes(&self) -> u64 {
        self.cfg.span_bytes
    }

    /// Reset statistics (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = HwCacheStats::default();
    }

    fn locate(&self, va: u64) -> (usize, u64, u32) {
        let span = va >> self.span_shift;
        let set = (span & self.set_mask) as usize;
        let tag = span >> self.set_mask.count_ones();
        // Bit index within the span: instruction slot for 64-byte spans,
        // always 0 for page spans.
        let bit = ((va >> 2) & ((self.cfg.span_bytes >> 2) - 1).min(63)) as u32;
        (set, tag, bit)
    }

    /// Look up the allow-bit for `va` in context `asid`. Does **not**
    /// update LRU (deferred to [`TaggedMetadataCache::commit_touch`]).
    pub fn lookup(&mut self, va: u64, asid: Asid) -> HwLookup {
        let (set, tag, bit) = self.locate(va);
        if let Some(e) = self.sets[set]
            .iter()
            .find(|e| e.valid && e.tag == tag && e.asid == asid)
        {
            self.stats.hits += 1;
            return HwLookup::Hit(e.bits >> (bit & 63) & 1 == 1);
        }
        self.stats.misses += 1;
        HwLookup::Miss
    }

    /// Refill the entry for `va`/`asid` with span allow-bits computed by
    /// `bit_source(bit_index) -> allowed`. Models the background refill
    /// after a miss (the TLB translation is charged here).
    pub fn refill(&mut self, va: u64, asid: Asid, bit_source: impl Fn(u32) -> bool) {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag, _) = self.locate(va);
        let nbits = ((self.cfg.span_bytes >> 2) as u32).min(64);
        let mut bits = 0u64;
        for b in 0..nbits {
            if bit_source(b) {
                bits |= 1 << b;
            }
        }
        self.tlb.translate(va, asid);
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("set never empty");
        *victim = Entry {
            tag,
            asid,
            bits,
            valid: true,
            lru: clock,
        };
    }

    /// Apply the deferred LRU update once the consuming instruction
    /// reached its visibility point.
    pub fn commit_touch(&mut self, va: u64, asid: Asid) {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag, _) = self.locate(va);
        if let Some(e) = self.sets[set]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag && e.asid == asid)
        {
            e.lru = clock;
        }
    }

    /// Drop all entries of one context.
    pub fn invalidate_asid(&mut self, asid: Asid) {
        for set in &mut self.sets {
            for e in set.iter_mut() {
                if e.asid == asid {
                    e.valid = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_refill_then_hit() {
        let mut c = TaggedMetadataCache::new(HwCacheConfig::isv_paper());
        assert_eq!(c.lookup(0x1000, 1), HwLookup::Miss);
        c.refill(0x1000, 1, |b| b % 2 == 0);
        assert_eq!(c.lookup(0x1000, 1), HwLookup::Hit(true), "bit 0 set");
        assert_eq!(c.lookup(0x1004, 1), HwLookup::Hit(false), "bit 1 clear");
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn asid_tags_prevent_cross_context_hits() {
        let mut c = TaggedMetadataCache::new(HwCacheConfig::isv_paper());
        c.refill(0x2000, 1, |_| true);
        assert_eq!(c.lookup(0x2000, 2), HwLookup::Miss, "other ASID misses");
        assert_eq!(c.lookup(0x2000, 1), HwLookup::Hit(true));
    }

    #[test]
    fn page_span_uses_single_bit() {
        let mut c = TaggedMetadataCache::new(HwCacheConfig::dsvmt_paper());
        c.refill(0x5000, 3, |_| true);
        // Anywhere in the page hits with the same bit.
        assert_eq!(c.lookup(0x5000, 3), HwLookup::Hit(true));
        assert_eq!(c.lookup(0x5FF8, 3), HwLookup::Hit(true));
        assert_eq!(c.lookup(0x6000, 3), HwLookup::Miss, "next page misses");
    }

    #[test]
    fn deferred_lru_protects_replacement_state() {
        let cfg = HwCacheConfig {
            entries: 2,
            ways: 2,
            span_bytes: 64,
        };
        let mut c = TaggedMetadataCache::new(cfg);
        c.refill(0x000, 1, |_| true); // clock 1
        c.refill(0x040, 1, |_| true); // clock 2 — victim order: 0x000 first
                                      // Speculative lookups of 0x000 do NOT refresh it...
        for _ in 0..4 {
            let _ = c.lookup(0x000, 1);
        }
        c.refill(0x080, 1, |_| true); // evicts 0x000 (oldest committed)
        assert_eq!(c.lookup(0x000, 1), HwLookup::Miss);
        assert_eq!(c.lookup(0x040, 1), HwLookup::Hit(true));
    }

    #[test]
    fn commit_touch_updates_lru() {
        let cfg = HwCacheConfig {
            entries: 2,
            ways: 2,
            span_bytes: 64,
        };
        let mut c = TaggedMetadataCache::new(cfg);
        c.refill(0x000, 1, |_| true);
        c.refill(0x040, 1, |_| true);
        c.commit_touch(0x000, 1); // VP reached: now 0x040 is LRU
        c.refill(0x080, 1, |_| true);
        assert_eq!(c.lookup(0x000, 1), HwLookup::Hit(true));
        assert_eq!(c.lookup(0x040, 1), HwLookup::Miss);
    }

    #[test]
    fn invalidate_asid_clears_one_context() {
        let mut c = TaggedMetadataCache::new(HwCacheConfig::isv_paper());
        c.refill(0x1000, 1, |_| true);
        c.refill(0x1000, 2, |_| true);
        c.invalidate_asid(1);
        assert_eq!(c.lookup(0x1000, 1), HwLookup::Miss);
        assert_eq!(c.lookup(0x1000, 2), HwLookup::Hit(true));
    }

    #[test]
    fn exports_tlb_counters_alongside_cache_counters() {
        use persp_uarch::{MetricsRegistry, MetricsSource};
        let mut c = TaggedMetadataCache::new(HwCacheConfig::isv_paper());
        let _ = c.lookup(0x1000, 1);
        c.refill(0x1000, 1, |_| true); // refill walks the TLB
        let _ = c.lookup(0x1000, 1);
        let mut reg = MetricsRegistry::default();
        c.export_metrics("isv", &mut reg);
        assert_eq!(reg.get("isv.hits"), Some(1));
        assert_eq!(reg.get("isv.misses"), Some(1));
        assert_eq!(reg.get("isv.tlb.misses"), Some(1));
        assert_eq!(reg.get("isv.tlb.hits"), Some(0));
        assert_eq!(reg.get("isv.tlb.evictions"), Some(0));
        assert_eq!(reg.get("isv.tlb.flushes"), Some(0));
    }

    #[test]
    fn hit_rate_reaches_high_values_on_small_working_sets() {
        let mut c = TaggedMetadataCache::new(HwCacheConfig::isv_paper());
        // A small hot instruction working set, as in kernel execution.
        let lines: Vec<u64> = (0..16).map(|i| 0x8000 + i * 64).collect();
        for &l in &lines {
            if c.lookup(l, 1) == HwLookup::Miss {
                c.refill(l, 1, |_| true);
            }
        }
        for _ in 0..100 {
            for &l in &lines {
                assert_eq!(c.lookup(l, 1), HwLookup::Hit(true));
            }
        }
        assert!(c.stats().hit_rate() > 0.98);
    }
}
