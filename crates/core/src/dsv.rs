//! Data Speculation Views: per-context ownership of kernel data.
//!
//! A DSV "defines the set of data that a given execution context owns"
//! (§5.1). Ownership is established *through allocations* (§5.2): the
//! kernel's buddy and slab allocators report every assignment through the
//! [`AllocSink`] interface, and this table is the software-side metadata
//! the DSVMT hardware consults.
//!
//! Classification of an address against a context:
//!
//! * [`DsvClass::Owned`] — allocated on behalf of this context's cgroup.
//! * [`DsvClass::Shared`] — boot-time shared kernel data (per-cpu
//!   variables, dispatch tables); part of every DSV.
//! * [`DsvClass::Foreign`] — owned by a *different* cgroup: a speculative
//!   access here is exactly what an active attack needs, and is blocked.
//! * [`DsvClass::Unknown`] — no recorded provenance (§6.1 "Resolving
//!   Unknown Allocations"): conservatively blocked.

use persp_kernel::context::CgroupId;
use persp_kernel::layout::va_to_frame;
use persp_kernel::sink::{AllocSink, Owner};
use persp_uarch::Asid;
use std::collections::BTreeMap;

/// How an address relates to a context's DSV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsvClass {
    /// Inside the context's DSV.
    Owned,
    /// Shared kernel data, inside every DSV.
    Shared,
    /// Owned by another context — speculative access violates ownership.
    Foreign,
    /// Unknown provenance — conservatively outside every DSV.
    Unknown,
}

impl DsvClass {
    /// May the current context speculatively access data of this class?
    pub fn speculation_allowed(self) -> bool {
        matches!(self, DsvClass::Owned | DsvClass::Shared)
    }
}

/// DSV bookkeeping statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsvStats {
    /// Frame-assignment events received.
    pub frame_assigns: u64,
    /// Frame-release events received.
    pub frame_releases: u64,
    /// VA-range assignments received.
    pub va_assigns: u64,
    /// Classification queries answered.
    pub queries: u64,
}

/// The software DSV metadata table. Implements [`AllocSink`] so the
/// kernel's allocators keep it current, exactly as Perspective hooks
/// `alloc_pages()` and the secure slab allocator (§6.1).
///
/// Frame ownership and context membership are dense vectors (indexed by
/// frame number and ASID, grown on demand) rather than hash maps:
/// [`DsvTable::classify`] sits on the simulation hot path — every DSVMT
/// cache miss lands here — and both probes must be O(1) loads.
#[derive(Debug, Default)]
pub struct DsvTable {
    /// Frame → owner; `None` means no recorded provenance.
    frames: Vec<Option<Owner>>,
    /// Number of `Some` entries in `frames`.
    tracked: usize,
    va_ranges: BTreeMap<u64, (u64, Owner)>,
    /// ASID → cgroup; `None` means unregistered.
    contexts: Vec<Option<CgroupId>>,
    stats: DsvStats,
}

impl DsvTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DsvStats {
        self.stats
    }

    /// The cgroup an ASID belongs to, if registered.
    #[inline]
    pub fn cgroup_of(&self, asid: Asid) -> Option<CgroupId> {
        self.contexts.get(usize::from(asid)).copied().flatten()
    }

    /// Raw ownership of an address, independent of any context.
    #[inline]
    pub fn owner_of(&self, va: u64) -> Option<Owner> {
        if let Some(frame) = va_to_frame(va) {
            return self.frames.get(frame as usize).copied().flatten();
        }
        let (&start, &(len, owner)) = self.va_ranges.range(..=va).next_back()?;
        (va < start + len).then_some(owner)
    }

    /// Classify an address against the DSV of `asid`.
    pub fn classify(&mut self, va: u64, asid: Asid) -> DsvClass {
        self.stats.queries += 1;
        let Some(owner) = self.owner_of(va) else {
            return DsvClass::Unknown;
        };
        match owner {
            Owner::Shared => DsvClass::Shared,
            Owner::Unknown => DsvClass::Unknown,
            Owner::Cgroup(cg) => {
                if self.cgroup_of(asid) == Some(cg) {
                    DsvClass::Owned
                } else {
                    DsvClass::Foreign
                }
            }
        }
    }

    /// Number of frames with recorded ownership.
    pub fn tracked_frames(&self) -> usize {
        self.tracked
    }
}

impl AllocSink for DsvTable {
    fn register_context(&mut self, asid: u16, cgroup: CgroupId) {
        let idx = usize::from(asid);
        if idx >= self.contexts.len() {
            self.contexts.resize(idx + 1, None);
        }
        self.contexts[idx] = Some(cgroup);
    }

    fn assign_frames(&mut self, first_frame: u64, count: u64, owner: Owner) {
        self.stats.frame_assigns += 1;
        let end = (first_frame + count) as usize;
        if end > self.frames.len() {
            self.frames.resize(end, None);
        }
        for slot in &mut self.frames[first_frame as usize..end] {
            self.tracked += usize::from(slot.is_none());
            *slot = Some(owner);
        }
    }

    fn release_frames(&mut self, first_frame: u64, count: u64) {
        self.stats.frame_releases += 1;
        let end = ((first_frame + count) as usize).min(self.frames.len());
        let start = (first_frame as usize).min(end);
        for slot in &mut self.frames[start..end] {
            self.tracked -= usize::from(slot.is_some());
            *slot = None;
        }
    }

    fn assign_va_range(&mut self, va: u64, bytes: u64, owner: Owner) {
        self.stats.va_assigns += 1;
        self.va_ranges.insert(va, (bytes, owner));
    }

    fn release_va_range(&mut self, va: u64, _bytes: u64) {
        self.va_ranges.remove(&va);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::layout::frame_to_va;

    fn table_with_contexts() -> DsvTable {
        let mut t = DsvTable::new();
        t.register_context(1, 10);
        t.register_context(2, 20);
        t
    }

    #[test]
    fn owned_frames_classify_by_cgroup() {
        let mut t = table_with_contexts();
        t.assign_frames(100, 2, Owner::Cgroup(10));
        assert_eq!(t.classify(frame_to_va(100), 1), DsvClass::Owned);
        assert_eq!(t.classify(frame_to_va(101), 1), DsvClass::Owned);
        assert_eq!(t.classify(frame_to_va(100), 2), DsvClass::Foreign);
    }

    #[test]
    fn shared_data_is_in_every_dsv() {
        let mut t = table_with_contexts();
        t.assign_va_range(0xFFFF_8400_0000_0000, 4096, Owner::Shared);
        assert_eq!(t.classify(0xFFFF_8400_0000_0100, 1), DsvClass::Shared);
        assert_eq!(t.classify(0xFFFF_8400_0000_0100, 2), DsvClass::Shared);
        assert!(DsvClass::Shared.speculation_allowed());
    }

    #[test]
    fn unrecorded_memory_is_unknown() {
        let mut t = table_with_contexts();
        assert_eq!(t.classify(frame_to_va(999), 1), DsvClass::Unknown);
        assert_eq!(t.classify(0xFFFF_8600_0000_0000, 1), DsvClass::Unknown);
        assert!(!DsvClass::Unknown.speculation_allowed());
    }

    #[test]
    fn release_dissolves_ownership() {
        let mut t = table_with_contexts();
        t.assign_frames(50, 1, Owner::Cgroup(10));
        assert_eq!(t.classify(frame_to_va(50), 1), DsvClass::Owned);
        t.release_frames(50, 1);
        assert_eq!(t.classify(frame_to_va(50), 1), DsvClass::Unknown);
    }

    #[test]
    fn va_range_bounds_are_respected() {
        let mut t = table_with_contexts();
        t.assign_va_range(0x1000_0000, 0x2000, Owner::Cgroup(10));
        assert_eq!(t.classify(0x1000_0000, 1), DsvClass::Owned);
        assert_eq!(t.classify(0x1000_1FFF, 1), DsvClass::Owned);
        assert_eq!(t.classify(0x1000_2000, 1), DsvClass::Unknown);
        assert_eq!(t.classify(0x0FFF_FFFF, 1), DsvClass::Unknown);
    }

    #[test]
    fn frame_reassignment_changes_owner() {
        // Domain reassignment: a slab page drains, returns to the buddy,
        // and is re-allocated to a different cgroup.
        let mut t = table_with_contexts();
        t.assign_frames(7, 1, Owner::Cgroup(10));
        t.release_frames(7, 1);
        t.assign_frames(7, 1, Owner::Cgroup(20));
        assert_eq!(t.classify(frame_to_va(7), 1), DsvClass::Foreign);
        assert_eq!(t.classify(frame_to_va(7), 2), DsvClass::Owned);
    }

    #[test]
    fn unknown_owner_is_blocked_even_when_recorded() {
        let mut t = table_with_contexts();
        t.assign_va_range(0x5000_0000, 4096, Owner::Unknown);
        assert_eq!(t.classify(0x5000_0000, 1), DsvClass::Unknown);
    }

    #[test]
    fn unregistered_context_owns_nothing() {
        let mut t = DsvTable::new();
        t.assign_frames(3, 1, Owner::Cgroup(10));
        assert_eq!(t.classify(frame_to_va(3), 99), DsvClass::Foreign);
    }
}
