//! Instruction Speculation Views: per-context sets of kernel code that may
//! execute speculatively.
//!
//! An ISV "defines the set of kernel functions that can be speculatively
//! executed by a given execution context" (§5.1); protection is applied at
//! instruction granularity. This module implements the three generation
//! strategies of §5.3/§6.1:
//!
//! * [`Isv::static_for`] — static system-call interposition: the
//!   direct-edge closure of the application's syscall set over the kernel
//!   call graph (the radare2-based analysis of the paper). Indirect-call
//!   targets are invisible and excluded.
//! * [`Isv::dynamic_from_trace`] — dynamic tracing: the functions whose
//!   entries were observed in a committed-call trace (ftrace analog).
//! * [`Isv::exclude_function`] — auditing/CVE hardening: removing
//!   functions flagged by the gadget scanner yields ISV++, and the same
//!   interface gives runtime reconfigurability ("swiftly patching gadgets
//!   without kernel patches", §5.4).

use persp_kernel::callgraph::{CallGraph, FuncId, VaFuncMap};
use persp_kernel::layout::KTEXT_BASE;
use persp_kernel::syscalls::Sysno;
use persp_uarch::isa::INST_BYTES;
use std::collections::HashSet;
use std::sync::Arc;

/// How an ISV was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsvKind {
    /// Static binary analysis (ISV-S).
    Static,
    /// Dynamic tracing (ISV).
    Dynamic,
    /// Audit-hardened (ISV++).
    Hardened,
    /// Everything allowed (the unprotected baseline view).
    Unrestricted,
}

/// An instruction speculation view.
///
/// Membership is answered from a dense bitset indexed by [`FuncId`]
/// (one bit per kernel function) plus the graph's shared VA → function
/// map — both O(1) probes on the simulation hot path, where the policy
/// layer queries [`Isv::contains_va`] for every instruction of an
/// ISV-cache line fill. The function [`HashSet`] is retained only as
/// construction-time ingest and for set-valued consumers
/// ([`Isv::funcs`]); the probe paths never touch it.
#[derive(Debug, Clone)]
pub struct Isv {
    kind: IsvKind,
    funcs: HashSet<FuncId>,
    /// Dense membership bitset, bit `f.0` ⇔ function `f` in the view.
    words: Vec<u64>,
    /// Shared VA → function map (absent before kernel emission or for
    /// the unrestricted view; [`Isv::contains_va`] then falls back to
    /// binary search over `ranges`).
    va_map: Option<Arc<VaFuncMap>>,
    /// Sorted, disjoint `[start, end)` VA ranges allowed to speculate.
    ranges: Vec<(u64, u64)>,
}

/// The entry/dispatch stub must be part of every ISV — it is the syscall
/// path itself.
const STUB_RANGE: (u64, u64) = (KTEXT_BASE, KTEXT_BASE + 0x1000);

impl Isv {
    fn from_funcs(kind: IsvKind, graph: &CallGraph, funcs: HashSet<FuncId>) -> Self {
        let mut ranges: Vec<(u64, u64)> = funcs
            .iter()
            .map(|&f| {
                let kf = graph.func(f);
                (
                    kf.entry_va,
                    kf.entry_va + u64::from(kf.len_insts) * INST_BYTES,
                )
            })
            .collect();
        ranges.push(STUB_RANGE);
        ranges.sort_unstable();
        // Merge adjacent/overlapping ranges.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        let mut words = vec![0u64; graph.len().div_ceil(64)];
        for &f in &funcs {
            words[f.0 as usize / 64] |= 1 << (f.0 % 64);
        }
        let va_map = graph.va_map.is_built().then(|| graph.va_map.clone());
        Isv {
            kind,
            funcs,
            words,
            va_map,
            ranges: merged,
        }
    }

    /// Static ISV (ISV-S): direct-edge closure of the application's
    /// syscall set.
    pub fn static_for(graph: &CallGraph, syscalls: &[Sysno]) -> Self {
        let funcs = graph.static_reachable(syscalls);
        Self::from_funcs(IsvKind::Static, graph, funcs)
    }

    /// Build a view from an explicit function set (e.g. the runtime
    /// reachability ground truth that a long dynamic trace converges to).
    pub fn from_func_set(graph: &CallGraph, funcs: HashSet<FuncId>, kind: IsvKind) -> Self {
        Self::from_funcs(kind, graph, funcs)
    }

    /// Dynamic ISV: functions observed in a committed call-target trace.
    pub fn dynamic_from_trace(graph: &CallGraph, trace: &HashSet<u64>) -> Self {
        let funcs: HashSet<FuncId> = trace
            .iter()
            .filter_map(|&va| graph.func_of_va(va))
            .collect();
        Self::from_funcs(IsvKind::Dynamic, graph, funcs)
    }

    /// Dynamic ISV from an already-resolved function set (the form the
    /// tracing harness produces once call targets are attributed).
    pub fn dynamic_from_funcs(graph: &CallGraph, funcs: HashSet<FuncId>) -> Self {
        Self::from_funcs(IsvKind::Dynamic, graph, funcs)
    }

    /// The unrestricted view: every kernel instruction may speculate (the
    /// behavior of an unprotected kernel, used as the ISV baseline).
    pub fn unrestricted() -> Self {
        Isv {
            kind: IsvKind::Unrestricted,
            funcs: HashSet::new(),
            words: Vec::new(),
            va_map: None,
            ranges: vec![(KTEXT_BASE, u64::MAX)],
        }
    }

    /// The view's provenance.
    pub fn kind(&self) -> IsvKind {
        self.kind
    }

    /// Number of kernel functions inside the view.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// The functions inside the view.
    pub fn funcs(&self) -> &HashSet<FuncId> {
        &self.funcs
    }

    /// Is this function inside the view? O(1) bitset probe.
    #[inline]
    pub fn contains_func(&self, f: FuncId) -> bool {
        self.words
            .get(f.0 as usize / 64)
            .is_some_and(|w| w >> (f.0 % 64) & 1 == 1)
    }

    /// Is the instruction at `va` allowed to execute speculatively?
    ///
    /// O(1): resolve the owning function through the shared dense VA map
    /// and test its membership bit. The entry stub is part of every view
    /// (it *is* the syscall path), and views without a VA map — the
    /// unrestricted baseline, or views built before kernel emission —
    /// fall back to binary search over the allowed ranges.
    #[inline]
    pub fn contains_va(&self, va: u64) -> bool {
        if va >= STUB_RANGE.0 && va < STUB_RANGE.1 {
            return true;
        }
        match &self.va_map {
            Some(map) => map.func_of_va(va).is_some_and(|f| self.contains_func(f)),
            None => {
                let idx = self.ranges.partition_point(|&(s, _)| s <= va);
                idx > 0 && va < self.ranges[idx - 1].1
            }
        }
    }

    /// Remove a function from the view (audit hardening / CVE response /
    /// runtime shrinking). Upgrades the kind to [`IsvKind::Hardened`] and
    /// returns whether the function was present.
    pub fn exclude_function(&mut self, graph: &CallGraph, f: FuncId) -> bool {
        let was_present = self.funcs.remove(&f);
        if let Some(w) = self.words.get_mut(f.0 as usize / 64) {
            *w &= !(1 << (f.0 % 64));
        }
        let kf = graph.func(f);
        let (fs, fe) = (
            kf.entry_va,
            kf.entry_va + u64::from(kf.len_insts) * INST_BYTES,
        );
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            if e <= fs || s >= fe {
                out.push((s, e));
                continue;
            }
            if s < fs {
                out.push((s, fs));
            }
            if e > fe {
                out.push((fe, e));
            }
        }
        self.ranges = out;
        self.kind = IsvKind::Hardened;
        was_present
    }

    /// Harden a view by excluding every gadget-hosting function found by
    /// an audit (the ISV++ construction of §6.1).
    pub fn hardened_with_audit(
        mut self,
        graph: &CallGraph,
        flagged: impl IntoIterator<Item = FuncId>,
    ) -> Self {
        for f in flagged {
            self.exclude_function(graph, f);
        }
        self
    }

    /// Attack-surface reduction versus an unprotected kernel:
    /// `1 - |view| / |kernel|` (Table 8.1's metric).
    pub fn surface_reduction(&self, graph: &CallGraph) -> f64 {
        1.0 - self.funcs.len() as f64 / graph.len() as f64
    }

    /// The allowed VA ranges (sorted, disjoint).
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::body::emit_kernel;
    use persp_kernel::callgraph::KernelConfig;

    fn graph() -> CallGraph {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        g
    }

    #[test]
    fn static_isv_covers_reachable_functions() {
        let g = graph();
        let isv = Isv::static_for(&g, &[Sysno::Read, Sysno::Write]);
        assert_eq!(isv.kind(), IsvKind::Static);
        for &f in isv.funcs() {
            let kf = g.func(f);
            assert!(
                isv.contains_va(kf.entry_va),
                "{} entry outside ISV",
                kf.name
            );
            assert!(isv.contains_va(kf.entry_va + 4));
        }
    }

    #[test]
    fn stub_is_always_inside() {
        let g = graph();
        let isv = Isv::static_for(&g, &[Sysno::Getpid]);
        assert!(isv.contains_va(persp_kernel::body::ENTRY_STUB_VA));
        assert!(isv.contains_va(persp_kernel::body::DISPATCH_CALL_VA));
    }

    #[test]
    fn functions_outside_the_syscall_set_are_excluded() {
        let g = graph();
        let isv = Isv::static_for(&g, &[Sysno::Getpid]);
        let mmap_entry = g.entries[&Sysno::Mmap];
        assert!(!isv.contains_func(mmap_entry));
        assert!(!isv.contains_va(g.func(mmap_entry).entry_va));
    }

    #[test]
    fn dynamic_isv_from_trace() {
        let g = graph();
        let read_entry = g.entries[&Sysno::Read];
        let trace: HashSet<u64> = [g.func(read_entry).entry_va].into_iter().collect();
        let isv = Isv::dynamic_from_trace(&g, &trace);
        assert_eq!(isv.kind(), IsvKind::Dynamic);
        assert_eq!(isv.num_funcs(), 1);
        assert!(isv.contains_func(read_entry));
    }

    #[test]
    fn exclude_function_removes_its_range() {
        let g = graph();
        let mut isv = Isv::static_for(&g, &[Sysno::Read]);
        let victim = *isv.funcs().iter().next().expect("nonempty view");
        let va = g.func(victim).entry_va;
        assert!(isv.contains_va(va));
        assert!(isv.exclude_function(&g, victim));
        assert!(!isv.contains_va(va));
        assert!(!isv.contains_func(victim));
        assert_eq!(isv.kind(), IsvKind::Hardened);
        // Idempotent.
        assert!(!isv.exclude_function(&g, victim));
    }

    #[test]
    fn hardened_with_audit_removes_all_flagged() {
        let g = graph();
        let isv = Isv::static_for(&g, &[Sysno::ALL[0], Sysno::ALL[1], Sysno::ALL[2]]);
        let flagged: Vec<FuncId> = g
            .gadgets
            .iter()
            .map(|(f, _)| *f)
            .filter(|f| isv.contains_func(*f))
            .collect();
        let hardened = isv.hardened_with_audit(&g, flagged.iter().copied());
        for f in flagged {
            assert!(!hardened.contains_func(f));
            assert!(!hardened.contains_va(g.func(f).entry_va));
        }
    }

    #[test]
    fn unrestricted_contains_all_kernel_text() {
        let g = graph();
        let isv = Isv::unrestricted();
        for f in &g.funcs {
            assert!(isv.contains_va(f.entry_va));
        }
        assert!(
            !isv.contains_va(0x1000),
            "user addresses are not kernel text"
        );
    }

    #[test]
    fn surface_reduction_matches_fraction() {
        let g = graph();
        let isv = Isv::static_for(&g, &[Sysno::Getpid]);
        let expected = 1.0 - isv.num_funcs() as f64 / g.len() as f64;
        assert!((isv.surface_reduction(&g) - expected).abs() < 1e-12);
        assert!(
            isv.surface_reduction(&g) > 0.9,
            "tiny syscall set, large reduction"
        );
    }

    #[test]
    fn ranges_are_sorted_and_disjoint() {
        let g = graph();
        let isv = Isv::static_for(&g, Sysno::ALL);
        let mut prev_end = 0;
        for &(s, e) in isv.ranges() {
            assert!(s >= prev_end, "overlap at {s:#x}");
            assert!(e > s);
            prev_end = e;
        }
    }
}
