//! Textual ISV profiles — the deployment format of the pliable interface.
//!
//! §5.4 envisions ISVs "built offline and later provided to the OS at
//! application startup", installable by system administrators across
//! fleets — the same operational model as seccomp policy files (§2.3).
//! This module defines that artifact: a line-oriented, human-auditable
//! profile that either *names the kernel functions* of a concrete view or
//! *names the syscalls* from which a static view is generated at load
//! time (so one profile works across kernel builds).
//!
//! ```text
//! # perspective-isv v1
//! kind dynamic
//! func sys_read
//! func read_impl_001
//! ```
//!
//! ```text
//! # perspective-isv v1
//! kind static
//! syscall read
//! syscall write
//! ```

use crate::isv::{Isv, IsvKind};
use persp_kernel::callgraph::{CallGraph, FuncId};
use persp_kernel::syscalls::Sysno;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Magic first line of every profile.
const HEADER: &str = "# perspective-isv v1";

/// Errors loading a profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The file does not start with the v1 header.
    BadHeader,
    /// A line was not a recognized directive.
    BadDirective {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The `kind` directive is missing or invalid.
    BadKind,
    /// A named kernel function does not exist in this kernel build.
    UnknownFunction {
        /// The name that failed to resolve.
        name: String,
    },
    /// A named syscall does not exist.
    UnknownSyscall {
        /// The name that failed to resolve.
        name: String,
    },
    /// A function-list profile with no functions (almost certainly a
    /// mistake — it would fence the entire kernel).
    Empty,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::BadHeader => write!(f, "missing '# perspective-isv v1' header"),
            ProfileError::BadDirective { line, text } => {
                write!(f, "unrecognized directive on line {line}: {text:?}")
            }
            ProfileError::BadKind => write!(f, "missing or invalid 'kind' directive"),
            ProfileError::UnknownFunction { name } => {
                write!(f, "kernel function {name:?} not found in this build")
            }
            ProfileError::UnknownSyscall { name } => write!(f, "unknown syscall {name:?}"),
            ProfileError::Empty => write!(f, "profile names no functions"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Serialize a concrete view to the function-list profile format.
/// Function *names* are used (stable across identically-seeded kernel
/// builds and auditable by humans).
pub fn to_profile_string(isv: &Isv, graph: &CallGraph) -> String {
    let mut names: Vec<&str> = isv
        .funcs()
        .iter()
        .map(|&f| graph.func(f).name.as_str())
        .collect();
    names.sort_unstable();
    let kind = match isv.kind() {
        IsvKind::Static => "static-resolved",
        IsvKind::Dynamic => "dynamic",
        IsvKind::Hardened => "hardened",
        IsvKind::Unrestricted => "unrestricted",
    };
    let mut out = String::with_capacity(16 * names.len() + 64);
    out.push_str(HEADER);
    out.push('\n');
    out.push_str("kind ");
    out.push_str(kind);
    out.push('\n');
    for n in names {
        out.push_str("func ");
        out.push_str(n);
        out.push('\n');
    }
    out
}

/// Serialize a syscall-set profile (static views generated at load time).
pub fn syscall_profile_string(syscalls: &[Sysno]) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str("kind static\n");
    for s in syscalls {
        out.push_str("syscall ");
        out.push_str(s.name());
        out.push('\n');
    }
    out
}

/// Load a profile against a kernel build.
///
/// # Errors
///
/// Returns a [`ProfileError`] for malformed input or names that do not
/// resolve in `graph`.
pub fn from_profile_string(text: &str, graph: &CallGraph) -> Result<Isv, ProfileError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        _ => return Err(ProfileError::BadHeader),
    }

    let mut kind: Option<&str> = None;
    let mut funcs: Vec<String> = Vec::new();
    let mut syscalls: Vec<Sysno> = Vec::new();
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once(' ') {
            Some(("kind", k)) => kind = Some(k.trim()),
            Some(("func", name)) => funcs.push(name.trim().to_string()),
            Some(("syscall", name)) => {
                let name = name.trim();
                let sys = Sysno::ALL
                    .iter()
                    .copied()
                    .find(|s| s.name() == name)
                    .ok_or_else(|| ProfileError::UnknownSyscall {
                        name: name.to_string(),
                    })?;
                syscalls.push(sys);
            }
            _ => {
                return Err(ProfileError::BadDirective {
                    line: i + 1,
                    text: line.to_string(),
                })
            }
        }
    }

    let kind = match kind {
        Some("dynamic") => IsvKind::Dynamic,
        Some("hardened") => IsvKind::Hardened,
        Some("static") | Some("static-resolved") => IsvKind::Static,
        _ => return Err(ProfileError::BadKind),
    };

    if !syscalls.is_empty() {
        // Syscall-set form: resolve against this kernel build.
        return Ok(Isv::static_for(graph, &syscalls));
    }
    if funcs.is_empty() {
        return Err(ProfileError::Empty);
    }

    // Function-list form: resolve names.
    let by_name: HashMap<&str, FuncId> = graph
        .funcs
        .iter()
        .map(|f| (f.name.as_str(), f.id))
        .collect();
    let mut set = HashSet::with_capacity(funcs.len());
    for name in funcs {
        match by_name.get(name.as_str()) {
            Some(&id) => {
                set.insert(id);
            }
            None => return Err(ProfileError::UnknownFunction { name }),
        }
    }
    Ok(Isv::from_func_set(graph, set, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::body::emit_kernel;
    use persp_kernel::callgraph::KernelConfig;

    fn graph() -> CallGraph {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        g
    }

    #[test]
    fn function_list_round_trip() {
        let g = graph();
        let isv = Isv::static_for(&g, &[Sysno::Read, Sysno::Getpid]);
        let text = to_profile_string(&isv, &g);
        let loaded = from_profile_string(&text, &g).expect("round trip");
        assert_eq!(loaded.funcs(), isv.funcs());
        for f in &g.funcs {
            assert_eq!(loaded.contains_va(f.entry_va), isv.contains_va(f.entry_va));
        }
    }

    #[test]
    fn syscall_form_generates_at_load_time() {
        let g = graph();
        let text = syscall_profile_string(&[Sysno::Read, Sysno::Write]);
        let loaded = from_profile_string(&text, &g).expect("loads");
        let direct = Isv::static_for(&g, &[Sysno::Read, Sysno::Write]);
        assert_eq!(loaded.funcs(), direct.funcs());
    }

    #[test]
    fn hardened_views_keep_their_kind() {
        let g = graph();
        let mut isv = Isv::static_for(&g, &[Sysno::Read]);
        let victim = *isv.funcs().iter().next().unwrap();
        isv.exclude_function(&g, victim);
        let text = to_profile_string(&isv, &g);
        assert!(text.contains("kind hardened"));
        let loaded = from_profile_string(&text, &g).expect("loads");
        assert_eq!(loaded.kind(), IsvKind::Hardened);
        assert!(!loaded.contains_func(victim));
    }

    #[test]
    fn header_is_mandatory() {
        let g = graph();
        assert!(matches!(
            from_profile_string("kind dynamic\n", &g),
            Err(ProfileError::BadHeader)
        ));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let g = graph();
        let text = format!("{HEADER}\nkind dynamic\nfunc not_a_real_function\n");
        assert!(matches!(
            from_profile_string(&text, &g),
            Err(ProfileError::UnknownFunction { .. })
        ));
        let text = format!("{HEADER}\nkind static\nsyscall not_a_syscall\n");
        assert!(matches!(
            from_profile_string(&text, &g),
            Err(ProfileError::UnknownSyscall { .. })
        ));
    }

    #[test]
    fn malformed_directives_are_rejected_with_line_numbers() {
        let g = graph();
        let text = format!("{HEADER}\nkind dynamic\nfunc sys_read\ngarbage-line\n");
        match from_profile_string(&text, &g) {
            Err(ProfileError::BadDirective { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected BadDirective, got {other:?}"),
        }
    }

    #[test]
    fn empty_function_lists_are_rejected() {
        let g = graph();
        let text = format!("{HEADER}\nkind dynamic\n");
        assert!(matches!(
            from_profile_string(&text, &g),
            Err(ProfileError::Empty)
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = graph();
        let text = format!("{HEADER}\n# a note\n\nkind static\n# another\nsyscall getpid\n");
        let loaded = from_profile_string(&text, &g).expect("loads");
        assert!(loaded.num_funcs() > 0);
    }
}
