//! The Data Speculation View Metadata Table (DSVMT) — §6.2.
//!
//! Perspective stores per-context DSV bits in "a three-level tree
//! structure supporting the three contemporary page sizes (4KB, 2MB,
//! 1GB)", accessed in parallel to the TLB, inspired by TDX's metadata
//! tables. Interior entries can terminate the walk early for huge
//! regions (a 1 GiB direct-map chunk owned by one tenant needs one L1
//! entry, not 262 144 leaf bits), which is what keeps the metadata
//! footprint and the walk latency small.
//!
//! This module is the *software/memory side* of the mechanism: the tree a
//! miss in the [`TaggedMetadataCache`](crate::hwcache::TaggedMetadataCache)
//! walks. It is kept per context and synchronized from the
//! [`DsvTable`](crate::dsv::DsvTable) ownership metadata.

use persp_kernel::context::CgroupId;
use persp_kernel::layout::frame_to_va;
use persp_kernel::sink::{AllocSink, Owner};
use persp_uarch::Asid;
use std::collections::HashMap;

/// Level of the tree at which a walk terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WalkLevel {
    /// 1 GiB granule (level-1 entry).
    Huge1G,
    /// 2 MiB granule (level-2 entry).
    Huge2M,
    /// 4 KiB leaf.
    Page4K,
}

impl WalkLevel {
    /// Memory accesses the walk performed (one per level traversed).
    pub fn walk_accesses(self) -> u64 {
        match self {
            WalkLevel::Huge1G => 1,
            WalkLevel::Huge2M => 2,
            WalkLevel::Page4K => 3,
        }
    }

    /// Bytes covered by an entry at this level.
    pub fn span_bytes(self) -> u64 {
        match self {
            WalkLevel::Huge1G => 1 << 30,
            WalkLevel::Huge2M => 1 << 21,
            WalkLevel::Page4K => 1 << 12,
        }
    }
}

/// Result of a DSVMT walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// Is the page inside the context's DSV?
    pub in_view: bool,
    /// The level that answered.
    pub level: WalkLevel,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// Every 4 KiB page under this entry shares one bit (early
    /// termination).
    Uniform(bool),
    /// Mixed ownership below: descend.
    Split,
}

/// One context's three-level metadata tree.
///
/// Entries default to *outside the view* — the conservative answer
/// Perspective requires for memory with no recorded provenance (§6.1).
#[derive(Debug, Default)]
pub struct DsvmtTree {
    l1: HashMap<u64, Node>, // va >> 30
    l2: HashMap<u64, Node>, // va >> 21
    l3: HashMap<u64, bool>, // va >> 12
    stats: DsvmtStats,
}

/// Walk statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsvmtStats {
    /// Total walks.
    pub walks: u64,
    /// Walks terminated at the 1 GiB level.
    pub terminated_1g: u64,
    /// Walks terminated at the 2 MiB level.
    pub terminated_2m: u64,
    /// Walks reaching a 4 KiB leaf.
    pub reached_leaf: u64,
}

impl DsvmtTree {
    /// An empty tree (everything conservatively outside the view).
    pub fn new() -> Self {
        Self::default()
    }

    /// Walk the tree for `va`.
    pub fn walk(&mut self, va: u64) -> WalkResult {
        self.stats.walks += 1;
        match self.l1.get(&(va >> 30)) {
            None => {
                self.stats.terminated_1g += 1;
                WalkResult {
                    in_view: false,
                    level: WalkLevel::Huge1G,
                }
            }
            Some(Node::Uniform(bit)) => {
                self.stats.terminated_1g += 1;
                WalkResult {
                    in_view: *bit,
                    level: WalkLevel::Huge1G,
                }
            }
            Some(Node::Split) => match self.l2.get(&(va >> 21)) {
                None => {
                    self.stats.terminated_2m += 1;
                    WalkResult {
                        in_view: false,
                        level: WalkLevel::Huge2M,
                    }
                }
                Some(Node::Uniform(bit)) => {
                    self.stats.terminated_2m += 1;
                    WalkResult {
                        in_view: *bit,
                        level: WalkLevel::Huge2M,
                    }
                }
                Some(Node::Split) => {
                    self.stats.reached_leaf += 1;
                    let bit = self.l3.get(&(va >> 12)).copied().unwrap_or(false);
                    WalkResult {
                        in_view: bit,
                        level: WalkLevel::Page4K,
                    }
                }
            },
        }
    }

    /// Set the view bit for a `[va, va + bytes)` range, using the largest
    /// granules that fit (the OS-side update path on allocation events).
    pub fn set_range(&mut self, va: u64, bytes: u64, in_view: bool) {
        let mut cur = va & !0xfff;
        let end = va.checked_add(bytes).expect("range overflow");
        while cur < end {
            if cur.is_multiple_of(1 << 30) && end - cur >= (1 << 30) {
                self.l1.insert(cur >> 30, Node::Uniform(in_view));
                // Drop any stale finer-grained entries under this granule.
                self.prune_below_1g(cur);
                cur += 1 << 30;
            } else if cur.is_multiple_of(1 << 21) && end - cur >= (1 << 21) {
                self.split_l1(cur);
                self.l2.insert(cur >> 21, Node::Uniform(in_view));
                self.prune_below_2m(cur);
                cur += 1 << 21;
            } else {
                self.split_l1(cur);
                self.split_l2(cur);
                self.l3.insert(cur >> 12, in_view);
                cur += 1 << 12;
            }
        }
    }

    fn split_l1(&mut self, va: u64) {
        let key = va >> 30;
        match self.l1.get(&key) {
            Some(Node::Split) => {}
            Some(Node::Uniform(bit)) => {
                // Push the uniform bit down one level before splitting.
                let bit = *bit;
                self.l1.insert(key, Node::Split);
                for i in 0..(1u64 << 9) {
                    self.l2.insert((key << 9) + i, Node::Uniform(bit));
                }
            }
            None => {
                self.l1.insert(key, Node::Split);
            }
        }
    }

    fn split_l2(&mut self, va: u64) {
        let key = va >> 21;
        match self.l2.get(&key) {
            Some(Node::Split) => {}
            Some(Node::Uniform(bit)) => {
                let bit = *bit;
                self.l2.insert(key, Node::Split);
                for i in 0..(1u64 << 9) {
                    self.l3.insert((key << 9) + i, bit);
                }
            }
            None => {
                self.l2.insert(key, Node::Split);
            }
        }
    }

    fn prune_below_1g(&mut self, va: u64) {
        // Invariant: no entry exists below a Uniform node. Stale finer
        // entries would be resurrected by a later push-down split, so
        // both levels are pruned eagerly (O(map size), not O(span)).
        let key = va >> 30;
        self.l2.retain(|k, _| (k >> 9) != key);
        self.l3.retain(|k, _| (k >> 18) != key);
    }

    fn prune_below_2m(&mut self, va: u64) {
        let key = va >> 21;
        self.l3.retain(|k, _| (k >> 9) != key);
    }

    /// Entries stored per level `(l1, l2, l3)` — the metadata-footprint
    /// metric the huge-granule design optimizes.
    pub fn footprint(&self) -> (usize, usize, usize) {
        (self.l1.len(), self.l2.len(), self.l3.len())
    }

    /// Walk statistics.
    pub fn stats(&self) -> DsvmtStats {
        self.stats
    }
}

impl persp_uarch::MetricsSource for DsvmtTree {
    fn export_metrics(&self, prefix: &str, reg: &mut persp_uarch::MetricsRegistry) {
        reg.set(format!("{prefix}.walks"), self.stats.walks);
        reg.set(format!("{prefix}.terminated_1g"), self.stats.terminated_1g);
        reg.set(format!("{prefix}.terminated_2m"), self.stats.terminated_2m);
        reg.set(format!("{prefix}.reached_leaf"), self.stats.reached_leaf);
        let (l1, l2, l3) = self.footprint();
        reg.set(format!("{prefix}.entries_1g"), l1 as u64);
        reg.set(format!("{prefix}.entries_2m"), l2 as u64);
        reg.set(format!("{prefix}.entries_4k"), l3 as u64);
    }
}

/// Per-context trees, updated from DSV ownership events.
#[derive(Debug, Default)]
pub struct DsvmtForest {
    trees: HashMap<Asid, DsvmtTree>,
}

impl DsvmtForest {
    /// Empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tree of a context (created on first use).
    pub fn tree(&mut self, asid: Asid) -> &mut DsvmtTree {
        self.trees.entry(asid).or_default()
    }

    /// Number of contexts with trees.
    pub fn contexts(&self) -> usize {
        self.trees.len()
    }
}

/// A hardware-facing mirror of DSV ownership: one [`DsvmtTree`] per
/// context, kept current from the same allocation-event stream the
/// [`DsvTable`](crate::dsv::DsvTable) consumes (tee the kernel sink with
/// [`TeeSink`](persp_kernel::sink::TeeSink)). This is the in-memory
/// structure a DSVMT-cache miss would walk in hardware; the flat policy
/// model queries the table directly, and the consistency tests assert
/// the two always agree.
#[derive(Debug, Default)]
pub struct DsvmtMirror {
    forest: DsvmtForest,
    contexts: HashMap<Asid, CgroupId>,
    by_cgroup: HashMap<CgroupId, Vec<Asid>>,
    /// Shared ranges seen so far, replayed into late-registered contexts.
    shared_log: Vec<(u64, u64)>,
}

impl DsvmtMirror {
    /// An empty mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walk the tree of `asid` for `va`.
    pub fn walk(&mut self, asid: Asid, va: u64) -> WalkResult {
        self.forest.tree(asid).walk(va)
    }

    /// Per-level metadata footprint summed over all contexts.
    pub fn total_footprint(&mut self) -> (usize, usize, usize) {
        let mut sum = (0, 0, 0);
        let asids: Vec<Asid> = self.contexts.keys().copied().collect();
        for asid in asids {
            let (a, b, c) = self.forest.tree(asid).footprint();
            sum.0 += a;
            sum.1 += b;
            sum.2 += c;
        }
        sum
    }

    fn set_everywhere(&mut self, va: u64, bytes: u64, in_view: bool) {
        let asids: Vec<Asid> = self.contexts.keys().copied().collect();
        for asid in asids {
            self.forest.tree(asid).set_range(va, bytes, in_view);
        }
    }

    fn set_for_cgroup(&mut self, cgroup: CgroupId, va: u64, bytes: u64, in_view: bool) {
        if let Some(asids) = self.by_cgroup.get(&cgroup) {
            for &asid in &asids.clone() {
                self.forest.tree(asid).set_range(va, bytes, in_view);
            }
        }
    }
}

impl AllocSink for DsvmtMirror {
    fn register_context(&mut self, asid: u16, cgroup: CgroupId) {
        self.contexts.insert(asid, cgroup);
        self.by_cgroup.entry(cgroup).or_default().push(asid);
        // Replay boot-time shared regions into the new context's tree.
        for &(va, bytes) in &self.shared_log.clone() {
            self.forest.tree(asid).set_range(va, bytes, true);
        }
    }

    fn assign_frames(&mut self, first_frame: u64, count: u64, owner: Owner) {
        let va = frame_to_va(first_frame);
        let bytes = count * 4096;
        match owner {
            Owner::Shared => {
                self.shared_log.push((va, bytes));
                self.set_everywhere(va, bytes, true);
            }
            Owner::Cgroup(c) => self.set_for_cgroup(c, va, bytes, true),
            Owner::Unknown => {}
        }
    }

    fn release_frames(&mut self, first_frame: u64, count: u64) {
        // Conservative: released memory leaves every view.
        self.set_everywhere(frame_to_va(first_frame), count * 4096, false);
    }

    fn assign_va_range(&mut self, va: u64, bytes: u64, owner: Owner) {
        match owner {
            Owner::Shared => {
                self.shared_log.push((va, bytes));
                self.set_everywhere(va, bytes, true);
            }
            Owner::Cgroup(c) => self.set_for_cgroup(c, va, bytes, true),
            Owner::Unknown => {}
        }
    }

    fn release_va_range(&mut self, va: u64, bytes: u64) {
        self.set_everywhere(va, bytes, false);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn stale_leaves_are_not_resurrected_by_push_down() {
        // Regression: a leaf written before a uniform 1 GiB overwrite
        // must not survive to override a later push-down split.
        let mut t = DsvmtTree::new();
        t.set_range(0, 1 << 12, true); // leaf l3[0] = true
        t.set_range(0, 1 << 30, false); // whole region out of view
        t.set_range(1 << 12, 1 << 12, true); // splits back down to leaves
        let r = t.walk(0);
        assert!(!r.in_view, "page 0 was overwritten by the 1 GiB clear");
        assert!(t.walk(1 << 12).in_view);
    }

    use super::*;

    #[test]
    fn empty_tree_is_conservatively_outside() {
        let mut t = DsvmtTree::new();
        let r = t.walk(0xFFFF_9000_0000_0000);
        assert!(!r.in_view);
        assert_eq!(r.level, WalkLevel::Huge1G, "short-circuits at the top");
        assert_eq!(r.level.walk_accesses(), 1);
    }

    #[test]
    fn page_grain_set_and_walk() {
        let mut t = DsvmtTree::new();
        t.set_range(0x1000, 0x2000, true); // two 4K pages
        assert!(t.walk(0x1000).in_view);
        assert!(t.walk(0x2fff).in_view);
        assert!(!t.walk(0x3000).in_view);
        assert_eq!(t.walk(0x1000).level, WalkLevel::Page4K);
    }

    #[test]
    fn huge_ranges_use_coarse_granules() {
        let mut t = DsvmtTree::new();
        // A 1 GiB-aligned, 1 GiB range: exactly one L1 entry.
        t.set_range(1 << 30, 1 << 30, true);
        let (l1, l2, l3) = t.footprint();
        assert_eq!((l1, l2, l3), (1, 0, 0), "one uniform L1 entry suffices");
        let r = t.walk((1 << 30) + 0x1234);
        assert!(r.in_view);
        assert_eq!(r.level, WalkLevel::Huge1G);
        assert_eq!(r.level.walk_accesses(), 1, "huge granules shorten walks");
    }

    #[test]
    fn mixed_granularity_composes() {
        let mut t = DsvmtTree::new();
        // 2 MiB-aligned 2 MiB chunk, then punch a 4 KiB hole.
        t.set_range(1 << 21, 1 << 21, true);
        assert_eq!(t.walk((1 << 21) + 0x5000).level, WalkLevel::Huge2M);
        t.set_range((1 << 21) + 0x5000, 0x1000, false);
        assert!(
            !t.walk((1 << 21) + 0x5000).in_view,
            "the hole is out of view"
        );
        assert!(t.walk((1 << 21) + 0x4000).in_view, "neighbors keep the bit");
        assert!(t.walk((1 << 21) + 0x6000).in_view);
    }

    #[test]
    fn unaligned_range_spans_levels() {
        let mut t = DsvmtTree::new();
        // 4 KiB before a 2 MiB boundary through 2 MiB + 8 KiB after it.
        let base = (1 << 21) - 0x1000;
        t.set_range(base, 0x1000 + (1 << 21) + 0x2000, true);
        assert!(t.walk(base).in_view);
        assert!(t.walk(1 << 21).in_view);
        assert!(t.walk((2 << 21) + 0x1000).in_view);
        assert!(!t.walk((2 << 21) + 0x2000).in_view);
    }

    #[test]
    fn revoking_a_range_flips_bits() {
        let mut t = DsvmtTree::new();
        t.set_range(0x10_0000, 0x4000, true);
        t.set_range(0x10_0000, 0x4000, false);
        assert!(!t.walk(0x10_0000).in_view);
        assert!(!t.walk(0x10_3000).in_view);
    }

    #[test]
    fn walk_stats_accumulate_by_level() {
        let mut t = DsvmtTree::new();
        t.set_range(1 << 30, 1 << 30, true);
        t.set_range(0x1000, 0x1000, true);
        t.walk(1 << 30); // 1G termination
        t.walk(0x1000); // leaf
        t.walk(0xDEAD_0000_0000); // miss at top
        let s = t.stats();
        assert_eq!(s.walks, 3);
        assert_eq!(s.terminated_1g, 2);
        assert_eq!(s.reached_leaf, 1);
    }

    #[test]
    fn forest_isolates_contexts() {
        let mut f = DsvmtForest::new();
        f.tree(1).set_range(0x1000, 0x1000, true);
        assert!(f.tree(1).walk(0x1000).in_view);
        assert!(
            !f.tree(2).walk(0x1000).in_view,
            "other context sees nothing"
        );
        assert_eq!(f.contexts(), 2);
    }

    #[test]
    fn mirror_tracks_ownership_per_context() {
        let mut m = DsvmtMirror::new();
        m.register_context(1, 10);
        m.register_context(2, 20);
        m.assign_frames(100, 1, Owner::Cgroup(10));
        assert!(m.walk(1, frame_to_va(100)).in_view);
        assert!(!m.walk(2, frame_to_va(100)).in_view, "foreign stays out");
        m.release_frames(100, 1);
        assert!(!m.walk(1, frame_to_va(100)).in_view, "release dissolves");
    }

    #[test]
    fn mirror_replays_shared_regions_to_late_contexts() {
        let mut m = DsvmtMirror::new();
        m.assign_va_range(0xFFFF_8400_0000_0000, 1 << 21, Owner::Shared);
        m.register_context(5, 50);
        assert!(
            m.walk(5, 0xFFFF_8400_0000_1234).in_view,
            "boot-time shared data visible to contexts created later"
        );
    }

    #[test]
    fn splitting_preserves_uniform_bits() {
        let mut t = DsvmtTree::new();
        t.set_range(0, 1 << 30, true); // uniform 1G
                                       // Punching a hole forces splits; everything else must stay set.
        t.set_range(0x40_0000, 0x1000, false);
        assert!(!t.walk(0x40_0000).in_view);
        assert!(t.walk(0x3F_F000).in_view);
        assert!(t.walk(0x41_0000).in_view);
        assert!(
            t.walk(0x2000_0000).in_view,
            "distant page under the old granule"
        );
    }
}
