//! The Perspective framework facade: wires DSV metadata, the ISV
//! registry, and the hardware policy together, and exposes the *pliable
//! interface* — install, shrink, and harden speculation views at runtime.

use crate::dsv::DsvTable;
use crate::isv::Isv;
use crate::policy::{IsvRegistry, PerspectiveConfig, PerspectivePolicy};
use persp_kernel::callgraph::{CallGraph, FuncId};
use persp_kernel::kernel::SharedSink;
use persp_uarch::Asid;
use std::cell::RefCell;
use std::rc::Rc;

/// The framework object the OS-side code holds. The policy objects it
/// creates share its metadata via `Rc`, so runtime reconfiguration through
/// this handle is immediately visible to the hardware model inside the
/// core.
#[derive(Debug, Clone, Default)]
pub struct Perspective {
    dsv: Rc<RefCell<DsvTable>>,
    isvs: Rc<RefCell<IsvRegistry>>,
}

impl Perspective {
    /// A fresh framework with empty metadata.
    pub fn new() -> Self {
        Self::default()
    }

    /// The allocation-event sink to pass to
    /// [`Kernel::build`](persp_kernel::kernel::Kernel::build) — this is
    /// how allocations define DSVs.
    pub fn sink(&self) -> SharedSink {
        self.dsv.clone()
    }

    /// Build a hardware policy for the core.
    pub fn policy(&self, cfg: PerspectiveConfig) -> PerspectivePolicy {
        PerspectivePolicy::new(cfg, self.dsv.clone(), self.isvs.clone())
    }

    /// Boxed policy, ready for [`Core::new`](persp_uarch::pipeline::Core::new).
    pub fn boxed_policy(&self, cfg: PerspectiveConfig) -> Box<PerspectivePolicy> {
        Box::new(self.policy(cfg))
    }

    /// Install the view used while `asid` services `sysno` (per-syscall
    /// ISVs, §11 future work; enforced when
    /// [`PerspectiveConfig::per_syscall_isv`](crate::policy::PerspectiveConfig)
    /// is set).
    pub fn install_isv_per_syscall(&self, asid: Asid, sysno: u16, isv: Isv) {
        self.isvs.borrow_mut().install_per_syscall(asid, sysno, isv);
    }

    /// Install a context's ISV (at application startup, per §5.4).
    pub fn install_isv(&self, asid: Asid, isv: Isv) {
        self.isvs.borrow_mut().install(asid, isv);
    }

    /// Exclude a kernel function from a context's view at runtime — the
    /// "swiftly mitigate unforeseen vulnerable kernel functions ...
    /// without kernel patches" interface (§5.4). Returns whether the
    /// function was previously inside the view.
    pub fn exclude_function(&self, asid: Asid, graph: &CallGraph, func: FuncId) -> bool {
        let mut reg = self.isvs.borrow_mut();
        match reg.get_mut(asid) {
            Some(isv) => isv.exclude_function(graph, func),
            None => false,
        }
    }

    /// Exclude a function from *every* installed view (the administrator
    /// "install ISVs applied to all applications" use case).
    pub fn exclude_function_globally(&self, graph: &CallGraph, func: FuncId) {
        let mut reg = self.isvs.borrow_mut();
        let asids: Vec<Asid> = reg.asids();
        for asid in asids {
            if let Some(isv) = reg.get_mut(asid) {
                isv.exclude_function(graph, func);
            }
        }
    }

    /// Read access to a context's installed view.
    pub fn with_isv<R>(&self, asid: Asid, f: impl FnOnce(Option<&Isv>) -> R) -> R {
        f(self.isvs.borrow().get(asid))
    }

    /// Shared DSV metadata handle (for inspection in tests/benches).
    pub fn dsv(&self) -> Rc<RefCell<DsvTable>> {
        self.dsv.clone()
    }

    /// A pristine ground-truth oracle over this framework's metadata,
    /// for the speculative non-interference checker
    /// ([`persp_uarch::sni::SniChecker`]). The oracle reads the
    /// authoritative DSV table and ISV registry directly — never the
    /// policy's metadata caches — so it defines what *should* have been
    /// blocked independent of hardware-model state.
    pub fn sni_oracle(&self, cfg: PerspectiveConfig) -> Rc<crate::sni_oracle::GroundTruth> {
        Rc::new(crate::sni_oracle::GroundTruth::new(
            cfg,
            self.dsv.clone(),
            self.isvs.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::body::emit_kernel;
    use persp_kernel::callgraph::KernelConfig;
    use persp_kernel::syscalls::Sysno;

    fn graph() -> CallGraph {
        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        g
    }

    #[test]
    fn install_and_inspect_isv() {
        let g = graph();
        let p = Perspective::new();
        p.install_isv(1, Isv::static_for(&g, &[Sysno::Read]));
        p.with_isv(1, |isv| {
            assert!(isv.is_some());
            assert!(isv.unwrap().num_funcs() > 0);
        });
        p.with_isv(2, |isv| assert!(isv.is_none()));
    }

    #[test]
    fn runtime_exclusion_through_the_facade() {
        let g = graph();
        let p = Perspective::new();
        p.install_isv(1, Isv::static_for(&g, &[Sysno::Read]));
        let f = p.with_isv(1, |isv| *isv.unwrap().funcs().iter().next().unwrap());
        assert!(p.exclude_function(1, &g, f));
        p.with_isv(1, |isv| assert!(!isv.unwrap().contains_func(f)));
        assert!(!p.exclude_function(1, &g, f), "second exclusion is a no-op");
        assert!(
            !p.exclude_function(9, &g, f),
            "no view installed for asid 9"
        );
    }

    #[test]
    fn global_exclusion_hits_every_view() {
        let g = graph();
        let p = Perspective::new();
        let isv = Isv::static_for(&g, Sysno::ALL);
        let f = *isv.funcs().iter().next().unwrap();
        p.install_isv(1, isv.clone());
        p.install_isv(2, isv);
        p.exclude_function_globally(&g, f);
        p.with_isv(1, |v| assert!(!v.unwrap().contains_func(f)));
        p.with_isv(2, |v| assert!(!v.unwrap().contains_func(f)));
    }

    #[test]
    fn sink_feeds_the_shared_dsv_table() {
        use persp_kernel::sink::Owner;
        let p = Perspective::new();
        p.sink().borrow_mut().assign_frames(5, 1, Owner::Cgroup(3));
        assert_eq!(p.dsv().borrow().tracked_frames(), 1);
    }
}
