//! Perspective's speculation policy: the hardware-side enforcement of
//! DSVs and ISVs, plugged into the core as a
//! [`SpecPolicy`].
//!
//! Per §6.2, for every *speculative* transmitter (load) issued in kernel
//! mode the hardware consults:
//!
//! 1. the **ISV cache** with the instruction's VA — outside the current
//!    context's ISV (or on a cache miss) the instruction is fenced until
//!    its visibility point;
//! 2. the **DSVMT cache** with the data VA — data outside the context's
//!    DSV (foreign, unknown, or a metadata miss) is likewise fenced.
//!
//! Non-speculative accesses always proceed: Perspective never changes
//! architectural semantics, which is what makes ISVs deployable where
//! seccomp-style syscall *blocking* is not (§5.3).

use crate::dsv::{DsvClass, DsvTable};
use crate::hwcache::{HwCacheConfig, HwLookup, TaggedMetadataCache};
use crate::isv::Isv;
use persp_uarch::policy::{BlockSource, LoadCtx, LoadDecision, PolicyCounters, SpecPolicy};
use persp_uarch::{Asid, Mode};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Which Perspective features are enforced (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerspectiveConfig {
    /// Enforce data speculation views.
    pub enforce_dsv: bool,
    /// Enforce instruction speculation views.
    pub enforce_isv: bool,
    /// Treat unknown-ownership data as blocked (§6.1). Disabling this is
    /// the §9.2 "Unknown Allocations" sensitivity experiment.
    pub block_unknown: bool,
    /// ISV-cache entries (paper: 128). The §9.2 sensitivity sweep varies
    /// this to locate the knee that justifies the Table 9.1 design point.
    pub isv_cache_entries: usize,
    /// DSVMT-cache entries (paper: 128).
    pub dsvmt_cache_entries: usize,
    /// Switch the instruction view at syscall dispatch (§11 future work):
    /// while syscall *s* is serviced, the per-`(asid, s)` view installed
    /// via [`IsvRegistry::install_per_syscall`] is enforced instead of
    /// the process-wide view. The ISV cache is flushed on each switch —
    /// the conservative hardware variant (an ASID+sysno tag extension
    /// would avoid the flushes).
    pub per_syscall_isv: bool,
}

impl Default for PerspectiveConfig {
    fn default() -> Self {
        PerspectiveConfig {
            enforce_dsv: true,
            enforce_isv: true,
            block_unknown: true,
            isv_cache_entries: 128,
            dsvmt_cache_entries: 128,
            per_syscall_isv: false,
        }
    }
}

/// Fence attribution (drives Table 10.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FenceBreakdown {
    /// Loads fenced by the ISV mechanism (outside view or ISV-cache miss).
    pub isv: u64,
    /// Loads fenced by the DSV mechanism (foreign data or DSVMT miss).
    pub dsv: u64,
    /// Loads fenced because ownership was unknown.
    pub unknown: u64,
}

impl FenceBreakdown {
    /// Total fences.
    pub fn total(&self) -> u64 {
        self.isv + self.dsv + self.unknown
    }

    /// ISV share of all fences (Table 10.1 reports ISV/DSV percentages).
    pub fn isv_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.isv as f64 / t as f64
        }
    }
}

/// Shared per-context ISV registry — the *pliable interface*: the OS (or
/// an administrator) installs, shrinks, or hardens views at runtime while
/// the policy object lives inside the core.
#[derive(Debug, Default)]
pub struct IsvRegistry {
    views: HashMap<Asid, Isv>,
    per_syscall: HashMap<(Asid, u16), Isv>,
    /// Bumped on every change so the policy can invalidate stale
    /// hardware-cache contents.
    generation: u64,
}

impl IsvRegistry {
    /// Install (or replace) the view of a context.
    pub fn install(&mut self, asid: Asid, isv: Isv) {
        self.views.insert(asid, isv);
        self.generation += 1;
    }

    /// The view of a context, if installed.
    pub fn get(&self, asid: Asid) -> Option<&Isv> {
        self.views.get(&asid)
    }

    /// Mutable view access (for runtime shrinking); bumps the generation.
    pub fn get_mut(&mut self, asid: Asid) -> Option<&mut Isv> {
        self.generation += 1;
        self.views.get_mut(&asid)
    }

    /// Current generation (changes whenever any view changes).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The contexts with installed views.
    pub fn asids(&self) -> Vec<Asid> {
        self.views.keys().copied().collect()
    }

    /// Install (or replace) the view used while `asid` services `sysno`
    /// (per-syscall ISVs, §11 future work).
    pub fn install_per_syscall(&mut self, asid: Asid, sysno: u16, isv: Isv) {
        self.per_syscall.insert((asid, sysno), isv);
        self.generation += 1;
    }

    /// The view governing `asid` while servicing `cur_sysno`: the
    /// per-syscall view when one is installed, otherwise the context's
    /// process-wide view.
    pub fn get_scoped(&self, asid: Asid, cur_sysno: Option<u16>) -> Option<&Isv> {
        if let Some(sysno) = cur_sysno {
            if let Some(v) = self.per_syscall.get(&(asid, sysno)) {
                return Some(v);
            }
        }
        self.views.get(&asid)
    }

    /// Does `asid` have any per-syscall views installed?
    pub fn has_per_syscall(&self, asid: Asid) -> bool {
        self.per_syscall.keys().any(|(a, _)| *a == asid)
    }
}

/// The Perspective policy object plugged into the simulated core.
pub struct PerspectivePolicy {
    cfg: PerspectiveConfig,
    dsv: Rc<RefCell<DsvTable>>,
    isvs: Rc<RefCell<IsvRegistry>>,
    isv_cache: TaggedMetadataCache,
    dsvmt_cache: TaggedMetadataCache,
    seen_generation: u64,
    /// Last `(asid, sysno)` dispatch context (per-syscall mode): a change
    /// flushes the ISV cache, modelling the conservative implementation.
    last_dispatch: Option<(Asid, Option<u16>)>,
    counters: PolicyCounters,
    fences: FenceBreakdown,
}

impl std::fmt::Debug for PerspectivePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerspectivePolicy")
            .field("cfg", &self.cfg)
            .field("fences", &self.fences)
            .finish_non_exhaustive()
    }
}

impl PerspectivePolicy {
    /// Build a policy over shared DSV metadata and the ISV registry.
    pub fn new(
        cfg: PerspectiveConfig,
        dsv: Rc<RefCell<DsvTable>>,
        isvs: Rc<RefCell<IsvRegistry>>,
    ) -> Self {
        PerspectivePolicy {
            cfg,
            dsv,
            isvs,
            isv_cache: TaggedMetadataCache::new(HwCacheConfig {
                entries: cfg.isv_cache_entries,
                ..HwCacheConfig::isv_paper()
            }),
            dsvmt_cache: TaggedMetadataCache::new(HwCacheConfig {
                entries: cfg.dsvmt_cache_entries,
                ..HwCacheConfig::dsvmt_paper()
            }),
            seen_generation: 0,
            last_dispatch: None,
            counters: PolicyCounters::default(),
            fences: FenceBreakdown::default(),
        }
    }

    /// Fence attribution so far.
    pub fn fence_breakdown(&self) -> FenceBreakdown {
        self.fences
    }

    /// ISV-cache statistics.
    pub fn isv_cache_stats(&self) -> crate::hwcache::HwCacheStats {
        self.isv_cache.stats()
    }

    /// DSVMT-cache statistics.
    pub fn dsvmt_cache_stats(&self) -> crate::hwcache::HwCacheStats {
        self.dsvmt_cache.stats()
    }

    /// Reset fence attribution and hardware-cache statistics (contents are
    /// kept — mirrors a measurement-region reset).
    pub fn reset_measurement(&mut self) {
        self.fences = FenceBreakdown::default();
        self.counters = PolicyCounters::default();
        self.isv_cache.reset_stats();
        self.dsvmt_cache.reset_stats();
    }

    /// Drop every ISV-cache and DSVMT entry tagged with `asid`.
    ///
    /// Used by the fault-injection harness ([`crate::fault::FaultInjector`])
    /// to model metadata-cache evictions mid-run; the next access refills
    /// from the authoritative tables, so this is always semantics-preserving
    /// (an eviction can only cause conservative extra blocks, never an
    /// unsafe allow).
    pub fn fault_invalidate_metadata(&mut self, asid: Asid) {
        self.isv_cache.invalidate_asid(asid);
        self.dsvmt_cache.invalidate_asid(asid);
    }

    fn sync_generation(&mut self, asid: Asid) {
        let gen = self.isvs.borrow().generation();
        if gen != self.seen_generation {
            // A view changed: stale ISV-cache contents must not answer.
            self.isv_cache.invalidate_asid(asid);
            self.seen_generation = gen;
        }
    }

    /// In per-syscall mode a dispatch-context change flushes the ISV
    /// cache (stale bits belong to the previous syscall's view).
    fn sync_dispatch(&mut self, asid: Asid, cur_sysno: Option<u16>) {
        if !self.cfg.per_syscall_isv {
            return;
        }
        let ctx = Some((asid, cur_sysno));
        if self.last_dispatch != ctx {
            self.isv_cache.invalidate_asid(asid);
            self.last_dispatch = ctx;
        }
    }

    /// The view governing this access, honouring per-syscall mode.
    fn scoped_view_installed(&self, asid: Asid, cur_sysno: Option<u16>) -> bool {
        let isvs = self.isvs.borrow();
        if self.cfg.per_syscall_isv {
            isvs.get_scoped(asid, cur_sysno).is_some()
        } else {
            isvs.get(asid).is_some()
        }
    }

    /// ISV check: may the instruction at `pc` execute speculatively in
    /// context `asid` (servicing `cur_sysno`)? Returns the blocking source
    /// if not: [`BlockSource::Isv`] when the cached view bit says "outside
    /// the view", [`BlockSource::IsvMiss`] when the ISV cache missed and
    /// the access is blocked conservatively while the refill runs. Both
    /// fold into the same ISV fence totals; they differ only for
    /// stall-cycle attribution.
    fn isv_blocks(&mut self, pc: u64, asid: Asid, cur_sysno: Option<u16>) -> Option<BlockSource> {
        self.sync_generation(asid);
        self.sync_dispatch(asid, cur_sysno);
        match self.isv_cache.lookup(pc, asid) {
            HwLookup::Hit(true) => None,
            HwLookup::Hit(false) => Some(BlockSource::Isv),
            HwLookup::Miss => {
                // Conservatively block this instance; refill in the
                // background from the ISV page (§6.2).
                let span = self.isv_cache.span_bytes();
                let window = pc & !(span - 1);
                let nbits = (span / 4).min(64) as usize;
                let isvs = self.isvs.borrow();
                let isv = if self.cfg.per_syscall_isv {
                    isvs.get_scoped(asid, cur_sysno)
                } else {
                    isvs.get(asid)
                }
                .expect("isv_blocks only called when enforced");
                let allowed: Vec<bool> = (0..nbits)
                    .map(|i| isv.contains_va(window + i as u64 * 4))
                    .collect();
                drop(isvs);
                self.isv_cache.refill(pc, asid, |b| {
                    allowed.get(b as usize).copied().unwrap_or(false)
                });
                Some(BlockSource::IsvMiss)
            }
        }
    }

    /// DSV check: may the data at `addr` be speculatively accessed by
    /// `asid`? Returns the blocking source if not.
    fn dsv_blocks(&mut self, addr: u64, asid: Asid) -> Option<BlockSource> {
        match self.dsvmt_cache.lookup(addr, asid) {
            HwLookup::Hit(true) => None,
            HwLookup::Hit(false) => {
                // Attribution for Table 10.1 / §9.2 reporting only: the
                // hardware bit just says "fence"; the software metadata
                // says why.
                let class = self.dsv.borrow_mut().classify(addr, asid);
                Some(if class == DsvClass::Unknown && self.cfg.block_unknown {
                    BlockSource::UnknownAlloc
                } else {
                    BlockSource::Dsv
                })
            }
            HwLookup::Miss => {
                let class = self.dsv.borrow_mut().classify(addr, asid);
                let in_view = match class {
                    DsvClass::Owned | DsvClass::Shared => true,
                    DsvClass::Foreign => false,
                    DsvClass::Unknown => !self.cfg.block_unknown,
                };
                self.dsvmt_cache.refill(addr, asid, |_| in_view);
                // The miss itself conservatively blocks (§6.2): "on a
                // miss, instead of waiting for a refill, Perspective
                // conservatively blocks speculation". Unknown ownership
                // keeps its own attribution; everything else blocked on
                // the miss path is tagged DsvmtMiss, which folds into the
                // same DSV fence totals but drives a separate stall class.
                Some(if class == DsvClass::Unknown && self.cfg.block_unknown {
                    BlockSource::UnknownAlloc
                } else {
                    BlockSource::DsvmtMiss
                })
            }
        }
    }
}

impl persp_uarch::MetricsSource for PerspectivePolicy {
    fn export_metrics(&self, prefix: &str, reg: &mut persp_uarch::MetricsRegistry) {
        reg.set(format!("{prefix}.fences.isv"), self.fences.isv);
        reg.set(format!("{prefix}.fences.dsv"), self.fences.dsv);
        reg.set(format!("{prefix}.fences.unknown"), self.fences.unknown);
        self.counters
            .export_metrics(&format!("{prefix}.decisions"), reg);
        self.isv_cache
            .export_metrics(&format!("{prefix}.isv_cache"), reg);
        self.dsvmt_cache
            .export_metrics(&format!("{prefix}.dsvmt_cache"), reg);
    }
}

impl SpecPolicy for PerspectivePolicy {
    fn name(&self) -> &'static str {
        "PERSPECTIVE"
    }

    fn check_load(&mut self, ctx: &LoadCtx) -> LoadDecision {
        // Perspective protects kernel execution; user-mode speculation and
        // non-speculative accesses proceed untouched.
        if ctx.mode != Mode::Kernel || !ctx.speculative {
            let d = LoadDecision::Allow;
            self.counters.record(d);
            return d;
        }

        let isv_enforced =
            self.cfg.enforce_isv && self.scoped_view_installed(ctx.asid, ctx.cur_sysno);
        if isv_enforced {
            if let Some(src) = self.isv_blocks(ctx.pc, ctx.asid, ctx.cur_sysno) {
                let d = LoadDecision::BlockUntilVp(src);
                self.counters.record(d);
                self.fences.isv += 1;
                return d;
            }
        }

        if self.cfg.enforce_dsv {
            if let Some(src) = self.dsv_blocks(ctx.addr, ctx.asid) {
                let d = LoadDecision::BlockUntilVp(src);
                self.counters.record(d);
                match src {
                    BlockSource::UnknownAlloc => self.fences.unknown += 1,
                    _ => self.fences.dsv += 1,
                }
                return d;
            }
        }

        let d = LoadDecision::Allow;
        self.counters.record(d);
        d
    }

    fn on_load_vp(&mut self, ctx: &LoadCtx) {
        // Deferred LRU updates at the visibility point (§6.2).
        if ctx.mode == Mode::Kernel {
            self.isv_cache.commit_touch(ctx.pc, ctx.asid);
            self.dsvmt_cache.commit_touch(ctx.addr, ctx.asid);
        }
    }

    fn counters(&self) -> PolicyCounters {
        self.counters.clone()
    }

    fn reset_counters(&mut self) {
        self.counters = PolicyCounters::default();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::layout::frame_to_va;
    use persp_kernel::sink::{AllocSink, Owner};

    fn setup() -> (
        PerspectivePolicy,
        Rc<RefCell<DsvTable>>,
        Rc<RefCell<IsvRegistry>>,
    ) {
        let dsv = Rc::new(RefCell::new(DsvTable::new()));
        let isvs = Rc::new(RefCell::new(IsvRegistry::default()));
        {
            let mut d = dsv.borrow_mut();
            d.register_context(1, 10);
            d.register_context(2, 20);
            d.assign_frames(100, 1, Owner::Cgroup(10));
            d.assign_frames(200, 1, Owner::Cgroup(20));
        }
        // No ISV installed for tests that exercise DSVs only — contexts
        // without views are unrestricted.
        let policy =
            PerspectivePolicy::new(PerspectiveConfig::default(), dsv.clone(), isvs.clone());
        (policy, dsv, isvs)
    }

    fn kctx(pc: u64, addr: u64, asid: Asid, speculative: bool) -> LoadCtx {
        LoadCtx {
            pc,
            addr,
            mode: Mode::Kernel,
            asid,
            speculative,
            tainted_addr: false,
            l1_hit: false,
            cur_sysno: None,
        }
    }

    #[test]
    fn non_speculative_loads_always_proceed() {
        let (mut p, _, _) = setup();
        let d = p.check_load(&kctx(0xFFFF_8000_0000_0000, frame_to_va(200), 1, false));
        assert_eq!(d, LoadDecision::Allow, "architectural semantics unchanged");
    }

    #[test]
    fn user_mode_is_out_of_scope() {
        let (mut p, _, _) = setup();
        let mut ctx = kctx(0x1000, 0x2000, 1, true);
        ctx.mode = Mode::User;
        assert_eq!(p.check_load(&ctx), LoadDecision::Allow);
    }

    #[test]
    fn foreign_data_is_fenced_dsv() {
        let (mut p, _, _) = setup();
        // asid 1 speculatively reads asid 2's frame.
        let addr = frame_to_va(200);
        let d1 = p.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true));
        // First access: DSVMT miss — blocked conservatively.
        assert!(matches!(d1, LoadDecision::BlockUntilVp(_)));
        // After refill: still blocked, now by the DSV bit itself.
        let d2 = p.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true));
        assert_eq!(d2, LoadDecision::BlockUntilVp(BlockSource::Dsv));
        assert!(p.fence_breakdown().dsv >= 1);
    }

    #[test]
    fn owned_data_proceeds_after_refill() {
        let (mut p, _, _) = setup();
        let addr = frame_to_va(100);
        let _ = p.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true)); // miss
        let d = p.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true));
        assert_eq!(d, LoadDecision::Allow, "own data speculates freely");
    }

    #[test]
    fn unknown_data_is_fenced_unless_disabled() {
        let (mut p, _, _) = setup();
        let addr = frame_to_va(999); // never allocated
        let _ = p.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true));
        let d = p.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true));
        assert_eq!(d, LoadDecision::BlockUntilVp(BlockSource::UnknownAlloc));

        // §9.2 sensitivity: selectively disable unknown blocking.
        let dsv = Rc::new(RefCell::new(DsvTable::new()));
        dsv.borrow_mut().register_context(1, 10);
        let isvs = Rc::new(RefCell::new(IsvRegistry::default()));
        let cfg = PerspectiveConfig {
            block_unknown: false,
            ..Default::default()
        };
        let mut p2 = PerspectivePolicy::new(cfg, dsv, isvs);
        let _ = p2.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true));
        let d2 = p2.check_load(&kctx(0xFFFF_8000_0000_1000, addr, 1, true));
        assert_eq!(d2, LoadDecision::Allow);
    }

    fn kctx_sys(pc: u64, addr: u64, asid: Asid, sysno: Option<u16>) -> LoadCtx {
        LoadCtx {
            cur_sysno: sysno,
            ..kctx(pc, addr, asid, true)
        }
    }

    #[test]
    fn registry_prefers_per_syscall_view_with_process_wide_fallback() {
        use persp_kernel::body::emit_kernel;
        use persp_kernel::callgraph::{CallGraph, KernelConfig};
        use persp_kernel::syscalls::Sysno;

        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        let wide = crate::isv::Isv::static_for(&g, &[Sysno::Getpid, Sysno::Mmap]);
        let narrow = crate::isv::Isv::static_for(&g, &[Sysno::Getpid]);
        let narrow_len = narrow.num_funcs();

        let mut reg = IsvRegistry::default();
        reg.install(1, wide);
        reg.install_per_syscall(1, Sysno::Getpid as u16, narrow);
        assert!(reg.has_per_syscall(1));
        assert!(!reg.has_per_syscall(2));

        // Scoped to getpid: the narrow view answers.
        let v = reg.get_scoped(1, Some(Sysno::Getpid as u16)).unwrap();
        assert_eq!(v.num_funcs(), narrow_len);
        // Scoped to a syscall without its own view, or to no syscall:
        // falls back to the process-wide view.
        let v = reg.get_scoped(1, Some(Sysno::Mmap as u16)).unwrap();
        assert!(v.num_funcs() > narrow_len);
        let v = reg.get_scoped(1, None).unwrap();
        assert!(v.num_funcs() > narrow_len);
        // Unknown context: nothing.
        assert!(reg.get_scoped(7, Some(0)).is_none());
    }

    #[test]
    fn per_syscall_mode_switches_the_enforced_view_at_dispatch() {
        use persp_kernel::body::emit_kernel;
        use persp_kernel::callgraph::{CallGraph, KernelConfig};
        use persp_kernel::syscalls::Sysno;

        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        let getpid_pc = g.func(g.entries[&Sysno::Getpid]).entry_va;
        let mmap_pc = g.func(g.entries[&Sysno::Mmap]).entry_va;
        let getpid_view = crate::isv::Isv::static_for(&g, &[Sysno::Getpid]);
        let mmap_view = crate::isv::Isv::static_for(&g, &[Sysno::Mmap]);
        assert!(!getpid_view.contains_va(mmap_pc), "pools are disjoint");

        let (_, dsv, isvs) = setup();
        dsv.borrow_mut()
            .assign_va_range(0x9000, 4096, Owner::Shared);
        isvs.borrow_mut()
            .install_per_syscall(1, Sysno::Getpid as u16, getpid_view);
        isvs.borrow_mut()
            .install_per_syscall(1, Sysno::Mmap as u16, mmap_view);
        let cfg = PerspectiveConfig {
            per_syscall_isv: true,
            ..PerspectiveConfig::default()
        };
        let mut p = PerspectivePolicy::new(cfg, dsv, isvs);

        let getpid = Some(Sysno::Getpid as u16);
        let mmap = Some(Sysno::Mmap as u16);

        // While servicing getpid, mmap's handler is out of view: blocked
        // even with a warm cache.
        let _ = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, getpid));
        let d = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, getpid));
        assert_eq!(d, LoadDecision::BlockUntilVp(BlockSource::Isv));

        // The same pc while servicing mmap is allowed once refilled —
        // the dispatch switch flushed the stale bits.
        let _ = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, mmap));
        let _ = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, mmap));
        let d = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, mmap));
        assert_eq!(d, LoadDecision::Allow);

        // Back in getpid, the flush re-blocks it.
        let _ = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, getpid));
        let d = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, getpid));
        assert_eq!(d, LoadDecision::BlockUntilVp(BlockSource::Isv));

        // getpid's own handler is always inside its view.
        let _ = p.check_load(&kctx_sys(getpid_pc, 0x9000, 1, getpid));
        let _ = p.check_load(&kctx_sys(getpid_pc, 0x9000, 1, getpid));
        let d = p.check_load(&kctx_sys(getpid_pc, 0x9000, 1, getpid));
        assert_eq!(d, LoadDecision::Allow);
    }

    #[test]
    fn per_syscall_views_are_inert_unless_the_mode_is_enabled() {
        use persp_kernel::body::emit_kernel;
        use persp_kernel::callgraph::{CallGraph, KernelConfig};
        use persp_kernel::syscalls::Sysno;

        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        let mmap_pc = g.func(g.entries[&Sysno::Mmap]).entry_va;
        let getpid_view = crate::isv::Isv::static_for(&g, &[Sysno::Getpid]);

        let (_, dsv, isvs) = setup();
        dsv.borrow_mut()
            .assign_va_range(0x9000, 4096, Owner::Shared);
        // Only a per-syscall view, no process-wide view, default config
        // (per_syscall_isv = false): the context stays unrestricted.
        isvs.borrow_mut()
            .install_per_syscall(1, Sysno::Getpid as u16, getpid_view);
        let mut p = PerspectivePolicy::new(PerspectiveConfig::default(), dsv, isvs);

        let _ = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, Some(Sysno::Getpid as u16)));
        let _ = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, Some(Sysno::Getpid as u16)));
        let d = p.check_load(&kctx_sys(mmap_pc, 0x9000, 1, Some(Sysno::Getpid as u16)));
        assert_eq!(d, LoadDecision::Allow, "mode off: no ISV enforcement");
    }

    #[test]
    fn isv_blocks_instructions_outside_the_view() {
        use persp_kernel::body::emit_kernel;
        use persp_kernel::callgraph::{CallGraph, KernelConfig};
        use persp_kernel::syscalls::Sysno;

        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        let isv = crate::isv::Isv::static_for(&g, &[Sysno::Getpid]);
        let inside_pc = g.func(g.entries[&Sysno::Getpid]).entry_va;
        let outside_pc = g.func(g.entries[&Sysno::Mmap]).entry_va;
        assert!(!isv.contains_va(outside_pc));

        let (mut p, dsv, isvs) = setup();
        isvs.borrow_mut().install(1, isv);
        // Give the load's own data address a clean DSV answer.
        dsv.borrow_mut()
            .assign_va_range(0x9000, 4096, Owner::Shared);

        // Inside the view: first check misses the ISV cache (blocked),
        // second hits and passes the ISV stage.
        let _ = p.check_load(&kctx(inside_pc, 0x9000, 1, true));
        let _ = p.check_load(&kctx(inside_pc, 0x9000, 1, true)); // dsvmt refill round
        let d = p.check_load(&kctx(inside_pc, 0x9000, 1, true));
        assert_eq!(d, LoadDecision::Allow);

        // Outside the view: blocked even with warm caches.
        let _ = p.check_load(&kctx(outside_pc, 0x9000, 1, true));
        let d = p.check_load(&kctx(outside_pc, 0x9000, 1, true));
        assert_eq!(d, LoadDecision::BlockUntilVp(BlockSource::Isv));
        assert!(p.fence_breakdown().isv >= 1);
    }

    #[test]
    fn runtime_view_changes_invalidate_cached_bits() {
        use persp_kernel::body::emit_kernel;
        use persp_kernel::callgraph::{CallGraph, KernelConfig};
        use persp_kernel::syscalls::Sysno;

        let mut g = CallGraph::generate(KernelConfig::test_small());
        emit_kernel(&mut g);
        let isv = crate::isv::Isv::static_for(&g, &[Sysno::Getpid]);
        let entry = g.entries[&Sysno::Getpid];
        let pc = g.func(entry).entry_va;

        let (mut p, dsv, isvs) = setup();
        dsv.borrow_mut()
            .assign_va_range(0x9000, 4096, Owner::Shared);
        isvs.borrow_mut().install(1, isv);

        // Warm the ISV cache so pc hits as allowed.
        let _ = p.check_load(&kctx(pc, 0x9000, 1, true));
        let _ = p.check_load(&kctx(pc, 0x9000, 1, true));
        assert_eq!(
            p.check_load(&kctx(pc, 0x9000, 1, true)),
            LoadDecision::Allow
        );

        // A CVE lands in sys_getpid: exclude it at runtime (§5.4).
        isvs.borrow_mut()
            .get_mut(1)
            .unwrap()
            .exclude_function(&g, entry);
        // Stale cached bit must not answer: the next check re-misses and
        // then blocks.
        let _ = p.check_load(&kctx(pc, 0x9000, 1, true));
        let d = p.check_load(&kctx(pc, 0x9000, 1, true));
        assert_eq!(d, LoadDecision::BlockUntilVp(BlockSource::Isv));
    }

    #[test]
    fn counters_and_breakdown_accumulate() {
        let (mut p, _, _) = setup();
        let _ = p.check_load(&kctx(0xFFFF_8000_0000_1000, frame_to_va(200), 1, true));
        let _ = p.check_load(&kctx(0xFFFF_8000_0000_1000, frame_to_va(200), 1, true));
        let c = p.counters();
        assert_eq!(c.loads_checked, 2);
        assert_eq!(c.total_blocked(), 2);
        assert_eq!(p.fence_breakdown().total(), 2);
        p.reset_measurement();
        assert_eq!(p.fence_breakdown().total(), 0);
    }
}
