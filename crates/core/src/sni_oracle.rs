//! Ground-truth speculation metadata for the SNI checker.
//!
//! [`GroundTruth`] implements [`persp_uarch::SniOracle`] directly over
//! the framework's *pristine* DSV table and ISV registry — never the
//! policy's hardware metadata caches (ISV cache / DSVMT), whose refill
//! and staleness behaviour is exactly what the checker audits. The
//! asymmetry principle: only **unsafe allows** (the policy permitting a
//! speculative load the pristine metadata forbids) are violations;
//! conservative extra blocks (cache-miss paths, fault-flipped blocks)
//! are always legal.

use crate::dsv::{DsvClass, DsvTable};
use crate::policy::{IsvRegistry, PerspectiveConfig};
use persp_kernel::sink::Owner;
use persp_uarch::policy::LoadCtx;
use persp_uarch::sni::SniOracle;
use persp_uarch::{Asid, Mode};
use std::cell::RefCell;
use std::rc::Rc;

/// Pristine DSV/ISV ground truth, shared with the framework via `Rc`.
/// Build one with [`Perspective::sni_oracle`](crate::framework::Perspective::sni_oracle).
pub struct GroundTruth {
    cfg: PerspectiveConfig,
    dsv: Rc<RefCell<DsvTable>>,
    isvs: Rc<RefCell<IsvRegistry>>,
}

impl GroundTruth {
    /// Build over shared metadata handles.
    pub fn new(
        cfg: PerspectiveConfig,
        dsv: Rc<RefCell<DsvTable>>,
        isvs: Rc<RefCell<IsvRegistry>>,
    ) -> Self {
        GroundTruth { cfg, dsv, isvs }
    }

    /// Classify `addr` against `asid`'s DSV without touching any
    /// statistics (the read-only twin of [`DsvTable::classify`]).
    pub fn dsv_class(&self, addr: u64, asid: Asid) -> DsvClass {
        let dsv = self.dsv.borrow();
        match dsv.owner_of(addr) {
            None | Some(Owner::Unknown) => DsvClass::Unknown,
            Some(Owner::Shared) => DsvClass::Shared,
            Some(Owner::Cgroup(cg)) => {
                if dsv.cgroup_of(asid) == Some(cg) {
                    DsvClass::Owned
                } else {
                    DsvClass::Foreign
                }
            }
        }
    }

    /// Is `addr` outside `asid`'s data speculation view (treating
    /// unknown provenance per the configured `block_unknown`)?
    pub fn out_of_dsv(&self, addr: u64, asid: Asid) -> bool {
        match self.dsv_class(addr, asid) {
            DsvClass::Owned | DsvClass::Shared => false,
            DsvClass::Foreign => true,
            DsvClass::Unknown => self.cfg.block_unknown,
        }
    }

    /// Is `pc` outside the ISV governing this access? Vacuously `false`
    /// when no view is installed (nothing to enforce).
    pub fn out_of_isv(&self, pc: u64, asid: Asid, cur_sysno: Option<u16>) -> bool {
        let isvs = self.isvs.borrow();
        let view = if self.cfg.per_syscall_isv {
            isvs.get_scoped(asid, cur_sysno)
        } else {
            isvs.get(asid)
        };
        match view {
            Some(isv) => !isv.contains_va(pc),
            None => false,
        }
    }
}

impl SniOracle for GroundTruth {
    fn should_block(&self, ctx: &LoadCtx) -> bool {
        if ctx.mode != Mode::Kernel || !ctx.speculative {
            return false;
        }
        if self.cfg.enforce_isv && self.out_of_isv(ctx.pc, ctx.asid, ctx.cur_sysno) {
            return true;
        }
        self.cfg.enforce_dsv && self.out_of_dsv(ctx.addr, ctx.asid)
    }

    fn is_secret(&self, ctx: &LoadCtx) -> bool {
        // Secrecy is a property of the data's ownership, independent of
        // whether enforcement is switched on — that is what lets the
        // monitor prove the *unprotected* baseline leaks.
        ctx.mode == Mode::Kernel && self.out_of_dsv(ctx.addr, ctx.asid)
    }
}

impl std::fmt::Debug for GroundTruth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroundTruth")
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persp_kernel::sink::AllocSink;

    fn truth() -> GroundTruth {
        let dsv = Rc::new(RefCell::new(DsvTable::default()));
        let isvs = Rc::new(RefCell::new(IsvRegistry::default()));
        {
            let mut t = dsv.borrow_mut();
            t.register_context(1, 10);
            t.register_context(2, 20);
            t.assign_va_range(0x5000, 0x1000, Owner::Cgroup(10));
            t.assign_va_range(0x7000, 0x1000, Owner::Cgroup(20));
            t.assign_va_range(0x9000, 0x1000, Owner::Shared);
        }
        GroundTruth::new(PerspectiveConfig::default(), dsv, isvs)
    }

    fn kctx(addr: u64, asid: Asid, speculative: bool) -> LoadCtx {
        LoadCtx {
            pc: 0x100,
            addr,
            mode: Mode::Kernel,
            asid,
            speculative,
            tainted_addr: false,
            l1_hit: true,
            cur_sysno: None,
        }
    }

    #[test]
    fn classification_matches_ownership() {
        let t = truth();
        assert_eq!(t.dsv_class(0x5800, 1), DsvClass::Owned);
        assert_eq!(t.dsv_class(0x7800, 1), DsvClass::Foreign);
        assert_eq!(t.dsv_class(0x9800, 1), DsvClass::Shared);
        assert_eq!(t.dsv_class(0xF000, 1), DsvClass::Unknown);
    }

    #[test]
    fn only_speculative_kernel_accesses_can_violate() {
        let t = truth();
        assert!(t.should_block(&kctx(0x7800, 1, true)), "foreign data");
        assert!(!t.should_block(&kctx(0x7800, 1, false)), "non-speculative");
        assert!(!t.should_block(&kctx(0x5800, 1, true)), "owned data");
        assert!(t.should_block(&kctx(0xF000, 1, true)), "unknown blocked");
        let mut user = kctx(0x7800, 1, true);
        user.mode = Mode::User;
        assert!(!t.should_block(&user), "user mode is unprotected");
    }

    #[test]
    fn secrecy_ignores_enforcement_flags() {
        let dsv = Rc::new(RefCell::new(DsvTable::default()));
        let isvs = Rc::new(RefCell::new(IsvRegistry::default()));
        dsv.borrow_mut().register_context(1, 10);
        dsv.borrow_mut()
            .assign_va_range(0x7000, 0x1000, Owner::Cgroup(20));
        let t = GroundTruth::new(
            PerspectiveConfig {
                enforce_dsv: false,
                enforce_isv: false,
                ..PerspectiveConfig::default()
            },
            dsv,
            isvs,
        );
        assert!(!t.should_block(&kctx(0x7800, 1, true)), "nothing enforced");
        assert!(t.is_secret(&kctx(0x7800, 1, true)), "still a secret");
    }
}
