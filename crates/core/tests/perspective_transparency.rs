//! Architectural transparency of the Perspective policy: random kernel
//! programs over memory with randomized DSV ownership (owned / shared /
//! foreign / unknown per slot) must produce exactly the interpreter's
//! architectural state. Blocking a speculative load until its
//! visibility point may only ever change timing.
//!
//! This extends the pipeline's own differential oracle (which covers
//! UNSAFE/FENCE/DOM/STT) to the paper's policy, including the DSVMT
//! cache, the ISV cache, and the per-syscall mode.

use persp_kernel::sink::{AllocSink, Owner};
use persp_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use persp_uarch::config::CoreConfig;
use persp_uarch::hooks::NullHooks;
use persp_uarch::isa::{AluOp, Cond, Inst, Width};
use persp_uarch::machine::{Machine, Mode};
use persp_uarch::pipeline::Core;
use persp_uarch::testkit::{build_program, interpret, Template, POOL_BASE, POOL_SLOTS};
use perspective::dsv::DsvTable;
use perspective::isv::Isv;
use perspective::policy::{IsvRegistry, PerspectiveConfig, PerspectivePolicy};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

fn arb_reg() -> impl Strategy<Value = u8> {
    1u8..16
}

fn arb_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Mul),
        Just(AluOp::SltU),
    ]
}

fn arb_template() -> impl Strategy<Value = Template> {
    prop_oneof![
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Template::MovImm { dst, imm }),
        (arb_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, dst, a, b)| Template::Alu {
            op,
            dst,
            a,
            b
        }),
        (arb_reg(), 0..POOL_SLOTS, any::<bool>()).prop_map(|(dst, slot, byte)| Template::Load {
            dst,
            slot,
            width: if byte { Width::B } else { Width::Q },
        }),
        (arb_reg(), 0..POOL_SLOTS, any::<bool>()).prop_map(|(src, slot, byte)| Template::Store {
            src,
            slot,
            width: if byte { Width::B } else { Width::Q },
        }),
        (arb_reg(), arb_reg(), 1u8..5).prop_map(|(a, b, skip)| Template::SkipIf {
            cond: Cond::Ltu,
            a,
            b,
            skip,
        }),
    ]
}

/// Per-slot ownership drawn per test case: 0 = owned, 1 = shared,
/// 2 = foreign, 3 = unknown (no record).
fn apply_ownership(dsv: &mut DsvTable, classes: &[u8]) {
    dsv.register_context(1, 10);
    dsv.register_context(2, 20);
    for (i, c) in classes.iter().enumerate() {
        let va = POOL_BASE + i as u64 * 8;
        match c % 4 {
            0 => dsv.assign_va_range(va, 8, Owner::Cgroup(10)),
            1 => dsv.assign_va_range(va, 8, Owner::Shared),
            2 => dsv.assign_va_range(va, 8, Owner::Cgroup(20)),
            _ => {} // unknown: no provenance recorded
        }
    }
}

fn run_perspective(
    templates: &[Template],
    seeds: [u64; 4],
    classes: &[u8],
    cfg: PerspectiveConfig,
    install_isv: bool,
) {
    let base = 0x1000u64;
    let text_vec = build_program(templates, base);
    let text_map: HashMap<u64, Inst> = text_vec.iter().copied().collect();

    let mut oracle_regs = [0u64; 32];
    oracle_regs[1] = seeds[0];
    oracle_regs[2] = seeds[1];
    oracle_regs[3] = seeds[2];
    oracle_regs[4] = seeds[3];
    oracle_regs[31] = POOL_BASE;
    let mut oracle_mem: HashMap<u64, u8> = HashMap::new();
    interpret(&text_map, base, &mut oracle_regs, &mut oracle_mem);

    let dsv = Rc::new(RefCell::new(DsvTable::new()));
    apply_ownership(&mut dsv.borrow_mut(), classes);
    let isvs = Rc::new(RefCell::new(IsvRegistry::default()));
    if install_isv {
        // The unrestricted view still exercises the ISV cache machinery.
        isvs.borrow_mut().install(1, Isv::unrestricted());
        isvs.borrow_mut()
            .install_per_syscall(1, 3, Isv::unrestricted());
    }
    let policy = PerspectivePolicy::new(cfg, dsv, isvs);

    let mut machine = Machine::new();
    machine.load_text(text_vec);
    machine.mode = Mode::Kernel; // Perspective gates kernel execution
    machine.asid = 1;
    machine.cur_sysno = Some(3);
    machine.set_reg(1, seeds[0]);
    machine.set_reg(2, seeds[1]);
    machine.set_reg(3, seeds[2]);
    machine.set_reg(4, seeds[3]);
    machine.set_reg(31, POOL_BASE);
    let mut core = Core::new(
        CoreConfig::paper_default(),
        machine,
        MemoryHierarchy::new(HierarchyConfig::paper_default()),
        Box::new(policy),
        Box::new(NullHooks),
    );
    core.run(base, 2_000_000).expect("pipeline completes");

    let got = core.machine.regs();
    for r in 0..32 {
        assert_eq!(
            got[r], oracle_regs[r],
            "r{r} diverged under Perspective (classes {classes:?})"
        );
    }
    for slot in 0..POOL_SLOTS {
        for i in 0..8 {
            let addr = POOL_BASE + slot * 8 + i;
            let oracle_byte = *oracle_mem.get(&addr).unwrap_or(&0);
            assert_eq!(
                core.machine.mem.read_u8(addr),
                oracle_byte,
                "memory at {addr:#x} diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Default Perspective (DSV + ISV + unknown blocking), no ISV
    /// installed: DSV blocks on foreign/unknown slots must be invisible
    /// architecturally.
    #[test]
    fn perspective_is_architecturally_transparent(
        templates in prop::collection::vec(arb_template(), 1..40),
        seeds in any::<[u64; 4]>(),
        classes in prop::collection::vec(0u8..4, POOL_SLOTS as usize),
    ) {
        run_perspective(
            &templates,
            seeds,
            &classes,
            PerspectiveConfig::default(),
            false,
        );
    }

    /// With the ISV machinery engaged (unrestricted view, so every miss
    /// and refill path runs) and per-syscall mode on.
    #[test]
    fn perspective_per_syscall_mode_is_transparent(
        templates in prop::collection::vec(arb_template(), 1..30),
        seeds in any::<[u64; 4]>(),
        classes in prop::collection::vec(0u8..4, POOL_SLOTS as usize),
    ) {
        let cfg = PerspectiveConfig {
            per_syscall_isv: true,
            ..PerspectiveConfig::default()
        };
        run_perspective(&templates, seeds, &classes, cfg, true);
    }
}
