//! Model-based testing of the DSVMT three-level tree (§6.2).
//!
//! The tree's value is its granule management: `set_range` must pick the
//! coarsest granules it can (1 GiB / 2 MiB interior entries), push split
//! regions down to 4 KiB leaves, and prune leaves back into huge entries
//! when a region becomes uniform again. All of that is invisible to a
//! correct walk — so we drive random operation sequences against a flat
//! page-granular oracle and require the walk to agree everywhere, while
//! separately asserting the compactness the granule logic exists for.

use perspective::dsvmt::{DsvmtTree, WalkLevel};
use proptest::prelude::*;
use std::collections::HashMap;

const PAGE: u64 = 1 << 12;

/// One random mutation of the view.
#[derive(Debug, Clone)]
struct RangeOp {
    va: u64,
    bytes: u64,
    in_view: bool,
}

/// Ranges across a handful of 1 GiB regions, with sizes spanning all
/// three granule classes so every code path (leaf writes, 2 MiB uniform
/// entries, 1 GiB uniform entries, splits of each) is exercised.
fn range_op() -> impl Strategy<Value = RangeOp> {
    (
        0u64..3,       // which 1 GiB region
        0u64..262_144, // page offset inside it
        prop_oneof![
            1u64..16,            // a few pages
            509u64..515,         // straddles a 2 MiB boundary
            512u64..1536,        // one-to-three 2 MiB chunks
            262_143u64..262_146, // ~a full 1 GiB region
        ],
        any::<bool>(),
    )
        .prop_map(|(gig, page, pages, in_view)| RangeOp {
            va: (gig << 30) + page * PAGE,
            bytes: pages * PAGE,
            in_view,
        })
}

/// Flat oracle: last-writer-wins per 4 KiB page, default out-of-view.
fn apply_oracle(oracle: &mut HashMap<u64, bool>, op: &RangeOp) {
    let first = op.va >> 12;
    let last = (op.va + op.bytes - 1) >> 12;
    for p in first..=last {
        if op.in_view {
            oracle.insert(p, true);
        } else {
            oracle.remove(&p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tree answers exactly like the flat per-page oracle after any
    /// sequence of overlapping set/clear ranges.
    #[test]
    fn walk_agrees_with_flat_oracle(ops in prop::collection::vec(range_op(), 1..24)) {
        let mut tree = DsvmtTree::new();
        let mut oracle: HashMap<u64, bool> = HashMap::new();
        for op in &ops {
            tree.set_range(op.va, op.bytes, op.in_view);
            apply_oracle(&mut oracle, op);
        }
        // Probe the boundary pages of every op (first/last page, one
        // page either side) plus huge-granule boundaries they touch.
        let mut probes = Vec::new();
        for op in &ops {
            let first = op.va & !(PAGE - 1);
            let end = (op.va + op.bytes + PAGE - 1) & !(PAGE - 1);
            for va in [
                first.wrapping_sub(PAGE),
                first,
                end - PAGE,
                end,
                first & !((1 << 21) - 1),
                first & !((1 << 30) - 1),
            ] {
                probes.push(va);
            }
        }
        for va in probes {
            let expect = oracle.get(&(va >> 12)).copied().unwrap_or(false);
            let got = tree.walk(va);
            prop_assert_eq!(
                got.in_view, expect,
                "walk({:#x}) disagreed with oracle (level {:?})", va, got.level
            );
        }
    }

    /// Setting one uniform value over a whole aligned 1 GiB region must
    /// collapse it to a single L1 entry regardless of the mess that was
    /// there before (prune path).
    #[test]
    fn uniform_gig_collapses_to_one_entry(
        ops in prop::collection::vec(range_op(), 0..12),
        in_view in any::<bool>(),
    ) {
        let mut tree = DsvmtTree::new();
        for op in &ops {
            tree.set_range(op.va, op.bytes, op.in_view);
        }
        // Overwrite region 1 uniformly. Every walk inside it must now
        // terminate at the 1 GiB level — if any finer entry survived,
        // the L1 node would still be Split and the walk would descend.
        tree.set_range(1 << 30, 1 << 30, in_view);
        for off in [0u64, 0x1234_5000, 0x1FFF_F000, 0x2000_0000, 0x3FFF_F000] {
            let r = tree.walk((1 << 30) + off);
            prop_assert_eq!(r.in_view, in_view);
            prop_assert_eq!(r.level, WalkLevel::Huge1G, "uniform region answers at L1");
        }
    }

    /// Walk levels are consistent with spans: an answer at level L means
    /// every page in that L-sized aligned block answers identically.
    #[test]
    fn huge_answers_are_uniform_over_their_span(ops in prop::collection::vec(range_op(), 1..16)) {
        let mut tree = DsvmtTree::new();
        let mut oracle: HashMap<u64, bool> = HashMap::new();
        for op in &ops {
            tree.set_range(op.va, op.bytes, op.in_view);
            apply_oracle(&mut oracle, op);
        }
        for op in ops.iter().take(4) {
            let r = tree.walk(op.va);
            let span = r.level.span_bytes();
            let block = op.va & !(span - 1);
            // Sample pages across the span; the oracle must be uniform.
            let pages = span / PAGE;
            for i in [0u64, 1, pages / 2, pages - 1] {
                if i >= pages {
                    continue; // Page4K span holds a single page
                }
                let page = (block >> 12) + i;
                let expect = oracle.get(&page).copied().unwrap_or(false);
                prop_assert_eq!(
                    expect, r.in_view,
                    "level {:?} answer at {:#x} not uniform at page {:#x}",
                    r.level, op.va, page << 12
                );
            }
        }
    }
}

/// Deterministic compactness check: heavy churn that ends uniform must
/// not leave the tree bloated (prune works).
#[test]
fn churn_then_uniform_prunes_leaves() {
    let mut tree = DsvmtTree::new();
    // Fragment region 0 badly: alternate single pages.
    for p in (0..4096u64).step_by(2) {
        tree.set_range(p * PAGE, PAGE, true);
    }
    let (_, _, l3_frag) = tree.footprint();
    assert!(l3_frag >= 2048, "fragmentation creates leaves");
    // Now the whole region becomes uniform.
    tree.set_range(0, 1 << 30, true);
    let (l1, l2, l3) = tree.footprint();
    assert!(
        l2 == 0 && l3 == 0,
        "uniform overwrite prunes all finer entries (l2={l2} l3={l3})"
    );
    assert!(l1 >= 1);
    let r = tree.walk(0x3000);
    assert_eq!(r.level, WalkLevel::Huge1G);
    assert!(r.in_view);
}
